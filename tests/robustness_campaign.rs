//! Integration tests for the fault-injection + streaming-campaign layer:
//! worker-count determinism of `CampaignStats`, reset-and-rerun bit-identity
//! under active fault models, agreement of the streaming metrics path with
//! the full trace path, P² sketch rank-error bounds (property-based), and
//! the statistical model-checking readout.
//!
//! The `#[ignore]`d `million_scenario_campaign_streams` test is the
//! acceptance check that a 10^6-scenario campaign completes in O(workers)
//! memory; run it explicitly with
//! `cargo test --release --test robustness_campaign -- --ignored`.

use automotive_cps::core::{
    case_study, clopper_pearson, CoSimulation, DegradationConfig, DesignedFleet, P2Quantile,
    RobustnessCampaign, RobustnessSweep, RunMetrics,
};
use automotive_cps::flexray::{FaultModel, FlexRayConfig, GilbertElliott};
use automotive_cps::sched::AllocatorConfig;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The derived fleet, designed once for the whole test binary.
fn fleet() -> Arc<DesignedFleet> {
    static FLEET: OnceLock<Arc<DesignedFleet>> = OnceLock::new();
    Arc::clone(FLEET.get_or_init(|| {
        Arc::new(
            DesignedFleet::design(
                case_study::derived_fleet_specs(),
                &AllocatorConfig::default(),
                FlexRayConfig::paper_case_study(),
            )
            .expect("derived fleet designs"),
        )
    }))
}

/// A sweep exercising every fault/degradation feature at once.
fn stress_sweep() -> RobustnessSweep {
    RobustnessSweep::new(vec![0.0, 0.15, 0.5], 4, 1.0)
        .with_disturbance_range(0.8, 1.2)
        .with_burst(GilbertElliott {
            degrade_probability: 0.15,
            recover_probability: 0.4,
            bad_drop_probability: 0.9,
        })
        .with_corruption(0.02)
        .with_dynamic_contention(6)
        .with_sensor_noise(0.02)
        .with_storm(0.3, 0.25)
}

#[test]
fn campaign_stats_are_bit_identical_across_worker_counts() {
    let sweep = stress_sweep();
    let baseline = RobustnessCampaign::new(fleet(), 0xC0FFEE)
        .with_workers(1)
        .with_chunk_size(5)
        .run(&sweep)
        .expect("single-worker campaign");
    assert_eq!(baseline.total, 12);
    for workers in 2..=8 {
        let stats = RobustnessCampaign::new(fleet(), 0xC0FFEE)
            .with_workers(workers)
            .with_chunk_size(5)
            .run(&sweep)
            .expect("multi-worker campaign");
        // PartialEq over every accumulator — counts, Welford moments and the
        // order-sensitive P² marker state — must hold bit for bit.
        assert_eq!(stats, baseline, "worker count {workers} changed the campaign result");
    }
}

#[test]
fn campaign_seed_actually_matters() {
    let sweep = stress_sweep();
    let a = RobustnessCampaign::new(fleet(), 1).run(&sweep).expect("seed 1");
    let b = RobustnessCampaign::new(fleet(), 2).run(&sweep).expect("seed 2");
    assert_ne!(a, b, "different campaign seeds must explore different scenarios");
}

/// The engine under an active fault model + degradation config: a full
/// `reset()` must replay the exact same faulty trajectory, and a fresh
/// engine must produce it too.
#[test]
fn reset_and_rerun_under_faults_is_bit_identical() {
    let fault = FaultModel::drops(0xBEEF, 0.25)
        .with_burst(GilbertElliott {
            degrade_probability: 0.2,
            recover_probability: 0.5,
            bad_drop_probability: 0.95,
        })
        .with_corruption(0.05)
        .with_dynamic_contention(8);
    let degradation = DegradationConfig::noise(11, 0.03).with_storm(0.4, 0.3);

    let run = |engine: &mut CoSimulation, metrics: &mut RunMetrics| {
        engine.reset().expect("reset");
        engine.inject_disturbances().expect("inject");
        engine.run_metrics_into(2.0, metrics).expect("faulty run");
    };

    let mut first = fleet().engine().expect("engine");
    first.set_fault_model(Some(fault)).expect("fault model");
    first.set_degradation(Some(degradation)).expect("degradation");
    let mut reference = RunMetrics::default();
    run(&mut first, &mut reference);
    assert!(reference.bus.lost_frames() > 0, "the fault model must actually lose frames");
    assert!(reference.held_periods.iter().any(|&h| h > 0), "losses must trigger holds");

    // Reset-and-rerun on the same engine.
    let mut replay = RunMetrics::default();
    run(&mut first, &mut replay);
    assert_eq!(replay, reference, "reset must replay the faulty run bit for bit");

    // Fresh engine, same configuration.
    let mut second = fleet().engine().expect("fresh engine");
    second.set_fault_model(Some(fault)).expect("fault model");
    second.set_degradation(Some(degradation)).expect("degradation");
    let mut fresh = RunMetrics::default();
    run(&mut second, &mut fresh);
    assert_eq!(fresh, reference, "a fresh engine must reproduce the faulty run");
}

/// Nominal cross-check: the streaming metrics path must report exactly what
/// the full trace path derives after the fact.
#[test]
fn run_metrics_matches_the_full_trace_nominally() {
    let mut tracer = fleet().engine().expect("engine");
    tracer.inject_disturbances().expect("inject");
    let trace = tracer.run(12.0).expect("trace run");

    let mut streamer = fleet().engine().expect("engine");
    streamer.inject_disturbances().expect("inject");
    let mut metrics = RunMetrics::default();
    streamer.run_metrics_into(12.0, &mut metrics).expect("metrics run");

    for (app, index) in trace.apps.iter().zip(0..) {
        assert_eq!(
            metrics.response_times[index], app.response_time,
            "response time of {} must match the trace",
            app.name
        );
        assert_eq!(metrics.deadlines_met[index], app.deadline_met(), "{}", app.name);
        let trace_peak =
            app.points.iter().map(|p| p.norm).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(metrics.peak_norms[index], trace_peak, "{} peak norm", app.name);
    }
    assert!(metrics.all_deadlines_met(), "the nominal derived fleet meets all deadlines");
    assert_eq!(metrics.bus.cycles, trace.bus_statistics.cycles);
    assert_eq!(
        metrics.bus.static_transmissions,
        trace.bus_statistics.static_transmissions
    );
    assert_eq!(metrics.bus.lost_frames(), 0);
}

#[test]
fn settling_probability_readout_is_coherent() {
    let sweep = RobustnessSweep::new(vec![0.0, 0.6], 5, 1.0).with_burst(GilbertElliott {
        degrade_probability: 0.3,
        recover_probability: 0.2,
        bad_drop_probability: 1.0,
    });
    let stats = RobustnessCampaign::new(fleet(), 3).run(&sweep).expect("campaign");
    let narrow = stats.settling_probabilities(0.05);
    let wide = stats.settling_probabilities(0.5);
    for (n, w) in narrow.iter().zip(&wide) {
        assert_eq!(n.trials, 5);
        assert!((0.0..=1.0).contains(&n.lower) && n.lower <= n.upper && n.upper <= 1.0);
        assert!(n.lower <= n.estimate && n.estimate <= n.upper);
        // A wider confidence level can only tighten the interval.
        assert!(w.lower >= n.lower - 1e-12 && w.upper <= n.upper + 1e-12);
    }
    // Direct cross-check against the exact binomial bounds.
    let family = &stats.families[0];
    let (lower, upper) = clopper_pearson(family.deadlines_met, family.scenarios, 0.05);
    assert_eq!((narrow[0].lower, narrow[0].upper), (lower, upper));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The P² sketch must stay within rank-error bounds of the exact
    /// quantile: the estimate, located in the sorted sample, must sit within
    /// 15 % of n (plus a small-sample allowance) of the target rank.
    /// Duplicate-heavy samples are handled by measuring the distance from
    /// the target rank to the estimate's *rank interval*.
    #[test]
    fn p2_sketch_stays_within_rank_error_bounds(
        values in proptest::collection::vec(-50.0f64..50.0, 30..300),
        scale in 0.01f64..100.0,
    ) {
        for q in [0.5, 0.95] {
            let mut sketch = P2Quantile::new(q);
            for &value in &values {
                sketch.push(value * scale);
            }
            let estimate = sketch.estimate().expect("non-empty sketch");
            let mut sorted: Vec<f64> = values.iter().map(|v| v * scale).collect();
            sorted.sort_by(f64::total_cmp);
            let n = sorted.len() as f64;
            // Rank interval of the estimate in the exact sample.
            let below = sorted.iter().filter(|&&v| v < estimate).count() as f64;
            let at_most = sorted.iter().filter(|&&v| v <= estimate).count() as f64;
            let target = q * n;
            let rank_error = if target < below {
                below - target
            } else if target > at_most {
                target - at_most
            } else {
                0.0
            };
            let bound = 0.15 * n + 3.0;
            prop_assert!(
                rank_error <= bound,
                "q={q}: estimate {estimate} has rank error {rank_error} > {bound} (n={n})"
            );
        }
    }

    /// Clopper–Pearson intervals must cover the point estimate and shrink
    /// as trials grow.
    #[test]
    fn clopper_pearson_is_a_valid_interval(successes in 0usize..40, extra in 0usize..40) {
        let successes = successes as u64;
        let trials = successes + extra as u64;
        let (lower, upper) = clopper_pearson(successes, trials, 0.05);
        prop_assert!((0.0..=1.0).contains(&lower));
        prop_assert!((0.0..=1.0).contains(&upper));
        prop_assert!(lower <= upper);
        if trials > 0 {
            let estimate = successes as f64 / trials as f64;
            prop_assert!(lower <= estimate + 1e-12 && estimate <= upper + 1e-12);
            let (lower10, upper10) = clopper_pearson(successes * 10, trials * 10, 0.05);
            prop_assert!(upper10 - lower10 <= (upper - lower) + 1e-9,
                "10x the evidence must not widen the interval");
        }
    }
}

/// Acceptance check: a 10^6-scenario campaign streams through the bounded
/// channel and O(workers) aggregation without materialising per-scenario
/// results. Two periods per scenario keep the runtime tractable; the point
/// is the scenario *count*.
#[test]
#[ignore = "long-running acceptance check (~minutes); run with -- --ignored"]
fn million_scenario_campaign_streams() {
    let sweep = RobustnessSweep::new(vec![0.0, 0.4], 500_000, 0.01);
    let stats = RobustnessCampaign::new(fleet(), 99)
        .with_chunk_size(512)
        .run(&sweep)
        .expect("million-scenario campaign");
    assert_eq!(stats.total, 1_000_000);
    assert_eq!(stats.families.len(), 2);
    assert_eq!(stats.families[0].scenarios, 500_000);
    assert_eq!(stats.families[1].scenarios, 500_000);
    assert!(stats.families[0].peak_norm.count() == 500_000);
}
