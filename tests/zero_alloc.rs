//! Proof that the kernel hot paths are allocation-free: a counting global
//! allocator observes zero new allocations across hundreds of thousands of
//! `StepKernel::step`s, norm reads, scaled disturbance injections and
//! `AllocationRuntime::step_into` calls — across the lane-batched
//! `BatchStepKernel` loop (packed injections, `step_lanes` with divergence
//! peel-off, per-lane norms and `reset_lane` reloads) — across the characterization
//! inner loop (`SwitchedKernel::dwell_steps` sweeps) after warm-up, both on
//! a kernel's own buffers and on the per-worker pooled
//! `CharacterizationWorkspace` scratch the fleet designer threads through
//! its characterisation passes — and across the branch-and-bound
//! slot-allocation search: every inner node evaluation (streaming
//! schedulability check plus demand and clique bounds) and the full
//! `OptimalAllocator::solve_in_place` run on buffers sized at construction.
//! The parallel portfolio gets the same proof in its single-worker
//! configuration (`threads = 1` spawns nothing and drains the frontier
//! inline, so the counted thread *is* the worker): frontier generation,
//! the count search with live shared-incumbent updates, and the
//! deterministic reconstruction pass are all allocation-free after the
//! warm-up solve.
//!
//! This file must stay a single-test binary: the allocation counter is
//! global to the process, and a concurrently running second test would
//! perturb it. The counter only observes the *test thread* (a const-init
//! thread-local flag armed at the start of the test): the libtest harness
//! main thread lazily allocates its channel-receive context whenever it
//! first blocks waiting for the test thread, and on a single-core host that
//! first block can land inside a measured window — a scheduling race that
//! intermittently produced 1–3 "stray" allocations before the counter was
//! scoped per thread.

use automotive_cps::control::{CharacterizationWorkspace, LaneStep, SwitchedKernel};
use automotive_cps::core::{case_study, AllocationRuntime, RuntimeApp};
use automotive_cps::core::{CoSimulation, DegradationConfig, RunMetrics};
use automotive_cps::flexray::{FaultModel, FlexRayConfig, GilbertElliott};
use automotive_cps::linalg::{
    expm_into, solve_dare_in_place, DareOptions, ExpmWorkspace, Matrix, RiccatiWorkspace,
};
use automotive_cps::sched::{
    AllocatorConfig, CancelToken, ModelKind, OptimalAllocator, PortfolioAllocator,
    PortfolioConfig, WaitTimeMethod,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Wraps the system allocator and counts every allocation/reallocation made
/// on threads that opted in via [`COUNTED_THREAD`] (the test thread only, so
/// harness/background threads cannot perturb the measured windows).
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Const-initialised (no lazy heap allocation on first access from any
    /// thread) opt-in flag for the allocation counter.
    static COUNTED_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTED_THREAD.with(std::cell::Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTED_THREAD.with(std::cell::Cell::get) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn kernel_and_runtime_hot_paths_do_not_allocate() {
    // Only this thread's allocations count; see the module docs.
    COUNTED_THREAD.with(|counted| counted.set(true));
    // Construction (design, matrices, buffers) may allocate freely.
    let apps = case_study::derived_fleet().expect("fleet design");
    let mut kernels: Vec<_> =
        apps.iter().map(|app| app.kernel().expect("kernel compiles")).collect();
    let disturbances: Vec<Vec<f64>> =
        apps.iter().map(|app| app.spec().disturbance.clone()).collect();
    let mut runtime = AllocationRuntime::new(
        apps.iter()
            .enumerate()
            .map(|(index, app)| RuntimeApp {
                name: app.name().to_string(),
                threshold: app.spec().threshold,
                slot: Some(index % 3),
                priority: app.spec().deadline,
            })
            .collect(),
        3,
    )
    .expect("runtime");
    let mut norms = vec![0.0; kernels.len()];
    let mut modes = Vec::with_capacity(kernels.len());
    // Warm both paths once so lazily grown capacity is in place.
    runtime.step_into(&norms, &mut modes).expect("warm-up step");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut checksum = 0.0;
    for round in 0..10_000 {
        if round % 128 == 0 {
            for (kernel, disturbance) in kernels.iter_mut().zip(&disturbances) {
                kernel.inject_disturbance_scaled(disturbance, 1.0).expect("inject");
            }
        }
        for (norm, kernel) in norms.iter_mut().zip(&kernels) {
            *norm = kernel.state_norm();
        }
        runtime.step_into(&norms, &mut modes).expect("runtime step");
        for (kernel, mode) in kernels.iter_mut().zip(&modes) {
            kernel.step(*mode);
        }
        checksum += norms[0];
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "the kernel/runtime hot path performed {} heap allocations over 10k periods",
        after - before
    );

    // Lane-batched kernel hot path: the warm batched loop a campaign worker
    // drives — per-lane scaled disturbance packing, `step_lanes` sweeps with
    // per-lane ops mixing every `LaneStep` variant (so both the uniform
    // lane-batched matmul and the divergence peel-off to the strided scalar
    // kernel run), per-lane norm aggregation, and `reset_lane` when a lane's
    // scenario finishes. Construction (packed state buffers) may allocate;
    // the loop must not. The const-generic dispatch of the scalar kernels
    // above is selected at construction, so this section cannot regress the
    // scalar proof either.
    const LANES: usize = 4;
    let mut batch_kernels: Vec<_> =
        apps.iter().map(|app| app.kernel_matrices().batch_kernel(LANES)).collect();
    let mut ops =
        [LaneStep::EventTriggered, LaneStep::TimeTriggered, LaneStep::Hold, LaneStep::Skip];
    // Warm-up: one divergent sweep and one uniform sweep per kernel.
    for kernel in &mut batch_kernels {
        kernel.step_lanes(&ops);
        kernel.step_uniform(LaneStep::EventTriggered);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut batch_checksum = 0.0;
    for round in 0..10_000usize {
        if round % 256 == 0 {
            for (kernel, disturbance) in batch_kernels.iter_mut().zip(&disturbances) {
                for lane in 0..LANES {
                    kernel
                        .inject_lane_disturbance_scaled(
                            lane,
                            disturbance,
                            1.0 + lane as f64 * 0.25,
                        )
                        .expect("lane inject");
                }
            }
        }
        // Three uniform periods for every divergent one, as a real campaign
        // with occasional mode switches/holds would see.
        if round % 4 == 3 {
            ops = [
                LaneStep::EventTriggered,
                LaneStep::TimeTriggered,
                LaneStep::Hold,
                LaneStep::Skip,
            ];
        } else {
            ops = [LaneStep::EventTriggered; LANES];
        }
        for kernel in &mut batch_kernels {
            kernel.step_lanes(&ops);
        }
        for lane in 0..LANES {
            batch_checksum += batch_kernels[0].lane_state_norm(lane);
        }
        if round % 2_500 == 2_499 {
            // A lane's scenario finished: park it at the origin for reload.
            for kernel in &mut batch_kernels {
                kernel.reset_lane(round / 2_500 % LANES);
            }
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(batch_checksum.is_finite());
    assert_eq!(
        after - before,
        0,
        "the lane-batched kernel hot path performed {} heap allocations over 10k \
         batched periods",
        after - before
    );

    // Characterization inner loop: dwell computations over the switched
    // kernel. Construction (closed loops, power-norm bounds, scratch) may
    // allocate; the per-wait dwell sweep afterwards must not.
    let servo = &apps[2];
    let a1 = servo.et_controller().closed_loop().clone();
    let a2 = servo.tt_controller().closed_loop().clone();
    let mut initial = servo.spec().disturbance.clone();
    initial.extend(std::iter::repeat(0.0).take(servo.spec().plant.inputs()));
    let threshold = servo.spec().threshold;
    let mut switched =
        SwitchedKernel::new(&a1, &a2, servo.spec().plant.order()).expect("switched kernel");
    // Warm-up pass.
    switched.dwell_steps(&initial, threshold, 0, 3_000).expect("warm-up dwell");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut dwell_sum = 0usize;
    for wait in 0..400 {
        dwell_sum += switched
            .dwell_steps(&initial, threshold, wait, 3_000)
            .expect("dwell computation");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(dwell_sum > 0, "the sweep must observe non-trivial dwell times");
    assert_eq!(
        after - before,
        0,
        "the characterization inner loop performed {} heap allocations over 400 dwell sweeps",
        after - before
    );

    // Pooled characterisation scratch: the designer's per-worker
    // `CharacterizationWorkspace`. A full warm-up characterisation fills the
    // dimension-keyed pools (and may allocate freely — curve
    // materialisation, eigenvalue pre-check); afterwards a pooled kernel on
    // the warm pool runs its entire dwell sweep with zero allocations, and
    // the pools grow no new entries for an application of known dimensions.
    let mut workspace = CharacterizationWorkspace::new();
    automotive_cps::core::characterize_application_with(servo, &mut workspace)
        .expect("warm-up characterisation");
    let state_entries = workspace.state_pool_size();
    let power_entries = workspace.power_pool_size();
    let (mut pooled, _norms) = workspace
        .switched_kernel(&a1, &a2, servo.spec().plant.order())
        .expect("pooled kernel on warm scratch");
    pooled.dwell_steps(&initial, threshold, 0, 3_000).expect("warm-up dwell");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut pooled_dwell_sum = 0usize;
    for wait in 0..400 {
        pooled_dwell_sum += pooled
            .dwell_steps(&initial, threshold, wait, 3_000)
            .expect("pooled dwell computation");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(pooled_dwell_sum, dwell_sum, "pooled sweep must be bit-identical");
    assert_eq!(
        after - before,
        0,
        "the pooled characterization scratch performed {} heap allocations over 400 \
         dwell sweeps",
        after - before
    );
    assert_eq!(workspace.state_pool_size(), state_entries, "warm pool must not grow");
    assert_eq!(workspace.power_pool_size(), power_entries, "warm pool must not grow");

    // Branch-and-bound slot allocation: construction (priority order,
    // demand table, slot pool, greedy incumbent seed) may allocate; the
    // search itself — every inner node's schedulability check and
    // demand-relaxation bound included — must not. Solved repeatedly to
    // amplify any per-node allocation, across both wait-time methods and
    // both safe dwell models. The fail-operational service arms every solve
    // with a cancellation token and a node budget, so the search runs with
    // both checkpoints live: each is an atomic load / counter compare and
    // must stay allocation-free too (token construction is outside the
    // measured window).
    let table = case_study::paper_table1();
    let token = CancelToken::new();
    for model in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
        for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
            let config = AllocatorConfig { model, method, ..AllocatorConfig::default() };
            let mut solver = OptimalAllocator::new(&table, &config).expect("solver builds");
            solver.set_cancel_token(Some(token.clone()));
            solver.set_node_budget(Some(u64::MAX));
            // Warm-up solve (also proves idempotence below).
            let warm = solver.solve_in_place().expect("paper fleet is schedulable");

            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let mut slots_checksum = 0usize;
            for _ in 0..200 {
                slots_checksum +=
                    solver.solve_in_place().expect("paper fleet is schedulable");
            }
            let after = ALLOCATIONS.load(Ordering::SeqCst);

            assert_eq!(slots_checksum, warm * 200, "solver must be deterministic");
            assert!(solver.nodes_explored() > 0);
            assert_eq!(
                after - before,
                0,
                "the branch-and-bound search performed {} heap allocations over 200 \
                 solves ({model:?}/{method:?})",
                after - before
            );
        }
    }

    // Portfolio search, single-worker configuration: `threads = 1` spawns
    // no worker threads — frontier generation, the count search (shared
    // atomic incumbent updates included) and the answer phase all run
    // inline on the counted thread, on buffers sized at construction
    // (greedy + restart seeding included). Two fleets cover both answer
    // phases: on the paper fleet the greedy seed *is* the optimum (the
    // seed-copy path), while on the trap fleet below the seed is strictly
    // suboptimal, so every solve runs the deterministic reconstruction
    // DFS too. Token and budget armed, as in the design service.
    let trap_fleet: Vec<_> = [
        ("A1", 0.8, 2.00),
        ("A2", 0.8, 2.01),
        ("A3", 1.1, 2.02),
        ("A4", 1.1, 2.03),
    ]
    .iter()
    .map(|&(name, xi_m, deadline)| {
        automotive_cps::sched::AppTimingParams::new(name, 200.0, deadline, 0.1, 10.0, xi_m, 0.05)
            .expect("trap fleet parameters are valid")
    })
    .collect();
    for (fleet, label) in [(&table, "paper"), (&trap_fleet, "trap")] {
        let config = AllocatorConfig { max_slots: fleet.len(), ..AllocatorConfig::default() };
        let mut solver =
            PortfolioAllocator::new(fleet, &config, &PortfolioConfig::with_threads(1))
                .expect("portfolio builds");
        solver.set_cancel_token(Some(token.clone()));
        solver.set_node_budget(Some(u64::MAX));
        let warm = solver.solve_in_place().expect("fleet is schedulable");

        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut slots_checksum = 0usize;
        for _ in 0..200 {
            slots_checksum += solver.solve_in_place().expect("fleet is schedulable");
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);

        assert_eq!(slots_checksum, warm * 200, "portfolio must be deterministic");
        assert!(solver.nodes_explored() > 0);
        assert_eq!(
            after - before,
            0,
            "the single-worker portfolio search performed {} heap allocations over \
             200 solves ({label} fleet)",
            after - before
        );
    }

    // Fleet-designer steady-state loop: the two solvers every controller
    // synthesis iterates — the DARE value iteration and the matrix
    // exponential — run entirely on `DesignWorkspace`-pooled buffers
    // (`RiccatiWorkspace` / `ExpmWorkspace`). Workspace construction and the
    // warm-up solve may allocate; the repeated in-place solves afterwards
    // must not: the designer allocates only at workspace construction and
    // when materialising the designed artifacts.
    let a_aug = Matrix::from_rows(&[
        &[1.0, 0.02, 0.0002],
        &[0.0, 1.0, 0.02],
        &[0.0, 0.0, 0.0],
    ])
    .expect("static");
    let b_aug = Matrix::column(&[0.0, 0.0, 1.0]).expect("static");
    let q = Matrix::identity(3);
    let r = Matrix::from_rows(&[&[0.1]]).expect("static");
    let options = DareOptions::default();
    let mut riccati = RiccatiWorkspace::new(3, 1);
    let mut exponential = ExpmWorkspace::new(3);
    let mut phi = Matrix::zeros(3, 3);
    // Warm-up: first solves populate the pooled buffers.
    solve_dare_in_place(&a_aug, &b_aug, &q, &r, options, &mut riccati).expect("dare warm-up");
    expm_into(&a_aug, &mut exponential, &mut phi).expect("expm warm-up");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut design_checksum = 0.0;
    for _ in 0..25 {
        solve_dare_in_place(&a_aug, &b_aug, &q, &r, options, &mut riccati)
            .expect("dare solves on warm workspace");
        expm_into(&a_aug, &mut exponential, &mut phi).expect("expm on warm workspace");
        design_checksum += riccati.solution().max_abs() + phi.max_abs();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(design_checksum.is_finite() && design_checksum > 0.0);
    assert_eq!(
        after - before,
        0,
        "the design steady-state loop performed {} heap allocations over 25 \
         DARE + expm solves",
        after - before
    );

    // Fault-injection / degradation hot path: the streaming campaign
    // engine's per-scenario loop — reset, (re)install fault + degradation
    // models, inject, `run_metrics_into` — on a warm engine/metrics pair.
    // Every per-period fault draw (drop, burst transition, corruption,
    // dynamic contention), every hold-last-command kernel step and the
    // online settling/peak/TT tracking must run on buffers sized during
    // warm-up. Construction and the warm-up scenario may allocate freely.
    let campaign_apps = case_study::derived_fleet().expect("fleet design");
    let campaign_allocation =
        automotive_cps::sched::allocate_slots(&table_for(&campaign_apps), &AllocatorConfig::default())
            .expect("slot allocation");
    let mut engine =
        CoSimulation::new(campaign_apps, &campaign_allocation, FlexRayConfig::paper_case_study())
            .expect("co-simulation engine");
    let fault = FaultModel::drops(0xFEED, 0.3)
        .with_burst(GilbertElliott {
            degrade_probability: 0.2,
            recover_probability: 0.5,
            bad_drop_probability: 0.9,
        })
        .with_corruption(0.05)
        .with_dynamic_contention(8);
    let degradation = DegradationConfig::noise(7, 0.02).with_storm(0.5, 0.4);
    let mut metrics = RunMetrics::default();
    // Warm-up scenario: grows the engine's scratch, the bus queues and the
    // metrics buffers to their steady-state sizes.
    engine.reset().expect("warm-up reset");
    engine.set_fault_model(Some(fault)).expect("warm-up fault model");
    engine.set_degradation(Some(degradation)).expect("warm-up degradation");
    engine.set_threshold_scale(1.0).expect("warm-up threshold");
    engine.inject_disturbances_scaled(1.0).expect("warm-up inject");
    engine.run_metrics_into(1.0, &mut metrics).expect("warm-up scenario");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut campaign_checksum = 0.0;
    for _ in 0..5 {
        engine.reset().expect("scenario reset");
        engine.set_fault_model(Some(fault)).expect("fault model");
        engine.set_degradation(Some(degradation)).expect("degradation");
        engine.set_threshold_scale(1.0).expect("threshold scale");
        engine.inject_disturbances_scaled(1.0).expect("inject");
        engine.run_metrics_into(1.0, &mut metrics).expect("faulty scenario");
        campaign_checksum += metrics.max_peak_norm() + metrics.tt_share();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(campaign_checksum.is_finite() && campaign_checksum > 0.0);
    assert!(
        metrics.bus.lost_frames() > 0,
        "the measured scenarios must actually lose frames (drop p = 0.3)"
    );
    assert!(
        metrics.held_periods.iter().any(|&held| held > 0),
        "lost actuation frames must trigger hold-last-command periods"
    );
    assert_eq!(
        after - before,
        0,
        "the fault-injection/hold hot path performed {} heap allocations over 5 \
         warm faulty scenarios",
        after - before
    );
}

/// Characterisation table for the derived fleet (construction-time helper —
/// allocates freely, used outside the measured windows).
fn table_for(
    apps: &[automotive_cps::core::ControlApplication],
) -> Vec<automotive_cps::sched::AppTimingParams> {
    case_study::derive_table(apps).expect("timing table")
}
