//! Oracle suite for the exact branch-and-bound slot allocator.
//!
//! The solver claims a *true minimum*; this suite pins that claim against an
//! independent cross-crate oracle: exhaustive enumeration of **every** set
//! partition of the fleet (restricted-growth canonical form), with each
//! candidate partition judged by the public `SlotAllocation::verify` — the
//! same cross-checked analysis the rest of the workspace trusts. The
//! branch-and-bound result must match the enumerated minimum on every fleet,
//! under every dwell model × wait-time method combination.
//!
//! The suite also commits the fixture behind the headline design claim: a
//! fleet on which *all twelve* greedy heuristics of
//! `AllocatorConfig::sweep_matrix` are strictly suboptimal, and only the
//! exact search finds the 2-slot packing.
//!
//! Since the portfolio scale-out, the suite also gates the parallel solver:
//! for every oracle case — the original small-fleet grid *and* new 8–10
//! application fleets — the portfolio must return the **bit-identical**
//! `SlotAllocation` (same slot count *and* same deterministically
//! tie-broken assignment) for every worker count 1..=8, and a property
//! test pins the conflict-clique lower bound below the true optimum.
//!
//! `ci.sh` fails if this file stops being collected — the optimality story
//! rests on it.

use automotive_cps::sched::{
    allocate_slots, allocate_slots_optimal, allocate_slots_portfolio, AllocatorConfig,
    AppTimingParams, ModelKind, OptimalAllocator, PortfolioConfig, SlotAllocation, SlotTiming,
    WaitTimeMethod,
};
use proptest::prelude::*;

/// The four model × method combinations the allocator supports (the unsafe
/// simple monotonic model is excluded, as in `sweep_matrix`).
fn analysis_configs(max_slots: usize) -> Vec<AllocatorConfig> {
    let mut configs = Vec::new();
    for model in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
        for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
            configs.push(AllocatorConfig { model, method, max_slots, ..AllocatorConfig::default() });
        }
    }
    configs
}

/// Exhaustive oracle: the minimum slot count over *all* feasible set
/// partitions of the fleet (at most `max_slots` parts), judged by
/// `SlotAllocation::verify`. `None` if no partition is feasible.
fn oracle_minimum(apps: &[AppTimingParams], config: &AllocatorConfig) -> Option<usize> {
    let mut assignment = vec![0usize; apps.len()];
    let mut best: Option<usize> = None;
    enumerate_partitions(apps, config, &mut assignment, 0, 0, &mut best);
    best
}

/// Recursive restricted-growth enumeration: application `depth` joins one of
/// the `groups` existing groups or opens group `groups` (canonical form, so
/// every partition appears exactly once).
fn enumerate_partitions(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
    assignment: &mut [usize],
    depth: usize,
    groups: usize,
    best: &mut Option<usize>,
) {
    if depth == apps.len() {
        if groups > config.max_slots {
            return;
        }
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); groups];
        for (app, &group) in assignment.iter().enumerate() {
            slots[group].push(app);
        }
        let candidate =
            SlotAllocation { slots, model: config.model, method: config.method };
        if candidate.verify_with(apps, config.slot_timing).expect("analysis runs")
            && best.map_or(true, |b| groups < b)
        {
            *best = Some(groups);
        }
        return;
    }
    for group in 0..=groups.min(config.max_slots.saturating_sub(1)) {
        assignment[depth] = group;
        let next_groups = groups.max(group + 1);
        enumerate_partitions(apps, config, assignment, depth + 1, next_groups, best);
    }
}

/// Deterministic LCG over plausible Table-I parameter ranges (mirrors the
/// bench crate's generator, with wider deadline spread so some fleets are
/// hard to pack and some are infeasible under the conservative model).
fn random_fleet(n: usize, seed: u64) -> Vec<AppTimingParams> {
    let mut state = seed.max(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..n)
        .map(|i| {
            let xi_tt = 0.2 + next() * 1.5;
            let xi_et = xi_tt * (2.0 + next() * 4.0);
            let xi_m = xi_tt * (1.0 + next() * 1.2);
            let k_p = xi_et * (0.05 + next() * 0.4);
            let deadline = xi_m + k_p + 0.2 + next() * 3.0;
            let inter_arrival = deadline + 2.0 + next() * 100.0;
            AppTimingParams::new(format!("R{i}"), inter_arrival, deadline, xi_tt, xi_et, xi_m, k_p)
                .expect("generated parameters satisfy the invariants")
        })
        .collect()
}

/// The committed fixture on which every greedy heuristic is strictly
/// suboptimal: four applications with near-equal deadlines whose dwell
/// peaks act like bin-packing item sizes 0.8, 0.8, 1.1, 1.1 against a
/// response budget of ~2 s. Priority order is the listing order, so every
/// greedy strategy pairs the two 0.8s first ({A1,A2} leaves no room for a
/// 1.1) and ends with 3 slots; the exact search pairs 0.8 with 1.1 twice.
fn greedy_trap_fleet() -> Vec<AppTimingParams> {
    let mk = |name: &str, xi_m: f64, deadline: f64| {
        AppTimingParams::new(name, 200.0, deadline, 0.1, 10.0, xi_m, 0.05)
            .expect("fixture parameters are valid")
    };
    vec![
        mk("A1", 0.8, 2.00),
        mk("A2", 0.8, 2.01),
        mk("A3", 1.1, 2.02),
        mk("A4", 1.1, 2.03),
    ]
}

#[test]
fn branch_and_bound_matches_exhaustive_enumeration_on_random_fleets() {
    let mut checked = 0usize;
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for n in 2..=5 {
        for seed in 0..12 {
            let apps = random_fleet(n, seed * 1000 + n as u64);
            // An uncapped pass (dedicated slots always possible) and a
            // single-slot pass (often infeasible) so both verdicts are
            // exercised against the oracle.
            for config in
                analysis_configs(n).into_iter().chain(analysis_configs(1))
            {
                let oracle = oracle_minimum(&apps, &config);
                let solver = allocate_slots_optimal(&apps, &config);
                match (oracle, solver) {
                    (Some(minimum), Ok(allocation)) => {
                        assert_eq!(
                            allocation.slot_count(),
                            minimum,
                            "n={n} seed={seed} {:?}/{:?}: solver found {} slots, \
                             exhaustive minimum is {minimum}",
                            config.model,
                            config.method,
                            allocation.slot_count()
                        );
                        assert!(
                            allocation.verify(&apps).expect("analysis runs"),
                            "n={n} seed={seed}: solver returned an infeasible map"
                        );
                        feasible += 1;
                    }
                    (None, Err(_)) => infeasible += 1,
                    (oracle, solver) => panic!(
                        "n={n} seed={seed} {:?}/{:?}: oracle and solver disagree on \
                         feasibility: {oracle:?} vs {solver:?}",
                        config.model, config.method
                    ),
                }
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 4 * 12 * 8);
    // The sweep must exercise both verdicts to mean anything.
    assert!(feasible > 50, "only {feasible} feasible cases — generator too harsh");
    assert!(infeasible > 0, "no infeasible cases — generator too lenient");
}

#[test]
fn branch_and_bound_matches_exhaustive_enumeration_on_the_paper_fleet() {
    // Six applications is past the issue's ≤5 floor but still only 203
    // partitions — cheap, and it pins the headline numbers to the oracle:
    // the greedy 3-slot (non-monotonic) and 5-slot (conservative) designs
    // are not just heuristic outcomes, they are provably optimal.
    let apps = automotive_cps::core::case_study::paper_table1();
    for config in analysis_configs(apps.len()) {
        let oracle = oracle_minimum(&apps, &config).expect("paper fleet is schedulable");
        let allocation = allocate_slots_optimal(&apps, &config).expect("paper fleet solves");
        assert_eq!(allocation.slot_count(), oracle);
        match config.model {
            ModelKind::NonMonotonic => assert_eq!(oracle, 3),
            ModelKind::ConservativeMonotonic => assert_eq!(oracle, 5),
            ModelKind::SimpleMonotonic => unreachable!("not part of the analysis configs"),
        }
    }
}

#[test]
fn committed_fixture_beats_every_greedy_heuristic_strictly() {
    let apps = greedy_trap_fleet();
    let base = AllocatorConfig { max_slots: apps.len(), ..AllocatorConfig::default() };

    // Every greedy heuristic in the sweep matrix (3 strategies × 2 safe
    // models × 2 wait-time methods) produces a feasible but strictly
    // suboptimal allocation.
    let sweep = base.sweep_matrix();
    assert_eq!(sweep.len(), 12);
    for config in &sweep {
        let greedy = allocate_slots(&apps, config).expect("greedy succeeds on the fixture");
        assert!(greedy.verify(&apps).expect("analysis runs"));
        assert_eq!(
            greedy.slot_count(),
            3,
            "{}/{:?}/{:?} was expected to need 3 slots",
            config.strategy,
            config.model,
            config.method
        );
    }

    // The exact search needs only 2 — and the oracle agrees that 2 is the
    // true minimum under every model × method combination.
    for config in analysis_configs(apps.len()) {
        let optimal = allocate_slots_optimal(&apps, &config).expect("fixture solves");
        assert_eq!(optimal.slot_count(), 2);
        assert!(optimal.verify(&apps).expect("analysis runs"));
        assert_eq!(oracle_minimum(&apps, &config), Some(2));
        // The winning packing pairs a small peak with a large one.
        for slot in &optimal.slots {
            assert_eq!(slot.len(), 2);
            let peaks: Vec<f64> = slot.iter().map(|&i| apps[i].xi_m).collect();
            assert!(peaks.contains(&0.8) && peaks.contains(&1.1));
        }
    }
}

#[test]
fn branch_and_bound_matches_exhaustive_enumeration_under_slot_timing() {
    // The Ψ axis of the bus design space: the per-slot transmission
    // overhead stretches every blocking/interference occupancy and the
    // solver's demand bound. The solver must still find the exhaustive
    // minimum — judged by `verify_with` under the *same* geometry — for
    // every overhead in the case matrix (0.2/0.8 s are exaggerated relative
    // to physical slot-length deltas so verdicts actually flip).
    let overheads = [SlotTiming::new(0.2).unwrap(), SlotTiming::new(0.8).unwrap()];
    let mut checked = 0usize;
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    let mut shrunk_by_timing = 0usize;
    for n in 2..=4 {
        for seed in 0..6 {
            let apps = random_fleet(n, seed * 3000 + n as u64);
            for base in analysis_configs(n) {
                let baseline = oracle_minimum(&apps, &base);
                for timing in overheads {
                    let config = AllocatorConfig { slot_timing: timing, ..base };
                    let oracle = oracle_minimum(&apps, &config);
                    let solver = allocate_slots_optimal(&apps, &config);
                    match (oracle, solver) {
                        (Some(minimum), Ok(allocation)) => {
                            assert_eq!(
                                allocation.slot_count(),
                                minimum,
                                "n={n} seed={seed} {:?}/{:?} overhead={}: solver found {} \
                                 slots, exhaustive minimum is {minimum}",
                                config.model,
                                config.method,
                                timing.overhead(),
                                allocation.slot_count()
                            );
                            assert!(allocation
                                .verify_with(&apps, timing)
                                .expect("analysis runs"));
                            feasible += 1;
                        }
                        (None, Err(_)) => infeasible += 1,
                        (oracle, solver) => panic!(
                            "n={n} seed={seed} {:?}/{:?} overhead={}: oracle and solver \
                             disagree on feasibility: {oracle:?} vs {solver:?}",
                            config.model,
                            config.method,
                            timing.overhead()
                        ),
                    }
                    // Stretching the geometry can only cost slots, never
                    // save them (occupancies grow monotonically in ΔΨ).
                    if let (Some(baseline), Some(stretched)) = (baseline, oracle) {
                        assert!(stretched >= baseline);
                        if stretched > baseline {
                            shrunk_by_timing += 1;
                        }
                    }
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, 3 * 6 * 4 * 2);
    assert!(feasible > 30, "only {feasible} feasible cases — generator too harsh");
    assert!(infeasible > 0 || shrunk_by_timing > 0, "the overhead axis never exercised");

    // The paper fleet under a stretched geometry: the optimum moves from 3
    // slots to the exhaustive minimum of the stretched analysis.
    let apps = automotive_cps::core::case_study::paper_table1();
    let config = AllocatorConfig {
        slot_timing: SlotTiming::new(0.8).unwrap(),
        ..AllocatorConfig::default()
    };
    let oracle = oracle_minimum(&apps, &config).expect("paper fleet stays schedulable");
    let allocation = allocate_slots_optimal(&apps, &config).expect("solver succeeds");
    assert_eq!(allocation.slot_count(), oracle);
    assert!(oracle > 3, "0.8 s of per-slot overhead must cost the paper fleet slots");
}

/// Asserts the portfolio's central invariant on one case: for every worker
/// count 1..=8 the parallel solver returns exactly the sequential outcome —
/// the bit-identical `SlotAllocation` when feasible, the same error when
/// not.
fn assert_portfolio_bit_identical(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
    context: &str,
) {
    let sequential = allocate_slots_optimal(apps, config);
    for threads in 1..=8usize {
        let portfolio =
            allocate_slots_portfolio(apps, config, &PortfolioConfig::with_threads(threads));
        assert_eq!(
            portfolio, sequential,
            "{context} threads={threads}: portfolio diverged from the sequential solver"
        );
    }
}

#[test]
fn portfolio_is_bit_identical_to_sequential_on_the_oracle_grid() {
    // The full grid behind `branch_and_bound_matches_exhaustive_enumeration_
    // on_random_fleets` — every fleet × config case the oracle certifies,
    // re-run through every worker count. Feasible and infeasible cases
    // alike must agree exactly.
    for n in 2..=5 {
        for seed in 0..12 {
            let apps = random_fleet(n, seed * 1000 + n as u64);
            for config in analysis_configs(n).into_iter().chain(analysis_configs(1)) {
                assert_portfolio_bit_identical(
                    &apps,
                    &config,
                    &format!("n={n} seed={seed} {:?}/{:?}", config.model, config.method),
                );
            }
        }
    }
}

#[test]
fn branch_and_bound_matches_exhaustive_enumeration_on_mid_size_fleets() {
    // 8–10 applications: large enough that the frontier actually splits
    // across workers (the small-fleet grid often fits a single subtree),
    // still small enough for the exhaustive oracle (Bell(10) = 115 975
    // partitions). Each case is judged by the oracle *and* re-run through
    // every worker count.
    let full = analysis_configs(0).len(); // 4 model × method combinations
    assert_eq!(full, 4);
    let cases: Vec<(usize, u64, Vec<usize>)> = vec![
        (8, 81, (0..4).collect()),
        (8, 82, (0..4).collect()),
        (8, 83, (0..4).collect()),
        (9, 91, vec![0, 3]),
        (9, 92, vec![0, 3]),
        (10, 101, vec![0, 3]),
    ];
    let mut feasible = 0usize;
    for (n, seed, config_indices) in cases {
        let apps = random_fleet(n, seed);
        let configs = analysis_configs(n);
        for index in config_indices {
            let config = configs[index];
            let context = format!("n={n} seed={seed} {:?}/{:?}", config.model, config.method);
            let oracle = oracle_minimum(&apps, &config);
            match (oracle, allocate_slots_optimal(&apps, &config)) {
                (Some(minimum), Ok(allocation)) => {
                    assert_eq!(
                        allocation.slot_count(),
                        minimum,
                        "{context}: solver found {} slots, exhaustive minimum is {minimum}",
                        allocation.slot_count()
                    );
                    assert!(allocation.verify(&apps).expect("analysis runs"), "{context}");
                    feasible += 1;
                }
                (None, Err(_)) => {}
                (oracle, solver) => panic!(
                    "{context}: oracle and solver disagree on feasibility: \
                     {oracle:?} vs {solver:?}"
                ),
            }
            assert_portfolio_bit_identical(&apps, &config, &context);
        }
    }
    assert!(feasible >= 8, "only {feasible} feasible mid-size cases — seeds too harsh");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The conflict-clique relaxation is a *valid* lower bound: on any
    /// fleet the solver can decide, the clique size never exceeds the true
    /// optimal slot count (if it did, pruning could cut the optimum and
    /// the portfolio's first-leaf determinism argument would collapse).
    #[test]
    fn clique_lower_bound_never_exceeds_the_true_optimum(
        n in 2usize..8,
        seed in 0i64..1_000_000,
        config_index in 0usize..4,
    ) {
        let apps = random_fleet(n, seed as u64);
        let config = analysis_configs(n)[config_index];
        let mut solver = OptimalAllocator::new(&apps, &config).expect("solver builds");
        let clique = solver.clique_lower_bound();
        if let Some(optimum) = solver.solve_in_place() {
            prop_assert!(
                clique <= optimum,
                "clique bound {clique} exceeds the optimum {optimum} \
                 (n={n} seed={seed} {:?}/{:?})",
                config.model,
                config.method
            );
        }
    }
}

#[test]
fn greedy_bound_is_always_met_or_beaten() {
    // The solver's contract on every fleet the greedy allocator can handle:
    // its incumbent seed is the best greedy result, and the exact answer
    // never exceeds it (strictly beats it on the committed fixture above).
    for n in 2..=5 {
        for seed in 100..106 {
            let apps = random_fleet(n, seed * 7919 + n as u64);
            for config in analysis_configs(n) {
                let mut solver = OptimalAllocator::new(&apps, &config).expect("solver builds");
                let greedy = solver.greedy_bound();
                let solved = solver.solve_in_place();
                if let (Some(greedy), Some(optimal)) = (greedy, solved) {
                    assert!(
                        optimal <= greedy,
                        "n={n} seed={seed}: optimal {optimal} exceeds greedy bound {greedy}"
                    );
                }
                // A greedy solution implies the exact search finds one too.
                if greedy.is_some() {
                    assert!(solved.is_some());
                }
            }
        }
    }
}
