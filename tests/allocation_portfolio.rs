//! Regression suite for the parallel portfolio branch-and-bound allocator.
//!
//! The committed fixture is an 18-application fleet (deterministic LCG, seed
//! recorded below) on which the greedy seed is strictly suboptimal, so the
//! exact search has real work to do. The suite pins:
//!
//! * the **sequential node count** — the recorded cost of proving the
//!   optimum with the demand + clique bounds of this revision; a silent
//!   regression of the pruning shows up as a changed constant, not as a
//!   slow test;
//! * the **portfolio node budget** — the parallel solver must reach and
//!   certify the same optimum within a fixed budget for every worker
//!   count, which bounds the parallel search overhead (stale incumbents
//!   can cost extra nodes, but never more than the committed headroom);
//! * **bit-identity** — every worker count and every repeat returns the
//!   same `SlotAllocation` as the sequential solver, the portfolio's
//!   central determinism invariant;
//! * the degradation ladder — a cancelled or budget-cut parallel search
//!   still answers with the greedy incumbent and refuses to certify.
//!
//! `ci.sh` fails if this file stops being collected.

use automotive_cps::sched::{
    AllocatorConfig, AppTimingParams, CancelToken, OptimalAllocator, PortfolioAllocator,
    PortfolioConfig,
};

/// Fleet size of the committed fixture (the floor is 16 applications).
const FIXTURE_APPS: usize = 18;
/// LCG seed of the committed fixture, picked by the exploration probe
/// below: the greedy seed needs 5 slots, the true optimum is 4, and the
/// proof costs a non-trivial (but fast) node count.
const FIXTURE_SEED: u64 = 9005;
/// Optimal slot count of the fixture under the default configuration.
const FIXTURE_OPTIMUM: usize = 4;
/// Best greedy slot count (the incumbent seed the search must beat).
const FIXTURE_GREEDY: usize = 5;
/// Nodes the sequential solver explores to prove the fixture's optimum.
const FIXTURE_SEQUENTIAL_NODES: u64 = 9616;
/// Node budget under which every portfolio worker count must certify the
/// fixture's optimum. The probe observed 9730–9784 aggregate nodes across
/// worker counts 1–8 (stale shared incumbents and frontier replays cost a
/// few extra nodes over the sequential 9616); the committed budget fixes
/// ~1.7× headroom.
const FIXTURE_NODE_BUDGET: u64 = 16_384;

/// The committed fixture: a deterministic LCG fleet over plausible Table-I
/// ranges (same generator family as the oracle suite, wider spread so the
/// greedy strategies misplace applications).
fn fixture_fleet() -> Vec<AppTimingParams> {
    lcg_fleet(FIXTURE_APPS, FIXTURE_SEED)
}

fn fixture_config() -> AllocatorConfig {
    AllocatorConfig { max_slots: FIXTURE_APPS, ..AllocatorConfig::default() }
}

fn lcg_fleet(n: usize, seed: u64) -> Vec<AppTimingParams> {
    let mut state = seed.max(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..n)
        .map(|i| {
            let xi_tt = 0.2 + next() * 1.5;
            let xi_et = xi_tt * (2.0 + next() * 4.0);
            let xi_m = xi_tt * (1.0 + next() * 1.2);
            let k_p = xi_et * (0.05 + next() * 0.4);
            let deadline = xi_m + k_p + 0.2 + next() * 3.0;
            let inter_arrival = deadline + 2.0 + next() * 100.0;
            AppTimingParams::new(format!("R{i}"), inter_arrival, deadline, xi_tt, xi_et, xi_m, k_p)
                .expect("generated parameters satisfy the invariants")
        })
        .collect()
}

/// One-off exploration probe used to pick the committed fixture and record
/// its constants; kept for reproducibility (`cargo test -- --ignored`).
#[test]
#[ignore = "fixture exploration probe, not part of the suite"]
fn probe_candidate_fixtures() {
    for n in [16usize, 18] {
        for seed in 9000u64..9010 {
            let apps = lcg_fleet(n, seed);
            let config = AllocatorConfig { max_slots: n, ..AllocatorConfig::default() };
            let mut solver = OptimalAllocator::new(&apps, &config).expect("solver builds");
            let greedy = solver.greedy_bound();
            let clique = solver.clique_lower_bound();
            let started = std::time::Instant::now();
            let optimum = solver.solve_in_place();
            println!(
                "n={n} seed={seed}: greedy={greedy:?} clique={clique} optimum={optimum:?} \
                 seq_nodes={} in {:?}",
                solver.nodes_explored(),
                started.elapsed()
            );
            if optimum.is_none() {
                continue;
            }
            let mut reference =
                PortfolioAllocator::new(&apps, &config, &PortfolioConfig::with_threads(1))
                    .expect("portfolio builds");
            let result = reference.solve_in_place();
            assert_eq!(result, optimum);
            println!("  portfolio(1): nodes={}", reference.nodes_explored());
            for threads in [2usize, 4, 8] {
                let mut low = u64::MAX;
                let mut high = 0u64;
                for _ in 0..5 {
                    let mut portfolio = PortfolioAllocator::new(
                        &apps,
                        &config,
                        &PortfolioConfig::with_threads(threads),
                    )
                    .expect("portfolio builds");
                    assert_eq!(portfolio.solve_in_place(), optimum);
                    low = low.min(portfolio.nodes_explored());
                    high = high.max(portfolio.nodes_explored());
                }
                println!("  portfolio({threads}): nodes {low}..{high}");
            }
        }
    }
}

#[test]
fn committed_fixture_defeats_the_greedy_seed() {
    let apps = fixture_fleet();
    let config = fixture_config();
    let mut solver = OptimalAllocator::new(&apps, &config).expect("solver builds");
    assert_eq!(solver.greedy_bound(), Some(FIXTURE_GREEDY));
    let optimum = solver.solve_in_place().expect("fixture is feasible");
    assert_eq!(optimum, FIXTURE_OPTIMUM);
    // The fixture must make the exact search do real work: a greedy-tied
    // optimum would certify straight from the seed.
    assert!(optimum < FIXTURE_GREEDY);
    let allocation = solver.best_allocation().expect("optimum recorded");
    assert!(allocation.verify(&apps).expect("analysis runs"));
}

#[test]
fn sequential_node_count_is_recorded_and_stable() {
    let apps = fixture_fleet();
    let mut solver = OptimalAllocator::new(&apps, &fixture_config()).expect("solver builds");
    assert_eq!(solver.solve_in_place(), Some(FIXTURE_OPTIMUM));
    assert_eq!(
        solver.nodes_explored(),
        FIXTURE_SEQUENTIAL_NODES,
        "sequential node count moved — the pruning (or the search order) changed; \
         re-record the constant deliberately if the change is intended"
    );
}

#[test]
fn portfolio_certifies_the_fixture_within_the_committed_budget() {
    let apps = fixture_fleet();
    let config = fixture_config();
    let reference =
        automotive_cps::sched::allocate_slots_optimal(&apps, &config).expect("fixture solves");
    for threads in [1usize, 2, 4, 8] {
        let mut solver =
            PortfolioAllocator::new(&apps, &config, &PortfolioConfig::with_threads(threads))
                .expect("portfolio builds");
        solver.set_node_budget(Some(FIXTURE_NODE_BUDGET));
        let allocation = solver.solve().expect("budget suffices");
        assert!(
            solver.certified_optimal(),
            "threads={threads}: portfolio exhausted the committed budget \
             ({} nodes explored of {FIXTURE_NODE_BUDGET})",
            solver.nodes_explored()
        );
        assert_eq!(allocation.slot_count(), FIXTURE_OPTIMUM);
        // Bit-identity against the sequential answer, not just the count.
        assert_eq!(allocation, reference, "threads={threads}");
    }
}

#[test]
fn portfolio_is_bit_identical_across_repeats_and_worker_counts() {
    let apps = fixture_fleet();
    let config = fixture_config();
    let reference =
        automotive_cps::sched::allocate_slots_optimal(&apps, &config).expect("fixture solves");
    for repeat in 0..3 {
        for threads in [1usize, 2, 4, 8] {
            let allocation = automotive_cps::sched::allocate_slots_portfolio(
                &apps,
                &config,
                &PortfolioConfig::with_threads(threads),
            )
            .expect("fixture solves");
            assert_eq!(allocation, reference, "repeat={repeat} threads={threads}");
        }
    }
}

#[test]
fn cancelling_a_parallel_search_mid_flight_keeps_a_valid_incumbent() {
    let apps = fixture_fleet();
    let config = fixture_config();
    let reference =
        automotive_cps::sched::allocate_slots_optimal(&apps, &config).expect("fixture solves");
    // Fire the token from another thread while the 4-worker search runs.
    // The outcome is timing-dependent by construction — either the search
    // finished (certified, bit-identical) or it degraded — but every
    // branch's answer must be a *valid* allocation no worse than the
    // greedy seed.
    let token = CancelToken::new();
    let mut solver =
        PortfolioAllocator::new(&apps, &config, &PortfolioConfig::with_threads(4))
            .expect("portfolio builds");
    solver.set_cancel_token(Some(token.clone()));
    let canceller = std::thread::spawn({
        let token = token.clone();
        move || {
            std::thread::sleep(std::time::Duration::from_micros(200));
            token.cancel();
        }
    });
    let outcome = solver.solve();
    canceller.join().expect("canceller joins");
    let allocation = outcome.expect("the greedy incumbent always exists on the fixture");
    assert!(allocation.verify(&apps).expect("analysis runs"));
    assert!(allocation.slot_count() <= FIXTURE_GREEDY);
    if solver.certified_optimal() {
        assert_eq!(allocation, reference);
    } else {
        assert!(allocation.slot_count() >= FIXTURE_OPTIMUM);
    }
}

#[test]
fn exhausted_budgets_degrade_to_the_uncertified_incumbent() {
    let apps = fixture_fleet();
    let config = fixture_config();
    for threads in [1usize, 4] {
        let mut solver =
            PortfolioAllocator::new(&apps, &config, &PortfolioConfig::with_threads(threads))
                .expect("portfolio builds");
        solver.set_node_budget(Some(1));
        let degraded = solver.solve().expect("incumbent survives the cut");
        assert!(!solver.certified_optimal(), "threads={threads}");
        assert_eq!(degraded.slot_count(), solver.incumbent_bound().expect("seed exists"));
        assert!(degraded.verify(&apps).expect("analysis runs"));
    }
}
