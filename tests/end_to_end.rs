//! Cross-crate integration tests: the complete co-design flow from plant
//! models to TT-slot dimensioning and co-simulation.

use automotive_cps::core::{case_study, experiments};
use automotive_cps::flexray::{FlexRayBus, FlexRayConfig, Frame};
use automotive_cps::sched::{
    analyze_slot, DwellTimeModel, ModelKind, NonMonotonicModel, WaitTimeMethod,
};

#[test]
fn headline_result_3_vs_5_slots() {
    let apps = case_study::paper_table1();
    let outcome = case_study::run_slot_allocation(&apps).expect("allocation succeeds");
    assert_eq!(outcome.non_monotonic_slots, 3);
    assert_eq!(outcome.monotonic_slots, 5);
    assert!((outcome.overhead_fraction - 2.0 / 3.0).abs() < 0.01);
    // The paper's slot contents: S1 = {C3, C6}, S2 = {C2, C4}, S3 = {C5, C1}.
    assert_eq!(outcome.non_monotonic.slots[0], vec![2, 5]);
    assert_eq!(outcome.non_monotonic.slots[1], vec![1, 3]);
    assert_eq!(outcome.non_monotonic.slots[2], vec![4, 0]);
}

#[test]
fn paper_intermediate_numbers_are_reproduced() {
    let apps = case_study::paper_table1();
    // Section V quotes k_wait,6 = 0.669 s -> xi_hat_6 = 1.589 s and
    // k_wait,3 = 0.92 s -> xi_hat_3 = 1.515 s on slot S1 = {C3, C6}.
    let analysis = analyze_slot(
        &apps,
        &[2, 5],
        ModelKind::NonMonotonic,
        WaitTimeMethod::ClosedFormBound,
    )
    .expect("analysis succeeds");
    let c3 = &analysis.analyses[0];
    let c6 = &analysis.analyses[1];
    assert!((c3.max_wait_time - 0.92).abs() < 1e-6);
    assert!((c3.worst_case_response_time - 1.515).abs() < 0.005);
    assert!((c6.max_wait_time - 0.669).abs() < 0.001);
    assert!((c6.worst_case_response_time - 1.589).abs() < 0.005);
    assert!(analysis.is_schedulable());
}

#[test]
fn figure3_shape_holds_end_to_end() {
    let curve = experiments::figure3_dwell_wait_curve().expect("characterisation succeeds");
    assert!(curve.is_non_monotonic());
    assert!(curve.max_dwell() > 1.1 * curve.xi_tt);
    assert!(curve.peak_wait() > 0.0);
    assert!(curve.xi_et > 2.0 * curve.xi_tt);
}

#[test]
fn figure4_model_orderings_hold_end_to_end() {
    let data = experiments::figure4_models().expect("model fit succeeds");
    assert!(experiments::figure4_orderings_hold(&data));
}

#[test]
fn derived_pipeline_saves_resources_or_matches() {
    let fleet = case_study::derived_fleet().expect("fleet design succeeds");
    let table = case_study::derive_table(&fleet).expect("table derivation succeeds");
    let outcome = case_study::run_slot_allocation(&table).expect("allocation succeeds");
    assert!(outcome.non_monotonic_slots <= outcome.monotonic_slots);
    assert!(outcome.non_monotonic.verify(&table).expect("verification runs"));
    assert!(outcome.monotonic.verify(&table).expect("verification runs"));
}

#[test]
fn cosimulation_meets_deadlines_and_uses_the_bus() {
    let trace = experiments::figure5_cosimulation(12.0).expect("co-simulation succeeds");
    assert!(trace.all_deadlines_met());
    assert!(trace.bus_statistics.static_transmissions > 0);
    assert!(trace.bus_statistics.dynamic_transmissions > 0);
    // Slot occupancy is recorded for every simulated period.
    assert_eq!(trace.slot_occupancy.len(), trace.apps[0].points.len());
}

#[test]
fn published_response_times_are_consistent_with_the_dwell_model() {
    // The Table I columns are mutually consistent: evaluating the
    // non-monotonic model of every application at wait zero gives xi_tt and
    // the peak gives xi_m.
    for app in case_study::paper_table1() {
        let model = NonMonotonicModel::for_app(&app);
        assert!((model.dwell(0.0) - app.xi_tt).abs() < 1e-9);
        assert!((model.dwell(app.k_p) - app.xi_m).abs() < 1e-9);
        assert!(model.dwell(app.xi_et) < 1e-9);
    }
}

#[test]
fn flexray_bus_supports_the_case_study_configuration() {
    // Ten static slots as in the paper; the three slots of the non-monotonic
    // allocation fit comfortably and TT transmissions stay deterministic.
    let mut bus = FlexRayBus::new(FlexRayConfig::paper_case_study()).expect("valid bus");
    for slot in 0..3 {
        bus.register_frame(
            Frame::static_slot(slot as u32 + 1, format!("slot{slot}"), slot, 2).expect("frame"),
        )
        .expect("registration");
    }
    for cycle in 0..8 {
        for id in 1..=3u32 {
            bus.queue_message(id, cycle as f64 * 0.005).expect("queue");
        }
        bus.run_cycle();
    }
    let stats = bus.statistics();
    assert_eq!(stats.static_transmissions, 24);
    assert_eq!(stats.wasted_static_slots, 0);
    // Deterministic latency: every transmission of frame 1 has the same latency.
    let latencies = bus.latencies_of(1);
    assert!(latencies.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
}
