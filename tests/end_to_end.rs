//! Cross-crate integration tests: the complete co-design flow from plant
//! models to TT-slot dimensioning and co-simulation — including the golden
//! fixture that pins the paper's case-study pipeline bit for bit.

use automotive_cps::core::{case_study, experiments, CoSimulation};
use automotive_cps::flexray::{FlexRayBus, FlexRayConfig, Frame};
use automotive_cps::sched::{
    allocate_slots, allocate_slots_optimal, analyze_slot, AllocatorConfig, DwellTimeModel,
    ModelKind, NonMonotonicModel, SlotAllocation, WaitTimeMethod,
};
use std::fmt::Write as _;

#[test]
fn headline_result_3_vs_5_slots() {
    let apps = case_study::paper_table1();
    let outcome = case_study::run_slot_allocation(&apps).expect("allocation succeeds");
    assert_eq!(outcome.non_monotonic_slots, 3);
    assert_eq!(outcome.monotonic_slots, 5);
    assert!((outcome.overhead_fraction - 2.0 / 3.0).abs() < 0.01);
    // The paper's slot contents: S1 = {C3, C6}, S2 = {C2, C4}, S3 = {C5, C1}.
    assert_eq!(outcome.non_monotonic.slots[0], vec![2, 5]);
    assert_eq!(outcome.non_monotonic.slots[1], vec![1, 3]);
    assert_eq!(outcome.non_monotonic.slots[2], vec![4, 0]);
}

#[test]
fn paper_intermediate_numbers_are_reproduced() {
    let apps = case_study::paper_table1();
    // Section V quotes k_wait,6 = 0.669 s -> xi_hat_6 = 1.589 s and
    // k_wait,3 = 0.92 s -> xi_hat_3 = 1.515 s on slot S1 = {C3, C6}.
    let analysis = analyze_slot(
        &apps,
        &[2, 5],
        ModelKind::NonMonotonic,
        WaitTimeMethod::ClosedFormBound,
    )
    .expect("analysis succeeds");
    let c3 = &analysis.analyses[0];
    let c6 = &analysis.analyses[1];
    assert!((c3.max_wait_time - 0.92).abs() < 1e-6);
    assert!((c3.worst_case_response_time - 1.515).abs() < 0.005);
    assert!((c6.max_wait_time - 0.669).abs() < 0.001);
    assert!((c6.worst_case_response_time - 1.589).abs() < 0.005);
    assert!(analysis.is_schedulable());
}

#[test]
fn figure3_shape_holds_end_to_end() {
    let curve = experiments::figure3_dwell_wait_curve().expect("characterisation succeeds");
    assert!(curve.is_non_monotonic());
    assert!(curve.max_dwell() > 1.1 * curve.xi_tt);
    assert!(curve.peak_wait() > 0.0);
    assert!(curve.xi_et > 2.0 * curve.xi_tt);
}

#[test]
fn figure4_model_orderings_hold_end_to_end() {
    let data = experiments::figure4_models().expect("model fit succeeds");
    assert!(experiments::figure4_orderings_hold(&data));
}

#[test]
fn derived_pipeline_saves_resources_or_matches() {
    let fleet = case_study::derived_fleet().expect("fleet design succeeds");
    let table = case_study::derive_table(&fleet).expect("table derivation succeeds");
    let outcome = case_study::run_slot_allocation(&table).expect("allocation succeeds");
    assert!(outcome.non_monotonic_slots <= outcome.monotonic_slots);
    assert!(outcome.non_monotonic.verify(&table).expect("verification runs"));
    assert!(outcome.monotonic.verify(&table).expect("verification runs"));
}

#[test]
fn cosimulation_meets_deadlines_and_uses_the_bus() {
    let trace = experiments::figure5_cosimulation(12.0).expect("co-simulation succeeds");
    assert!(trace.all_deadlines_met());
    assert!(trace.bus_statistics.static_transmissions > 0);
    assert!(trace.bus_statistics.dynamic_transmissions > 0);
    // Slot occupancy is recorded for every simulated period.
    assert_eq!(trace.slot_occupancy.len(), trace.apps[0].points.len());
}

#[test]
fn published_response_times_are_consistent_with_the_dwell_model() {
    // The Table I columns are mutually consistent: evaluating the
    // non-monotonic model of every application at wait zero gives xi_tt and
    // the peak gives xi_m.
    for app in case_study::paper_table1() {
        let model = NonMonotonicModel::for_app(&app);
        assert!((model.dwell(0.0) - app.xi_tt).abs() < 1e-9);
        assert!((model.dwell(app.k_p) - app.xi_m).abs() < 1e-9);
        assert!(model.dwell(app.xi_et) < 1e-9);
    }
}

/// Renders one `f64` as its exact bit pattern — the fixture must replay bit
/// for bit, not to a tolerance.
fn hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

fn render_slot_map(label: &str, allocation: &SlotAllocation, out: &mut String) {
    let slots: Vec<String> = allocation
        .slots
        .iter()
        .map(|slot| {
            slot.iter().map(usize::to_string).collect::<Vec<_>>().join(",")
        })
        .collect();
    writeln!(out, "slot_map {label} {}", slots.join("|")).expect("string write");
}

/// Computes the golden end-to-end outputs of the paper's case-study fleet:
/// slot maps (greedy and branch-and-bound optimal under both safe models),
/// per-application maximum wait times and worst-case responses on the
/// optimal map, and the settled co-simulation trajectories of the derived
/// fleet (subsampled plant-state norms, measured response times, TT usage,
/// bus counters) — every float as its exact bit pattern.
fn render_golden_fixture() -> String {
    let mut out = String::new();
    out.push_str(
        "# Golden case-study fixture. Regenerate with:\n\
         #   CPS_GOLDEN_REGEN=1 cargo test --test end_to_end golden_fixture\n",
    );

    // --- published Table I: slot maps -------------------------------------
    let apps = case_study::paper_table1();
    for (label, model) in [
        ("non_monotonic", ModelKind::NonMonotonic),
        ("conservative", ModelKind::ConservativeMonotonic),
    ] {
        let config = AllocatorConfig { model, ..AllocatorConfig::default() };
        let greedy = allocate_slots(&apps, &config).expect("greedy allocation");
        let optimal = allocate_slots_optimal(&apps, &config).expect("optimal allocation");
        render_slot_map(&format!("greedy_{label}"), &greedy, &mut out);
        render_slot_map(&format!("optimal_{label}"), &optimal, &mut out);

        // Wait times and worst-case responses of every application on its
        // slot of the optimal map.
        for slot in &optimal.slots {
            let analysis = analyze_slot(&apps, slot, model, WaitTimeMethod::ClosedFormBound)
                .expect("analysis runs");
            for result in &analysis.analyses {
                writeln!(
                    out,
                    "analysis {label} {} wait {} response {}",
                    result.application,
                    hex(result.max_wait_time),
                    hex(result.worst_case_response_time)
                )
                .expect("string write");
            }
        }
    }

    // --- derived fleet: characterised table and settled trajectories ------
    let fleet = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&fleet).expect("characterisation");
    for row in &table {
        writeln!(
            out,
            "table {} xi_tt {} xi_et {} xi_m {} k_p {}",
            row.name,
            hex(row.xi_tt),
            hex(row.xi_et),
            hex(row.xi_m),
            hex(row.k_p)
        )
        .expect("string write");
    }
    let allocation = allocate_slots(&table, &AllocatorConfig::default()).expect("allocation");
    render_slot_map("derived_non_monotonic", &allocation, &mut out);

    let mut cosim = CoSimulation::new(fleet, &allocation, FlexRayConfig::paper_case_study())
        .expect("engine builds");
    cosim.inject_disturbances().expect("disturbances");
    let trace = cosim.run(4.0).expect("co-simulation runs");
    for app in &trace.apps {
        let response = app
            .response_time
            .map(hex)
            .unwrap_or_else(|| "none".to_string());
        let tt_periods = app
            .points
            .iter()
            .filter(|p| p.mode == automotive_cps::control::CommunicationMode::TimeTriggered)
            .count();
        writeln!(out, "trace {} response {response} tt_periods {tt_periods}", app.name)
            .expect("string write");
        let norms: Vec<String> =
            app.points.iter().step_by(10).map(|p| hex(p.norm)).collect();
        writeln!(out, "trace_norms {} {}", app.name, norms.join(",")).expect("string write");
    }
    writeln!(
        out,
        "bus static {} dynamic {} cycles {}",
        trace.bus_statistics.static_transmissions,
        trace.bus_statistics.dynamic_transmissions,
        trace.bus_statistics.cycles
    )
    .expect("string write");
    out
}

#[test]
fn golden_fixture_replays_bit_identically() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/case_study_golden.txt");
    let rendered = render_golden_fixture();
    if std::env::var("CPS_GOLDEN_REGEN").is_ok() {
        std::fs::write(path, &rendered).expect("fixture written");
        return;
    }
    let committed = std::fs::read_to_string(path)
        .expect("committed fixture exists (regenerate with CPS_GOLDEN_REGEN=1)");
    // Compare line by line for a readable diff on mismatch.
    for (index, (got, want)) in rendered.lines().zip(committed.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "golden fixture diverges at line {} — the end-to-end pipeline no longer \
             replays bit-identically",
            index + 1
        );
    }
    assert_eq!(rendered.lines().count(), committed.lines().count());
}

#[test]
fn flexray_bus_supports_the_case_study_configuration() {
    // Ten static slots as in the paper; the three slots of the non-monotonic
    // allocation fit comfortably and TT transmissions stay deterministic.
    let mut bus = FlexRayBus::new(FlexRayConfig::paper_case_study()).expect("valid bus");
    for slot in 0..3 {
        bus.register_frame(
            Frame::static_slot(slot as u32 + 1, format!("slot{slot}"), slot, 2).expect("frame"),
        )
        .expect("registration");
    }
    for cycle in 0..8 {
        for id in 1..=3u32 {
            bus.queue_message(id, cycle as f64 * 0.005).expect("queue");
        }
        bus.run_cycle();
    }
    let stats = bus.statistics();
    assert_eq!(stats.static_transmissions, 24);
    assert_eq!(stats.wasted_static_slots, 0);
    // Deterministic latency: every transmission of frame 1 has the same latency.
    let latencies = bus.latencies_of(1);
    assert!(latencies.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
}
