//! The `DesignedFleet` characterisation-table cache: computed once,
//! `Arc`-shared, bit-identical to a fresh pass, bus-independent by
//! construction — the contract that lets repeated bus-configuration and
//! threshold sweeps over one fleet skip even the single characterisation
//! pass.

use automotive_cps::core::{case_study, BusConfigSweep, DesignedFleet, FleetDesigner};
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::sched::AllocatorConfig;
use std::sync::Arc;

fn frozen_fleet() -> Arc<DesignedFleet> {
    let apps = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&apps).expect("characterisation");
    let allocation =
        cps_sched::allocate_slots(&table, &AllocatorConfig::default()).expect("allocation");
    Arc::new(
        DesignedFleet::new(apps, allocation, FlexRayConfig::paper_case_study())
            .expect("fleet freeze"),
    )
}

#[test]
fn cached_table_is_bit_identical_to_a_fresh_pass() {
    let fleet = frozen_fleet();
    assert_eq!(fleet.characterization_passes(), 0, "a frozen fleet starts uncharacterised");
    let cached = fleet.timing_table().expect("characterisation");
    assert_eq!(fleet.characterization_passes(), 1);

    let fresh = FleetDesigner::new().characterize(fleet.apps()).expect("fresh pass");
    assert_eq!(cached.len(), fresh.len());
    for (cached_row, fresh_row) in cached.iter().zip(&fresh) {
        assert_eq!(cached_row.name, fresh_row.name);
        for (cached_value, fresh_value) in [
            (cached_row.xi_tt, fresh_row.xi_tt),
            (cached_row.xi_et, fresh_row.xi_et),
            (cached_row.xi_m, fresh_row.xi_m),
            (cached_row.k_p, fresh_row.k_p),
            (cached_row.xi_prime_m, fresh_row.xi_prime_m),
            (cached_row.deadline, fresh_row.deadline),
            (cached_row.inter_arrival, fresh_row.inter_arrival),
        ] {
            assert_eq!(cached_value.to_bits(), fresh_value.to_bits());
        }
    }

    // Later calls hand out the same Arc without re-characterising.
    let again = fleet.timing_table().expect("cache hit");
    assert!(Arc::ptr_eq(&cached, &again));
    assert_eq!(fleet.characterization_passes(), 1);
}

#[test]
fn table_is_computed_exactly_once_under_concurrent_access() {
    let fleet = frozen_fleet();
    let tables: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let fleet = Arc::clone(&fleet);
                scope.spawn(move || fleet.timing_table().expect("characterisation"))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });
    assert_eq!(
        fleet.characterization_passes(),
        1,
        "concurrent first callers must share one characterisation pass"
    );
    for table in &tables {
        assert!(Arc::ptr_eq(table, &tables[0]), "every caller shares the same Arc");
    }
}

#[test]
fn cache_survives_bus_and_slot_map_changes() {
    // The table depends only on controllers and sampling — engines may
    // re-plumb their bus and slot map freely without touching it.
    let fleet = frozen_fleet();
    let table = fleet.timing_table().expect("characterisation");

    let mut engine = fleet.engine().expect("engine");
    let wide = FlexRayConfig { cycle_length: 0.010, ..fleet.bus_config() };
    engine.set_bus_config(wide).expect("bus override");
    engine.set_allocation(fleet.allocation()).expect("slot-map re-apply");
    engine.inject_disturbances().expect("disturbances");
    let trace = engine.run(0.5).expect("co-simulation");
    assert_eq!(trace.apps.len(), fleet.app_count());

    let after = fleet.timing_table().expect("cache hit");
    assert!(Arc::ptr_eq(&table, &after));
    assert_eq!(fleet.characterization_passes(), 1);
}

#[test]
fn fleet_sweeps_measure_slot_overhead_against_the_fleets_designed_psi() {
    // A sweep whose *base* geometry differs from the fleet's must not
    // under-approximate: scenarios_for_fleet measures every candidate's
    // per-slot overhead against the Ψ the fleet's characterisation table
    // absorbed, not against the sweep's own base.
    let fleet = frozen_fleet();
    let allocator = AllocatorConfig::default();
    let designer = FleetDesigner::new();

    // Candidate: a long-cycle bus with Ψ = 0.9 s — 0.8998 s of extra
    // occupancy relative to the fleet's designed 0.2 ms slots.
    let stretched_base = FlexRayConfig {
        cycle_length: 20.0,
        static_slot_count: 4,
        static_slot_length: 0.9,
        ..fleet.bus_config()
    };
    stretched_base.validate().expect("candidate bus is valid");
    let mismatched = BusConfigSweep::new(stretched_base);
    let via_fleet =
        mismatched.scenarios_for_fleet(&designer, &fleet, &allocator, 1.0).expect("sweep");

    // Ground truth: the same candidate expanded from a sweep based on the
    // fleet's own bus (so `scenarios` measures against the designed Ψ).
    let reference_sweep = BusConfigSweep::new(fleet.bus_config())
        .with_cycle_lengths(vec![stretched_base.cycle_length])
        .with_static_slot_counts(vec![stretched_base.static_slot_count])
        .with_slot_lengths(vec![stretched_base.static_slot_length]);
    assert_eq!(reference_sweep.configs(), mismatched.configs());
    let table = fleet.timing_table().expect("cached table");
    let reference = reference_sweep.scenarios(&table, &allocator, 1.0);
    assert_eq!(via_fleet, reference);

    // The overhead really bit: every expanded slot map verifies under the
    // fleet-relative geometry, and at least one would be rejected by the
    // zero-overhead check (0.9 s of extra occupancy breaks slot sharing on
    // this fleet — shared maps need more slots than the baseline design).
    let timing = reference_sweep.slot_timing_for(&stretched_base);
    assert!(timing.overhead() > 0.89);
    for spec in &via_fleet {
        let allocation = spec.allocation.as_ref().expect("slot map pinned");
        assert!(allocation.verify_with(&table, timing).expect("analysis runs"));
    }
    let baseline_maps = BusConfigSweep::new(fleet.bus_config())
        .with_cycle_lengths(vec![stretched_base.cycle_length])
        .with_static_slot_counts(vec![stretched_base.static_slot_count])
        .scenarios(&table, &allocator, 1.0);
    let min_slots = |specs: &[cps_core::ScenarioSpec]| {
        specs
            .iter()
            .map(|s| s.allocation.as_ref().expect("slot map pinned").slot_count())
            .min()
            .expect("at least one feasible map")
    };
    assert!(
        min_slots(&via_fleet) > min_slots(&baseline_maps),
        "0.9 s slots must cost the fleet TT slots relative to its designed geometry"
    );
}

#[test]
fn design_flows_seed_the_cache_and_sweeps_never_recharacterize() {
    // Fleets frozen by the design pipelines arrive with the table already
    // cached: the pass that fed the allocator is the pass sweeps reuse.
    let allocator = AllocatorConfig::default();
    let bus = FlexRayConfig::paper_case_study();
    let designer = FleetDesigner::new();
    let designed = designer
        .design_fleet(case_study::derived_fleet_specs(), &allocator, bus)
        .expect("greedy design");
    assert_eq!(designed.characterization_passes(), 0);
    let seeded = designed.timing_table().expect("seeded table");
    assert_eq!(designed.characterization_passes(), 0, "the seed already paid the pass");

    // Repeated bus-configuration sweeps across calls: zero characterisation
    // passes, and the expansion equals the uncached entry point's.
    let sweep = BusConfigSweep::new(bus)
        .with_cycle_lengths(vec![0.005, 0.010])
        .with_static_slot_counts(vec![4, 10])
        .with_slot_lengths(vec![0.0002, 0.0005]);
    let via_fleet =
        sweep.scenarios_for_fleet(&designer, &designed, &allocator, 1.0).expect("sweep");
    for _ in 0..3 {
        let again =
            sweep.scenarios_for_fleet(&designer, &designed, &allocator, 1.0).expect("sweep");
        assert_eq!(again, via_fleet);
    }
    assert_eq!(designed.characterization_passes(), 0);

    let via_apps =
        sweep.scenarios_for(&designer, designed.apps(), &allocator, 1.0).expect("sweep");
    assert_eq!(via_fleet, via_apps);

    // The exact design path seeds the cache too, with the same table.
    let optimal = DesignedFleet::design_optimal(
        case_study::derived_fleet().expect("fleet design"),
        &allocator,
        bus,
    )
    .expect("optimal design");
    assert_eq!(optimal.characterization_passes(), 0);
    let optimal_table = optimal.timing_table().expect("seeded table");
    assert_eq!(seeded.len(), optimal_table.len());
    for (a, b) in seeded.iter().zip(optimal_table.iter()) {
        assert_eq!(a.xi_m.to_bits(), b.xi_m.to_bits());
        assert_eq!(a.xi_et.to_bits(), b.xi_et.to_bits());
    }
}
