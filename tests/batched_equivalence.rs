//! Acceptance tests for the lane-batched scenario stepping: every public
//! batched path must be **bit-identical** to its scalar reference.
//!
//! Three layers are pinned here:
//!
//! 1. the kernel layer — a [`BatchStepKernel`] lane driven through a scripted
//!    mix of ET/TT/hold/skip periods reproduces a scalar [`StepKernel`]'s
//!    augmented state bit for bit, divergence peel-off included;
//! 2. the campaign layer — a faulty Monte-Carlo campaign with mode-switch
//!    storms (which force lanes to diverge every few periods) folds into the
//!    exact same `CampaignStats` for every lane width;
//! 3. the scenario layer — a mixed sweep with slot-map override specs
//!    interleaved (which must fall back to the scalar engine mid-chunk)
//!    returns identical outcomes for every lane width × thread count,
//!    property-tested over ragged scenario counts.

use automotive_cps::control::{BatchStepKernel, CommunicationMode, LaneStep, StepKernel};
use automotive_cps::core::{
    case_study, DesignedFleet, RobustnessCampaign, RobustnessSweep, ScenarioBatch, ScenarioSpec,
};
use automotive_cps::flexray::{FlexRayConfig, GilbertElliott};
use automotive_cps::sched::{allocate_slots, AllocatorConfig};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// The derived fleet, designed once for the whole test binary.
fn fleet() -> Arc<DesignedFleet> {
    static FLEET: OnceLock<Arc<DesignedFleet>> = OnceLock::new();
    Arc::clone(FLEET.get_or_init(|| {
        Arc::new(
            DesignedFleet::design(
                case_study::derived_fleet_specs(),
                &AllocatorConfig::default(),
                FlexRayConfig::paper_case_study(),
            )
            .expect("derived fleet designs"),
        )
    }))
}

/// A scenario-batch template over the shared fleet, built once.
fn batch_template() -> &'static ScenarioBatch {
    static BATCH: OnceLock<ScenarioBatch> = OnceLock::new();
    BATCH.get_or_init(|| ScenarioBatch::from_fleet(fleet()).expect("batch template"))
}

/// Deterministic per-period lane script: a mix of every [`LaneStep`] variant
/// so uniform fast-path periods, divergent peel-off periods and parked lanes
/// all occur. Lane `l` at period `p` follows a different phase of the same
/// pattern, so most periods are non-uniform.
fn scripted_step(lane: usize, period: usize) -> LaneStep {
    match (period + 3 * lane) % 11 {
        0..=3 => LaneStep::EventTriggered,
        4..=6 => LaneStep::TimeTriggered,
        7 | 8 => LaneStep::Hold,
        _ => LaneStep::Skip,
    }
}

/// Kernel-layer golden run: each lane of a 5-wide batch, stepped through 400
/// scripted periods (with per-lane scaled disturbance re-injections), must
/// leave the exact augmented state a scalar kernel reaches under the same
/// per-period script.
#[test]
fn scripted_batch_lanes_reproduce_scalar_kernels_bit_for_bit() {
    const LANES: usize = 5;
    const PERIODS: usize = 400;
    for app in fleet().apps() {
        let mut batch: BatchStepKernel = app.kernel_matrices().batch_kernel(LANES);
        let disturbance = &app.spec().disturbance;
        let mut ops = [LaneStep::Skip; LANES];
        for lane in 0..LANES {
            let scale = 0.5 + lane as f64 * 0.3;
            batch.inject_lane_disturbance_scaled(lane, disturbance, scale).expect("inject");
        }
        for period in 0..PERIODS {
            for (lane, op) in ops.iter_mut().enumerate() {
                *op = scripted_step(lane, period);
            }
            batch.step_lanes(&ops);
            if period % 64 == 0 {
                // Mid-run re-injection, as the storm path does.
                batch.inject_lane_disturbance_scaled(1, disturbance, 0.25).expect("inject");
            }
        }

        for lane in 0..LANES {
            let mut scalar: StepKernel = app.kernel().expect("scalar kernel");
            let scale = 0.5 + lane as f64 * 0.3;
            scalar.inject_disturbance_scaled(disturbance, scale).expect("inject");
            for period in 0..PERIODS {
                match scripted_step(lane, period) {
                    LaneStep::EventTriggered => scalar.step(CommunicationMode::EventTriggered),
                    LaneStep::TimeTriggered => scalar.step(CommunicationMode::TimeTriggered),
                    LaneStep::Hold => scalar.step_hold(),
                    LaneStep::Skip => {}
                }
                if period % 64 == 0 && lane == 1 {
                    scalar.inject_disturbance_scaled(disturbance, 0.25).expect("inject");
                }
            }
            let mut lane_state = vec![0.0; scalar.augmented_state().len()];
            batch.lane_augmented_into(lane, &mut lane_state);
            assert_eq!(
                lane_state,
                scalar.augmented_state(),
                "{}: lane {lane} diverged from the scalar reference",
                app.name()
            );
            assert_eq!(batch.lane_state_norm(lane), scalar.state_norm(), "{}", app.name());
            assert_eq!(batch.lane_time(lane), scalar.time(), "{}", app.name());
        }
    }
}

/// A faulty sweep whose mode-switch storms re-disturb every lane mid-run:
/// storms trigger threshold crossings at different periods per lane, so the
/// lanes *must* diverge and peel off — the interesting regime for
/// bit-identity.
fn stormy_sweep() -> RobustnessSweep {
    RobustnessSweep::new(vec![0.0, 0.2, 0.6], 4, 1.0)
        .with_disturbance_range(0.7, 1.5)
        .with_burst(GilbertElliott {
            degrade_probability: 0.2,
            recover_probability: 0.4,
            bad_drop_probability: 0.9,
        })
        .with_corruption(0.03)
        .with_dynamic_contention(6)
        .with_sensor_noise(0.02)
        .with_storm(0.3, 0.6)
}

/// Campaign-layer bit-identity: every lane width folds the stormy faulty
/// campaign into the exact same `CampaignStats` — Welford moments and the
/// order-sensitive P² marker state included — across worker counts too.
#[test]
fn campaign_stats_are_bit_identical_across_lane_widths() {
    let sweep = stormy_sweep();
    let scalar = RobustnessCampaign::new(fleet(), 0xD1CE)
        .with_workers(2)
        .with_chunk_size(5)
        .with_lane_width(1)
        .run(&sweep)
        .expect("scalar-lane campaign");
    assert_eq!(scalar.total, 12);
    for lane_width in 2..=8 {
        for workers in [1, 3] {
            let stats = RobustnessCampaign::new(fleet(), 0xD1CE)
                .with_workers(workers)
                .with_chunk_size(5)
                .with_lane_width(lane_width)
                .run(&sweep)
                .expect("batched campaign");
            assert_eq!(
                stats, scalar,
                "lane width {lane_width} × {workers} workers changed the campaign result"
            );
        }
    }
}

/// Scenario-layer bit-identity on a mixed list: slot-map override specs are
/// interleaved with packable sweep specs, so batched chunks must split
/// around the scalar-only scenarios and still return identical outcomes.
#[test]
fn mixed_scenario_batch_matches_scalar_across_lane_widths_and_threads() {
    let table = case_study::derive_table(fleet().apps()).expect("timing table");
    let allocation = allocate_slots(&table, &AllocatorConfig::default()).expect("allocation");

    let mut scenarios = ScenarioSpec::disturbance_sweep(0.2, 2.0, 9, 1.0);
    scenarios.extend(ScenarioSpec::threshold_sweep(0.7, 1.8, 3, 1.0));
    // Scalar-only specs wedged mid-list: lane packing must break around them.
    scenarios.insert(4, ScenarioSpec::nominal(1.0).with_allocation(allocation));
    let per_app: Vec<Vec<f64>> = fleet()
        .apps()
        .iter()
        .enumerate()
        .map(|(index, app)| {
            app.spec().disturbance.iter().map(|d| d * (index as f64 + 1.0) * 0.3).collect()
        })
        .collect();
    // A per-app disturbance override IS lane-compatible — it must keep its
    // surrounding group packed.
    scenarios.insert(7, ScenarioSpec::nominal(1.0).with_disturbances(per_app));

    let scalar = batch_template()
        .clone()
        .with_threads(1)
        .with_lane_width(1)
        .run(&scenarios)
        .expect("scalar run");
    assert_eq!(scalar.len(), scenarios.len());
    for lane_width in [2, 3, 5, 8] {
        for threads in [1, 3] {
            let outcomes = batch_template()
                .clone()
                .with_threads(threads)
                .with_lane_width(lane_width)
                .run(&scenarios)
                .expect("batched run");
            assert_eq!(
                outcomes, scalar,
                "lane width {lane_width} × {threads} threads changed the outcomes"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ragged tails and arbitrary widths: any scenario count (including
    /// remainders shorter than the lane width), any lane width in 1..=8 and
    /// any thread count must reproduce the scalar outcomes exactly.
    #[test]
    fn ragged_scenario_counts_match_scalar_for_any_lane_width(
        lane_width in 1usize..9,
        count in 2usize..14,
        threads in 1usize..4,
    ) {
        let scenarios = ScenarioSpec::disturbance_sweep(0.3, 1.8, count, 0.5);
        let scalar = batch_template()
            .clone()
            .with_threads(1)
            .with_lane_width(1)
            .run(&scenarios)
            .expect("scalar run");
        let batched = batch_template()
            .clone()
            .with_threads(threads)
            .with_lane_width(lane_width)
            .run(&scenarios)
            .expect("batched run");
        prop_assert_eq!(
            batched, scalar,
            "lane width {} × {} threads × {} scenarios diverged",
            lane_width, threads, count
        );
    }
}
