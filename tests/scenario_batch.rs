//! Acceptance test for the parallel scenario engine: at least 64 disturbance
//! scenarios fan out across worker threads and the results are deterministic
//! and independent of the thread count.

use automotive_cps::core::{case_study, ScenarioBatch, ScenarioSpec};
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::sched::{allocate_slots, AllocatorConfig};

#[test]
fn sixty_four_scenarios_are_thread_count_independent() {
    let apps = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&apps).expect("table derivation");
    let allocation = allocate_slots(&table, &AllocatorConfig::default()).expect("allocation");
    let batch = ScenarioBatch::new(apps, allocation, FlexRayConfig::paper_case_study())
        .expect("batch template");

    let mut scenarios = ScenarioSpec::disturbance_sweep(0.05, 2.5, 60, 2.0);
    // Mix in threshold variations so the sweep covers both scenario axes.
    for threshold_scale in [0.5, 0.8, 1.5, 3.0] {
        scenarios.push(ScenarioSpec {
            label: format!("threshold x{threshold_scale}"),
            disturbance_scale: 1.0,
            threshold_scale,
            duration: 2.0,
        });
    }
    assert!(scenarios.len() >= 64);

    let serial = batch.clone().with_threads(1).run(&scenarios).expect("serial run");
    let four = batch.clone().with_threads(4).run(&scenarios).expect("4-thread run");
    let seven = batch.with_threads(7).run(&scenarios).expect("7-thread run");

    assert_eq!(serial, four, "4-thread results must match the serial run");
    assert_eq!(serial, seven, "7-thread results must match the serial run");
    assert_eq!(serial.len(), scenarios.len());
    for (index, outcome) in serial.iter().enumerate() {
        assert_eq!(outcome.index, index, "outcomes must come back in input order");
        assert_eq!(outcome.response_times.len(), 6);
        assert_eq!(outcome.peak_norms.len(), 6);
    }

    // The sweep must actually explore different dynamics: larger
    // disturbances produce larger peaks.
    assert!(serial[0].peak_norms[0] < serial[59].peak_norms[0]);
    // And a stronger disturbance can only prolong (never shorten) the first
    // application's settling relative to the weakest scenario.
    if let (Some(fast), Some(slow)) = (serial[0].response_times[0], serial[59].response_times[0]) {
        assert!(fast <= slow);
    }
}
