//! Acceptance test for the parallel scenario engine: at least 64 disturbance
//! scenarios fan out across worker threads and the results are deterministic
//! and independent of the thread count.

use automotive_cps::core::{case_study, ScenarioBatch, ScenarioSpec};
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::sched::{allocate_slots, AllocatorConfig};

#[test]
fn sixty_four_scenarios_are_thread_count_independent() {
    let apps = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&apps).expect("table derivation");
    let allocation = allocate_slots(&table, &AllocatorConfig::default()).expect("allocation");
    let batch = ScenarioBatch::new(apps, allocation, FlexRayConfig::paper_case_study())
        .expect("batch template");

    let mut scenarios = ScenarioSpec::disturbance_sweep(0.05, 2.5, 60, 2.0);
    // Mix in the other sweep axes so the batch covers every scenario kind:
    // threshold scaling, the disturbance × threshold grid, per-application
    // disturbance vectors and slot-map overrides.
    scenarios.extend(ScenarioSpec::threshold_sweep(0.5, 3.0, 4, 2.0));
    scenarios.extend(ScenarioSpec::grid(&[0.5, 1.5], &[0.8, 1.2], 2.0));
    let per_app: Vec<Vec<f64>> = batch
        .fleet()
        .apps()
        .iter()
        .enumerate()
        .map(|(index, app)| {
            app.spec().disturbance.iter().map(|d| d * (index as f64 + 1.0) * 0.25).collect()
        })
        .collect();
    scenarios.push(ScenarioSpec::nominal(2.0).with_disturbances(per_app));
    let sweep_allocations = automotive_cps::sched::allocation_sweep(
        &table,
        &AllocatorConfig::default().sweep_matrix(),
    );
    scenarios.extend(ScenarioSpec::slot_map_sweep(sweep_allocations, 2.0));
    assert!(scenarios.len() >= 64, "got {} scenarios", scenarios.len());

    let serial = batch.clone().with_threads(1).run(&scenarios).expect("serial run");
    let four = batch.clone().with_threads(4).run(&scenarios).expect("4-thread run");
    let seven = batch.with_threads(7).run(&scenarios).expect("7-thread run");

    assert_eq!(serial, four, "4-thread results must match the serial run");
    assert_eq!(serial, seven, "7-thread results must match the serial run");
    assert_eq!(serial.len(), scenarios.len());
    for (index, outcome) in serial.iter().enumerate() {
        assert_eq!(outcome.index, index, "outcomes must come back in input order");
        assert_eq!(outcome.response_times.len(), 6);
        assert_eq!(outcome.peak_norms.len(), 6);
    }

    // The sweep must actually explore different dynamics: larger
    // disturbances produce larger peaks.
    assert!(serial[0].peak_norms[0] < serial[59].peak_norms[0]);
    // And a stronger disturbance can only prolong (never shorten) the first
    // application's settling relative to the weakest scenario.
    if let (Some(fast), Some(slow)) = (serial[0].response_times[0], serial[59].response_times[0]) {
        assert!(fast <= slow);
    }
}

#[test]
fn workers_share_one_designed_fleet_instead_of_cloning_applications() {
    use std::sync::Arc;

    let apps = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&apps).expect("table derivation");
    let allocation = allocate_slots(&table, &AllocatorConfig::default()).expect("allocation");
    let batch = ScenarioBatch::new(apps, allocation, FlexRayConfig::paper_case_study())
        .expect("batch template");

    // Worker start-up is an engine over the *same* fleet allocation — the
    // designed ControlApplications are referenced, never cloned.
    let engine = batch.fleet().engine().expect("worker engine");
    assert!(Arc::ptr_eq(engine.fleet(), batch.fleet()));

    // Every kernel a worker drives shares the matrices compiled at design
    // time: spawning two kernels from one application reuses one Arc.
    let app = &batch.fleet().apps()[0];
    let kernel_a = app.kernel().expect("kernel");
    let kernel_b = app.kernel().expect("kernel");
    assert!(Arc::ptr_eq(kernel_a.matrices(), app.kernel_matrices()));
    assert!(Arc::ptr_eq(kernel_a.matrices(), kernel_b.matrices()));

    // Cloning the batch (what `run` does implicitly per worker scope) only
    // bumps the design's reference count.
    let before = Arc::strong_count(batch.fleet());
    let clone = batch.clone();
    assert_eq!(Arc::strong_count(batch.fleet()), before + 1);
    drop(clone);
    assert_eq!(Arc::strong_count(batch.fleet()), before);
}
