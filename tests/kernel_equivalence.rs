//! Property tests for the fused simulation kernels: for every case-study
//! plant, the allocation-free `StepKernel` trajectory must match the
//! validated matrix paths it replaces — bit-for-bit against the augmented
//! closed-loop map it compiles, and to rounding precision against the
//! seed's three-term `DelayedLtiSystem::step` + controller path.

use automotive_cps::control::{CommunicationMode, DelayedLtiSystem, DiscreteStateSpace};
use automotive_cps::core::{case_study, experiments, ControlApplication};
use automotive_cps::linalg::Matrix;

const STEPS: usize = 1000;

/// Deterministic pseudo-random mode schedule exercising both closed loops
/// and the switches between them.
fn mode_schedule(seed: u64) -> Vec<CommunicationMode> {
    let mut state = seed.max(1);
    (0..STEPS)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (state >> 33) & 1 == 0 {
                CommunicationMode::EventTriggered
            } else {
                CommunicationMode::TimeTriggered
            }
        })
        .collect()
}

/// Every application the paper's case study simulates: the six derived
/// fleet members plus the servo rig behind Figure 3.
fn case_study_applications() -> Vec<ControlApplication> {
    let mut apps = case_study::derived_fleet().expect("fleet design");
    apps.push(experiments::servo_rig_application().expect("servo rig design"));
    apps
}

#[test]
fn kernel_matches_the_augmented_closed_loop_map_bit_for_bit() {
    for (index, app) in case_study_applications().iter().enumerate() {
        let mut kernel = app.kernel().expect("kernel compiles");
        kernel.inject_disturbance(&app.spec().disturbance).expect("disturbance");

        // Reference: the validated (allocating) closed-loop matrices built
        // from the same systems and gains, stepped with `Matrix::matvec`.
        let a_et = app
            .et_system()
            .closed_loop(app.et_controller().gain())
            .expect("ET closed loop");
        let a_tt = app
            .tt_system()
            .closed_loop(app.tt_controller().gain())
            .expect("TT closed loop");
        let mut reference = kernel.augmented_state().to_vec();

        for (step, mode) in mode_schedule(index as u64 + 1).into_iter().enumerate() {
            let a_cl = match mode {
                CommunicationMode::EventTriggered => &a_et,
                CommunicationMode::TimeTriggered => &a_tt,
            };
            reference = a_cl.matvec(&reference).expect("shapes validated");
            kernel.step(mode);
            assert_eq!(
                kernel.augmented_state(),
                reference.as_slice(),
                "{}: kernel diverged from the closed-loop map at step {step}",
                app.name(),
            );
        }
    }
}

#[test]
fn kernel_matches_the_seed_step_path_to_rounding_precision() {
    // The fused kernel reassociates `Γ₀·(−K·z)` into the precompiled
    // closed-loop matrix, so against the seed's compute-u-then-step path the
    // agreement is at rounding level (≈1 ulp per step), not bitwise. 1e-9
    // over 1000 steps of these O(1)-norm trajectories leaves five orders of
    // magnitude of headroom over observed differences.
    const TOL: f64 = 1e-9;
    for (index, app) in case_study_applications().iter().enumerate() {
        let mut kernel = app.kernel().expect("kernel compiles");
        kernel.inject_disturbance(&app.spec().disturbance).expect("disturbance");

        let n = app.spec().plant.order();
        let mut state = app.spec().disturbance.clone();
        let mut previous_input = vec![0.0; app.et_system().inputs()];

        for (step, mode) in mode_schedule(index as u64 + 1).into_iter().enumerate() {
            let (system, controller) = match mode {
                CommunicationMode::EventTriggered => (app.et_system(), app.et_controller()),
                CommunicationMode::TimeTriggered => (app.tt_system(), app.tt_controller()),
            };
            let mut augmented = state.clone();
            augmented.extend_from_slice(&previous_input);
            let input = controller.control(&augmented).expect("validated");
            state = system.step(&state, &input, &previous_input).expect("validated");
            previous_input = input;
            kernel.step(mode);

            for (a, b) in kernel.state().iter().zip(&state) {
                assert!(
                    (a - b).abs() <= TOL,
                    "{}: state diverged at step {step}: kernel {a} vs naive {b}",
                    app.name(),
                );
            }
            for (a, b) in kernel.previous_input().iter().zip(&previous_input) {
                assert!(
                    (a - b).abs() <= TOL,
                    "{}: input diverged at step {step}: kernel {a} vs naive {b}",
                    app.name(),
                );
            }
            assert_eq!(kernel.state().len(), n);
        }
    }
}

#[test]
fn zero_delay_delayed_system_matches_discrete_state_space() {
    // `DelayedLtiSystem` with d = 0 must agree with the plain ZOH
    // `DiscreteStateSpace` step that the kernels subsume.
    for app in case_study_applications() {
        let plant = &app.spec().plant;
        let h = app.spec().period;
        let delayed = DelayedLtiSystem::from_continuous(plant, h, 0.0).expect("delayed model");
        let discrete = DiscreteStateSpace::from_continuous(plant, h).expect("discrete model");
        assert!(delayed.phi().approx_eq(discrete.phi(), 1e-12));
        assert!(delayed.gamma0().approx_eq(discrete.gamma(), 1e-12));

        let mut x_delayed = app.spec().disturbance.clone();
        let mut x_discrete = x_delayed.clone();
        let input = vec![0.3; delayed.inputs()];
        let zero = vec![0.0; delayed.inputs()];
        for _ in 0..100 {
            x_delayed = delayed.step(&x_delayed, &input, &zero).expect("validated");
            x_discrete = discrete.step(&x_discrete, &input).expect("validated");
            for (a, b) in x_delayed.iter().zip(&x_discrete) {
                // Relative tolerance: open-loop unstable plants (the rig)
                // amplify the state exponentially under constant input.
                assert!(
                    (a - b).abs() <= 1e-10 * a.abs().max(1.0),
                    "{}: ZOH paths diverged ({a} vs {b})",
                    app.name()
                );
            }
        }
    }
}

#[test]
fn kernel_closed_loop_matrices_match_controller_design() {
    // The matrices the kernel fuses are exactly the A₁/A₂ the controllers
    // were certified stable with at design time.
    for app in case_study_applications() {
        let kernel = app.kernel().expect("kernel compiles");
        let et: &Matrix = kernel.closed_loop(CommunicationMode::EventTriggered);
        let tt: &Matrix = kernel.closed_loop(CommunicationMode::TimeTriggered);
        assert_eq!(et, app.et_controller().closed_loop(), "{}: A1", app.name());
        assert_eq!(tt, app.tt_controller().closed_loop(), "{}: A2", app.name());
    }
}

#[test]
fn plant_simulator_and_kernel_tell_the_same_story() {
    // The record-producing wrapper must report exactly the kernel's states.
    for app in case_study_applications() {
        let mut sim = app.simulator().expect("simulator");
        let mut kernel = app.kernel().expect("kernel");
        sim.inject_disturbance(&app.spec().disturbance).expect("disturbance");
        kernel.inject_disturbance(&app.spec().disturbance).expect("disturbance");
        for mode in mode_schedule(7) {
            let sample = sim.step(mode).expect("step");
            kernel.step(mode);
            assert_eq!(sim.state(), kernel.state());
            assert_eq!(sample.input.as_slice(), kernel.previous_input());
        }
    }
}
