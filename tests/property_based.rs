//! Property-based tests (proptest) on the core data structures and the
//! paper's analytical invariants.

use automotive_cps::linalg::{
    discretize_zoh, dlqr, expm, inverse, solve, spectral_radius, DareOptions, Matrix,
};
use automotive_cps::sched::{
    allocate_slots, max_wait_time_bound, max_wait_time_fixed_point, AllocatorConfig,
    AppTimingParams, ConservativeMonotonicModel, DwellTimeModel, ModelKind, NonMonotonicModel,
    SimpleMonotonicModel,
};
use proptest::prelude::*;

/// Strategy for well-conditioned small matrices (entries in [-3, 3]).
fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("matching length"))
}

/// Strategy for valid application timing parameters.
fn timing_params() -> impl Strategy<Value = AppTimingParams> {
    (0.2f64..2.0, 1.5f64..4.0, 1.0f64..2.0, 0.05f64..0.9, 1.0f64..6.0, 1.0f64..100.0).prop_map(
        |(xi_tt, et_factor, m_factor, p_factor, slack, extra_arrival)| {
            let xi_et = xi_tt * et_factor;
            let xi_m = xi_tt * m_factor;
            let k_p = xi_et * p_factor;
            let deadline = xi_m + k_p + slack;
            let inter_arrival = deadline + extra_arrival;
            AppTimingParams::new("P", inter_arrival, deadline, xi_tt, xi_et, xi_m, k_p)
                .expect("constructed parameters satisfy the invariants")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- linear algebra ------------------------------------------------

    #[test]
    fn lu_solve_satisfies_the_system(matrix in small_matrix(3), rhs in proptest::collection::vec(-5.0f64..5.0, 3)) {
        // Skip near-singular matrices; the solver reports them as errors.
        if let Ok(solution) = solve(&matrix, &rhs) {
            let back = matrix.matvec(&solution).expect("dimensions match");
            for (lhs, rhs_value) in back.iter().zip(&rhs) {
                prop_assert!((lhs - rhs_value).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn inverse_roundtrip(matrix in small_matrix(3)) {
        if let Ok(inv) = inverse(&matrix) {
            let identity = matrix.matmul(&inv).expect("dimensions match");
            prop_assert!(identity.approx_eq(&Matrix::identity(3), 1e-6));
        }
    }

    #[test]
    fn matrix_exponential_of_negated_matrix_is_the_inverse(matrix in small_matrix(2)) {
        let forward = expm(&matrix).expect("finite input");
        let backward = expm(&matrix.scale(-1.0)).expect("finite input");
        let product = forward.matmul(&backward).expect("dimensions match");
        prop_assert!(product.approx_eq(&Matrix::identity(2), 1e-7));
    }

    #[test]
    fn zoh_discretisation_shrinks_with_the_step(a in small_matrix(2), dt in 0.001f64..0.05) {
        let b = Matrix::column(&[0.0, 1.0]).expect("static");
        let (phi, gamma) = discretize_zoh(&a, &b, dt).expect("valid inputs");
        prop_assert_eq!(phi.shape(), (2, 2));
        prop_assert_eq!(gamma.shape(), (2, 1));
        prop_assert!(phi.is_finite());
        prop_assert!(gamma.is_finite());
        // As dt -> 0 the transition matrix approaches identity.
        let (phi_small, _) = discretize_zoh(&a, &b, dt / 100.0).expect("valid inputs");
        let dist_small = phi_small.sub_matrix(&Matrix::identity(2)).expect("shape").max_abs();
        let dist_large = phi.sub_matrix(&Matrix::identity(2)).expect("shape").max_abs();
        prop_assert!(dist_small <= dist_large + 1e-12);
    }

    #[test]
    fn lqr_closed_loop_is_schur_stable_for_controllable_double_integrator(
        q_scale in 0.1f64..10.0,
        r_scale in 0.01f64..10.0,
        h in 0.005f64..0.05,
    ) {
        let a = Matrix::from_rows(&[&[1.0, h], &[0.0, 1.0]]).expect("static");
        let b = Matrix::column(&[h * h / 2.0, h]).expect("static");
        let q = Matrix::identity(2).scale(q_scale);
        let r = Matrix::identity(1).scale(r_scale);
        let solution = dlqr(&a, &b, &q, &r, DareOptions::default()).expect("controllable pair");
        let closed = a.sub_matrix(&b.matmul(&solution.gain).expect("shape")).expect("shape");
        prop_assert!(spectral_radius(&closed).expect("finite") < 1.0);
    }

    // --- dwell-time models ----------------------------------------------

    #[test]
    fn conservative_model_dominates_non_monotonic_model(app in timing_params(), fraction in 0.0f64..1.0) {
        let non_monotonic = NonMonotonicModel::for_app(&app);
        let conservative = ConservativeMonotonicModel::for_app(&app);
        let wait = fraction * app.xi_et;
        prop_assert!(conservative.dwell(wait) + 1e-9 >= non_monotonic.dwell(wait));
    }

    #[test]
    fn simple_model_never_exceeds_non_monotonic_model(app in timing_params(), fraction in 0.0f64..1.0) {
        let non_monotonic = NonMonotonicModel::for_app(&app);
        let simple = SimpleMonotonicModel::for_app(&app);
        let wait = fraction * app.xi_et;
        prop_assert!(simple.dwell(wait) <= non_monotonic.dwell(wait) + 1e-9);
    }

    #[test]
    fn response_time_grows_with_wait_in_the_falling_region(app in timing_params(), f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        // Section III: *typically* the gradient of the falling segment lies in
        // (-1, 0) because xi_et - k_p exceeds xi_m; in that regime the total
        // response time keeps increasing with the wait. Restrict the property
        // to exactly that regime, as the paper does.
        prop_assume!(app.xi_m <= app.xi_et - app.k_p);
        let model = NonMonotonicModel::for_app(&app);
        let lo = app.k_p + f1.min(f2) * (app.xi_et - app.k_p);
        let hi = app.k_p + f1.max(f2) * (app.xi_et - app.k_p);
        prop_assert!(model.response_time(hi) + 1e-9 >= model.response_time(lo));
    }

    // --- wait-time analysis and allocation -------------------------------

    #[test]
    fn closed_form_bound_dominates_exact_fixed_point(
        apps in proptest::collection::vec(timing_params(), 2..6),
    ) {
        let slot: Vec<usize> = (0..apps.len()).collect();
        for index in 0..apps.len() {
            let bound = max_wait_time_bound(&apps, &slot, index, ModelKind::NonMonotonic);
            let exact = max_wait_time_fixed_point(&apps, &slot, index, ModelKind::NonMonotonic);
            match (bound, exact) {
                (Ok(bound), Ok(exact)) => prop_assert!(exact <= bound + 1e-9),
                (Err(_), Err(_)) => {}
                (left, right) => prop_assert!(false, "bound and fixed point disagree on feasibility: {left:?} vs {right:?}"),
            }
        }
    }

    #[test]
    fn allocations_are_valid_and_non_monotonic_never_needs_more_slots(
        apps in proptest::collection::vec(timing_params(), 1..6),
    ) {
        // Give every application a unique name so priorities are deterministic.
        let apps: Vec<AppTimingParams> = apps
            .into_iter()
            .enumerate()
            .map(|(index, mut app)| {
                app.name = format!("P{index}");
                app
            })
            .collect();
        let config = AllocatorConfig { max_slots: apps.len().max(1), ..AllocatorConfig::default() };
        let non_monotonic = allocate_slots(&apps, &config);
        let conservative = allocate_slots(
            &apps,
            &AllocatorConfig { model: ModelKind::ConservativeMonotonic, ..config },
        );
        if let (Ok(non_monotonic), Ok(conservative)) = (non_monotonic, conservative) {
            prop_assert!(non_monotonic.verify(&apps).expect("verification runs"));
            prop_assert!(conservative.verify(&apps).expect("verification runs"));
            prop_assert!(non_monotonic.slot_count() <= conservative.slot_count());
        }
    }
}
