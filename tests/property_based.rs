//! Property-based tests (proptest) on the core data structures and the
//! paper's analytical invariants.

use automotive_cps::control::{
    characterize_dwell_vs_wait, characterize_dwell_vs_wait_reference, design_by_pole_placement,
    plants, CharacterizationConfig, ContinuousStateSpace, DelayedLtiSystem,
};
use automotive_cps::core::{case_study, CoSimulation, ControlApplication, ScenarioBatch, ScenarioSpec};
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::linalg::{
    discretize_zoh, dlqr, expm, inverse, solve, spectral_radius, DareOptions, Matrix,
};
use automotive_cps::sched::{
    allocate_slots, allocate_slots_optimal, max_wait_time_bound, max_wait_time_fixed_point,
    AllocationStrategy, AllocatorConfig, AppTimingParams, ConservativeMonotonicModel,
    DwellTimeModel, ModelKind, NonMonotonicModel, SimpleMonotonicModel, SlotAllocation,
    WaitTimeMethod,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Strategy for well-conditioned small matrices (entries in [-3, 3]).
fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f64..3.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("matching length"))
}

/// Strategy for valid application timing parameters.
fn timing_params() -> impl Strategy<Value = AppTimingParams> {
    (0.2f64..2.0, 1.5f64..4.0, 1.0f64..2.0, 0.05f64..0.9, 1.0f64..6.0, 1.0f64..100.0).prop_map(
        |(xi_tt, et_factor, m_factor, p_factor, slack, extra_arrival)| {
            let xi_et = xi_tt * et_factor;
            let xi_m = xi_tt * m_factor;
            let k_p = xi_et * p_factor;
            let deadline = xi_m + k_p + slack;
            let inter_arrival = deadline + extra_arrival;
            AppTimingParams::new("P", inter_arrival, deadline, xi_tt, xi_et, xi_m, k_p)
                .expect("constructed parameters satisfy the invariants")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- linear algebra ------------------------------------------------

    #[test]
    fn lu_solve_satisfies_the_system(matrix in small_matrix(3), rhs in proptest::collection::vec(-5.0f64..5.0, 3)) {
        // Skip near-singular matrices; the solver reports them as errors.
        if let Ok(solution) = solve(&matrix, &rhs) {
            let back = matrix.matvec(&solution).expect("dimensions match");
            for (lhs, rhs_value) in back.iter().zip(&rhs) {
                prop_assert!((lhs - rhs_value).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn inverse_roundtrip(matrix in small_matrix(3)) {
        if let Ok(inv) = inverse(&matrix) {
            let identity = matrix.matmul(&inv).expect("dimensions match");
            prop_assert!(identity.approx_eq(&Matrix::identity(3), 1e-6));
        }
    }

    #[test]
    fn matrix_exponential_of_negated_matrix_is_the_inverse(matrix in small_matrix(2)) {
        let forward = expm(&matrix).expect("finite input");
        let backward = expm(&matrix.scale(-1.0)).expect("finite input");
        let product = forward.matmul(&backward).expect("dimensions match");
        prop_assert!(product.approx_eq(&Matrix::identity(2), 1e-7));
    }

    #[test]
    fn zoh_discretisation_shrinks_with_the_step(a in small_matrix(2), dt in 0.001f64..0.05) {
        let b = Matrix::column(&[0.0, 1.0]).expect("static");
        let (phi, gamma) = discretize_zoh(&a, &b, dt).expect("valid inputs");
        prop_assert_eq!(phi.shape(), (2, 2));
        prop_assert_eq!(gamma.shape(), (2, 1));
        prop_assert!(phi.is_finite());
        prop_assert!(gamma.is_finite());
        // As dt -> 0 the transition matrix approaches identity.
        let (phi_small, _) = discretize_zoh(&a, &b, dt / 100.0).expect("valid inputs");
        let dist_small = phi_small.sub_matrix(&Matrix::identity(2)).expect("shape").max_abs();
        let dist_large = phi.sub_matrix(&Matrix::identity(2)).expect("shape").max_abs();
        prop_assert!(dist_small <= dist_large + 1e-12);
    }

    #[test]
    fn lqr_closed_loop_is_schur_stable_for_controllable_double_integrator(
        q_scale in 0.1f64..10.0,
        r_scale in 0.01f64..10.0,
        h in 0.005f64..0.05,
    ) {
        let a = Matrix::from_rows(&[&[1.0, h], &[0.0, 1.0]]).expect("static");
        let b = Matrix::column(&[h * h / 2.0, h]).expect("static");
        let q = Matrix::identity(2).scale(q_scale);
        let r = Matrix::identity(1).scale(r_scale);
        let solution = dlqr(&a, &b, &q, &r, DareOptions::default()).expect("controllable pair");
        let closed = a.sub_matrix(&b.matmul(&solution.gain).expect("shape")).expect("shape");
        prop_assert!(spectral_radius(&closed).expect("finite") < 1.0);
    }

    // --- dwell-time models ----------------------------------------------

    #[test]
    fn conservative_model_dominates_non_monotonic_model(app in timing_params(), fraction in 0.0f64..1.0) {
        let non_monotonic = NonMonotonicModel::for_app(&app);
        let conservative = ConservativeMonotonicModel::for_app(&app);
        let wait = fraction * app.xi_et;
        prop_assert!(conservative.dwell(wait) + 1e-9 >= non_monotonic.dwell(wait));
    }

    #[test]
    fn simple_model_never_exceeds_non_monotonic_model(app in timing_params(), fraction in 0.0f64..1.0) {
        let non_monotonic = NonMonotonicModel::for_app(&app);
        let simple = SimpleMonotonicModel::for_app(&app);
        let wait = fraction * app.xi_et;
        prop_assert!(simple.dwell(wait) <= non_monotonic.dwell(wait) + 1e-9);
    }

    #[test]
    fn response_time_grows_with_wait_in_the_falling_region(app in timing_params(), f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        // Section III: *typically* the gradient of the falling segment lies in
        // (-1, 0) because xi_et - k_p exceeds xi_m; in that regime the total
        // response time keeps increasing with the wait. Restrict the property
        // to exactly that regime, as the paper does.
        prop_assume!(app.xi_m <= app.xi_et - app.k_p);
        let model = NonMonotonicModel::for_app(&app);
        let lo = app.k_p + f1.min(f2) * (app.xi_et - app.k_p);
        let hi = app.k_p + f1.max(f2) * (app.xi_et - app.k_p);
        prop_assert!(model.response_time(hi) + 1e-9 >= model.response_time(lo));
    }

    // --- wait-time analysis and allocation -------------------------------

    #[test]
    fn closed_form_bound_dominates_exact_fixed_point(
        apps in proptest::collection::vec(timing_params(), 2..6),
    ) {
        let slot: Vec<usize> = (0..apps.len()).collect();
        for index in 0..apps.len() {
            let bound = max_wait_time_bound(&apps, &slot, index, ModelKind::NonMonotonic);
            let exact = max_wait_time_fixed_point(&apps, &slot, index, ModelKind::NonMonotonic);
            match (bound, exact) {
                (Ok(bound), Ok(exact)) => prop_assert!(exact <= bound + 1e-9),
                (Err(_), Err(_)) => {}
                (left, right) => prop_assert!(false, "bound and fixed point disagree on feasibility: {left:?} vs {right:?}"),
            }
        }
    }

    #[test]
    fn allocations_are_valid_and_non_monotonic_never_needs_more_slots(
        apps in proptest::collection::vec(timing_params(), 1..6),
    ) {
        // Give every application a unique name so priorities are deterministic.
        let apps: Vec<AppTimingParams> = apps
            .into_iter()
            .enumerate()
            .map(|(index, mut app)| {
                app.name = format!("P{index}");
                app
            })
            .collect();
        let config = AllocatorConfig { max_slots: apps.len().max(1), ..AllocatorConfig::default() };
        let non_monotonic = allocate_slots(&apps, &config);
        let conservative = allocate_slots(
            &apps,
            &AllocatorConfig { model: ModelKind::ConservativeMonotonic, ..config },
        );
        if let (Ok(non_monotonic), Ok(conservative)) = (non_monotonic, conservative) {
            prop_assert!(non_monotonic.verify(&apps).expect("verification runs"));
            prop_assert!(conservative.verify(&apps).expect("verification runs"));
            prop_assert!(non_monotonic.slot_count() <= conservative.slot_count());
        }
    }

    #[test]
    fn optimal_allocation_is_a_verified_lower_bound_on_every_heuristic(
        apps in proptest::collection::vec(timing_params(), 1..6),
    ) {
        // Unique names keep priorities (and therefore the analysis)
        // deterministic.
        let apps: Vec<AppTimingParams> = apps
            .into_iter()
            .enumerate()
            .map(|(index, mut app)| {
                app.name = format!("P{index}");
                app
            })
            .collect();
        for model in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
            for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
                let base = AllocatorConfig {
                    model,
                    method,
                    max_slots: apps.len(),
                    ..AllocatorConfig::default()
                };
                let optimal = allocate_slots_optimal(&apps, &base);
                let mut any_greedy = false;
                for strategy in [
                    AllocationStrategy::NextFit,
                    AllocationStrategy::FirstFit,
                    AllocationStrategy::BestFit,
                ] {
                    if let Ok(greedy) =
                        allocate_slots(&apps, &AllocatorConfig { strategy, ..base })
                    {
                        any_greedy = true;
                        match &optimal {
                            // The exact minimum never exceeds any
                            // heuristic's count under the same model and
                            // method.
                            Ok(optimal) => prop_assert!(
                                optimal.slot_count() <= greedy.slot_count(),
                                "{model:?}/{method:?}/{strategy}: optimal {} > greedy {}",
                                optimal.slot_count(),
                                greedy.slot_count()
                            ),
                            Err(e) => prop_assert!(
                                false,
                                "{model:?}/{method:?}/{strategy}: greedy found a map but the exact search failed: {e}"
                            ),
                        }
                    }
                }
                if let Ok(optimal) = &optimal {
                    // The returned map passes the reference verification.
                    prop_assert!(optimal.verify(&apps).expect("verification runs"));
                } else {
                    // The exact search may only fail when every greedy
                    // heuristic failed too.
                    prop_assert!(!any_greedy, "{model:?}/{method:?}: greedy found a map the exact search missed");
                }
            }
        }
    }
}

/// One of the 2-state single-input case-study plants, selected by index.
fn stable_case_study_plant(index: usize) -> ContinuousStateSpace {
    match index {
        0 => plants::servo_position(),
        1 => plants::dc_motor_speed(),
        2 => plants::lane_keeping(),
        _ => plants::throttle_control(),
    }
}

/// Shared fixture for the batch-equivalence property: the derived fleet is
/// designed and characterised once per test process.
fn batch_fixture() -> &'static (Vec<ControlApplication>, SlotAllocation, ScenarioBatch) {
    static FIXTURE: OnceLock<(Vec<ControlApplication>, SlotAllocation, ScenarioBatch)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let apps = case_study::derived_fleet().expect("fleet design");
        let table = case_study::derive_table(&apps).expect("table derivation");
        let allocation = allocate_slots(&table, &AllocatorConfig::default()).expect("allocation");
        let batch = ScenarioBatch::new(
            apps.clone(),
            allocation.clone(),
            FlexRayConfig::paper_case_study(),
        )
        .expect("batch template");
        (apps, allocation, batch)
    })
}

// The characterisation / co-simulation properties below simulate whole
// transients per case, so they run fewer cases than the analytical block
// above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // --- characterization and the shared-immutable fleet ------------------

    #[test]
    fn kernel_characterization_with_early_exit_matches_full_horizon_curve(
        plant_index in 0usize..4,
        et_fast in -1.2f64..-0.6,
        et_spread in 0.05f64..0.4,
        tt_fast in -8.0f64..-4.0,
        tt_spread in 0.5f64..2.0,
        disturbance in 0.3f64..1.0,
    ) {
        let plant = stable_case_study_plant(plant_index);
        let h = case_study::CASE_STUDY_PERIOD;
        let et_sys = DelayedLtiSystem::from_continuous(&plant, h, h).expect("ET model");
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, h, case_study::CASE_STUDY_TT_DELAY)
            .expect("TT model");
        let et = design_by_pole_placement(&et_sys, &[et_fast, et_fast - et_spread, -40.0])
            .expect("ET design");
        let tt = design_by_pole_placement(&tt_sys, &[tt_fast, tt_fast - tt_spread, -40.0])
            .expect("TT design");
        let config = CharacterizationConfig {
            period: h,
            threshold: case_study::CASE_STUDY_THRESHOLD,
            initial_state: vec![disturbance, 0.0, 0.0],
            plant_order: 2,
            horizon: 1_500,
        };
        let fast = characterize_dwell_vs_wait(et.closed_loop(), tt.closed_loop(), &config)
            .expect("kernel path");
        let reference =
            characterize_dwell_vs_wait_reference(et.closed_loop(), tt.closed_loop(), &config)
                .expect("full-horizon reference");
        prop_assert_eq!(fast, reference);
    }

    #[test]
    fn arc_shared_batch_reproduces_per_worker_clone_outcomes(
        scale in 0.2f64..2.0,
        threshold_scale in 0.6f64..1.6,
        threads in 1usize..5,
    ) {
        let (apps, allocation, batch) = batch_fixture();
        let duration = 1.5;
        let spec = ScenarioSpec {
            label: "case".to_string(),
            disturbance_scale: scale,
            threshold_scale,
            ..ScenarioSpec::nominal(duration)
        };
        let outcomes = batch
            .clone()
            .with_threads(threads)
            .run(std::slice::from_ref(&spec))
            .expect("shared-fleet batch");
        prop_assert_eq!(outcomes.len(), 1);

        // The pre-refactor worker behaviour: deep-clone the designed
        // applications into a private engine and simulate the scenario.
        let mut engine =
            CoSimulation::new(apps.clone(), allocation, FlexRayConfig::paper_case_study())
                .expect("per-clone engine");
        engine.set_threshold_scale(threshold_scale).expect("threshold");
        engine.inject_disturbances_scaled(scale).expect("disturbances");
        let trace = engine.run(duration).expect("run");

        let outcome = &outcomes[0];
        prop_assert_eq!(outcome.all_deadlines_met, trace.all_deadlines_met());
        let response_times: Vec<Option<f64>> =
            trace.apps.iter().map(|a| a.response_time).collect();
        prop_assert_eq!(&outcome.response_times, &response_times);
        let peak_norms: Vec<f64> = trace
            .apps
            .iter()
            .map(|a| a.points.iter().map(|p| p.norm).fold(0.0, f64::max))
            .collect();
        prop_assert_eq!(&outcome.peak_norms, &peak_norms);
        let tt_periods: Vec<usize> = trace
            .apps
            .iter()
            .map(|a| {
                a.points
                    .iter()
                    .filter(|p| p.mode == automotive_cps::control::CommunicationMode::TimeTriggered)
                    .count()
            })
            .collect();
        prop_assert_eq!(&outcome.tt_periods, &tt_periods);
        prop_assert_eq!(outcome.static_transmissions, trace.bus_statistics.static_transmissions);
        prop_assert_eq!(
            outcome.dynamic_transmissions,
            trace.bus_statistics.dynamic_transmissions
        );
    }
}
