//! End-to-end tests of the fail-operational design service (`cps-serve`):
//! nominal bit-identity against the direct pipeline, artifact caching and
//! single-flight deduplication, graceful degradation under node budgets,
//! watchdog degradation of a *parallel* exact search mid-flight (the
//! deadline token aggregates across the portfolio's workers and the greedy
//! incumbent is served uncertified), load shedding, panic isolation,
//! structured deadline timeouts, clean
//! rejection of malformed frames, and a deterministic chaos soak in which
//! every accepted request reaches a terminal response while the server
//! survives every injected fault.
//!
//! Every scenario runs over *both* transports — the Unix socket and the
//! TCP listener — through the same helpers, plus streaming-specific tests:
//! the streamed campaign's terminal frame is bit-identical to the
//! non-streamed response, progress totals are strictly monotone, and
//! dropping a stream cancels the campaign server-side.

use automotive_cps::core::{case_study, ApplicationSpec, FleetDesigner};
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::sched::{AllocatorConfig, AppTimingParams};
use automotive_cps::serve::{
    design_job, CampaignJob, ChaosConfig, DesignClient, DesignServer, Endpoint, ErrorKind, Job,
    Outcome, RequestOptions, Response, RetryPolicy, ServerConfig, ServerHandle, SweepJob,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The transport a scenario runs over; every scenario has a Unix and a TCP
/// variant driving identical logic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Transport {
    Unix,
    Tcp,
}

fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cps-serve-{name}-{}.sock", std::process::id()))
}

fn fleet_specs() -> Vec<ApplicationSpec> {
    case_study::derived_fleet_specs()
}

fn nominal_job() -> Job {
    Job::Design(design_job(
        &fleet_specs(),
        &AllocatorConfig::default(),
        &FlexRayConfig::paper_case_study(),
    ))
}

fn nominal_design() -> automotive_cps::serve::DesignJob {
    match nominal_job() {
        Job::Design(design) => design,
        _ => unreachable!(),
    }
}

fn start(name: &str, transport: Transport, configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::new(socket_path(name));
    if transport == Transport::Tcp {
        config.tcp_addr = Some("127.0.0.1:0".parse().expect("loopback addr"));
    }
    configure(&mut config);
    DesignServer::start(config).expect("server starts")
}

/// The client-side address of `server` over `transport` (cloneable into
/// worker threads).
fn endpoint(server: &ServerHandle, transport: Transport) -> Endpoint {
    match transport {
        Transport::Unix => Endpoint::Unix(server.socket_path().to_path_buf()),
        Transport::Tcp => Endpoint::Tcp(server.tcp_addr().expect("tcp listener bound")),
    }
}

fn client(server: &ServerHandle, transport: Transport) -> DesignClient {
    DesignClient::connect_to(endpoint(server, transport))
}

/// A raw (frame-level) connection for protocol-abuse tests.
enum RawConn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl RawConn {
    fn connect(server: &ServerHandle, transport: Transport) -> Self {
        match transport {
            Transport::Unix => {
                RawConn::Unix(UnixStream::connect(server.socket_path()).expect("connect"))
            }
            Transport::Tcp => {
                RawConn::Tcp(TcpStream::connect(server.tcp_addr().expect("bound")).expect("connect"))
            }
        }
    }

    fn shutdown_write(&self) {
        match self {
            RawConn::Unix(stream) => stream.shutdown(std::net::Shutdown::Write).unwrap(),
            RawConn::Tcp(stream) => stream.shutdown(std::net::Shutdown::Write).unwrap(),
        }
    }
}

impl Read for RawConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            RawConn::Unix(stream) => stream.read(buf),
            RawConn::Tcp(stream) => stream.read(buf),
        }
    }
}

impl Write for RawConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            RawConn::Unix(stream) => stream.write(buf),
            RawConn::Tcp(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            RawConn::Unix(stream) => stream.flush(),
            RawConn::Tcp(stream) => stream.flush(),
        }
    }
}

fn fast_retries(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        jitter_seed: seed,
    }
}

/// The direct-pipeline reference: exact optimal design of the derived fleet.
fn reference_design() -> (Vec<Vec<usize>>, Vec<AppTimingParams>) {
    let fleet = FleetDesigner::new()
        .design_fleet_optimal(
            fleet_specs(),
            &AllocatorConfig::default(),
            FlexRayConfig::paper_case_study(),
        )
        .expect("direct design");
    let table = fleet.timing_table().expect("table").as_ref().clone();
    (fleet.allocation().slots.clone(), table)
}

fn assert_tables_bit_identical(served: &[AppTimingParams], direct: &[AppTimingParams]) {
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(direct) {
        assert_eq!(s.name, d.name);
        for (a, b) in [
            (s.inter_arrival, d.inter_arrival),
            (s.deadline, d.deadline),
            (s.xi_tt, d.xi_tt),
            (s.xi_et, d.xi_et),
            (s.xi_m, d.xi_m),
            (s.k_p, d.k_p),
            (s.xi_prime_m, d.xi_prime_m),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "timing tables must be bit-identical");
        }
    }
}

fn assert_slots_match(served: &[Vec<u32>], direct: &[Vec<usize>]) {
    let widened: Vec<Vec<usize>> =
        served.iter().map(|slot| slot.iter().map(|&a| a as usize).collect()).collect();
    assert_eq!(&widened, direct);
}

fn nominal_design_scenario(name: &str, transport: Transport) {
    let (direct_slots, direct_table) = reference_design();
    let mut server = start(name, transport, |_| {});
    let mut client = client(&server, transport);

    let first = client.request(nominal_job(), RequestOptions::default()).expect("first request");
    let Outcome::Design(first) = first else { panic!("expected a design outcome: {first:?}") };
    assert!(first.certified_optimal, "the unpressured exact search certifies");
    assert!(!first.from_cache, "the first request computes");
    assert_slots_match(&first.slots, &direct_slots);
    assert_tables_bit_identical(&first.table, &direct_table);

    // The identical job is served from the artifact cache, bit-identically —
    // over the client's *reused* pooled connection.
    let second = client.request(nominal_job(), RequestOptions::default()).expect("second request");
    let Outcome::Design(second) = second else { panic!("expected a design outcome") };
    assert!(second.from_cache, "the second request hits the cache");
    assert_slots_match(&second.slots, &direct_slots);
    assert_tables_bit_identical(&second.table, &direct_table);
    assert_eq!(client.idle_connections(), 1, "a healthy connection returns to the pool");

    let stats = server.stats();
    assert_eq!(stats.designs_computed, 1, "one computation serves both requests");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.connections, 1, "connection reuse: both requests share one connection");
    assert_eq!(server.cached_artifacts(), 1);
    server.shutdown();
}

#[test]
fn nominal_design_is_bit_identical_to_the_direct_pipeline_unix() {
    nominal_design_scenario("nominal-unix", Transport::Unix);
}

#[test]
fn nominal_design_is_bit_identical_to_the_direct_pipeline_tcp() {
    nominal_design_scenario("nominal-tcp", Transport::Tcp);
}

#[test]
fn both_transports_serve_one_cache_simultaneously() {
    let (direct_slots, _) = reference_design();
    let mut server = start("dual", Transport::Tcp, |_| {});

    // Compute over Unix, then hit the same artifact cache over TCP: the
    // transports are fronts for one shared server.
    let mut over_unix = client(&server, Transport::Unix);
    let first = over_unix.request(nominal_job(), RequestOptions::default()).expect("unix request");
    let Outcome::Design(first) = first else { panic!("expected a design outcome") };
    assert!(!first.from_cache);
    assert_slots_match(&first.slots, &direct_slots);

    let mut over_tcp = client(&server, Transport::Tcp);
    let second = over_tcp.request(nominal_job(), RequestOptions::default()).expect("tcp request");
    let Outcome::Design(second) = second else { panic!("expected a design outcome") };
    assert!(second.from_cache, "the TCP request must hit the Unix-computed artifact");
    assert_slots_match(&second.slots, &direct_slots);

    let stats = server.stats();
    assert_eq!(stats.designs_computed, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.connections, 2);
    server.shutdown();
}

fn single_flight_scenario(name: &str, transport: Transport) {
    let server = start(name, transport, |config| {
        config.workers = 4;
        config.queue_depth = 16;
    });
    let address = endpoint(&server, transport);

    let handles: Vec<_> = (0..4)
        .map(|seed| {
            let address = address.clone();
            std::thread::spawn(move || {
                let mut client =
                    DesignClient::connect_to(address).with_retry_policy(fast_retries(seed));
                client.request(nominal_job(), RequestOptions::default())
            })
        })
        .collect();
    let mut slot_maps = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread").expect("request succeeds") {
            Outcome::Design(result) => slot_maps.push(result.slots),
            other => panic!("expected a design outcome: {other:?}"),
        }
    }
    assert!(slot_maps.windows(2).all(|pair| pair[0] == pair[1]), "all answers identical");

    let stats = server.stats();
    assert_eq!(
        stats.designs_computed, 1,
        "four concurrent identical requests must compute exactly once \
         (deduped {}, cache hits {})",
        stats.deduped, stats.cache_hits
    );
    assert_eq!(stats.deduped + stats.cache_hits, 3);
}

#[test]
fn single_flight_deduplicates_concurrent_identical_requests_unix() {
    single_flight_scenario("dedup-unix", Transport::Unix);
}

#[test]
fn single_flight_deduplicates_concurrent_identical_requests_tcp() {
    single_flight_scenario("dedup-tcp", Transport::Tcp);
}

fn degradation_scenario(name: &str, transport: Transport) {
    let (direct_slots, _) = reference_design();
    let mut server = start(name, transport, |_| {});
    let mut client = client(&server, transport);

    // A one-node budget cuts the exact search immediately after the root:
    // the greedy incumbent is served, flagged as uncertified.
    let degraded = client
        .request(nominal_job(), RequestOptions { node_budget: 1, ..RequestOptions::default() })
        .expect("degraded request");
    let Outcome::Design(degraded) = degraded else { panic!("expected a design outcome") };
    assert!(!degraded.certified_optimal, "a budget cut must be reported");
    assert!(
        degraded.slots.len() >= direct_slots.len(),
        "the greedy incumbent can never beat the exact optimum"
    );

    // `require_certified` treats the degraded cache entry as a miss and
    // recomputes at full fidelity.
    let certified = client
        .request(nominal_job(), RequestOptions { require_certified: true, ..RequestOptions::default() })
        .expect("certified request");
    let Outcome::Design(certified) = certified else { panic!("expected a design outcome") };
    assert!(certified.certified_optimal);
    assert_slots_match(&certified.slots, &direct_slots);
    assert_eq!(server.stats().designs_computed, 2);

    // The certified artifact replaced the degraded one: both fidelity
    // levels are now cache hits.
    let reused = client
        .request(nominal_job(), RequestOptions { require_certified: true, ..RequestOptions::default() })
        .expect("reuse request");
    let Outcome::Design(reused) = reused else { panic!("expected a design outcome") };
    assert!(reused.from_cache && reused.certified_optimal);
    server.shutdown();
}

#[test]
fn node_budget_exhaustion_degrades_to_the_greedy_incumbent_unix() {
    degradation_scenario("degrade-unix", Transport::Unix);
}

#[test]
fn node_budget_exhaustion_degrades_to_the_greedy_incumbent_tcp() {
    degradation_scenario("degrade-tcp", Transport::Tcp);
}

fn overload_scenario(name: &str, transport: Transport) {
    let server = start(name, transport, |config| {
        config.workers = 1;
        config.queue_depth = 1;
        config.chaos = Some(ChaosConfig {
            seed: 5,
            worker_stall_probability: 1.0,
            stall_ms: 300,
            ..ChaosConfig::default()
        });
    });
    let address = endpoint(&server, transport);

    // Six impatient clients (no retries) flood a 1-worker/1-slot server
    // whose worker stalls 300 ms per job: the queue bound forces sheds.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let address = address.clone();
            std::thread::spawn(move || {
                let mut client = DesignClient::connect_to(address).with_retry_policy(RetryPolicy {
                    max_attempts: 1,
                    ..RetryPolicy::default()
                });
                client.request(nominal_job(), RequestOptions::default())
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().expect("client")).collect();
    let shed_seen = outcomes.iter().any(|outcome| {
        matches!(outcome, Err(e) if e.to_string().contains("busy"))
    });
    assert!(shed_seen, "a flooded bounded queue must shed: {outcomes:?}");
    assert!(server.stats().shed >= 1);

    // A patient client retries through the backlog and succeeds.
    let mut patient = DesignClient::connect_to(address).with_retry_policy(RetryPolicy {
        max_attempts: 30,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(200),
        jitter_seed: 11,
    });
    let outcome = patient.request(nominal_job(), RequestOptions::default()).expect("retry wins");
    assert!(matches!(outcome, Outcome::Design(_)));
}

#[test]
fn overload_sheds_requests_instead_of_queueing_unboundedly_unix() {
    overload_scenario("shed-unix", Transport::Unix);
}

#[test]
fn overload_sheds_requests_instead_of_queueing_unboundedly_tcp() {
    overload_scenario("shed-tcp", Transport::Tcp);
}

fn panic_isolation_scenario(name: &str, transport: Transport) {
    let mut server = start(name, transport, |config| {
        config.chaos = Some(ChaosConfig {
            seed: 3,
            worker_panic_probability: 1.0,
            ..ChaosConfig::default()
        });
    });
    let mut impatient = client(&server, transport)
        .with_retry_policy(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });

    for _ in 0..3 {
        // Every job panics; the isolation layer still *answers* each
        // request — the client sees a retryable WorkerPanic, not a hang.
        let result = impatient.request(nominal_job(), RequestOptions::default());
        match result {
            Err(error) => assert!(
                error.to_string().contains("induced worker panic"),
                "the panic payload surfaces in the structured error: {error}"
            ),
            Ok(outcome) => panic!("expected exhausted retries, got {outcome:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 3);
    assert_eq!(stats.requests, 3, "the server answered every request despite the panics");
    assert!(server.cached_artifacts() == 0, "a panicking job must not poison the cache");
    server.shutdown();
}

#[test]
fn worker_panics_become_structured_errors_and_the_server_survives_unix() {
    panic_isolation_scenario("panic-unix", Transport::Unix);
}

#[test]
fn worker_panics_become_structured_errors_and_the_server_survives_tcp() {
    panic_isolation_scenario("panic-tcp", Transport::Tcp);
}

fn deadline_scenario(name: &str, transport: Transport) {
    let mut server = start(name, transport, |config| {
        config.grace = Duration::from_millis(500);
    });
    let mut client = client(&server, transport);

    // A campaign far too large for a 100 ms deadline: the watchdog flips
    // the token, the pipeline stops at a cooperative checkpoint, and the
    // client receives a *terminal* DeadlineExceeded (never retried).
    let job = Job::Campaign(CampaignJob {
        design: nominal_design(),
        seed: 42,
        drop_probabilities: vec![0.0, 0.2, 0.4],
        scenarios_per_intensity: 10_000,
        duration: 1.0,
        alpha: 0.05,
        progress_every: 0,
    });
    let started = Instant::now();
    let outcome = client
        .request(job, RequestOptions { deadline_ms: 100, ..RequestOptions::default() })
        .expect("a deadline failure is a terminal outcome, not a client error");
    let elapsed = started.elapsed();
    assert!(
        matches!(outcome, Outcome::Error { kind: ErrorKind::DeadlineExceeded, .. }),
        "expected DeadlineExceeded, got {outcome:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "the response must arrive promptly, not after the full campaign ({elapsed:?})"
    );
    assert!(server.stats().deadline_expired >= 1);

    // The same server still serves nominal work afterwards.
    let outcome = client.request(nominal_job(), RequestOptions::default()).expect("nominal");
    assert!(matches!(outcome, Outcome::Design(_)));
    server.shutdown();
}

#[test]
fn deadlines_produce_structured_timeouts_within_the_grace_window_unix() {
    deadline_scenario("deadline-unix", Transport::Unix);
}

#[test]
fn deadlines_produce_structured_timeouts_within_the_grace_window_tcp() {
    deadline_scenario("deadline-tcp", Transport::Tcp);
}

fn malformed_frames_scenario(name: &str, transport: Transport) {
    let mut server = start(name, transport, |_| {});

    // An announced frame length beyond the cap: structured Protocol error,
    // before any allocation, then the connection is dropped.
    let mut stream = RawConn::connect(&server, transport);
    stream.write_all(&(automotive_cps::serve::MAX_FRAME as u32 + 1).to_le_bytes()).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("server answers then closes");
    assert!(!reply.is_empty(), "an oversized frame earns an error response");

    // A frame whose payload is garbage: structured Protocol error.
    let mut stream = RawConn::connect(&server, transport);
    stream.write_all(&10u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xFF; 10]).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("server answers then closes");
    assert!(!reply.is_empty(), "a garbage payload earns an error response");

    // A truncated frame (connection closed mid-prefix): the handler drops
    // the connection without dying.
    let mut stream = RawConn::connect(&server, transport);
    stream.write_all(&[0x01, 0x02]).unwrap();
    stream.shutdown_write();
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);

    assert!(server.stats().protocol_errors >= 2);

    // The server survived all of it.
    let mut client = client(&server, transport);
    let outcome = client.request(nominal_job(), RequestOptions::default()).expect("still alive");
    assert!(matches!(outcome, Outcome::Design(_)));
    server.shutdown();
}

#[test]
fn malformed_frames_are_rejected_cleanly_unix() {
    malformed_frames_scenario("malformed-unix", Transport::Unix);
}

#[test]
fn malformed_frames_are_rejected_cleanly_tcp() {
    malformed_frames_scenario("malformed-tcp", Transport::Tcp);
}

#[test]
fn shutdown_is_quiescent_with_connections_open() {
    let mut server = start("quiesce", Transport::Tcp, |_| {});
    // Handlers blocked mid-read on both transports when shutdown arrives.
    let idle_unix = RawConn::connect(&server, Transport::Unix);
    let idle_tcp = RawConn::connect(&server, Transport::Tcp);
    // Give the accept loops a beat to register the handlers.
    let registered = Instant::now();
    while server.live_handlers() < 2 && registered.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.live_handlers(), 2);
    server.shutdown();
    assert_eq!(
        server.live_handlers(),
        0,
        "shutdown must be quiescent: no handler may outlive it"
    );
    drop(idle_unix);
    drop(idle_tcp);
}

// ---------------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------------

fn small_campaign(progress_every: u64) -> CampaignJob {
    CampaignJob {
        design: nominal_design(),
        seed: 42,
        drop_probabilities: vec![0.0, 0.3],
        scenarios_per_intensity: 4,
        duration: 0.5,
        alpha: 0.05,
        progress_every,
    }
}

fn streaming_scenario(name: &str, transport: Transport) {
    let mut server = start(name, transport, |_| {});
    let mut client = client(&server, transport);

    // Prime the artifact cache so the streamed and non-streamed responses
    // agree on `from_cache` and differ in nothing at all.
    let primed = client.request(nominal_job(), RequestOptions::default()).expect("prime");
    assert!(matches!(primed, Outcome::Design(_)));

    let reference = client
        .request(Job::Campaign(small_campaign(0)), RequestOptions::default())
        .expect("non-streamed campaign");
    let Outcome::Campaign(reference) = reference else {
        panic!("expected a campaign outcome: {reference:?}")
    };

    let stream = client
        .stream_campaign(small_campaign(1), RequestOptions::default())
        .expect("stream starts");
    let mut progress_totals = Vec::new();
    let mut terminal = None;
    for item in stream {
        let outcome = item.expect("stream item");
        match outcome {
            Outcome::Progress(progress) => {
                assert_eq!(progress.families.len(), 2, "one snapshot per family");
                for family in &progress.families {
                    assert!(family.scenarios <= progress.total);
                    assert!(family.lower <= family.estimate && family.estimate <= family.upper);
                }
                progress_totals.push(progress.total);
            }
            other => {
                assert!(terminal.is_none(), "exactly one terminal frame");
                terminal = Some(other);
            }
        }
    }
    let terminal = terminal.expect("the stream must end with a terminal frame");

    // Progress frames: present, strictly monotone, all proper prefixes.
    assert!(!progress_totals.is_empty(), "progress_every=1 must emit snapshots");
    assert!(
        progress_totals.windows(2).all(|pair| pair[0] < pair[1]),
        "progress totals must be strictly monotone: {progress_totals:?}"
    );
    assert!(progress_totals.iter().all(|&total| total < 8), "snapshots are proper prefixes");

    // The terminal frame is bit-identical to the non-streamed response:
    // same decoded value *and* identical encoded bytes.
    let Outcome::Campaign(streamed) = &terminal else {
        panic!("expected a campaign outcome: {terminal:?}")
    };
    assert_eq!(streamed.total, 8);
    assert_eq!(streamed, &reference);
    let reference_bytes = Response { id: 1, outcome: Outcome::Campaign(reference) }.encode();
    let streamed_bytes = Response { id: 1, outcome: terminal }.encode();
    assert_eq!(
        reference_bytes, streamed_bytes,
        "the streamed terminal frame must be bit-identical to the non-streamed response"
    );

    assert_eq!(server.stats().progress_frames, progress_totals.len() as u64);
    server.shutdown();
}

#[test]
fn streamed_terminal_frame_is_bit_identical_to_the_non_streamed_response_unix() {
    streaming_scenario("stream-unix", Transport::Unix);
}

#[test]
fn streamed_terminal_frame_is_bit_identical_to_the_non_streamed_response_tcp() {
    streaming_scenario("stream-tcp", Transport::Tcp);
}

#[test]
fn dropping_the_stream_cancels_the_campaign() {
    let mut server = start("stream-cancel", Transport::Unix, |config| {
        config.workers = 1;
    });
    let mut client = client(&server, Transport::Unix);

    // A campaign that would take far too long to finish, streaming every
    // scenario. Read one progress frame, then drop the stream.
    let huge = CampaignJob {
        design: nominal_design(),
        seed: 7,
        drop_probabilities: vec![0.0, 0.2, 0.4],
        scenarios_per_intensity: 100_000,
        duration: 1.0,
        alpha: 0.05,
        progress_every: 1,
    };
    let mut stream = client.stream_campaign(huge, RequestOptions::default()).expect("stream");
    let first = stream.next().expect("one item").expect("progress frame");
    assert!(matches!(first, Outcome::Progress(_)), "expected progress, got {first:?}");
    drop(stream);

    // The server must notice the dead stream and fire the cancel token.
    let waited = Instant::now();
    while server.stats().streams_cancelled == 0 && waited.elapsed() < Duration::from_secs(30) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().streams_cancelled, 1, "the abandoned stream must cancel");

    // The single worker is free again promptly: a cancelled campaign does
    // not run to completion in the background.
    let mut retrying = DesignClient::connect_to(endpoint(&server, Transport::Unix))
        .with_retry_policy(fast_retries(3));
    let outcome = retrying.request(nominal_job(), RequestOptions::default()).expect("worker free");
    assert!(matches!(outcome, Outcome::Design(_)));
    server.shutdown();
}

/// The deterministic chaos soak: a seeded fault mix (worker panics, stalls,
/// dropped, truncated and corrupted responses) against a retrying client.
/// Every request must reach a terminal outcome, delivered design answers
/// must be bit-identical to the direct pipeline, the server must survive,
/// and the entire run must replay identically from the same seeds.
/// Campaign rounds stream (`progress_every = 1`), so the soak also drives
/// progress frames through the fault mix.
fn chaos_soak(name: &str, transport: Transport) -> (Vec<String>, u64) {
    let (direct_slots, direct_table) = reference_design();
    let server = start(name, transport, |config| {
        config.workers = 2;
        config.queue_depth = 8;
        config.chaos = Some(ChaosConfig {
            seed: 0xC4A05,
            worker_panic_probability: 0.15,
            worker_stall_probability: 0.05,
            stall_ms: 50,
            drop_connection_probability: 0.10,
            truncate_response_probability: 0.05,
            corrupt_response_probability: 0.05,
        });
    });
    let mut client = client(&server, transport).with_retry_policy(fast_retries(7));

    let design = nominal_design();
    let mut kinds = Vec::new();
    for round in 0..30u64 {
        let (job, options) = match round % 4 {
            0 => (Job::Design(design.clone()), RequestOptions::default()),
            1 => (
                Job::Design(design.clone()),
                RequestOptions { node_budget: 1, ..RequestOptions::default() },
            ),
            2 => (
                Job::Sweep(SweepJob {
                    design: design.clone(),
                    cycle_lengths: vec![0.005, 0.01],
                    static_slot_counts: vec![4, 10],
                    slot_lengths: vec![],
                }),
                RequestOptions::default(),
            ),
            _ => (
                Job::Campaign(CampaignJob {
                    design: design.clone(),
                    seed: round,
                    drop_probabilities: vec![0.0, 0.3],
                    scenarios_per_intensity: 2,
                    duration: 0.5,
                    alpha: 0.05,
                    progress_every: 1,
                }),
                RequestOptions::default(),
            ),
        };
        let outcome = client
            .request(job, options)
            .unwrap_or_else(|error| panic!("request {round} never went terminal: {error}"));
        // Chaos corrupts transport, never answers: any delivered design is
        // still bit-identical to the direct pipeline.
        if let Outcome::Design(result) = &outcome {
            if result.certified_optimal {
                assert_slots_match(&result.slots, &direct_slots);
                assert_tables_bit_identical(&result.table, &direct_table);
            } else {
                assert!(result.slots.len() >= direct_slots.len());
            }
        }
        kinds.push(match &outcome {
            Outcome::Design(result) => format!("design(certified={})", result.certified_optimal),
            Outcome::Sweep(result) => format!("sweep(rows={})", result.rows.len()),
            Outcome::Campaign(result) => format!("campaign(total={})", result.total),
            Outcome::Busy => "busy".to_string(),
            Outcome::Progress(_) => unreachable!("request() never returns a non-terminal frame"),
            Outcome::Error { kind, .. } => format!("error({kind})"),
        });
    }
    let stats = server.stats();
    assert!(stats.worker_panics > 0, "the soak must actually exercise panic isolation");
    assert!(
        stats.requests > 30,
        "retries must have re-entered the server (requests = {})",
        stats.requests
    );
    (kinds, stats.worker_panics)
}

fn chaos_soak_scenario(prefix: &str, transport: Transport) {
    let (first, first_panics) = chaos_soak(&format!("{prefix}-a"), transport);
    assert!(first.iter().all(|kind| !kind.starts_with("error(")
        || kind.contains("deadline")), "no request may end in a non-deadline error: {first:?}");
    // Same chaos seed, same request sequence, same jitter seed: the whole
    // fault schedule — and therefore every terminal outcome — replays.
    let (second, second_panics) = chaos_soak(&format!("{prefix}-b"), transport);
    assert_eq!(first, second, "the chaos soak must be deterministic");
    assert_eq!(first_panics, second_panics);
}

#[test]
fn chaos_soak_terminates_every_request_and_replays_deterministically_unix() {
    chaos_soak_scenario("soak-unix", Transport::Unix);
}

#[test]
fn chaos_soak_terminates_every_request_and_replays_deterministically_tcp() {
    chaos_soak_scenario("soak-tcp", Transport::Tcp);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Round trip: an arbitrary campaign request (floats, vectors, flags)
    // encodes and decodes to itself exactly.
    #[test]
    fn wire_requests_round_trip(
        id in 0usize..1_000_000,
        deadline in 0usize..100_000,
        budget in 0usize..1_000_000,
        seed in 0usize..1_000_000,
        drops in proptest::collection::vec(0.0f64..1.0, 0..6),
        scenarios in 0usize..10_000,
        duration in 0.01f64..10.0,
        alpha in 0.001f64..0.5,
        every in 0usize..512,
    ) {
        let request = automotive_cps::serve::Request {
            id: id as u64,
            deadline_ms: deadline as u32,
            node_budget: budget as u64,
            require_certified: seed % 2 == 0,
            job: Job::Campaign(CampaignJob {
                design: match nominal_job() { Job::Design(d) => d, _ => unreachable!() },
                seed: seed as u64,
                drop_probabilities: drops,
                scenarios_per_intensity: scenarios as u64,
                duration,
                alpha,
                progress_every: every as u64,
            }),
        };
        let decoded = automotive_cps::serve::Request::decode(&request.encode());
        prop_assert_eq!(decoded.expect("round trip"), request);
    }

    // Adversarial decode: truncations and byte flips of a valid payload
    // must produce a clean Ok/Err — never a panic, hang or huge allocation.
    #[test]
    fn mangled_wire_payloads_never_panic(
        cut in 0.0f64..1.0,
        flip_pos in 0.0f64..1.0,
        flip_mask in 1usize..256,
    ) {
        let request = automotive_cps::serve::Request {
            id: 7,
            deadline_ms: 5,
            node_budget: 9,
            require_certified: true,
            job: nominal_job(),
        };
        let bytes = request.encode();
        let truncated = &bytes[..(cut * bytes.len() as f64) as usize];
        let _ = automotive_cps::serve::Request::decode(truncated);
        let mut flipped = bytes.clone();
        let pos = (flip_pos * (bytes.len() - 1) as f64) as usize;
        flipped[pos] ^= flip_mask as u8;
        let _ = automotive_cps::serve::Request::decode(&flipped);
        let _ = automotive_cps::serve::Response::decode(&flipped);
        // Oversized collection counts must be rejected before allocating.
        let mut huge = bytes;
        huge[21] = 0xff;
        huge[22] = 0xff;
        huge[23] = 0xff;
        prop_assert!(automotive_cps::serve::Request::decode(&huge).is_err());
    }
}

fn parallel_watchdog_scenario(name: &str, transport: Transport) {
    // Four copies of the derived case-study fleet with deadlines halved
    // (each copy de-tuned by 1.3 % so no two applications are identical):
    // 24 applications whose greedy incumbent needs 8 slots against an exact
    // optimum of 7, with an optimality proof of ~1e8 search nodes. Greedy
    // characterisation finishes in tens of milliseconds (release) while the
    // exact search runs for tens of seconds even across 4 portfolio
    // workers, so a 4 s request deadline reliably lands *inside* the
    // parallel search — the regime this scenario pins down.
    let mut specs = Vec::new();
    for copy in 0..4usize {
        for mut spec in fleet_specs() {
            spec.name = format!("{}-{copy}", spec.name);
            spec.deadline *= 0.5 * (1.0 + copy as f64 * 0.013);
            specs.push(spec);
        }
    }
    let job = Job::Design(design_job(
        &specs,
        &AllocatorConfig { max_slots: specs.len(), ..AllocatorConfig::default() },
        &FlexRayConfig::paper_case_study(),
    ));

    let mut server = start(name, transport, |config| {
        config.allocator_threads = 4;
        config.grace = Duration::from_secs(10);
    });
    let mut client = client(&server, transport);

    // The watchdog flips the token mid-search; the budget/cancel plumbing
    // aggregates it across all four workers, every subtree search cuts, and
    // the service answers with the greedy incumbent instead of erroring:
    // a *degraded design*, not a DeadlineExceeded.
    let started = Instant::now();
    let outcome = client
        .request(job, RequestOptions { deadline_ms: 4_000, ..RequestOptions::default() })
        .expect("a mid-search deadline degrades, it does not error");
    let elapsed = started.elapsed();
    let Outcome::Design(degraded) = outcome else {
        panic!("expected a degraded design outcome, got {outcome:?}")
    };
    assert!(
        !degraded.certified_optimal,
        "a search cut mid-proof must be reported as uncertified"
    );
    // The incumbent bracket: never better than the exact optimum (7 slots,
    // certified by the release-mode probe at ~1.2e8 nodes), never worse
    // than the greedy seed (8 slots).
    assert!(
        (7..=8).contains(&degraded.slots.len()),
        "the incumbent must sit between the optimum and the greedy seed, \
         got {} slots",
        degraded.slots.len()
    );
    assert!(
        elapsed < Duration::from_secs(20),
        "the degraded answer must arrive promptly after the watchdog fires, \
         not after the full proof ({elapsed:?})"
    );
    let stats = server.stats();
    assert_eq!(
        stats.deadline_expired, 0,
        "a degraded design is a successful response, not an expired one"
    );
    assert_eq!(stats.designs_computed, 1);

    // The same server still serves nominal work at full fidelity.
    let outcome = client.request(nominal_job(), RequestOptions::default()).expect("nominal");
    let Outcome::Design(nominal) = outcome else { panic!("expected a design outcome") };
    assert!(nominal.certified_optimal);
    server.shutdown();
}

#[test]
fn watchdog_degrades_a_parallel_search_to_the_greedy_incumbent_unix() {
    parallel_watchdog_scenario("parallel-watchdog-unix", Transport::Unix);
}

#[test]
fn watchdog_degrades_a_parallel_search_to_the_greedy_incumbent_tcp() {
    parallel_watchdog_scenario("parallel-watchdog-tcp", Transport::Tcp);
}
