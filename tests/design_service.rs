//! End-to-end tests of the fail-operational design service (`cps-serve`):
//! nominal bit-identity against the direct pipeline, artifact caching and
//! single-flight deduplication, graceful degradation under node budgets,
//! load shedding, panic isolation, structured deadline timeouts, clean
//! rejection of malformed frames, and a deterministic chaos soak in which
//! every accepted request reaches a terminal response while the server
//! survives every injected fault.

use automotive_cps::core::{case_study, ApplicationSpec, FleetDesigner};
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::sched::{AllocatorConfig, AppTimingParams};
use automotive_cps::serve::{
    design_job, CampaignJob, ChaosConfig, DesignClient, DesignServer, ErrorKind, Job, Outcome,
    RequestOptions, RetryPolicy, ServerConfig, ServerHandle, SweepJob,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn socket_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cps-serve-{name}-{}.sock", std::process::id()))
}

fn fleet_specs() -> Vec<ApplicationSpec> {
    case_study::derived_fleet_specs()
}

fn nominal_job() -> Job {
    Job::Design(design_job(
        &fleet_specs(),
        &AllocatorConfig::default(),
        &FlexRayConfig::paper_case_study(),
    ))
}

fn start(name: &str, configure: impl FnOnce(&mut ServerConfig)) -> ServerHandle {
    let mut config = ServerConfig::new(socket_path(name));
    configure(&mut config);
    DesignServer::start(config).expect("server starts")
}

fn fast_retries(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        jitter_seed: seed,
    }
}

/// The direct-pipeline reference: exact optimal design of the derived fleet.
fn reference_design() -> (Vec<Vec<usize>>, Vec<AppTimingParams>) {
    let fleet = FleetDesigner::new()
        .design_fleet_optimal(
            fleet_specs(),
            &AllocatorConfig::default(),
            FlexRayConfig::paper_case_study(),
        )
        .expect("direct design");
    let table = fleet.timing_table().expect("table").as_ref().clone();
    (fleet.allocation().slots.clone(), table)
}

fn assert_tables_bit_identical(served: &[AppTimingParams], direct: &[AppTimingParams]) {
    assert_eq!(served.len(), direct.len());
    for (s, d) in served.iter().zip(direct) {
        assert_eq!(s.name, d.name);
        for (a, b) in [
            (s.inter_arrival, d.inter_arrival),
            (s.deadline, d.deadline),
            (s.xi_tt, d.xi_tt),
            (s.xi_et, d.xi_et),
            (s.xi_m, d.xi_m),
            (s.k_p, d.k_p),
            (s.xi_prime_m, d.xi_prime_m),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "timing tables must be bit-identical");
        }
    }
}

fn assert_slots_match(served: &[Vec<u32>], direct: &[Vec<usize>]) {
    let widened: Vec<Vec<usize>> =
        served.iter().map(|slot| slot.iter().map(|&a| a as usize).collect()).collect();
    assert_eq!(&widened, direct);
}

#[test]
fn nominal_design_is_bit_identical_to_the_direct_pipeline() {
    let (direct_slots, direct_table) = reference_design();
    let mut server = start("nominal", |_| {});
    let mut client = DesignClient::new(server.socket_path());

    let first = client.request(nominal_job(), RequestOptions::default()).expect("first request");
    let Outcome::Design(first) = first else { panic!("expected a design outcome: {first:?}") };
    assert!(first.certified_optimal, "the unpressured exact search certifies");
    assert!(!first.from_cache, "the first request computes");
    assert_slots_match(&first.slots, &direct_slots);
    assert_tables_bit_identical(&first.table, &direct_table);

    // The identical job is served from the artifact cache, bit-identically.
    let second = client.request(nominal_job(), RequestOptions::default()).expect("second request");
    let Outcome::Design(second) = second else { panic!("expected a design outcome") };
    assert!(second.from_cache, "the second request hits the cache");
    assert_slots_match(&second.slots, &direct_slots);
    assert_tables_bit_identical(&second.table, &direct_table);

    let stats = server.stats();
    assert_eq!(stats.designs_computed, 1, "one computation serves both requests");
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.requests, 2);
    assert_eq!(server.cached_artifacts(), 1);
    server.shutdown();
}

#[test]
fn single_flight_deduplicates_concurrent_identical_requests() {
    let server = start("dedup", |config| {
        config.workers = 4;
        config.queue_depth = 16;
    });
    let path = server.socket_path().to_path_buf();

    let handles: Vec<_> = (0..4)
        .map(|seed| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client =
                    DesignClient::new(&path).with_retry_policy(fast_retries(seed));
                client.request(nominal_job(), RequestOptions::default())
            })
        })
        .collect();
    let mut slot_maps = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread").expect("request succeeds") {
            Outcome::Design(result) => slot_maps.push(result.slots),
            other => panic!("expected a design outcome: {other:?}"),
        }
    }
    assert!(slot_maps.windows(2).all(|pair| pair[0] == pair[1]), "all answers identical");

    let stats = server.stats();
    assert_eq!(
        stats.designs_computed, 1,
        "four concurrent identical requests must compute exactly once \
         (deduped {}, cache hits {})",
        stats.deduped, stats.cache_hits
    );
    assert_eq!(stats.deduped + stats.cache_hits, 3);
}

#[test]
fn node_budget_exhaustion_degrades_to_the_greedy_incumbent() {
    let (direct_slots, _) = reference_design();
    let mut server = start("degrade", |_| {});
    let mut client = DesignClient::new(server.socket_path());

    // A one-node budget cuts the exact search immediately after the root:
    // the greedy incumbent is served, flagged as uncertified.
    let degraded = client
        .request(nominal_job(), RequestOptions { node_budget: 1, ..RequestOptions::default() })
        .expect("degraded request");
    let Outcome::Design(degraded) = degraded else { panic!("expected a design outcome") };
    assert!(!degraded.certified_optimal, "a budget cut must be reported");
    assert!(
        degraded.slots.len() >= direct_slots.len(),
        "the greedy incumbent can never beat the exact optimum"
    );

    // `require_certified` treats the degraded cache entry as a miss and
    // recomputes at full fidelity.
    let certified = client
        .request(nominal_job(), RequestOptions { require_certified: true, ..RequestOptions::default() })
        .expect("certified request");
    let Outcome::Design(certified) = certified else { panic!("expected a design outcome") };
    assert!(certified.certified_optimal);
    assert_slots_match(&certified.slots, &direct_slots);
    assert_eq!(server.stats().designs_computed, 2);

    // The certified artifact replaced the degraded one: both fidelity
    // levels are now cache hits.
    let reused = client
        .request(nominal_job(), RequestOptions { require_certified: true, ..RequestOptions::default() })
        .expect("reuse request");
    let Outcome::Design(reused) = reused else { panic!("expected a design outcome") };
    assert!(reused.from_cache && reused.certified_optimal);
    server.shutdown();
}

#[test]
fn overload_sheds_requests_instead_of_queueing_unboundedly() {
    let server = start("shed", |config| {
        config.workers = 1;
        config.queue_depth = 1;
        config.chaos = Some(ChaosConfig {
            seed: 5,
            worker_stall_probability: 1.0,
            stall_ms: 300,
            ..ChaosConfig::default()
        });
    });
    let path = server.socket_path().to_path_buf();

    // Six impatient clients (no retries) flood a 1-worker/1-slot server
    // whose worker stalls 300 ms per job: the queue bound forces sheds.
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = DesignClient::new(&path).with_retry_policy(RetryPolicy {
                    max_attempts: 1,
                    ..RetryPolicy::default()
                });
                client.request(nominal_job(), RequestOptions::default())
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().expect("client")).collect();
    let shed_seen = outcomes.iter().any(|outcome| {
        matches!(outcome, Err(e) if e.to_string().contains("busy"))
    });
    assert!(shed_seen, "a flooded bounded queue must shed: {outcomes:?}");
    assert!(server.stats().shed >= 1);

    // A patient client retries through the backlog and succeeds.
    let mut patient = DesignClient::new(&path).with_retry_policy(RetryPolicy {
        max_attempts: 30,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(200),
        jitter_seed: 11,
    });
    let outcome = patient.request(nominal_job(), RequestOptions::default()).expect("retry wins");
    assert!(matches!(outcome, Outcome::Design(_)));
}

#[test]
fn worker_panics_become_structured_errors_and_the_server_survives() {
    let mut server = start("panic", |config| {
        config.chaos = Some(ChaosConfig {
            seed: 3,
            worker_panic_probability: 1.0,
            ..ChaosConfig::default()
        });
    });
    let path = server.socket_path().to_path_buf();
    let mut impatient = DesignClient::new(&path)
        .with_retry_policy(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });

    for _ in 0..3 {
        // Every job panics; the isolation layer still *answers* each
        // request — the client sees a retryable WorkerPanic, not a hang.
        let result = impatient.request(nominal_job(), RequestOptions::default());
        match result {
            Err(error) => assert!(
                error.to_string().contains("induced worker panic"),
                "the panic payload surfaces in the structured error: {error}"
            ),
            Ok(outcome) => panic!("expected exhausted retries, got {outcome:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 3);
    assert_eq!(stats.requests, 3, "the server answered every request despite the panics");
    assert!(server.cached_artifacts() == 0, "a panicking job must not poison the cache");
    server.shutdown();
}

#[test]
fn deadlines_produce_structured_timeouts_within_the_grace_window() {
    let mut server = start("deadline", |config| {
        config.grace = Duration::from_millis(500);
    });
    let mut client = DesignClient::new(server.socket_path());

    // A campaign far too large for a 100 ms deadline: the watchdog flips
    // the token, the pipeline stops at a cooperative checkpoint, and the
    // client receives a *terminal* DeadlineExceeded (never retried).
    let job = Job::Campaign(CampaignJob {
        design: match nominal_job() {
            Job::Design(design) => design,
            _ => unreachable!(),
        },
        seed: 42,
        drop_probabilities: vec![0.0, 0.2, 0.4],
        scenarios_per_intensity: 10_000,
        duration: 1.0,
        alpha: 0.05,
    });
    let started = Instant::now();
    let outcome = client
        .request(job, RequestOptions { deadline_ms: 100, ..RequestOptions::default() })
        .expect("a deadline failure is a terminal outcome, not a client error");
    let elapsed = started.elapsed();
    assert!(
        matches!(outcome, Outcome::Error { kind: ErrorKind::DeadlineExceeded, .. }),
        "expected DeadlineExceeded, got {outcome:?}"
    );
    assert!(
        elapsed < Duration::from_secs(30),
        "the response must arrive promptly, not after the full campaign ({elapsed:?})"
    );
    assert!(server.stats().deadline_expired >= 1);

    // The same server still serves nominal work afterwards.
    let outcome = client.request(nominal_job(), RequestOptions::default()).expect("nominal");
    assert!(matches!(outcome, Outcome::Design(_)));
    server.shutdown();
}

#[test]
fn malformed_frames_are_rejected_cleanly() {
    let mut server = start("malformed", |_| {});
    let path = server.socket_path().to_path_buf();

    // An announced frame length beyond the cap: structured Protocol error,
    // before any allocation, then the connection is dropped.
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream.write_all(&(automotive_cps::serve::MAX_FRAME as u32 + 1).to_le_bytes()).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("server answers then closes");
    assert!(!reply.is_empty(), "an oversized frame earns an error response");

    // A frame whose payload is garbage: structured Protocol error.
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream.write_all(&10u32.to_le_bytes()).unwrap();
    stream.write_all(&[0xFF; 10]).unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("server answers then closes");
    assert!(!reply.is_empty(), "a garbage payload earns an error response");

    // A truncated frame (connection closed mid-prefix): the handler drops
    // the connection without dying.
    let mut stream = UnixStream::connect(&path).expect("connect");
    stream.write_all(&[0x01, 0x02]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);

    assert!(server.stats().protocol_errors >= 2);

    // The server survived all of it.
    let mut client = DesignClient::new(&path);
    let outcome = client.request(nominal_job(), RequestOptions::default()).expect("still alive");
    assert!(matches!(outcome, Outcome::Design(_)));
    server.shutdown();
}

/// The deterministic chaos soak: a seeded fault mix (worker panics, stalls,
/// dropped, truncated and corrupted responses) against a retrying client.
/// Every request must reach a terminal outcome, delivered design answers
/// must be bit-identical to the direct pipeline, the server must survive,
/// and the entire run must replay identically from the same seeds.
fn chaos_soak(name: &str) -> (Vec<String>, u64) {
    let (direct_slots, direct_table) = reference_design();
    let server = start(name, |config| {
        config.workers = 2;
        config.queue_depth = 8;
        config.chaos = Some(ChaosConfig {
            seed: 0xC4A05,
            worker_panic_probability: 0.15,
            worker_stall_probability: 0.05,
            stall_ms: 50,
            drop_connection_probability: 0.10,
            truncate_response_probability: 0.05,
            corrupt_response_probability: 0.05,
        });
    });
    let mut client = DesignClient::new(server.socket_path()).with_retry_policy(fast_retries(7));

    let design = match nominal_job() {
        Job::Design(design) => design,
        _ => unreachable!(),
    };
    let mut kinds = Vec::new();
    for round in 0..30u64 {
        let (job, options) = match round % 4 {
            0 => (Job::Design(design.clone()), RequestOptions::default()),
            1 => (
                Job::Design(design.clone()),
                RequestOptions { node_budget: 1, ..RequestOptions::default() },
            ),
            2 => (
                Job::Sweep(SweepJob {
                    design: design.clone(),
                    cycle_lengths: vec![0.005, 0.01],
                    static_slot_counts: vec![4, 10],
                    slot_lengths: vec![],
                }),
                RequestOptions::default(),
            ),
            _ => (
                Job::Campaign(CampaignJob {
                    design: design.clone(),
                    seed: round,
                    drop_probabilities: vec![0.0, 0.3],
                    scenarios_per_intensity: 2,
                    duration: 0.5,
                    alpha: 0.05,
                }),
                RequestOptions::default(),
            ),
        };
        let outcome = client
            .request(job, options)
            .unwrap_or_else(|error| panic!("request {round} never went terminal: {error}"));
        // Chaos corrupts transport, never answers: any delivered design is
        // still bit-identical to the direct pipeline.
        if let Outcome::Design(result) = &outcome {
            if result.certified_optimal {
                assert_slots_match(&result.slots, &direct_slots);
                assert_tables_bit_identical(&result.table, &direct_table);
            } else {
                assert!(result.slots.len() >= direct_slots.len());
            }
        }
        kinds.push(match &outcome {
            Outcome::Design(result) => format!("design(certified={})", result.certified_optimal),
            Outcome::Sweep(result) => format!("sweep(rows={})", result.rows.len()),
            Outcome::Campaign(result) => format!("campaign(total={})", result.total),
            Outcome::Busy => "busy".to_string(),
            Outcome::Error { kind, .. } => format!("error({kind})"),
        });
    }
    let stats = server.stats();
    assert!(stats.worker_panics > 0, "the soak must actually exercise panic isolation");
    assert!(
        stats.requests > 30,
        "retries must have re-entered the server (requests = {})",
        stats.requests
    );
    (kinds, stats.worker_panics)
}

#[test]
fn chaos_soak_terminates_every_request_and_replays_deterministically() {
    let (first, first_panics) = chaos_soak("soak-a");
    assert!(first.iter().all(|kind| !kind.starts_with("error(")
        || kind.contains("deadline")), "no request may end in a non-deadline error: {first:?}");
    // Same chaos seed, same request sequence, same jitter seed: the whole
    // fault schedule — and therefore every terminal outcome — replays.
    let (second, second_panics) = chaos_soak("soak-b");
    assert_eq!(first, second, "the chaos soak must be deterministic");
    assert_eq!(first_panics, second_panics);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Round trip: an arbitrary campaign request (floats, vectors, flags)
    // encodes and decodes to itself exactly.
    #[test]
    fn wire_requests_round_trip(
        id in 0usize..1_000_000,
        deadline in 0usize..100_000,
        budget in 0usize..1_000_000,
        seed in 0usize..1_000_000,
        drops in proptest::collection::vec(0.0f64..1.0, 0..6),
        scenarios in 0usize..10_000,
        duration in 0.01f64..10.0,
        alpha in 0.001f64..0.5,
    ) {
        let request = automotive_cps::serve::Request {
            id: id as u64,
            deadline_ms: deadline as u32,
            node_budget: budget as u64,
            require_certified: seed % 2 == 0,
            job: Job::Campaign(CampaignJob {
                design: match nominal_job() { Job::Design(d) => d, _ => unreachable!() },
                seed: seed as u64,
                drop_probabilities: drops,
                scenarios_per_intensity: scenarios as u64,
                duration,
                alpha,
            }),
        };
        let decoded = automotive_cps::serve::Request::decode(&request.encode());
        prop_assert_eq!(decoded.expect("round trip"), request);
    }

    // Adversarial decode: truncations and byte flips of a valid payload
    // must produce a clean Ok/Err — never a panic, hang or huge allocation.
    #[test]
    fn mangled_wire_payloads_never_panic(
        cut in 0.0f64..1.0,
        flip_pos in 0.0f64..1.0,
        flip_mask in 1usize..256,
    ) {
        let request = automotive_cps::serve::Request {
            id: 7,
            deadline_ms: 5,
            node_budget: 9,
            require_certified: true,
            job: nominal_job(),
        };
        let bytes = request.encode();
        let truncated = &bytes[..(cut * bytes.len() as f64) as usize];
        let _ = automotive_cps::serve::Request::decode(truncated);
        let mut flipped = bytes.clone();
        let pos = (flip_pos * (bytes.len() - 1) as f64) as usize;
        flipped[pos] ^= flip_mask as u8;
        let _ = automotive_cps::serve::Request::decode(&flipped);
        let _ = automotive_cps::serve::Response::decode(&flipped);
        // Oversized collection counts must be rejected before allocating.
        let mut huge = bytes;
        huge[21] = 0xff;
        huge[22] = 0xff;
        huge[23] = 0xff;
        prop_assert!(automotive_cps::serve::Request::decode(&huge).is_err());
    }
}
