//! Parity suite for the fleet-level design pipeline: [`FleetDesigner`] must
//! produce **bit-identical** artifacts to the retained sequential
//! per-application path for *any* worker count — on the case-study fleet, on
//! a scaled 24-application fleet, and (property-based) on fleets of random
//! stable plants designed with LQR. Also pins the routing contract: every
//! design entry point (`ControlApplication::design`,
//! `DesignedFleet::design`/`design_optimal`, `BusConfigSweep::scenarios_for`)
//! goes through the same pipeline and therefore agrees with the primitive
//! paths exactly.

use automotive_cps::control::{DesignWorkspace, LqrWeights};
use automotive_cps::core::{
    case_study, derive_timing_params, ApplicationSpec, BusConfigSweep, ControlApplication,
    ControllerSpec, DesignedFleet, FleetDesigner,
};
use automotive_cps::flexray::FlexRayConfig;
use automotive_cps::linalg::Matrix;
use automotive_cps::sched::AllocatorConfig;
use proptest::prelude::*;

/// Asserts two designed applications are bit-identical artifact for
/// artifact (controllers, closed loops, delayed models, fused kernel
/// matrices).
fn assert_identical(actual: &ControlApplication, expected: &ControlApplication) {
    assert_eq!(actual.name(), expected.name());
    assert_eq!(actual.et_controller(), expected.et_controller());
    assert_eq!(actual.tt_controller(), expected.tt_controller());
    assert_eq!(actual.et_system(), expected.et_system());
    assert_eq!(actual.tt_system(), expected.tt_system());
    assert_eq!(
        actual.kernel_matrices().as_ref(),
        expected.kernel_matrices().as_ref(),
        "{}: fused kernel matrices must match bit for bit",
        actual.name()
    );
}

#[test]
fn designer_is_bit_identical_to_per_app_design_for_any_worker_count() {
    let specs = case_study::derived_fleet_specs();
    // The retained sequential per-application path.
    let reference: Vec<ControlApplication> =
        specs.iter().cloned().map(|spec| ControlApplication::design(spec).unwrap()).collect();

    for threads in [1, 2, 3, 8, 64] {
        let designed =
            FleetDesigner::new().with_threads(threads).design(specs.clone()).unwrap();
        assert_eq!(designed.len(), reference.len());
        for (actual, expected) in designed.iter().zip(&reference) {
            assert_identical(actual, expected);
        }
    }
}

#[test]
fn designer_parity_holds_on_a_scaled_24_app_fleet() {
    let specs = case_study::scaled_fleet_specs(24);
    assert_eq!(specs.len(), 24);
    // Names are unique (the allocation layer keys diagnostics by name).
    let names: std::collections::HashSet<_> = specs.iter().map(|s| s.name.clone()).collect();
    assert_eq!(names.len(), 24);

    let reference: Vec<ControlApplication> =
        specs.iter().cloned().map(|spec| ControlApplication::design(spec).unwrap()).collect();
    let designed = FleetDesigner::new().with_threads(5).design(specs).unwrap();
    for (actual, expected) in designed.iter().zip(&reference) {
        assert_identical(actual, expected);
    }
}

#[test]
fn parallel_characterization_matches_the_sequential_pass_bit_for_bit() {
    let apps = case_study::derived_fleet().unwrap();
    let reference: Vec<_> =
        apps.iter().map(|app| derive_timing_params(app).unwrap()).collect();
    for threads in [1, 2, 4, 16] {
        let table = FleetDesigner::new().with_threads(threads).characterize(&apps).unwrap();
        assert_eq!(table, reference, "characterisation must not depend on {threads} workers");
    }
}

#[test]
fn fleet_entry_points_agree_with_the_primitive_paths() {
    let config = AllocatorConfig::default();
    let bus = FlexRayConfig::paper_case_study();

    // DesignedFleet::design == design apps + characterize + greedy allocate.
    let fleet =
        DesignedFleet::design(case_study::derived_fleet_specs(), &config, bus).unwrap();
    let apps = case_study::derived_fleet().unwrap();
    let table = case_study::derive_table(&apps).unwrap();
    let greedy = automotive_cps::sched::allocate_slots(&table, &config).unwrap();
    assert_eq!(fleet.allocation().slots, greedy.slots);
    assert_eq!(fleet.app_count(), apps.len());

    // DesignedFleet::design_optimal == one characterisation + exact search.
    let optimal_fleet = DesignedFleet::design_optimal(apps, &config, bus).unwrap();
    let optimal = automotive_cps::sched::allocate_slots_optimal(&table, &config).unwrap();
    assert_eq!(optimal_fleet.allocation().slots, optimal.slots);

    // BusConfigSweep::scenarios_for == scenarios over the shared table.
    let apps = case_study::derived_fleet().unwrap();
    let sweep = BusConfigSweep::new(bus)
        .with_cycle_lengths(vec![0.005, 0.010])
        .with_static_slot_counts(vec![6, 10]);
    let via_designer =
        sweep.scenarios_for(&FleetDesigner::new(), &apps, &config, 1.0).unwrap();
    let via_table = sweep.scenarios(&table, &config, 1.0);
    assert_eq!(via_designer, via_table);
    assert!(!via_designer.is_empty());
}

#[test]
fn shared_workspace_designs_do_not_contaminate_each_other() {
    // Designing through one warm workspace in a dimension-mixed order must
    // equal designing each app with a cold workspace: the pool is fully
    // overwritten per solve, never carried across.
    let mut specs = case_study::derived_fleet_specs();
    specs.reverse(); // order 2,2,2,2,2(+3rd-order aug),1 states: mixes dims
    let mut shared = DesignWorkspace::new();
    for spec in specs {
        let warm = ControlApplication::design_with(spec.clone(), &mut shared).unwrap();
        let cold =
            ControlApplication::design_with(spec, &mut DesignWorkspace::new()).unwrap();
        assert_identical(&warm, &cold);
    }
    // The pool holds one workspace per distinct dimension, not per design.
    assert!(shared.riccati_pool_size() <= 3);
    assert!(shared.expm_pool_size() <= 4);
}

/// A random stable continuous-time 2-state plant: diagonal decay plus
/// bounded skew coupling keeps every eigenvalue in the open left half-plane
/// (the symmetric part is negative definite), so the LQR design is
/// well-posed.
fn stable_plant(
    decay: (f64, f64),
    coupling: f64,
    gain: f64,
) -> automotive_cps::control::ContinuousStateSpace {
    let a = Matrix::from_rows(&[&[-decay.0, coupling], &[-coupling, -decay.1]]).unwrap();
    let b = Matrix::column(&[0.0, gain]).unwrap();
    let c = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
    automotive_cps::control::ContinuousStateSpace::new(a, b, c).unwrap()
}

fn lqr_spec(index: usize, decay: (f64, f64), coupling: f64, gain: f64, rho: f64) -> ApplicationSpec {
    ApplicationSpec {
        name: format!("P{index}"),
        plant: stable_plant(decay, coupling, gain),
        period: 0.02,
        et_delay: 0.02,
        tt_delay: 0.0007,
        threshold: 0.1,
        disturbance: vec![1.0, 0.0],
        deadline: 5.0,
        inter_arrival: 10.0,
        controllers: ControllerSpec::Lqr {
            et_weights: LqrWeights::identity_with_input_weight(2, rho * 10.0),
            tt_weights: LqrWeights::identity_with_input_weight(2, rho),
        },
        input_limit: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn designer_parity_on_random_stable_plants(
        params in proptest::collection::vec(
            (0.2f64..4.0, 0.2f64..4.0, -2.0f64..2.0, 0.5f64..3.0, 0.01f64..1.0),
            1..5,
        ),
        threads in 1usize..6,
    ) {
        let specs: Vec<ApplicationSpec> = params
            .iter()
            .enumerate()
            .map(|(index, &(d0, d1, coupling, gain, rho))| {
                lqr_spec(index, (d0, d1), coupling, gain, rho)
            })
            .collect();
        let reference: Vec<ControlApplication> = specs
            .iter()
            .cloned()
            .map(|spec| ControlApplication::design(spec).expect("stable plant designs"))
            .collect();
        let designed = FleetDesigner::new()
            .with_threads(threads)
            .design(specs)
            .expect("designer agrees the plants design");
        for (actual, expected) in designed.iter().zip(&reference) {
            prop_assert_eq!(actual.et_controller(), expected.et_controller());
            prop_assert_eq!(actual.tt_controller(), expected.tt_controller());
            prop_assert_eq!(actual.et_system(), expected.et_system());
            prop_assert_eq!(actual.tt_system(), expected.tt_system());
            prop_assert_eq!(
                actual.kernel_matrices().as_ref(),
                expected.kernel_matrices().as_ref()
            );
        }
    }
}
