//! LU decomposition with partial pivoting, and the linear solves / inverses /
//! determinants built on top of it.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Pivot threshold below which a matrix is treated as numerically singular.
const SINGULARITY_TOL: f64 = 1e-13;

/// LU decomposition of a square matrix with partial (row) pivoting:
/// `P * A = L * U`.
///
/// The factors are stored compactly: the strict lower triangle of `lu` holds
/// `L` (with an implicit unit diagonal) and the upper triangle holds `U`.
///
/// # Example
///
/// ```
/// use cps_linalg::{Lu, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix corresponds to row
    /// `perm[i]` of the original matrix.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), needed for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if a pivot smaller than the singularity
    ///   tolerance is encountered.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape(), op: "lu" });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Find the pivot row for column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < SINGULARITY_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            // Eliminate below the pivot.
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / lu[(k, k)];
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    lu[(r, c)] -= factor * lu[(k, c)];
                }
            }
        }
        Ok(Lu { lu, perm, perm_sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "lu solve",
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B` has a different number of
    /// rows than `A`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "lu solve_matrix",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for (r, value) in x.into_iter().enumerate() {
                out[(r, c)] = value;
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.perm_sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (the factorisation itself already guarantees
    /// non-singularity).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Solves the linear system `A x = b`.
///
/// Convenience wrapper over [`Lu::decompose`] + [`Lu::solve`] for one-shot use.
///
/// # Errors
///
/// Returns the underlying factorisation or shape errors.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::decompose(a)?.solve(b)
}

/// Inverse of a square non-singular matrix.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if the matrix cannot be inverted and
/// [`LinalgError::NotSquare`] if it is rectangular.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::decompose(a)?.inverse()
}

/// Determinant of a square matrix (zero if the factorisation detects
/// singularity).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if the matrix is rectangular.
pub fn determinant(a: &Matrix) -> Result<f64> {
    match Lu::decompose(a) {
        Ok(lu) => Ok(lu.determinant()),
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let a = Matrix::identity(3);
        let lu = Lu::decompose(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::decompose(&a), Err(LinalgError::Singular { .. })));
        assert_eq!(determinant(&a).unwrap(), 0.0);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 3.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]).unwrap();
        // det = 1*(50-48) - 2*(40-42) + 3*(32-35) = 2 + 4 - 9 = -3
        assert!((determinant(&a).unwrap() + 3.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_of_identity_is_one() {
        assert!((determinant(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((determinant(&a).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_solves_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]).unwrap();
        let x = Lu::decompose(&a).unwrap().solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-10));
    }
}
