//! LU decomposition with partial pivoting, and the linear solves / inverses /
//! determinants built on top of it.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Pivot threshold below which a matrix is treated as numerically singular.
const SINGULARITY_TOL: f64 = 1e-13;

/// LU decomposition of a square matrix with partial (row) pivoting:
/// `P * A = L * U`.
///
/// The factors are stored compactly: the strict lower triangle of `lu` holds
/// `L` (with an implicit unit diagonal) and the upper triangle holds `U`.
///
/// # Example
///
/// ```
/// use cps_linalg::{Lu, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = Lu::decompose(&a)?;
/// let x = lu.solve(&[10.0, 12.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix corresponds to row
    /// `perm[i]` of the original matrix.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), needed for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Factors the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is rectangular.
    /// * [`LinalgError::Singular`] if a pivot smaller than the singularity
    ///   tolerance is encountered.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape(), op: "lu" });
        }
        let n = a.rows();
        let mut factors = Lu {
            lu: a.clone(),
            perm: (0..n).collect(),
            perm_sign: 1.0,
        };
        factors.eliminate()?;
        Ok(factors)
    }

    /// Creates an unfactored workspace for `n × n` systems, to be filled by
    /// [`Lu::refactor`]. Using the workspace before a successful `refactor`
    /// yields a singularity error (the stored matrix is all-zero).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (propagated from [`Matrix::zeros`]).
    pub fn workspace(n: usize) -> Self {
        Lu { lu: Matrix::zeros(n, n), perm: (0..n).collect(), perm_sign: 1.0 }
    }

    /// Re-factors `a` into this workspace without allocating, producing the
    /// same factors (bit for bit) as [`Lu::decompose`].
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `a` does not match the workspace
    ///   dimension.
    /// * [`LinalgError::Singular`] as in [`Lu::decompose`].
    pub fn refactor(&mut self, a: &Matrix) -> Result<()> {
        if a.shape() != self.lu.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.lu.shape(),
                right: a.shape(),
                op: "lu refactor",
            });
        }
        self.lu.copy_from(a)?;
        for (index, slot) in self.perm.iter_mut().enumerate() {
            *slot = index;
        }
        self.perm_sign = 1.0;
        self.eliminate()
    }

    /// Gaussian elimination with partial pivoting on the stored matrix.
    fn eliminate(&mut self) -> Result<()> {
        let n = self.lu.rows();
        let lu = &mut self.lu;
        let perm = &mut self.perm;
        let perm_sign = &mut self.perm_sign;
        for k in 0..n {
            // Find the pivot row for column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < SINGULARITY_TOL {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                *perm_sign = -*perm_sign;
            }
            // Eliminate below the pivot.
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / lu[(k, k)];
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    lu[(r, c)] -= factor * lu[(k, c)];
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "lu solve",
            });
        }
        let mut x = vec![0.0; n];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-provided buffer without allocating.
    ///
    /// Produces exactly the values of [`Lu::solve`] (it is the shared
    /// substitution routine).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b` or `x` differs from the
    /// matrix dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n || x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len().max(x.len()), 1),
                op: "lu solve_into",
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        for (slot, &source) in x.iter_mut().zip(&self.perm) {
            *slot = b[source];
        }
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `B` has a different number of
    /// rows than `A`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "lu solve_matrix",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut column = vec![0.0; n];
        let mut solution = vec![0.0; n];
        self.solve_matrix_into(b, &mut out, &mut column, &mut solution)?;
        Ok(out)
    }

    /// Solves `A X = B` into `out` without allocating, using two
    /// caller-provided length-`n` scratch vectors (`column` holds the current
    /// right-hand side, `solution` the substitution result). Produces exactly
    /// the values of [`Lu::solve_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on any dimension mismatch.
    pub fn solve_matrix_into(
        &self,
        b: &Matrix,
        out: &mut Matrix,
        column: &mut [f64],
        solution: &mut [f64],
    ) -> Result<()> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "lu solve_matrix",
            });
        }
        if out.shape() != b.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: b.shape(),
                right: out.shape(),
                op: "lu solve_matrix_into (output)",
            });
        }
        if column.len() != n || solution.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, 1),
                right: (column.len().max(solution.len()), 1),
                op: "lu solve_matrix_into (scratch)",
            });
        }
        for c in 0..b.cols() {
            for (r, slot) in column.iter_mut().enumerate() {
                *slot = b[(r, c)];
            }
            self.solve_into(column, solution)?;
            for (r, &value) in solution.iter().enumerate() {
                out[(r, c)] = value;
            }
        }
        Ok(())
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.perm_sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (the factorisation itself already guarantees
    /// non-singularity).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

/// Solves the linear system `A x = b`.
///
/// Convenience wrapper over [`Lu::decompose`] + [`Lu::solve`] for one-shot use.
///
/// # Errors
///
/// Returns the underlying factorisation or shape errors.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::decompose(a)?.solve(b)
}

/// Inverse of a square non-singular matrix.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if the matrix cannot be inverted and
/// [`LinalgError::NotSquare`] if it is rectangular.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::decompose(a)?.inverse()
}

/// Determinant of a square matrix (zero if the factorisation detects
/// singularity).
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if the matrix is rectangular.
pub fn determinant(a: &Matrix) -> Result<f64> {
    match Lu::decompose(a) {
        Ok(lu) => Ok(lu.determinant()),
        Err(LinalgError::Singular { .. }) => Ok(0.0),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let a = Matrix::identity(3);
        let lu = Lu::decompose(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::decompose(&a), Err(LinalgError::Singular { .. })));
        assert_eq!(determinant(&a).unwrap(), 0.0);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 3.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]).unwrap();
        // det = 1*(50-48) - 2*(40-42) + 3*(32-35) = 2 + 4 - 9 = -3
        assert!((determinant(&a).unwrap() + 3.0).abs() < 1e-10);
    }

    #[test]
    fn determinant_of_identity_is_one() {
        assert!((determinant(&Matrix::identity(4)).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((determinant(&a).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn refactor_workspace_matches_decompose() {
        let a = Matrix::from_rows(&[&[4.0, 7.0, 2.0], &[3.0, 6.0, 1.0], &[2.0, 5.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 2.0], &[3.0, 1.0, 1.0]]).unwrap();
        let mut ws = Lu::workspace(3);
        // An unfactored workspace (all-zero matrix) reports singularity.
        assert!(ws.clone().refactor(&Matrix::zeros(3, 3)).is_err());
        for matrix in [&a, &b, &a] {
            ws.refactor(matrix).unwrap();
            let fresh = Lu::decompose(matrix).unwrap();
            assert_eq!(ws.lu, fresh.lu);
            assert_eq!(ws.perm, fresh.perm);
            assert_eq!(ws.perm_sign, fresh.perm_sign);
        }
        assert!(ws.refactor(&Matrix::identity(2)).is_err());

        // solve_into / solve_matrix_into reproduce the allocating solves.
        let rhs = [1.0, -2.0, 0.5];
        let mut x = [0.0; 3];
        ws.refactor(&a).unwrap();
        ws.solve_into(&rhs, &mut x).unwrap();
        assert_eq!(x.to_vec(), ws.solve(&rhs).unwrap());
        assert!(ws.solve_into(&rhs, &mut [0.0; 2]).is_err());

        let b_rhs = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0], &[1.0, 2.0]]).unwrap();
        let mut out = Matrix::zeros(3, 2);
        let (mut col, mut sol) = ([0.0; 3], [0.0; 3]);
        ws.solve_matrix_into(&b_rhs, &mut out, &mut col, &mut sol).unwrap();
        assert_eq!(out, ws.solve_matrix(&b_rhs).unwrap());
        let mut wrong = Matrix::zeros(2, 2);
        assert!(ws.solve_matrix_into(&b_rhs, &mut wrong, &mut col, &mut sol).is_err());
        assert!(ws
            .solve_matrix_into(&b_rhs, &mut out, &mut [0.0; 2], &mut sol)
            .is_err());
    }

    #[test]
    fn solve_matrix_solves_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[9.0, 4.0], &[8.0, 3.0]]).unwrap();
        let x = Lu::decompose(&a).unwrap().solve_matrix(&b).unwrap();
        let back = a.matmul(&x).unwrap();
        assert!(back.approx_eq(&b, 1e-10));
    }
}
