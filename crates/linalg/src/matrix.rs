//! Dense row-major matrix type tuned for the small systems (1–10 states)
//! that appear in embedded control design.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major, heap-allocated matrix of `f64` entries.
///
/// The type is deliberately simple: control-oriented workloads in this
/// repository never exceed a handful of states, so cache blocking or SIMD are
/// irrelevant, while predictable semantics and exhaustive error reporting are
/// essential.
///
/// # Example
///
/// ```
/// use cps_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates an all-zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the rows are empty or have
    /// inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidArgument {
                reason: "matrix must have at least one row and one column".to_string(),
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidArgument {
                reason: "all rows must have the same length".to_string(),
            });
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows * cols`
    /// or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidArgument {
                reason: "matrix dimensions must be positive".to_string(),
            });
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument {
                reason: format!("expected {} entries, got {}", rows * cols, data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a column vector (an `n × 1` matrix) from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `entries` is empty.
    pub fn column(entries: &[f64]) -> Result<Self> {
        Self::from_vec(entries.len(), 1, entries.to_vec())
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `diag` is empty.
    pub fn diagonal(diag: &[f64]) -> Result<Self> {
        if diag.is_empty() {
            return Err(LinalgError::InvalidArgument {
                reason: "diagonal must not be empty".to_string(),
            });
        }
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the underlying row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the entry at `(row, col)` or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Extracts row `row` as a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> Vec<f64> {
        assert!(row < self.rows, "row index out of bounds");
        self.data[row * self.cols..(row + 1) * self.cols].to_vec()
    }

    /// Extracts column `col` as a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    pub fn col(&self, col: usize) -> Vec<f64> {
        assert!(col < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, col)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(v, &mut out)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // In-place / workspace tier.
    //
    // The `*_into` entry points validate shapes once and then delegate to
    // the `*_kernel` inner loops, which only `debug_assert!` their
    // preconditions. Hot paths (the simulation kernels in `cps-control` and
    // the scenario engine in `cps-core`) validate at construction time and
    // call the kernels directly on pre-allocated buffers, so the per-step
    // cost is a bare fused multiply-add loop with no heap traffic.
    // ------------------------------------------------------------------

    /// Writes `self * v` into `out` without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()` or
    /// `out.len() != self.rows()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (out.len(), 1),
                op: "matvec_into (output)",
            });
        }
        self.matvec_kernel(v, out);
        Ok(())
    }

    /// Unvalidated inner loop of [`Matrix::matvec_into`]: `out = self * v`.
    ///
    /// Shapes are only `debug_assert!`ed; callers are expected to have
    /// validated them once up front (release builds index safely through
    /// iterators either way — this crate forbids `unsafe`).
    #[inline]
    pub fn matvec_kernel(&self, v: &[f64], out: &mut [f64]) {
        debug_assert_eq!(v.len(), self.cols, "matvec_kernel: input length");
        debug_assert_eq!(out.len(), self.rows, "matvec_kernel: output length");
        for (row, slot) in self.data.chunks_exact(self.cols).zip(out.iter_mut()) {
            let mut acc = 0.0;
            for (a, x) in row.iter().zip(v) {
                acc += a * x;
            }
            *slot = acc;
        }
    }

    /// Writes `self * rhs` into `out` without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the inner dimensions differ
    /// or `out` does not have shape `(self.rows(), rhs.cols())`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        if out.shape() != (self.rows, rhs.cols) {
            return Err(LinalgError::ShapeMismatch {
                left: (self.rows, rhs.cols),
                right: out.shape(),
                op: "matmul_into (output)",
            });
        }
        self.matmul_kernel(rhs, out);
        Ok(())
    }

    /// Unvalidated inner loop of [`Matrix::matmul_into`]: `out = self * rhs`.
    ///
    /// The accumulation runs branch-free over dense rows: for the 2–6 state
    /// matrices of this workspace a zero-skip test costs more in mispredicts
    /// than the multiply it saves (the sparse-aware variant this replaced
    /// lost on every case-study shape).
    #[inline]
    pub fn matmul_kernel(&self, rhs: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(self.cols, rhs.rows, "matmul_kernel: inner dimensions");
        debug_assert_eq!(out.shape(), (self.rows, rhs.cols), "matmul_kernel: output shape");
        let n = rhs.cols;
        for (a_row, out_row) in
            self.data.chunks_exact(self.cols).zip(out.data.chunks_exact_mut(n))
        {
            out_row.fill(0.0);
            for (aik, b_row) in a_row.iter().zip(rhs.data.chunks_exact(n)) {
                for (o, b) in out_row.iter_mut().zip(b_row) {
                    *o += aik * b;
                }
            }
        }
    }

    /// Overwrites `self` with the entries of `src` without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) -> Result<()> {
        if self.shape() != src.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: src.shape(),
                op: "copy_from",
            });
        }
        self.data.copy_from_slice(&src.data);
        Ok(())
    }

    /// Writes the transpose of `self` into `out` without allocating.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `out` does not have shape
    /// `(self.cols(), self.rows())`.
    pub fn transpose_into(&self, out: &mut Matrix) -> Result<()> {
        if out.shape() != (self.cols, self.rows) {
            return Err(LinalgError::ShapeMismatch {
                left: (self.cols, self.rows),
                right: out.shape(),
                op: "transpose_into (output)",
            });
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        Ok(())
    }

    /// In-place scaled accumulation `self += factor * rhs` (a matrix axpy).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign_scaled(&mut self, rhs: &Matrix, factor: f64) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "add_assign_scaled",
            });
        }
        axpy(&mut self.data, factor, &rhs.data);
        Ok(())
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add_matrix(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "add",
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn sub_matrix(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "sub",
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Returns `self` scaled by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * factor).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Scales every entry in place (`self *= factor`), the allocation-free
    /// twin of [`Matrix::scale`].
    pub fn scale_assign(&mut self, factor: f64) {
        for value in &mut self.data {
            *value *= factor;
        }
    }

    /// Sum of the diagonal entries.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { shape: self.shape(), op: "trace" });
        }
        Ok((0..self.rows).map(|i| self[(i, i)]).sum())
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Maximum absolute row sum (induced infinity norm).
    pub fn inf_norm(&self) -> f64 {
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)].abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, a| acc.max(a.abs()))
    }

    /// Returns `true` if all entries are finite (no NaN or infinity).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|a| a.is_finite())
    }

    /// Returns `true` if `self` and `other` have the same shape and all
    /// entries differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self.data.iter().zip(&other.data).all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the contiguous sub-matrix with rows `row..row + height` and
    /// columns `col..col + width`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the block exceeds the
    /// matrix bounds or is empty.
    pub fn block(&self, row: usize, col: usize, height: usize, width: usize) -> Result<Matrix> {
        if height == 0 || width == 0 {
            return Err(LinalgError::InvalidArgument {
                reason: "block dimensions must be positive".to_string(),
            });
        }
        if row + height > self.rows || col + width > self.cols {
            return Err(LinalgError::InvalidArgument {
                reason: format!(
                    "block ({row}+{height}, {col}+{width}) exceeds matrix shape {}x{}",
                    self.rows, self.cols
                ),
            });
        }
        let mut out = Matrix::zeros(height, width);
        for r in 0..height {
            for c in 0..width {
                out[(r, c)] = self[(row + r, col + c)];
            }
        }
        Ok(out)
    }

    /// Writes `block` into `self` with its top-left corner at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if the block does not fit.
    pub fn set_block(&mut self, row: usize, col: usize, block: &Matrix) -> Result<()> {
        if row + block.rows > self.rows || col + block.cols > self.cols {
            return Err(LinalgError::InvalidArgument {
                reason: format!(
                    "block of shape {}x{} at ({row}, {col}) exceeds matrix shape {}x{}",
                    block.rows, block.cols, self.rows, self.cols
                ),
            });
        }
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(row + r, col + c)] = block[(r, c)];
            }
        }
        Ok(())
    }

    /// Horizontally concatenates `self` and `rhs` (`[self | rhs]`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the row counts differ.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "hstack",
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        out.set_block(0, 0, self)?;
        out.set_block(0, self.cols, rhs)?;
        Ok(out)
    }

    /// Vertically concatenates `self` and `rhs` (`[self; rhs]`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the column counts differ.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "vstack",
            });
        }
        let mut out = Matrix::zeros(self.rows + rhs.rows, self.cols);
        out.set_block(0, 0, self)?;
        out.set_block(self.rows, 0, rhs)?;
        Ok(out)
    }

    /// Raises a square matrix to a non-negative integer power by repeated
    /// squaring.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square.
    pub fn powi(&self, mut exponent: u32) -> Result<Matrix> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { shape: self.shape(), op: "powi" });
        }
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        while exponent > 0 {
            if exponent & 1 == 1 {
                result = result.matmul(&base)?;
            }
            exponent >>= 1;
            if exponent > 0 {
                base = base.matmul(&base)?;
            }
        }
        Ok(result)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(row < self.rows && col < self.cols, "matrix index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_matrix(rhs).expect("matrix addition requires equal shapes")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_matrix(rhs).expect("matrix subtraction requires equal shapes")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matrix multiplication requires compatible shapes")
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        *self = self.add_matrix(rhs).expect("matrix addition requires equal shapes");
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        *self = self.sub_matrix(rhs).expect("matrix subtraction requires equal shapes");
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.5}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Euclidean norm of a vector, ‖v‖₂.
///
/// This is the norm the paper applies to the plant state when comparing
/// against the threshold `E_th`.
pub fn vec_norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Vector axpy `y += a * x`, the allocation-free building block of the
/// in-place tier.
///
/// Lengths are only `debug_assert!`ed — validate once before entering a hot
/// loop (the `zip` stops at the shorter slice in release builds).
#[inline]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.trace().unwrap(), 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidArgument { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn diagonal_builds_expected_matrix() {
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert!(Matrix::diagonal(&[]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(0, 1)], 3.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let a = sample();
        let b = Matrix::zeros(3, 2);
        assert!(matches!(a.matmul(&b), Err(LinalgError::ShapeMismatch { .. })));
    }

    #[test]
    fn matmul_into_matches_matmul_and_validates() {
        let a = sample();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let mut out = Matrix::zeros(2, 2);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        // Re-running into the same workspace overwrites, not accumulates.
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.matmul(&b).unwrap());
        let mut wrong = Matrix::zeros(3, 2);
        assert!(a.matmul_into(&b, &mut wrong).is_err());
        assert!(a.matmul_into(&Matrix::zeros(3, 2), &mut out).is_err());
    }

    #[test]
    fn matmul_handles_zero_entries_densely() {
        // The old inner loop special-cased zero entries; the dense kernel
        // must produce the same products for sparse inputs.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[14.0, 16.0], &[0.0, 0.0]]).unwrap());
    }

    #[test]
    fn matvec_into_matches_matvec_and_validates() {
        let a = sample();
        let v = [1.0, -1.0];
        let mut out = [0.0f64; 2];
        a.matvec_into(&v, &mut out).unwrap();
        assert_eq!(out.to_vec(), a.matvec(&v).unwrap());
        let mut short = [0.0f64; 1];
        assert!(a.matvec_into(&v, &mut short).is_err());
        assert!(a.matvec_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn copy_from_and_transpose_into() {
        let a = sample();
        let mut dst = Matrix::zeros(2, 2);
        dst.copy_from(&a).unwrap();
        assert_eq!(dst, a);
        assert!(dst.copy_from(&Matrix::zeros(3, 2)).is_err());

        let rect = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let mut t = Matrix::zeros(3, 2);
        rect.transpose_into(&mut t).unwrap();
        assert_eq!(t, rect.transpose());
        let mut wrong = Matrix::zeros(2, 3);
        assert!(rect.transpose_into(&mut wrong).is_err());
    }

    #[test]
    fn add_assign_scaled_is_axpy() {
        let mut a = sample();
        let b = Matrix::identity(2);
        a.add_assign_scaled(&b, -2.0).unwrap();
        assert_eq!(a, Matrix::from_rows(&[&[-1.0, 2.0], &[3.0, 2.0]]).unwrap());
        assert!(a.add_assign_scaled(&Matrix::zeros(3, 3), 1.0).is_err());

        let mut y = vec![1.0, 2.0];
        axpy(&mut y, 0.5, &[2.0, 4.0]);
        assert_eq!(y, vec![2.0, 4.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = sample();
        let v = vec![1.0, -1.0];
        let prod = a.matvec(&v).unwrap();
        assert_eq!(prod, vec![-1.0, -1.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = sample();
        let b = Matrix::identity(2);
        let sum = a.add_matrix(&b).unwrap();
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = sum.sub_matrix(&b).unwrap();
        assert!(diff.approx_eq(&a, 1e-12));
        assert_eq!(a.scale(2.0)[(1, 1)], 8.0);
        let mut scaled = a.clone();
        scaled.scale_assign(2.0);
        assert_eq!(scaled, a.scale(2.0));
        assert!(a.add_matrix(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn operator_impls() {
        let a = sample();
        let b = Matrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 2.0);
        assert_eq!((&a - &b)[(0, 0)], 0.0);
        assert_eq!((&a * &b), a);
        assert_eq!((&a * 2.0)[(0, 1)], 4.0);
        assert_eq!((-&a)[(1, 0)], -3.0);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c[(1, 1)], 5.0);
        c -= &b;
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.inf_norm(), 4.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((vec_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn block_extraction_and_insertion() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        let b = a.block(1, 1, 2, 2).unwrap();
        assert_eq!(b, Matrix::from_rows(&[&[5.0, 6.0], &[8.0, 9.0]]).unwrap());
        assert!(a.block(2, 2, 2, 2).is_err());
        assert!(a.block(0, 0, 0, 1).is_err());

        let mut c = Matrix::zeros(3, 3);
        c.set_block(1, 1, &Matrix::identity(2)).unwrap();
        assert_eq!(c[(2, 2)], 1.0);
        assert!(c.set_block(2, 2, &Matrix::identity(2)).is_err());
    }

    #[test]
    fn stacking() {
        let a = sample();
        let h = a.hstack(&Matrix::identity(2)).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(1, 3)], 1.0);
        let v = a.vstack(&Matrix::identity(2)).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 1)], 1.0);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let a = sample();
        let p3 = a.powi(3).unwrap();
        let manual = a.matmul(&a).unwrap().matmul(&a).unwrap();
        assert!(p3.approx_eq(&manual, 1e-9));
        assert_eq!(a.powi(0).unwrap(), Matrix::identity(2));
        assert!(Matrix::zeros(2, 3).powi(2).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn display_contains_entries() {
        let text = format!("{}", sample());
        assert!(text.contains("1.00000"));
        assert!(text.contains("4.00000"));
    }

    #[test]
    fn accessors() {
        let a = sample();
        assert_eq!(a.get(0, 1), Some(2.0));
        assert_eq!(a.get(2, 0), None);
        assert_eq!(a.row(1), vec![3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
        assert!(a.is_finite());
        assert!(a.is_square());
        assert!(!Matrix::zeros(1, 2).is_square());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = sample();
        let _ = a[(2, 0)];
    }
}
