//! Eigenvalue computation for small dense real matrices.
//!
//! Stability of the closed-loop matrices `A₁` (event-triggered loop) and
//! `A₂` (time-triggered loop) in the paper is decided by their spectral
//! radius, so we need the full (possibly complex) spectrum of small real
//! matrices. The implementation reduces the matrix to upper Hessenberg form
//! with Householder reflections and then applies shifted QR iterations with
//! deflation, extracting trailing 1×1 and 2×2 blocks analytically.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::qr::Qr;

/// A complex number used to report eigenvalues.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Magnitude (absolute value) of the complex number.
    pub fn abs(&self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns `true` if the imaginary part is negligible relative to `tol`.
    pub fn is_real(&self, tol: f64) -> bool {
        self.im.abs() <= tol
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// Maximum number of QR iterations per eigenvalue before giving up.
const MAX_ITERS_PER_EIGENVALUE: usize = 200;

/// Reduces a square matrix to upper Hessenberg form by orthogonal similarity
/// transformations (Householder reflections).
///
/// The returned matrix has the same eigenvalues as the input.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if `a` is rectangular.
pub fn hessenberg(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "hessenberg" });
    }
    let n = a.rows();
    let mut h = a.clone();
    if n < 3 {
        return Ok(h);
    }
    for k in 0..(n - 2) {
        // Householder vector annihilating entries below the first subdiagonal
        // in column k.
        let mut norm = 0.0;
        for i in (k + 1)..n {
            norm += h[(i, k)] * h[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-300 {
            continue;
        }
        let alpha = if h[(k + 1, k)] >= 0.0 { -norm } else { norm };
        let mut v = vec![0.0; n];
        v[k + 1] = h[(k + 1, k)] - alpha;
        for i in (k + 2)..n {
            v[i] = h[(i, k)];
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv < 1e-300 {
            continue;
        }
        // H <- P H with P = I - 2 v vᵀ / vᵀv.
        for j in 0..n {
            let mut dot = 0.0;
            for i in (k + 1)..n {
                dot += v[i] * h[(i, j)];
            }
            let scale = 2.0 * dot / vtv;
            for i in (k + 1)..n {
                h[(i, j)] -= scale * v[i];
            }
        }
        // H <- H P.
        for i in 0..n {
            let mut dot = 0.0;
            for j in (k + 1)..n {
                dot += h[(i, j)] * v[j];
            }
            let scale = 2.0 * dot / vtv;
            for j in (k + 1)..n {
                h[(i, j)] -= scale * v[j];
            }
        }
    }
    // Clean entries that are exactly zero by construction.
    for i in 2..n {
        for j in 0..(i - 1) {
            h[(i, j)] = 0.0;
        }
    }
    Ok(h)
}

/// Eigenvalues of the 2×2 matrix `[[a, b], [c, d]]`.
fn eig_2x2(a: f64, b: f64, c: f64, d: f64) -> [Complex; 2] {
    let trace = a + d;
    let det = a * d - b * c;
    let disc = trace * trace / 4.0 - det;
    if disc >= 0.0 {
        let root = disc.sqrt();
        [Complex::real(trace / 2.0 + root), Complex::real(trace / 2.0 - root)]
    } else {
        let root = (-disc).sqrt();
        [Complex::new(trace / 2.0, root), Complex::new(trace / 2.0, -root)]
    }
}

/// Computes all eigenvalues of a square real matrix.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is rectangular.
/// * [`LinalgError::InvalidArgument`] if `a` contains non-finite entries.
/// * [`LinalgError::NotConverged`] if the shifted QR iteration does not
///   deflate within its iteration budget (practically never happens for the
///   small, well-conditioned matrices appearing in control design).
///
/// # Example
///
/// ```
/// use cps_linalg::{eigenvalues, Matrix};
///
/// // Rotation-and-scale matrix: eigenvalues 0.5 ± 0.5i.
/// let a = Matrix::from_rows(&[&[0.5, -0.5], &[0.5, 0.5]])?;
/// let eigs = eigenvalues(&a)?;
/// assert!((eigs[0].abs() - 0.7071).abs() < 1e-3);
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "eigenvalues" });
    }
    if !a.is_finite() {
        return Err(LinalgError::InvalidArgument {
            reason: "matrix contains non-finite entries".to_string(),
        });
    }
    let n = a.rows();
    if n == 1 {
        return Ok(vec![Complex::real(a[(0, 0)])]);
    }
    if n == 2 {
        return Ok(eig_2x2(a[(0, 0)], a[(0, 1)], a[(1, 0)], a[(1, 1)]).to_vec());
    }

    let mut h = hessenberg(a)?;
    let mut eigs: Vec<Complex> = Vec::with_capacity(n);
    let mut active = n; // current active trailing dimension (leading block 0..active)
    let scale = a.inf_norm().max(1.0);
    let tol = 1e-12 * scale;
    let mut iterations_since_deflation = 0usize;
    let mut total_budget = MAX_ITERS_PER_EIGENVALUE * n;

    while active > 0 {
        if active == 1 {
            eigs.push(Complex::real(h[(0, 0)]));
            break;
        }
        if active == 2 {
            eigs.extend_from_slice(&eig_2x2(h[(0, 0)], h[(0, 1)], h[(1, 0)], h[(1, 1)]));
            break;
        }
        // Check for deflation opportunities at the bottom of the active block.
        let p = active - 1;
        if h[(p, p - 1)].abs() <= tol * (h[(p, p)].abs() + h[(p - 1, p - 1)].abs()).max(1.0) {
            eigs.push(Complex::real(h[(p, p)]));
            active -= 1;
            iterations_since_deflation = 0;
            continue;
        }
        if h[(p - 1, p - 2)].abs()
            <= tol * (h[(p - 1, p - 1)].abs() + h[(p - 2, p - 2)].abs()).max(1.0)
        {
            eigs.extend_from_slice(&eig_2x2(
                h[(p - 1, p - 1)],
                h[(p - 1, p)],
                h[(p, p - 1)],
                h[(p, p)],
            ));
            active -= 2;
            iterations_since_deflation = 0;
            continue;
        }

        if total_budget == 0 {
            return Err(LinalgError::NotConverged {
                algorithm: "shifted QR eigenvalues",
                iterations: MAX_ITERS_PER_EIGENVALUE * n,
            });
        }
        total_budget -= 1;
        iterations_since_deflation += 1;

        // Wilkinson-style shift from the trailing 2×2 block, with an
        // occasional exceptional shift to break symmetry-induced stalls.
        let trailing = eig_2x2(h[(p - 1, p - 1)], h[(p - 1, p)], h[(p, p - 1)], h[(p, p)]);
        let mut shift = if trailing[0].is_real(1e-300) {
            // Pick the real eigenvalue closer to the bottom-right entry.
            if (trailing[0].re - h[(p, p)]).abs() < (trailing[1].re - h[(p, p)]).abs() {
                trailing[0].re
            } else {
                trailing[1].re
            }
        } else {
            trailing[0].re
        };
        if iterations_since_deflation % 17 == 0 {
            shift = h[(p, p)].abs() + h[(p, p - 1)].abs();
        }

        // One explicit shifted QR step on the active leading block.
        let block = h.block(0, 0, active, active)?;
        let shifted = block.sub_matrix(&Matrix::identity(active).scale(shift))?;
        let qr = Qr::decompose(&shifted)?;
        let next = qr.r().matmul(qr.q())?.add_matrix(&Matrix::identity(active).scale(shift))?;
        h.set_block(0, 0, &next)?;
    }

    Ok(eigs)
}

/// Spectral radius: the maximum modulus over all eigenvalues.
///
/// A discrete-time LTI system `x[k+1] = A x[k]` is asymptotically stable iff
/// the spectral radius of `A` is strictly below one — the criterion the paper
/// applies to both switched closed-loop matrices.
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn spectral_radius(a: &Matrix) -> Result<f64> {
    Ok(eigenvalues(a)?.iter().map(Complex::abs).fold(0.0, f64::max))
}

/// Returns `true` if the matrix is Schur stable (spectral radius < 1), i.e.
/// the corresponding discrete-time system is asymptotically stable.
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn is_schur_stable(a: &Matrix) -> Result<bool> {
    Ok(spectral_radius(a)? < 1.0)
}

/// Returns `true` if the matrix is Hurwitz stable (all eigenvalues have a
/// strictly negative real part), i.e. the corresponding continuous-time
/// system is asymptotically stable.
///
/// # Errors
///
/// Propagates the errors of [`eigenvalues`].
pub fn is_hurwitz_stable(a: &Matrix) -> Result<bool> {
    Ok(eigenvalues(a)?.iter().all(|e| e.re < 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_real(mut eigs: Vec<Complex>) -> Vec<f64> {
        eigs.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        eigs.into_iter().map(|e| e.re).collect()
    }

    #[test]
    fn eigenvalues_of_diagonal() {
        let a = Matrix::diagonal(&[3.0, -1.0, 0.5]).unwrap();
        let eigs = sorted_real(eigenvalues(&a).unwrap());
        assert!((eigs[0] + 1.0).abs() < 1e-9);
        assert!((eigs[1] - 0.5).abs() < 1e-9);
        assert!((eigs[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvalues_of_triangular() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.0, -3.0, 5.0], &[0.0, 0.0, 7.0]]).unwrap();
        let eigs = sorted_real(eigenvalues(&a).unwrap());
        assert!((eigs[0] + 3.0).abs() < 1e-8);
        assert!((eigs[1] - 2.0).abs() < 1e-8);
        assert!((eigs[2] - 7.0).abs() < 1e-8);
    }

    #[test]
    fn complex_pair_from_rotation() {
        // Pure rotation by 90 degrees: eigenvalues ±i.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]).unwrap();
        let eigs = eigenvalues(&a).unwrap();
        assert!(eigs.iter().all(|e| (e.abs() - 1.0).abs() < 1e-10));
        assert!(eigs.iter().any(|e| e.im > 0.5));
        assert!(eigs.iter().any(|e| e.im < -0.5));
    }

    #[test]
    fn complex_pair_in_larger_matrix() {
        // Block diagonal: rotation-scale block (0.6 ± 0.3i) plus real 0.2.
        let a = Matrix::from_rows(&[
            &[0.6, -0.3, 0.0],
            &[0.3, 0.6, 0.0],
            &[0.0, 0.0, 0.2],
        ])
        .unwrap();
        let eigs = eigenvalues(&a).unwrap();
        let radius = spectral_radius(&a).unwrap();
        assert!((radius - (0.6f64 * 0.6 + 0.3 * 0.3).sqrt()).abs() < 1e-8);
        assert_eq!(eigs.len(), 3);
        assert!(eigs.iter().any(|e| e.is_real(1e-8) && (e.re - 0.2).abs() < 1e-8));
    }

    #[test]
    fn symmetric_matrix_has_real_spectrum() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, 0.2, 0.1],
            &[0.5, 0.2, 2.0, 0.3],
            &[0.0, 0.1, 0.3, 1.0],
        ])
        .unwrap();
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 4);
        assert!(eigs.iter().all(|e| e.is_real(1e-6)));
        let trace: f64 = eigs.iter().map(|e| e.re).sum();
        assert!((trace - 10.0).abs() < 1e-6);
    }

    #[test]
    fn hessenberg_preserves_spectrum() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[5.0, 6.0, 7.0, 8.0],
            &[9.0, 1.0, 2.0, 3.0],
            &[4.0, 5.0, 6.0, 1.0],
        ])
        .unwrap();
        let h = hessenberg(&a).unwrap();
        // Hessenberg structure: zeros below the first subdiagonal.
        for i in 2..4 {
            for j in 0..(i - 1) {
                assert_eq!(h[(i, j)], 0.0);
            }
        }
        // Similarity transform preserves the trace.
        assert!((h.trace().unwrap() - a.trace().unwrap()).abs() < 1e-9);
        let ra = spectral_radius(&a).unwrap();
        let rh = spectral_radius(&h).unwrap();
        assert!((ra - rh).abs() < 1e-6);
    }

    #[test]
    fn stability_predicates() {
        let stable = Matrix::from_rows(&[&[0.5, 0.1], &[0.0, 0.3]]).unwrap();
        assert!(is_schur_stable(&stable).unwrap());
        let unstable = Matrix::from_rows(&[&[1.2, 0.0], &[0.0, 0.3]]).unwrap();
        assert!(!is_schur_stable(&unstable).unwrap());

        let hurwitz = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]).unwrap();
        assert!(is_hurwitz_stable(&hurwitz).unwrap());
        let not_hurwitz = Matrix::from_rows(&[&[0.1, 0.0], &[0.0, -3.0]]).unwrap();
        assert!(!is_hurwitz_stable(&not_hurwitz).unwrap());
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(eigenvalues(&Matrix::zeros(2, 3)).is_err());
        let mut nan = Matrix::identity(2);
        nan[(0, 0)] = f64::NAN;
        assert!(eigenvalues(&nan).is_err());
    }

    #[test]
    fn one_by_one_matrix() {
        let a = Matrix::from_rows(&[&[42.0]]).unwrap();
        let eigs = eigenvalues(&a).unwrap();
        assert_eq!(eigs.len(), 1);
        assert_eq!(eigs[0].re, 42.0);
    }

    #[test]
    fn complex_display_and_helpers() {
        let c = Complex::new(1.0, -2.0);
        assert!(format!("{c}").contains('-'));
        assert!(Complex::real(3.0).is_real(0.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert_eq!(Complex::default(), Complex::new(0.0, 0.0));
    }
}
