//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors reported by the linear-algebra routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left-hand operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        right: (usize, usize),
        /// Name of the operation that was attempted.
        op: &'static str,
    },
    /// The operation requires a square matrix but got a rectangular one.
    NotSquare {
        /// Actual shape of the offending matrix.
        shape: (usize, usize),
        /// Name of the operation that was attempted.
        op: &'static str,
    },
    /// The matrix is singular (or numerically singular) and cannot be factored
    /// or inverted.
    Singular {
        /// Index of the pivot at which the factorisation broke down.
        pivot: usize,
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NotConverged {
        /// Name of the algorithm that gave up.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// An argument carried an invalid value (empty dimension, negative weight
    /// matrix, non-finite entry, ...).
    InvalidArgument {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape, op } => {
                write!(f, "{op} requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotConverged { algorithm, iterations } => {
                write!(f, "{algorithm} did not converge after {iterations} iterations")
            }
            LinalgError::InvalidArgument { reason } => {
                write!(f, "invalid argument: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let err = LinalgError::ShapeMismatch { left: (2, 3), right: (4, 5), op: "mul" };
        assert_eq!(err.to_string(), "shape mismatch in mul: left is 2x3, right is 4x5");
    }

    #[test]
    fn display_not_square() {
        let err = LinalgError::NotSquare { shape: (2, 3), op: "inverse" };
        assert!(err.to_string().contains("requires a square matrix"));
    }

    #[test]
    fn display_singular() {
        let err = LinalgError::Singular { pivot: 1 };
        assert_eq!(err.to_string(), "matrix is singular at pivot 1");
    }

    #[test]
    fn display_not_converged() {
        let err = LinalgError::NotConverged { algorithm: "qr eigenvalues", iterations: 500 };
        assert!(err.to_string().contains("did not converge"));
    }

    #[test]
    fn display_invalid_argument() {
        let err = LinalgError::InvalidArgument { reason: "empty matrix".to_string() };
        assert!(err.to_string().contains("empty matrix"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
