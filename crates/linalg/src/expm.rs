//! Matrix exponential and the zero-order-hold discretisation integrals
//! required to derive the paper's plant model (Eq. (1)) from continuous-time
//! dynamics.

use crate::error::{LinalgError, Result};
use crate::lu::Lu;
use crate::matrix::Matrix;

/// Computes the matrix exponential `e^A` using scaling-and-squaring with a
/// Padé(6,6) approximant.
///
/// Accuracy is more than sufficient for the small (≤ 10 state) control
/// matrices in this repository.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is rectangular.
/// * [`LinalgError::InvalidArgument`] if `a` contains non-finite entries.
/// * [`LinalgError::Singular`] if the Padé denominator cannot be inverted
///   (does not happen for finite input after scaling).
///
/// # Example
///
/// ```
/// use cps_linalg::{expm, Matrix};
///
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]])?;
/// let e = expm(&a)?;
/// // exp([[0,1],[0,0]]) = [[1,1],[0,1]]
/// assert!(e.approx_eq(&Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]])?, 1e-12));
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
pub fn expm(a: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "expm" });
    }
    let mut workspace = ExpmWorkspace::new(a.rows());
    expm_with(a, &mut workspace)
}

/// Pre-allocated temporaries for [`expm_with`], sized once for `n × n`
/// matrices: the scaled input, the Padé term ping-pong pair, the
/// numerator/denominator accumulators, the squaring scratch and the reusable
/// LU factorisation of the Padé denominator. Design loops that discretise
/// many plants of the same order reuse one workspace instead of allocating
/// ~30 temporaries per exponential; only the returned result is allocated.
#[derive(Debug, Clone)]
pub struct ExpmWorkspace {
    scaled: Matrix,
    term: Matrix,
    term_next: Matrix,
    numerator: Matrix,
    denominator: Matrix,
    square: Matrix,
    lu: Lu,
    column: Vec<f64>,
    solution: Vec<f64>,
}

impl ExpmWorkspace {
    /// Matrix order `n` the workspace was sized for.
    pub fn dim(&self) -> usize {
        self.term.rows()
    }

    /// Allocates a workspace for `n × n` exponentials.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        ExpmWorkspace {
            scaled: Matrix::zeros(n, n),
            term: Matrix::zeros(n, n),
            term_next: Matrix::zeros(n, n),
            numerator: Matrix::zeros(n, n),
            denominator: Matrix::zeros(n, n),
            square: Matrix::zeros(n, n),
            lu: Lu::workspace(n),
            column: vec![0.0; n],
            solution: vec![0.0; n],
        }
    }
}

/// [`expm`] with a caller-provided [`ExpmWorkspace`]; every inner operation
/// is the in-place twin of the allocating original, so the result is
/// bit-identical to [`expm`].
///
/// # Errors
///
/// As [`expm`]; additionally [`LinalgError::ShapeMismatch`] if the workspace
/// was sized for a different order.
pub fn expm_with(a: &Matrix, workspace: &mut ExpmWorkspace) -> Result<Matrix> {
    let mut result = Matrix::zeros(a.rows().max(1), a.cols().max(1));
    expm_into(a, workspace, &mut result)?;
    Ok(result)
}

/// [`expm_with`] writing the exponential into a caller-provided output
/// matrix: with a warm workspace the call performs no heap allocation at
/// all (the designer's steady-state loop, proved by `tests/zero_alloc.rs`).
/// Produces exactly the values of [`expm`].
///
/// # Errors
///
/// As [`expm_with`]; additionally [`LinalgError::ShapeMismatch`] if `out`
/// has the wrong shape.
pub fn expm_into(a: &Matrix, workspace: &mut ExpmWorkspace, out: &mut Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "expm" });
    }
    if !a.is_finite() {
        return Err(LinalgError::InvalidArgument {
            reason: "matrix contains non-finite entries".to_string(),
        });
    }
    let n = a.rows();
    if workspace.term.shape() != (n, n) {
        return Err(LinalgError::ShapeMismatch {
            left: (n, n),
            right: workspace.term.shape(),
            op: "expm workspace",
        });
    }
    if out.shape() != (n, n) {
        return Err(LinalgError::ShapeMismatch {
            left: (n, n),
            right: out.shape(),
            op: "expm output",
        });
    }
    let norm = a.inf_norm();
    let ws = workspace;

    // Scale so that the norm is below 0.5, compute the Padé approximant,
    // then square back.
    let mut squarings = 0u32;
    ws.scaled.copy_from(a)?;
    if norm > 0.5 {
        squarings = (norm / 0.5).log2().ceil() as u32;
        ws.scaled.scale_assign(1.0 / f64::powi(2.0, squarings as i32));
    }

    // Padé(6,6): p(A) / q(A) with q(A) = p(-A).
    const PADE_COEFFS: [f64; 7] =
        [1.0, 0.5, 0.1136363636363636, 0.015151515151515152, 0.0012626262626262627, 6.313131313131313e-5, 1.5031265031265032e-6];
    for r in 0..n {
        for c in 0..n {
            ws.term[(r, c)] = if r == c { 1.0 } else { 0.0 };
        }
    }
    ws.numerator.copy_from(&ws.term)?;
    ws.denominator.copy_from(&ws.term)?;
    let mut sign = 1.0;
    for &coeff in PADE_COEFFS.iter().skip(1) {
        let ExpmWorkspace { scaled, term, term_next, .. } = ws;
        term.matmul_into(scaled, term_next)?;
        std::mem::swap(&mut ws.term, &mut ws.term_next);
        sign = -sign;
        ws.numerator.add_assign_scaled(&ws.term, coeff)?;
        ws.denominator.add_assign_scaled(&ws.term, coeff * sign)?;
    }
    ws.lu.refactor(&ws.denominator)?;
    ws.lu.solve_matrix_into(&ws.numerator, out, &mut ws.column, &mut ws.solution)?;
    for _ in 0..squarings {
        out.matmul_into(out, &mut ws.square)?;
        std::mem::swap(out, &mut ws.square);
    }
    Ok(())
}

/// Zero-order-hold discretisation of the continuous-time pair `(A, B)` over a
/// step of `dt` seconds:
///
/// * `phi = e^{A·dt}`
/// * `gamma = ∫₀^{dt} e^{A·s} ds · B`
///
/// Both are computed simultaneously from the exponential of the augmented
/// matrix `[[A, B], [0, 0]]`, which is numerically robust even when `A` is
/// singular (pure integrators such as the servo-position plant).
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is rectangular.
/// * [`LinalgError::ShapeMismatch`] if `b` has a different number of rows
///   than `a`.
/// * [`LinalgError::InvalidArgument`] if `dt` is not positive and finite.
pub fn discretize_zoh(a: &Matrix, b: &Matrix, dt: f64) -> Result<(Matrix, Matrix)> {
    let mut workspace = ExpmWorkspace::new((a.rows() + b.cols()).max(1));
    discretize_zoh_with(a, b, dt, &mut workspace)
}

/// [`discretize_zoh`] with a caller-provided [`ExpmWorkspace`] sized for the
/// augmented order `n + m`, so design loops that discretise many plants of
/// the same order share one set of exponential temporaries. Produces exactly
/// the values of [`discretize_zoh`].
///
/// # Errors
///
/// As [`discretize_zoh`]; additionally [`LinalgError::ShapeMismatch`] if the
/// workspace was sized for a different augmented order.
pub fn discretize_zoh_with(
    a: &Matrix,
    b: &Matrix,
    dt: f64,
    workspace: &mut ExpmWorkspace,
) -> Result<(Matrix, Matrix)> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "discretize_zoh" });
    }
    if b.rows() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "discretize_zoh",
        });
    }
    if !(dt > 0.0) || !dt.is_finite() {
        return Err(LinalgError::InvalidArgument {
            reason: format!("discretisation step must be positive and finite, got {dt}"),
        });
    }
    let n = a.rows();
    let m = b.cols();
    // Augmented matrix [[A, B], [0, 0]] * dt.
    let mut aug = Matrix::zeros(n + m, n + m);
    aug.set_block(0, 0, &a.scale(dt))?;
    aug.set_block(0, n, &b.scale(dt))?;
    let exp_aug = expm_with(&aug, workspace)?;
    let phi = exp_aug.block(0, 0, n, n)?;
    let gamma = exp_aug.block(0, n, n, m)?;
    Ok((phi, gamma))
}

/// Computes the partial zero-order-hold input integral
/// `∫_{t0}^{t1} e^{A·s} ds · B` for `0 ≤ t0 ≤ t1`.
///
/// This is exactly what is needed for the delayed-input model of the paper's
/// Eq. (1): with sensor-to-actuator delay `d ≤ h`,
/// `Γ₀ = ∫₀^{h−d} e^{A·s} ds · B` and `Γ₁ = ∫_{h−d}^{h} e^{A·s} ds · B`.
///
/// # Errors
///
/// Same conditions as [`discretize_zoh`], plus
/// [`LinalgError::InvalidArgument`] if `t0 > t1` or `t0 < 0`.
pub fn input_integral(a: &Matrix, b: &Matrix, t0: f64, t1: f64) -> Result<Matrix> {
    let mut workspace = ExpmWorkspace::new((a.rows() + b.cols()).max(1));
    input_integral_with(a, b, t0, t1, &mut workspace)
}

/// [`input_integral`] with a caller-provided [`ExpmWorkspace`] sized for the
/// augmented order `n + m` (shared by the two inner discretisations).
/// Produces exactly the values of [`input_integral`].
///
/// # Errors
///
/// As [`input_integral`]; additionally [`LinalgError::ShapeMismatch`] if the
/// workspace was sized for a different augmented order.
pub fn input_integral_with(
    a: &Matrix,
    b: &Matrix,
    t0: f64,
    t1: f64,
    workspace: &mut ExpmWorkspace,
) -> Result<Matrix> {
    if t0 < 0.0 || t0 > t1 || !t0.is_finite() || !t1.is_finite() {
        return Err(LinalgError::InvalidArgument {
            reason: format!("integral bounds must satisfy 0 <= t0 <= t1, got [{t0}, {t1}]"),
        });
    }
    if b.rows() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "input_integral",
        });
    }
    if t1 == 0.0 || (t1 - t0) == 0.0 {
        return Ok(Matrix::zeros(a.rows(), b.cols()));
    }
    // ∫_{t0}^{t1} e^{A s} ds B = ∫_0^{t1} ... − ∫_0^{t0} ...
    let (_, g1) = discretize_zoh_with(a, b, t1, workspace)?;
    if t0 == 0.0 {
        return Ok(g1);
    }
    let (_, g0) = discretize_zoh_with(a, b, t0, workspace)?;
    g1.sub_matrix(&g0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert!(expm(&z).unwrap().approx_eq(&Matrix::identity(3), 1e-14));
    }

    #[test]
    fn expm_of_diagonal() {
        let a = Matrix::diagonal(&[1.0, -2.0]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - 1f64.exp()).abs() < 1e-10);
        assert!((e[(1, 1)] - (-2f64).exp()).abs() < 1e-10);
        assert!(e[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn expm_of_rotation_matches_closed_form() {
        // exp([[0, -w], [w, 0]] t) = [[cos wt, -sin wt], [sin wt, cos wt]]
        let w = 2.0;
        let a = Matrix::from_rows(&[&[0.0, -w], &[w, 0.0]]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - w.cos()).abs() < 1e-9);
        assert!((e[(1, 0)] - w.sin()).abs() < 1e-9);
    }

    #[test]
    fn expm_large_norm_uses_squaring() {
        let a = Matrix::diagonal(&[5.0, -5.0]).unwrap();
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - 5f64.exp()).abs() / 5f64.exp() < 1e-9);
        assert!((e[(1, 1)] - (-5f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn expm_with_workspace_is_bit_identical_and_reusable() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-4.0, -0.8]]).unwrap();
        let big = Matrix::diagonal(&[5.0, -5.0]).unwrap();
        let reference_a = expm(&a).unwrap();
        let reference_big = expm(&big).unwrap();
        let mut ws = ExpmWorkspace::new(2);
        assert_eq!(expm_with(&a, &mut ws).unwrap(), reference_a);
        assert_eq!(expm_with(&big, &mut ws).unwrap(), reference_big);
        assert_eq!(expm_with(&a, &mut ws).unwrap(), reference_a);
        // Wrong workspace order is rejected.
        let mut wrong = ExpmWorkspace::new(3);
        assert!(expm_with(&a, &mut wrong).is_err());
    }

    #[test]
    fn expm_rejects_bad_input() {
        assert!(expm(&Matrix::zeros(2, 3)).is_err());
        let mut nan = Matrix::identity(2);
        nan[(1, 1)] = f64::INFINITY;
        assert!(expm(&nan).is_err());
    }

    #[test]
    fn zoh_double_integrator_matches_closed_form() {
        // Double integrator: A = [[0,1],[0,0]], B = [[0],[1]].
        // phi = [[1, h], [0, 1]], gamma = [[h^2/2], [h]].
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap();
        let b = Matrix::column(&[0.0, 1.0]).unwrap();
        let h = 0.02;
        let (phi, gamma) = discretize_zoh(&a, &b, h).unwrap();
        assert!((phi[(0, 1)] - h).abs() < 1e-12);
        assert!((gamma[(0, 0)] - h * h / 2.0).abs() < 1e-12);
        assert!((gamma[(1, 0)] - h).abs() < 1e-12);
    }

    #[test]
    fn zoh_first_order_lag_matches_closed_form() {
        // dx = -a x + b u: phi = e^{-a h}, gamma = b (1 - e^{-a h}) / a.
        let a_coeff = 3.0;
        let b_coeff = 2.0;
        let a = Matrix::from_rows(&[&[-a_coeff]]).unwrap();
        let b = Matrix::from_rows(&[&[b_coeff]]).unwrap();
        let h = 0.1;
        let (phi, gamma) = discretize_zoh(&a, &b, h).unwrap();
        assert!((phi[(0, 0)] - (-a_coeff * h).exp()).abs() < 1e-10);
        assert!((gamma[(0, 0)] - b_coeff * (1.0 - (-a_coeff * h).exp()) / a_coeff).abs() < 1e-10);
    }

    #[test]
    fn zoh_rejects_bad_arguments() {
        let a = Matrix::identity(2);
        let b = Matrix::column(&[1.0, 0.0]).unwrap();
        assert!(discretize_zoh(&a, &b, 0.0).is_err());
        assert!(discretize_zoh(&a, &b, f64::NAN).is_err());
        assert!(discretize_zoh(&a, &Matrix::column(&[1.0]).unwrap(), 0.1).is_err());
        assert!(discretize_zoh(&Matrix::zeros(2, 3), &b, 0.1).is_err());
    }

    #[test]
    fn input_integral_splits_the_full_interval() {
        // Γ₀ + Γ₁ must equal the full ZOH gamma for any split point.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[-4.0, -0.8]]).unwrap();
        let b = Matrix::column(&[0.0, 1.5]).unwrap();
        let h = 0.02;
        let d = 0.007;
        let (_, gamma_full) = discretize_zoh(&a, &b, h).unwrap();
        let gamma0 = input_integral(&a, &b, 0.0, h - d).unwrap();
        let gamma1 = input_integral(&a, &b, h - d, h).unwrap();
        let sum = gamma0.add_matrix(&gamma1).unwrap();
        assert!(sum.approx_eq(&gamma_full, 1e-10));
    }

    #[test]
    fn input_integral_degenerate_bounds() {
        let a = Matrix::identity(2);
        let b = Matrix::column(&[1.0, 1.0]).unwrap();
        let zero = input_integral(&a, &b, 0.01, 0.01).unwrap();
        assert!(zero.approx_eq(&Matrix::zeros(2, 1), 1e-15));
        assert!(input_integral(&a, &b, 0.02, 0.01).is_err());
        assert!(input_integral(&a, &b, -0.1, 0.01).is_err());
    }
}
