//! Discrete-time algebraic Riccati equation (DARE) solver and the LQR gain
//! computation built on it.
//!
//! The paper designs the event-triggered and time-triggered state-feedback
//! controllers "using optimal control principles" (Section II-B, refs [9],
//! [10]); in this reproduction that is an infinite-horizon discrete LQR.

use crate::error::{LinalgError, Result};
use crate::lu::Lu;
use crate::matrix::Matrix;

/// Options controlling the fixed-point DARE iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DareOptions {
    /// Maximum number of Riccati recursion steps.
    pub max_iterations: usize,
    /// Convergence threshold on the max-abs difference between successive
    /// iterates.
    pub tolerance: f64,
}

impl Default for DareOptions {
    fn default() -> Self {
        DareOptions { max_iterations: 20_000, tolerance: 1e-11 }
    }
}

/// Solves the discrete-time algebraic Riccati equation
///
/// `P = AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q`
///
/// by iterating the finite-horizon Riccati recursion to convergence (value
/// iteration). For stabilisable `(A, B)` and detectable `(A, Q^{1/2})` the
/// recursion converges to the unique stabilising solution.
///
/// # Errors
///
/// * Shape errors if the operands are malformed.
/// * [`LinalgError::InvalidArgument`] if `Q` or `R` is not symmetric.
/// * [`LinalgError::Singular`] if `R + BᵀPB` becomes singular.
/// * [`LinalgError::NotConverged`] if the recursion does not converge (for
///   example because the pair is not stabilisable).
pub fn solve_dare(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
) -> Result<Matrix> {
    let mut workspace = RiccatiWorkspace::new(a.rows().max(1), b.cols().max(1));
    solve_dare_with(a, b, q, r, options, &mut workspace)
}

/// [`solve_dare`] with a caller-provided [`RiccatiWorkspace`], so repeated
/// designs in a sweep reuse one set of temporaries instead of allocating ~9
/// matrices per Riccati iteration. Produces exactly the values of
/// [`solve_dare_reference`] (every inner operation is the in-place variant of
/// the corresponding allocating one).
///
/// # Errors
///
/// As [`solve_dare`]; additionally [`LinalgError::ShapeMismatch`] if the
/// workspace was sized for different dimensions.
pub fn solve_dare_with(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
    workspace: &mut RiccatiWorkspace,
) -> Result<Matrix> {
    solve_dare_in_place(a, b, q, r, options, workspace)?;
    Ok(workspace.p.clone())
}

/// [`solve_dare_with`] without materialising the result: the stabilising
/// solution is left in the workspace ([`RiccatiWorkspace::solution`]), so the
/// steady-state design loop — warm workspace, repeated solves — performs no
/// heap allocation at all (proved by `tests/zero_alloc.rs`). Produces exactly
/// the values of [`solve_dare_reference`].
///
/// # Errors
///
/// As [`solve_dare_with`].
pub fn solve_dare_in_place(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
    workspace: &mut RiccatiWorkspace,
) -> Result<()> {
    validate_lqr_shapes(a, b, q, r)?;
    workspace.check(a.rows(), b.cols())?;
    workspace.p.copy_from(q)?;
    for iteration in 0..options.max_iterations {
        riccati_step_into(a, b, q, r, workspace)?;
        let ws = &mut *workspace;
        let delta = max_abs_difference(&ws.next, &ws.p);
        ws.p.copy_from(&ws.next)?;
        if delta < options.tolerance {
            // Symmetrise to clean up round-off before returning; the in-place
            // ops reproduce `(P + Pᵀ) · 0.5` of the reference path bit for
            // bit (`x + 1.0·y` is exactly `x + y`).
            let RiccatiWorkspace { p, pt, .. } = ws;
            p.transpose_into(pt)?;
            p.add_assign_scaled(pt, 1.0)?;
            p.scale_assign(0.5);
            return Ok(());
        }
        // Guard against runaway divergence early.
        if !ws.p.is_finite() {
            return Err(LinalgError::NotConverged {
                algorithm: "dare value iteration",
                iterations: iteration + 1,
            });
        }
    }
    Err(LinalgError::NotConverged {
        algorithm: "dare value iteration",
        iterations: options.max_iterations,
    })
}

/// The original, allocating DARE recursion, kept as the numerical reference
/// for the workspace path: `solve_dare` must reproduce its output bit for
/// bit (asserted by the test suite and measurable by the design benches).
///
/// # Errors
///
/// As [`solve_dare`].
pub fn solve_dare_reference(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
) -> Result<Matrix> {
    validate_lqr_shapes(a, b, q, r)?;
    let mut p = q.clone();
    for iteration in 0..options.max_iterations {
        let next = riccati_step_reference(a, b, q, r, &p)?;
        let delta = next.sub_matrix(&p)?.max_abs();
        p = next;
        if delta < options.tolerance {
            return p.add_matrix(&p.transpose()).map(|s| s.scale(0.5));
        }
        if !p.is_finite() {
            return Err(LinalgError::NotConverged {
                algorithm: "dare value iteration",
                iterations: iteration + 1,
            });
        }
    }
    Err(LinalgError::NotConverged {
        algorithm: "dare value iteration",
        iterations: options.max_iterations,
    })
}

/// `max |left - right|` without materialising the difference matrix; the
/// shapes are validated by the callers.
fn max_abs_difference(left: &Matrix, right: &Matrix) -> f64 {
    left.as_slice()
        .iter()
        .zip(right.as_slice())
        .fold(0.0, |acc, (l, r)| acc.max((l - r).abs()))
}

/// Pre-allocated temporaries for the Riccati iteration step /
/// [`solve_dare_with`] / [`dlqr_with`], sized once for an `n`-state,
/// `m`-input problem.
///
/// One workspace serves any number of designs with the same dimensions —
/// the sweep workloads (threshold re-design, fleet variants) construct it
/// once per thread.
#[derive(Debug, Clone)]
pub struct RiccatiWorkspace {
    /// `Aᵀ` (n × n).
    at: Matrix,
    /// `Bᵀ` (m × n).
    bt: Matrix,
    /// `P·A` (n × n).
    pa: Matrix,
    /// `P·B` (n × m).
    pb: Matrix,
    /// `Bᵀ·P·B` (m × m).
    btpb: Matrix,
    /// `R + Bᵀ·P·B` (m × m).
    gram: Matrix,
    /// `Bᵀ·P·A` (m × n).
    btpa: Matrix,
    /// `(R + BᵀPB)⁻¹·BᵀPA` (m × n).
    gain: Matrix,
    /// `Aᵀ·P·A` (n × n).
    atpa: Matrix,
    /// `Aᵀ·P·B` (n × m).
    atpb: Matrix,
    /// `AᵀPB·gain` (n × n).
    correction: Matrix,
    /// The next Riccati iterate (n × n).
    next: Matrix,
    /// `Bᵀ·P` (m × n), used by the final gain computation of [`dlqr_with`].
    btp: Matrix,
    /// The current Riccati iterate; after a successful
    /// [`solve_dare_in_place`] it holds the stabilising DARE solution
    /// ([`RiccatiWorkspace::solution`]).
    p: Matrix,
    /// `Pᵀ` scratch for the final in-place symmetrisation (n × n).
    pt: Matrix,
    /// Reusable LU factorisation of the Gram matrix.
    lu: Lu,
    /// Column scratch for the matrix solve.
    column: Vec<f64>,
    /// Solution scratch for the matrix solve.
    solution: Vec<f64>,
}

impl RiccatiWorkspace {
    /// Allocates a workspace for an `n`-state, `m`-input problem.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `m == 0`.
    pub fn new(n: usize, m: usize) -> Self {
        RiccatiWorkspace {
            at: Matrix::zeros(n, n),
            bt: Matrix::zeros(m, n),
            pa: Matrix::zeros(n, n),
            pb: Matrix::zeros(n, m),
            btpb: Matrix::zeros(m, m),
            gram: Matrix::zeros(m, m),
            btpa: Matrix::zeros(m, n),
            gain: Matrix::zeros(m, n),
            atpa: Matrix::zeros(n, n),
            atpb: Matrix::zeros(n, m),
            correction: Matrix::zeros(n, n),
            next: Matrix::zeros(n, n),
            btp: Matrix::zeros(m, n),
            p: Matrix::zeros(n, n),
            pt: Matrix::zeros(n, n),
            lu: Lu::workspace(m),
            column: vec![0.0; m],
            solution: vec![0.0; m],
        }
    }

    /// Dimensions `(n, m)` the workspace was sized for.
    pub fn dims(&self) -> (usize, usize) {
        (self.at.rows(), self.bt.rows())
    }

    /// The DARE solution left behind by the last successful
    /// [`solve_dare_in_place`] (all-zero before the first solve).
    pub fn solution(&self) -> &Matrix {
        &self.p
    }

    /// Verifies the workspace was sized for an `n`-state, `m`-input problem.
    fn check(&self, n: usize, m: usize) -> Result<()> {
        if self.at.shape() != (n, n) || self.bt.shape() != (m, n) {
            return Err(LinalgError::ShapeMismatch {
                left: (n, m),
                right: (self.at.rows(), self.bt.rows()),
                op: "riccati workspace",
            });
        }
        Ok(())
    }
}

/// One step of the Riccati recursion, reading the current iterate from
/// `ws.p` and writing the next one into `ws.next`:
/// `P⁺ = AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q`, allocation-free.
///
/// Every operation is the `_into` twin of the allocating op in
/// [`riccati_step_reference`], so the result is bit-identical.
fn riccati_step_into(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    workspace: &mut RiccatiWorkspace,
) -> Result<()> {
    let RiccatiWorkspace {
        at,
        bt,
        pa,
        pb,
        btpb,
        gram,
        btpa,
        gain,
        atpa,
        atpb,
        correction,
        next,
        p,
        lu,
        column,
        solution,
        ..
    } = workspace;
    a.transpose_into(at)?;
    b.transpose_into(bt)?;
    p.matmul_into(a, pa)?;
    p.matmul_into(b, pb)?;
    bt.matmul_into(pb, btpb)?;
    gram.copy_from(r)?;
    gram.add_assign_scaled(btpb, 1.0)?;
    bt.matmul_into(pa, btpa)?;
    lu.refactor(gram)?;
    lu.solve_matrix_into(btpa, gain, column, solution)?;
    at.matmul_into(pa, atpa)?;
    at.matmul_into(pb, atpb)?;
    atpb.matmul_into(gain, correction)?;
    next.copy_from(atpa)?;
    next.add_assign_scaled(correction, -1.0)?;
    next.add_assign_scaled(q, 1.0)?;
    Ok(())
}

/// One step of the Riccati recursion, allocating (~9 temporaries): the
/// reference semantics for [`riccati_step_into`].
fn riccati_step_reference(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    p: &Matrix,
) -> Result<Matrix> {
    let at = a.transpose();
    let bt = b.transpose();
    let pa = p.matmul(a)?;
    let pb = p.matmul(b)?;
    let btpb = bt.matmul(&pb)?;
    let gram = r.add_matrix(&btpb)?;
    let btpa = bt.matmul(&pa)?;
    let gain_term = Lu::decompose(&gram)?.solve_matrix(&btpa)?;
    let atpa = at.matmul(&pa)?;
    let atpb = at.matmul(&pb)?;
    atpa.sub_matrix(&atpb.matmul(&gain_term)?)?.add_matrix(q)
}

/// Result of an LQR synthesis: the state-feedback gain and the Riccati
/// solution it was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct LqrSolution {
    /// State-feedback gain `K` such that the optimal input is `u = −K·x`.
    pub gain: Matrix,
    /// Stabilising solution `P` of the DARE (the optimal cost matrix).
    pub cost: Matrix,
}

/// Designs an infinite-horizon discrete-time LQR controller.
///
/// Returns the gain `K` (with the convention `u[k] = −K·x[k]`) and the
/// Riccati cost matrix `P` minimising `Σ (xᵀQx + uᵀRu)`.
///
/// # Errors
///
/// Propagates the DARE solver errors; additionally fails with
/// [`LinalgError::Singular`] if `R + BᵀPB` is singular at the final gain
/// computation.
///
/// # Example
///
/// ```
/// use cps_linalg::{dlqr, DareOptions, Matrix};
///
/// // Double integrator sampled at 0.1 s.
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
/// let b = Matrix::column(&[0.005, 0.1])?;
/// let q = Matrix::identity(2);
/// let r = Matrix::from_rows(&[&[0.1]])?;
/// let sol = dlqr(&a, &b, &q, &r, DareOptions::default())?;
/// assert_eq!(sol.gain.shape(), (1, 2));
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
pub fn dlqr(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
) -> Result<LqrSolution> {
    let mut workspace = RiccatiWorkspace::new(a.rows().max(1), b.cols().max(1));
    dlqr_with(a, b, q, r, options, &mut workspace)
}

/// [`dlqr`] with a caller-provided [`RiccatiWorkspace`]: repeated syntheses
/// (threshold sweeps, fleet-variant design loops) share one set of
/// temporaries across all Riccati iterations and the final gain computation.
///
/// # Errors
///
/// As [`dlqr`].
pub fn dlqr_with(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
    workspace: &mut RiccatiWorkspace,
) -> Result<LqrSolution> {
    solve_dare_in_place(a, b, q, r, options, workspace)?;
    // gram = R + (BᵀP)·B, rhs = (BᵀP)·A — the same associativity as the
    // original allocating path, so gains are unchanged bit for bit.
    let RiccatiWorkspace { bt, btp, btpb, gram, btpa, gain, p, lu, column, solution, .. } =
        workspace;
    b.transpose_into(bt)?;
    bt.matmul_into(p, btp)?;
    btp.matmul_into(b, btpb)?;
    gram.copy_from(r)?;
    gram.add_assign_scaled(btpb, 1.0)?;
    btp.matmul_into(a, btpa)?;
    lu.refactor(gram)?;
    lu.solve_matrix_into(btpa, gain, column, solution)?;
    Ok(LqrSolution { gain: gain.clone(), cost: p.clone() })
}

fn validate_lqr_shapes(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "dare" });
    }
    if b.rows() != a.rows() {
        return Err(LinalgError::ShapeMismatch { left: a.shape(), right: b.shape(), op: "dare" });
    }
    if q.shape() != a.shape() {
        return Err(LinalgError::ShapeMismatch { left: a.shape(), right: q.shape(), op: "dare" });
    }
    if r.shape() != (b.cols(), b.cols()) {
        return Err(LinalgError::ShapeMismatch {
            left: (b.cols(), b.cols()),
            right: r.shape(),
            op: "dare",
        });
    }
    if !q.is_symmetric(1e-9) {
        return Err(LinalgError::InvalidArgument { reason: "Q must be symmetric".to_string() });
    }
    if !r.is_symmetric(1e-9) {
        return Err(LinalgError::InvalidArgument { reason: "R must be symmetric".to_string() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::spectral_radius;

    fn double_integrator(h: f64) -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[&[1.0, h], &[0.0, 1.0]]).unwrap();
        let b = Matrix::column(&[h * h / 2.0, h]).unwrap();
        (a, b)
    }

    #[test]
    fn dare_solution_satisfies_equation() {
        let (a, b) = double_integrator(0.05);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[0.5]]).unwrap();
        let p = solve_dare(&a, &b, &q, &r, DareOptions::default()).unwrap();

        // Residual of the DARE must be tiny.
        let next = riccati_step_reference(&a, &b, &q, &r, &p).unwrap();
        assert!(next.sub_matrix(&p).unwrap().max_abs() < 1e-8);
        assert!(p.is_symmetric(1e-9));

        // The workspace path must be bit-identical to the allocating
        // reference path — every `_into` op mirrors its allocating twin.
        let reference = solve_dare_reference(&a, &b, &q, &r, DareOptions::default()).unwrap();
        assert_eq!(p, reference, "workspace DARE must match the allocating path bit for bit");

        // A single workspace step matches a single reference step exactly.
        let mut ws = RiccatiWorkspace::new(2, 1);
        ws.p.copy_from(&p).unwrap();
        riccati_step_into(&a, &b, &q, &r, &mut ws).unwrap();
        assert_eq!(ws.next, next);

        // And the workspace is reusable across designs without drift; the
        // in-place variant leaves the same solution in the workspace.
        let p_again = solve_dare_with(&a, &b, &q, &r, DareOptions::default(), &mut ws).unwrap();
        assert_eq!(p_again, p);
        solve_dare_in_place(&a, &b, &q, &r, DareOptions::default(), &mut ws).unwrap();
        assert_eq!(ws.solution(), &p);
        assert_eq!(ws.dims(), (2, 1));
    }

    #[test]
    fn workspace_dimension_mismatch_is_rejected() {
        let (a, b) = double_integrator(0.05);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[0.5]]).unwrap();
        let mut wrong = RiccatiWorkspace::new(3, 1);
        assert!(solve_dare_with(&a, &b, &q, &r, DareOptions::default(), &mut wrong).is_err());
        assert!(dlqr_with(&a, &b, &q, &r, DareOptions::default(), &mut wrong).is_err());
    }

    #[test]
    fn workspace_dlqr_matches_one_shot_dlqr() {
        let (a, b) = double_integrator(0.02);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[0.1]]).unwrap();
        let one_shot = dlqr(&a, &b, &q, &r, DareOptions::default()).unwrap();
        let mut ws = RiccatiWorkspace::new(2, 1);
        let first = dlqr_with(&a, &b, &q, &r, DareOptions::default(), &mut ws).unwrap();
        let second = dlqr_with(&a, &b, &q, &r, DareOptions::default(), &mut ws).unwrap();
        assert_eq!(one_shot, first);
        assert_eq!(first, second);
    }

    #[test]
    fn lqr_stabilises_double_integrator() {
        let (a, b) = double_integrator(0.02);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[0.1]]).unwrap();
        let sol = dlqr(&a, &b, &q, &r, DareOptions::default()).unwrap();

        // Closed loop A − B K must be Schur stable.
        let closed = a.sub_matrix(&b.matmul(&sol.gain).unwrap()).unwrap();
        assert!(spectral_radius(&closed).unwrap() < 1.0);
    }

    #[test]
    fn lqr_stabilises_unstable_plant() {
        // Scalar unstable plant x+ = 1.2 x + 0.5 u.
        let a = Matrix::from_rows(&[&[1.2]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5]]).unwrap();
        let q = Matrix::identity(1);
        let r = Matrix::identity(1);
        let sol = dlqr(&a, &b, &q, &r, DareOptions::default()).unwrap();
        let closed = a.sub_matrix(&b.matmul(&sol.gain).unwrap()).unwrap();
        assert!(closed[(0, 0)].abs() < 1.0);
    }

    #[test]
    fn heavier_input_weight_gives_smaller_gain() {
        let (a, b) = double_integrator(0.02);
        let q = Matrix::identity(2);
        let cheap = dlqr(&a, &b, &q, &Matrix::from_rows(&[&[0.01]]).unwrap(), DareOptions::default())
            .unwrap();
        let expensive =
            dlqr(&a, &b, &q, &Matrix::from_rows(&[&[10.0]]).unwrap(), DareOptions::default())
                .unwrap();
        assert!(cheap.gain.frobenius_norm() > expensive.gain.frobenius_norm());
    }

    #[test]
    fn shape_and_symmetry_validation() {
        let (a, b) = double_integrator(0.02);
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        assert!(solve_dare(&Matrix::zeros(2, 3), &b, &q, &r, DareOptions::default()).is_err());
        assert!(solve_dare(&a, &Matrix::column(&[1.0]).unwrap(), &q, &r, DareOptions::default())
            .is_err());
        assert!(solve_dare(&a, &b, &Matrix::identity(3), &r, DareOptions::default()).is_err());
        assert!(solve_dare(&a, &b, &q, &Matrix::identity(2), DareOptions::default()).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(solve_dare(&a, &b, &asym, &r, DareOptions::default()).is_err());
    }

    #[test]
    fn uncontrollable_unstable_pair_does_not_converge() {
        // Unstable mode with zero input authority: value iteration diverges.
        let a = Matrix::diagonal(&[1.5, 0.5]).unwrap();
        let b = Matrix::column(&[0.0, 1.0]).unwrap();
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        let options = DareOptions { max_iterations: 500, tolerance: 1e-12 };
        assert!(matches!(
            solve_dare(&a, &b, &q, &r, options),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn default_options_are_sane() {
        let opts = DareOptions::default();
        assert!(opts.max_iterations > 100);
        assert!(opts.tolerance > 0.0 && opts.tolerance < 1e-6);
    }
}
