//! Discrete-time algebraic Riccati equation (DARE) solver and the LQR gain
//! computation built on it.
//!
//! The paper designs the event-triggered and time-triggered state-feedback
//! controllers "using optimal control principles" (Section II-B, refs [9],
//! [10]); in this reproduction that is an infinite-horizon discrete LQR.

use crate::error::{LinalgError, Result};
use crate::lu::Lu;
use crate::matrix::Matrix;

/// Options controlling the fixed-point DARE iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DareOptions {
    /// Maximum number of Riccati recursion steps.
    pub max_iterations: usize,
    /// Convergence threshold on the max-abs difference between successive
    /// iterates.
    pub tolerance: f64,
}

impl Default for DareOptions {
    fn default() -> Self {
        DareOptions { max_iterations: 20_000, tolerance: 1e-11 }
    }
}

/// Solves the discrete-time algebraic Riccati equation
///
/// `P = AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q`
///
/// by iterating the finite-horizon Riccati recursion to convergence (value
/// iteration). For stabilisable `(A, B)` and detectable `(A, Q^{1/2})` the
/// recursion converges to the unique stabilising solution.
///
/// # Errors
///
/// * Shape errors if the operands are malformed.
/// * [`LinalgError::InvalidArgument`] if `Q` or `R` is not symmetric.
/// * [`LinalgError::Singular`] if `R + BᵀPB` becomes singular.
/// * [`LinalgError::NotConverged`] if the recursion does not converge (for
///   example because the pair is not stabilisable).
pub fn solve_dare(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
) -> Result<Matrix> {
    validate_lqr_shapes(a, b, q, r)?;
    let mut p = q.clone();
    for iteration in 0..options.max_iterations {
        let next = riccati_step(a, b, q, r, &p)?;
        let delta = next.sub_matrix(&p)?.max_abs();
        p = next;
        if delta < options.tolerance {
            // Symmetrise to clean up round-off before returning.
            return p.add_matrix(&p.transpose()).map(|s| s.scale(0.5));
        }
        // Guard against runaway divergence early.
        if !p.is_finite() {
            return Err(LinalgError::NotConverged {
                algorithm: "dare value iteration",
                iterations: iteration + 1,
            });
        }
    }
    Err(LinalgError::NotConverged {
        algorithm: "dare value iteration",
        iterations: options.max_iterations,
    })
}

/// One step of the Riccati recursion:
/// `P⁺ = AᵀPA − AᵀPB (R + BᵀPB)⁻¹ BᵀPA + Q`.
fn riccati_step(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix, p: &Matrix) -> Result<Matrix> {
    let at = a.transpose();
    let bt = b.transpose();
    let pa = p.matmul(a)?;
    let pb = p.matmul(b)?;
    let btpb = bt.matmul(&pb)?;
    let gram = r.add_matrix(&btpb)?;
    let btpa = bt.matmul(&pa)?;
    let gain_term = Lu::decompose(&gram)?.solve_matrix(&btpa)?;
    let atpa = at.matmul(&pa)?;
    let atpb = at.matmul(&pb)?;
    atpa.sub_matrix(&atpb.matmul(&gain_term)?)?.add_matrix(q)
}

/// Result of an LQR synthesis: the state-feedback gain and the Riccati
/// solution it was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct LqrSolution {
    /// State-feedback gain `K` such that the optimal input is `u = −K·x`.
    pub gain: Matrix,
    /// Stabilising solution `P` of the DARE (the optimal cost matrix).
    pub cost: Matrix,
}

/// Designs an infinite-horizon discrete-time LQR controller.
///
/// Returns the gain `K` (with the convention `u[k] = −K·x[k]`) and the
/// Riccati cost matrix `P` minimising `Σ (xᵀQx + uᵀRu)`.
///
/// # Errors
///
/// Propagates the DARE solver errors; additionally fails with
/// [`LinalgError::Singular`] if `R + BᵀPB` is singular at the final gain
/// computation.
///
/// # Example
///
/// ```
/// use cps_linalg::{dlqr, DareOptions, Matrix};
///
/// // Double integrator sampled at 0.1 s.
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
/// let b = Matrix::column(&[0.005, 0.1])?;
/// let q = Matrix::identity(2);
/// let r = Matrix::from_rows(&[&[0.1]])?;
/// let sol = dlqr(&a, &b, &q, &r, DareOptions::default())?;
/// assert_eq!(sol.gain.shape(), (1, 2));
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
pub fn dlqr(
    a: &Matrix,
    b: &Matrix,
    q: &Matrix,
    r: &Matrix,
    options: DareOptions,
) -> Result<LqrSolution> {
    let p = solve_dare(a, b, q, r, options)?;
    let bt = b.transpose();
    let gram = r.add_matrix(&bt.matmul(&p)?.matmul(b)?)?;
    let rhs = bt.matmul(&p)?.matmul(a)?;
    let gain = Lu::decompose(&gram)?.solve_matrix(&rhs)?;
    Ok(LqrSolution { gain, cost: p })
}

fn validate_lqr_shapes(a: &Matrix, b: &Matrix, q: &Matrix, r: &Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "dare" });
    }
    if b.rows() != a.rows() {
        return Err(LinalgError::ShapeMismatch { left: a.shape(), right: b.shape(), op: "dare" });
    }
    if q.shape() != a.shape() {
        return Err(LinalgError::ShapeMismatch { left: a.shape(), right: q.shape(), op: "dare" });
    }
    if r.shape() != (b.cols(), b.cols()) {
        return Err(LinalgError::ShapeMismatch {
            left: (b.cols(), b.cols()),
            right: r.shape(),
            op: "dare",
        });
    }
    if !q.is_symmetric(1e-9) {
        return Err(LinalgError::InvalidArgument { reason: "Q must be symmetric".to_string() });
    }
    if !r.is_symmetric(1e-9) {
        return Err(LinalgError::InvalidArgument { reason: "R must be symmetric".to_string() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::spectral_radius;

    fn double_integrator(h: f64) -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[&[1.0, h], &[0.0, 1.0]]).unwrap();
        let b = Matrix::column(&[h * h / 2.0, h]).unwrap();
        (a, b)
    }

    #[test]
    fn dare_solution_satisfies_equation() {
        let (a, b) = double_integrator(0.05);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[0.5]]).unwrap();
        let p = solve_dare(&a, &b, &q, &r, DareOptions::default()).unwrap();

        // Residual of the DARE must be tiny.
        let next = riccati_step(&a, &b, &q, &r, &p).unwrap();
        assert!(next.sub_matrix(&p).unwrap().max_abs() < 1e-8);
        assert!(p.is_symmetric(1e-9));
    }

    #[test]
    fn lqr_stabilises_double_integrator() {
        let (a, b) = double_integrator(0.02);
        let q = Matrix::identity(2);
        let r = Matrix::from_rows(&[&[0.1]]).unwrap();
        let sol = dlqr(&a, &b, &q, &r, DareOptions::default()).unwrap();

        // Closed loop A − B K must be Schur stable.
        let closed = a.sub_matrix(&b.matmul(&sol.gain).unwrap()).unwrap();
        assert!(spectral_radius(&closed).unwrap() < 1.0);
    }

    #[test]
    fn lqr_stabilises_unstable_plant() {
        // Scalar unstable plant x+ = 1.2 x + 0.5 u.
        let a = Matrix::from_rows(&[&[1.2]]).unwrap();
        let b = Matrix::from_rows(&[&[0.5]]).unwrap();
        let q = Matrix::identity(1);
        let r = Matrix::identity(1);
        let sol = dlqr(&a, &b, &q, &r, DareOptions::default()).unwrap();
        let closed = a.sub_matrix(&b.matmul(&sol.gain).unwrap()).unwrap();
        assert!(closed[(0, 0)].abs() < 1.0);
    }

    #[test]
    fn heavier_input_weight_gives_smaller_gain() {
        let (a, b) = double_integrator(0.02);
        let q = Matrix::identity(2);
        let cheap = dlqr(&a, &b, &q, &Matrix::from_rows(&[&[0.01]]).unwrap(), DareOptions::default())
            .unwrap();
        let expensive =
            dlqr(&a, &b, &q, &Matrix::from_rows(&[&[10.0]]).unwrap(), DareOptions::default())
                .unwrap();
        assert!(cheap.gain.frobenius_norm() > expensive.gain.frobenius_norm());
    }

    #[test]
    fn shape_and_symmetry_validation() {
        let (a, b) = double_integrator(0.02);
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        assert!(solve_dare(&Matrix::zeros(2, 3), &b, &q, &r, DareOptions::default()).is_err());
        assert!(solve_dare(&a, &Matrix::column(&[1.0]).unwrap(), &q, &r, DareOptions::default())
            .is_err());
        assert!(solve_dare(&a, &b, &Matrix::identity(3), &r, DareOptions::default()).is_err());
        assert!(solve_dare(&a, &b, &q, &Matrix::identity(2), DareOptions::default()).is_err());
        let asym = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]).unwrap();
        assert!(solve_dare(&a, &b, &asym, &r, DareOptions::default()).is_err());
    }

    #[test]
    fn uncontrollable_unstable_pair_does_not_converge() {
        // Unstable mode with zero input authority: value iteration diverges.
        let a = Matrix::diagonal(&[1.5, 0.5]).unwrap();
        let b = Matrix::column(&[0.0, 1.0]).unwrap();
        let q = Matrix::identity(2);
        let r = Matrix::identity(1);
        let options = DareOptions { max_iterations: 500, tolerance: 1e-12 };
        assert!(matches!(
            solve_dare(&a, &b, &q, &r, options),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn default_options_are_sane() {
        let opts = DareOptions::default();
        assert!(opts.max_iterations > 100);
        assert!(opts.tolerance > 0.0 && opts.tolerance < 1e-6);
    }
}
