//! Const-generic and lane-batched specialisations of the dense kernels.
//!
//! The dynamic kernels in [`crate::Matrix`] ([`Matrix::matvec_kernel`],
//! [`Matrix::matmul_kernel`], [`crate::axpy`]) serve every shape; this module
//! adds two families tuned for the 2–6 state dimensions every fused
//! simulation kernel in the workspace actually has:
//!
//! 1. **Const-generic square kernels** — [`matvec_kernel_n`],
//!    [`matmul_kernel_n`] and [`axpy_n`] take the dimension as a
//!    compile-time `N`, so the compiler fully unrolls the loops and keeps
//!    the accumulators in registers. They are instantiated for `N = 2..=6`
//!    by the dispatchers ([`matvec_kernel_dyn`]); any other dimension falls
//!    back to the dynamic loop.
//! 2. **Lane-batched kernels** — [`matvec_lanes_kernel`] steps `K`
//!    independent state vectors at once by treating the packed states as an
//!    `N×K` matrix (`x[i * lanes + l]` holds state `i` of lane `l`): one
//!    `A·X` matmul per step instead of `K` matvecs, giving the CPU `K`
//!    independent accumulator chains per instruction stream with inner
//!    loops over contiguous lanes that autovectorise. The lane widths 4, 8
//!    and 16 are specialised ([`matvec_lanes_kernel_k`]), and for the case-study
//!    dimensions 2..=6 they dispatch further to the register-tiled
//!    [`matvec_lanes_kernel_nk`] instantiations (both extents compile-time:
//!    one `[f64; K]` accumulator tile per row, a single pass over the packed
//!    states); ragged remainders take the dynamic-width path.
//!    [`matvec_lane_strided`] steps a *single* lane of a packed state in
//!    place — the scalar peel-off path for lanes that diverge (mode switch,
//!    hold-last-command) from their batch — gathering the lane column into a
//!    register block and dispatching dimensions 2..=6 to the unrolled
//!    [`matvec_lane_strided_n`] instantiations.
//!
//! # Bit-identity
//!
//! Every kernel here accumulates each output element with a single running
//! sum in ascending-`k` order starting from `0.0` — exactly the order of
//! [`Matrix::matvec_kernel`] and [`Matrix::matmul_kernel`]. Column `l` of a
//! lane-batched product is therefore **bit-identical** to the scalar matvec
//! of that lane's state, and peeling a lane off to [`matvec_lane_strided`]
//! never changes its trajectory. Batching is purely an instruction-stream
//! optimisation; it can never change a result.
//!
//! [`Matrix::matvec_kernel`]: crate::Matrix::matvec_kernel
//! [`Matrix::matmul_kernel`]: crate::Matrix::matmul_kernel

/// Unrolled `out = a * x` for a compile-time square dimension `N`.
///
/// `a` is an `N×N` row-major slice. Bit-identical to
/// [`crate::Matrix::matvec_kernel`] on the same data: one running
/// accumulator per output element, ascending-`k` additions from `0.0`.
///
/// Lengths are only `debug_assert!`ed — validate once before entering a hot
/// loop, exactly like the dynamic kernel tier.
#[inline]
pub fn matvec_kernel_n<const N: usize>(a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), N * N, "matvec_kernel_n: matrix length");
    debug_assert_eq!(x.len(), N, "matvec_kernel_n: input length");
    debug_assert_eq!(out.len(), N, "matvec_kernel_n: output length");
    for (row, slot) in a.chunks_exact(N).zip(out.iter_mut()) {
        let mut acc = 0.0;
        for (a, x) in row.iter().zip(x) {
            acc += a * x;
        }
        *slot = acc;
    }
}

/// Unrolled `out = a * b` for compile-time square `N×N` operands.
///
/// All three slices are `N×N` row-major. Accumulation order matches
/// [`crate::Matrix::matmul_kernel`] element for element (zero-fill, then
/// ascending-`k` rank-1 updates), so results are bit-identical to the
/// dynamic kernel.
#[inline]
pub fn matmul_kernel_n<const N: usize>(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), N * N, "matmul_kernel_n: lhs length");
    debug_assert_eq!(b.len(), N * N, "matmul_kernel_n: rhs length");
    debug_assert_eq!(out.len(), N * N, "matmul_kernel_n: output length");
    for (a_row, out_row) in a.chunks_exact(N).zip(out.chunks_exact_mut(N)) {
        out_row.fill(0.0);
        for (aik, b_row) in a_row.iter().zip(b.chunks_exact(N)) {
            for (o, b) in out_row.iter_mut().zip(b_row) {
                *o += aik * b;
            }
        }
    }
}

/// Unrolled `y += a * x` for a compile-time length `N`.
///
/// Bit-identical to [`crate::axpy`] on the same data.
#[inline]
pub fn axpy_n<const N: usize>(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), N, "axpy_n: y length");
    debug_assert_eq!(x.len(), N, "axpy_n: x length");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Dynamic matvec fallback over raw slices (same loop as
/// [`crate::Matrix::matvec_kernel`], without the `Matrix` wrapper).
#[inline]
fn matvec_fallback(dim: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    for (row, slot) in a.chunks_exact(dim).zip(out.iter_mut()) {
        let mut acc = 0.0;
        for (a, x) in row.iter().zip(x) {
            acc += a * x;
        }
        *slot = acc;
    }
}

/// Runtime dispatcher over the const-generic matvec kernels.
///
/// Dimensions 2..=6 — every augmented plant order in the case study — hit
/// the unrolled [`matvec_kernel_n`] instantiations; anything else takes the
/// dynamic fallback loop. All paths are bit-identical to
/// [`crate::Matrix::matvec_kernel`].
#[inline]
pub fn matvec_kernel_dyn(dim: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), dim * dim, "matvec_kernel_dyn: matrix length");
    debug_assert_eq!(x.len(), dim, "matvec_kernel_dyn: input length");
    debug_assert_eq!(out.len(), dim, "matvec_kernel_dyn: output length");
    match dim {
        2 => matvec_kernel_n::<2>(a, x, out),
        3 => matvec_kernel_n::<3>(a, x, out),
        4 => matvec_kernel_n::<4>(a, x, out),
        5 => matvec_kernel_n::<5>(a, x, out),
        6 => matvec_kernel_n::<6>(a, x, out),
        _ => matvec_fallback(dim, a, x, out),
    }
}

/// Lane-batched `out = a * x` with compile-time dimension `N` *and* lane
/// count `K` — the fully specialised tier.
///
/// With both extents known the accumulator block is a `[f64; K]` register
/// tile per output row: one pass over `x`, one store per output element,
/// no intermediate traffic through `out`. Each element is still a single
/// running sum in ascending-`k` order from `0.0`, so column `l` stays
/// bit-identical to the scalar matvec of lane `l`.
#[inline]
pub fn matvec_lanes_kernel_nk<const N: usize, const K: usize>(
    a: &[f64],
    x: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), N * N, "matvec_lanes_kernel_nk: matrix length");
    debug_assert_eq!(x.len(), N * K, "matvec_lanes_kernel_nk: input length");
    debug_assert_eq!(out.len(), N * K, "matvec_lanes_kernel_nk: output length");
    for (a_row, out_row) in a.chunks_exact(N).zip(out.chunks_exact_mut(K)) {
        let mut acc = [0.0_f64; K];
        for (aik, x_row) in a_row.iter().zip(x.chunks_exact(K)) {
            for (slot, b) in acc.iter_mut().zip(x_row) {
                *slot += aik * b;
            }
        }
        out_row.copy_from_slice(&acc);
    }
}

/// Lane-batched `out = a * x` with a compile-time lane count `K`.
///
/// `a` is `dim×dim` row-major; `x` and `out` are `dim×K` packed states
/// (`x[i * K + l]` = state `i` of lane `l`). The inner loop runs over the
/// `K` contiguous lanes of one state row — `K` independent accumulator
/// chains the compiler unrolls and autovectorises. Dimensions 2..=6 (every
/// augmented order in the case study) additionally hit the register-tiled
/// [`matvec_lanes_kernel_nk`] instantiations. Column `l` of the result is
/// bit-identical to the scalar matvec of lane `l` on every path.
#[inline]
pub fn matvec_lanes_kernel_k<const K: usize>(dim: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), dim * dim, "matvec_lanes_kernel_k: matrix length");
    debug_assert_eq!(x.len(), dim * K, "matvec_lanes_kernel_k: input length");
    debug_assert_eq!(out.len(), dim * K, "matvec_lanes_kernel_k: output length");
    match dim {
        2 => matvec_lanes_kernel_nk::<2, K>(a, x, out),
        3 => matvec_lanes_kernel_nk::<3, K>(a, x, out),
        4 => matvec_lanes_kernel_nk::<4, K>(a, x, out),
        5 => matvec_lanes_kernel_nk::<5, K>(a, x, out),
        6 => matvec_lanes_kernel_nk::<6, K>(a, x, out),
        _ => {
            for (a_row, out_row) in a.chunks_exact(dim).zip(out.chunks_exact_mut(K)) {
                out_row.fill(0.0);
                for (aik, x_row) in a_row.iter().zip(x.chunks_exact(K)) {
                    for (o, b) in out_row.iter_mut().zip(x_row) {
                        *o += aik * b;
                    }
                }
            }
        }
    }
}

/// Dynamic-width lane-batched `out = a * x` (the ragged-remainder path).
///
/// Semantics of [`matvec_lanes_kernel_k`] with the lane count decided at
/// run time; lane widths 4 and 8 dispatch to the specialised
/// instantiations. Column `l` stays bit-identical to the scalar matvec of
/// lane `l` on every path.
#[inline]
pub fn matvec_lanes_kernel(dim: usize, a: &[f64], x: &[f64], lanes: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), dim * dim, "matvec_lanes_kernel: matrix length");
    debug_assert_eq!(x.len(), dim * lanes, "matvec_lanes_kernel: input length");
    debug_assert_eq!(out.len(), dim * lanes, "matvec_lanes_kernel: output length");
    match lanes {
        4 => matvec_lanes_kernel_k::<4>(dim, a, x, out),
        8 => matvec_lanes_kernel_k::<8>(dim, a, x, out),
        16 => matvec_lanes_kernel_k::<16>(dim, a, x, out),
        _ => {
            for (a_row, out_row) in a.chunks_exact(dim).zip(out.chunks_exact_mut(lanes)) {
                out_row.fill(0.0);
                for (aik, x_row) in a_row.iter().zip(x.chunks_exact(lanes)) {
                    for (o, b) in out_row.iter_mut().zip(x_row) {
                        *o += aik * b;
                    }
                }
            }
        }
    }
}

/// Steps a single lane of a packed `dim×lanes` state with a compile-time
/// dimension `N`: the specialised divergence peel-off path.
///
/// The lane's column is gathered into an `[f64; N]` register block first —
/// `N` strided loads once, instead of `N` per output row — and the matvec
/// then runs fully unrolled over contiguous data. Each output element is a
/// single running sum in ascending-`k` order from `0.0` over the same lane
/// values the strided loop reads, so the result is bit-identical to the
/// dynamic [`matvec_lane_strided`] loop (and to the scalar
/// [`matvec_kernel_n`] on the gathered column). Other lanes of `out` are
/// left untouched.
#[inline]
pub fn matvec_lane_strided_n<const N: usize>(
    a: &[f64],
    x: &[f64],
    lanes: usize,
    lane: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), N * N, "matvec_lane_strided_n: matrix length");
    debug_assert_eq!(x.len(), N * lanes, "matvec_lane_strided_n: input length");
    debug_assert_eq!(out.len(), N * lanes, "matvec_lane_strided_n: output length");
    debug_assert!(lane < lanes, "matvec_lane_strided_n: lane index");
    let mut col = [0.0_f64; N];
    for (i, slot) in col.iter_mut().enumerate() {
        *slot = x[i * lanes + lane];
    }
    for (a_row, slot) in a.chunks_exact(N).zip(out.iter_mut().skip(lane).step_by(lanes)) {
        let mut acc = 0.0;
        for (aik, xi) in a_row.iter().zip(&col) {
            acc += aik * xi;
        }
        *slot = acc;
    }
}

/// Steps a single lane of a packed `dim×lanes` state: the divergence
/// peel-off path.
///
/// Reads column `lane` of `x` with stride `lanes`, multiplies by the
/// `dim×dim` matrix `a`, and writes column `lane` of `out` — one running
/// accumulator per output element in ascending-`k` order, so the lane's
/// trajectory is bit-identical to stepping it through
/// [`crate::Matrix::matvec_kernel`] (and therefore to the lane-batched
/// kernels). Dimensions 2..=6 dispatch to the unrolled
/// [`matvec_lane_strided_n`] instantiations. Other lanes of `out` are left
/// untouched.
#[inline]
pub fn matvec_lane_strided(
    dim: usize,
    a: &[f64],
    x: &[f64],
    lanes: usize,
    lane: usize,
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), dim * dim, "matvec_lane_strided: matrix length");
    debug_assert_eq!(x.len(), dim * lanes, "matvec_lane_strided: input length");
    debug_assert_eq!(out.len(), dim * lanes, "matvec_lane_strided: output length");
    debug_assert!(lane < lanes, "matvec_lane_strided: lane index");
    match dim {
        2 => matvec_lane_strided_n::<2>(a, x, lanes, lane, out),
        3 => matvec_lane_strided_n::<3>(a, x, lanes, lane, out),
        4 => matvec_lane_strided_n::<4>(a, x, lanes, lane, out),
        5 => matvec_lane_strided_n::<5>(a, x, lanes, lane, out),
        6 => matvec_lane_strided_n::<6>(a, x, lanes, lane, out),
        _ => {
            for (a_row, slot) in
                a.chunks_exact(dim).zip(out.iter_mut().skip(lane).step_by(lanes))
            {
                let mut acc = 0.0;
                for (aik, x_row) in a_row.iter().zip(x.chunks_exact(lanes)) {
                    acc += aik * x_row[lane];
                }
                *slot = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    /// Deterministic non-trivial test values (no external RNG in unit tests).
    fn lcg_values(seed: u64, count: usize) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..count)
            .map(|_| {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Map to [-1, 1) with enough entropy that reassociation
                // would be visible in the low mantissa bits.
                (state >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    fn reference_matvec(dim: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        let matrix = Matrix::from_vec(dim, dim, a.to_vec()).unwrap();
        let mut out = vec![0.0; dim];
        matrix.matvec_kernel(x, &mut out);
        out
    }

    #[test]
    fn const_generic_matvec_is_bit_identical_to_dynamic() {
        fn check<const N: usize>() {
            let a = lcg_values(N as u64, N * N);
            let x = lcg_values(N as u64 + 100, N);
            let mut out = vec![0.0; N];
            matvec_kernel_n::<N>(&a, &x, &mut out);
            assert_eq!(out, reference_matvec(N, &a, &x), "N = {N}");
            let mut dispatched = vec![0.0; N];
            matvec_kernel_dyn(N, &a, &x, &mut dispatched);
            assert_eq!(dispatched, out, "dispatcher N = {N}");
        }
        check::<2>();
        check::<3>();
        check::<4>();
        check::<5>();
        check::<6>();
        // Out-of-range dimensions fall back to the dynamic loop.
        let a = lcg_values(7, 49);
        let x = lcg_values(107, 7);
        let mut out = vec![0.0; 7];
        matvec_kernel_dyn(7, &a, &x, &mut out);
        assert_eq!(out, reference_matvec(7, &a, &x));
    }

    #[test]
    fn const_generic_matmul_is_bit_identical_to_dynamic() {
        fn check<const N: usize>() {
            let a = lcg_values(N as u64 + 1, N * N);
            let b = lcg_values(N as u64 + 201, N * N);
            let mut out = vec![0.0; N * N];
            matmul_kernel_n::<N>(&a, &b, &mut out);
            let lhs = Matrix::from_vec(N, N, a).unwrap();
            let rhs = Matrix::from_vec(N, N, b).unwrap();
            let mut reference = Matrix::zeros(N, N);
            lhs.matmul_kernel(&rhs, &mut reference);
            assert_eq!(out.as_slice(), reference.as_slice(), "N = {N}");
        }
        check::<2>();
        check::<3>();
        check::<4>();
        check::<5>();
        check::<6>();
    }

    #[test]
    fn const_generic_axpy_is_bit_identical_to_dynamic() {
        fn check<const N: usize>() {
            let x = lcg_values(N as u64 + 301, N);
            let mut y = lcg_values(N as u64 + 401, N);
            let mut reference = y.clone();
            axpy_n::<N>(&mut y, 0.7312, &x);
            crate::axpy(&mut reference, 0.7312, &x);
            assert_eq!(y, reference, "N = {N}");
        }
        check::<2>();
        check::<3>();
        check::<4>();
        check::<5>();
        check::<6>();
    }

    #[test]
    fn lane_batched_columns_match_scalar_matvecs_bitwise() {
        for dim in 2..=6 {
            for lanes in 1..=9 {
                let a = lcg_values((dim * 31 + lanes) as u64, dim * dim);
                let packed = lcg_values((dim * 97 + lanes) as u64, dim * lanes);
                let mut out = vec![0.0; dim * lanes];
                matvec_lanes_kernel(dim, &a, &packed, lanes, &mut out);
                for lane in 0..lanes {
                    let x: Vec<f64> =
                        (0..dim).map(|i| packed[i * lanes + lane]).collect();
                    let expected = reference_matvec(dim, &a, &x);
                    let column: Vec<f64> =
                        (0..dim).map(|i| out[i * lanes + lane]).collect();
                    assert_eq!(column, expected, "dim {dim}, lanes {lanes}, lane {lane}");
                }
            }
        }
    }

    #[test]
    fn strided_single_lane_matches_the_batched_column_bitwise() {
        // 2..=6 hit the unrolled instantiations, 7..=8 the dynamic fallback.
        for dim in 2..=8 {
            for lanes in 1..=8 {
                let a = lcg_values((dim * 13 + lanes) as u64, dim * dim);
                let packed = lcg_values((dim * 17 + lanes) as u64, dim * lanes);
                let mut batched = vec![0.0; dim * lanes];
                matvec_lanes_kernel(dim, &a, &packed, lanes, &mut batched);
                let mut strided = vec![f64::NAN; dim * lanes];
                for lane in 0..lanes {
                    matvec_lane_strided(dim, &a, &packed, lanes, lane, &mut strided);
                }
                assert_eq!(strided, batched, "dim {dim}, lanes {lanes}");
            }
        }
    }
}
