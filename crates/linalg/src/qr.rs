//! QR decomposition via Householder reflections.
//!
//! The eigenvalue solver ([`crate::eig`]) and the least-squares fitting used
//! when approximating dwell-time curves both build on this factorisation.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// QR decomposition `A = Q * R` with `Q` orthogonal and `R` upper triangular.
///
/// # Example
///
/// ```
/// use cps_linalg::{Matrix, Qr};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])?;
/// let qr = Qr::decompose(&a)?;
/// let back = qr.q().matmul(qr.r())?;
/// assert!(back.approx_eq(&a, 1e-10));
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Factors `a` (which may be rectangular with `rows >= cols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `a` has fewer rows than
    /// columns (the thin factorisation used here requires a tall matrix).
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidArgument {
                reason: format!("qr requires rows >= cols, got {m}x{n}"),
            });
        }
        let mut r = a.clone();
        let mut q = Matrix::identity(m);

        for k in 0..n.min(m - 1) {
            // Build the Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += r[(i, k)] * r[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            v[k] = r[(k, k)] - alpha;
            for i in (k + 1)..m {
                v[i] = r[(i, k)];
            }
            let vtv: f64 = v.iter().map(|x| x * x).sum();
            if vtv < 1e-300 {
                continue;
            }

            // Apply the reflector to R: R <- (I - 2 v vᵀ / vᵀv) R.
            for j in 0..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let scale = 2.0 * dot / vtv;
                for i in k..m {
                    r[(i, j)] -= scale * v[i];
                }
            }
            // Accumulate into Q: Q <- Q (I - 2 v vᵀ / vᵀv).
            for i in 0..m {
                let mut dot = 0.0;
                for j in k..m {
                    dot += q[(i, j)] * v[j];
                }
                let scale = 2.0 * dot / vtv;
                for j in k..m {
                    q[(i, j)] -= scale * v[j];
                }
            }
        }
        // Zero out numerical noise below the diagonal of R.
        for i in 0..m {
            for j in 0..n.min(i) {
                r[(i, j)] = 0.0;
            }
        }
        Ok(Qr { q, r })
    }

    /// The orthogonal factor `Q` (`m × m`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`m × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` using the
    /// factorisation.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] if `b.len()` differs from the number
    ///   of rows of `A`.
    /// * [`LinalgError::Singular`] if `R` has a (numerically) zero diagonal
    ///   entry, i.e. `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.q.rows();
        let n = self.r.cols();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                left: (m, n),
                right: (b.len(), 1),
                op: "least squares",
            });
        }
        // y = Qᵀ b (only the first n entries are needed).
        let mut y = vec![0.0; n];
        for j in 0..n {
            let mut acc = 0.0;
            for i in 0..m {
                acc += self.q[(i, j)] * b[i];
            }
            y[j] = acc;
        }
        // Back-substitute R x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.r[(i, j)] * x[j];
            }
            let diag = self.r[(i, i)];
            if diag.abs() < 1e-12 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / diag;
        }
        Ok(x)
    }
}

/// Fits a least-squares polynomial of degree `degree` through the points
/// `(xs[i], ys[i])`, returning coefficients in ascending power order.
///
/// Used by the dwell-time model fitting to smooth simulated characterisation
/// curves before extracting breakpoints.
///
/// # Errors
///
/// * [`LinalgError::InvalidArgument`] if the slices differ in length or there
///   are fewer points than coefficients.
/// * [`LinalgError::Singular`] if the Vandermonde system is rank deficient.
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<Vec<f64>> {
    if xs.len() != ys.len() {
        return Err(LinalgError::InvalidArgument {
            reason: format!("xs has {} points but ys has {}", xs.len(), ys.len()),
        });
    }
    let n_coeffs = degree + 1;
    if xs.len() < n_coeffs {
        return Err(LinalgError::InvalidArgument {
            reason: format!("need at least {} points for degree {}", n_coeffs, degree),
        });
    }
    let mut vander = Matrix::zeros(xs.len(), n_coeffs);
    for (i, &x) in xs.iter().enumerate() {
        let mut p = 1.0;
        for j in 0..n_coeffs {
            vander[(i, j)] = p;
            p *= x;
        }
    }
    Qr::decompose(&vander)?.solve_least_squares(ys)
}

/// Evaluates a polynomial with coefficients in ascending power order.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[&[12.0, -51.0, 4.0], &[6.0, 167.0, -68.0], &[-4.0, 24.0, -41.0]])
            .unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let back = qr.q().matmul(qr.r()).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn q_is_orthogonal() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0], &[0.0, 4.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        for i in 0..qr.r().rows() {
            for j in 0..qr.r().cols().min(i) {
                assert_eq!(qr.r()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_wide_matrices() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::decompose(&a).is_err());
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2 + 3x measured exactly: least squares must recover it.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let coeffs = polyfit(&xs, &ys, 1).unwrap();
        assert!((coeffs[0] - 2.0).abs() < 1e-10);
        assert!((coeffs[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimises_residual() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let qr = Qr::decompose(&a).unwrap();
        // Overdetermined, inconsistent data.
        let x = qr.solve_least_squares(&[0.0, 1.0, 3.0]).unwrap();
        // Normal-equation solution: intercept ~ -1/6, slope 1.5.
        assert!((x[0] + 1.0 / 6.0).abs() < 1e-9);
        assert!((x[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn least_squares_checks_rhs_length() {
        let a = Matrix::identity(3);
        let qr = Qr::decompose(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn polyfit_rejects_bad_input() {
        assert!(polyfit(&[1.0, 2.0], &[1.0], 1).is_err());
        assert!(polyfit(&[1.0], &[1.0], 1).is_err());
    }

    #[test]
    fn polyval_evaluates_in_ascending_order() {
        // 1 + 2x + 3x^2 at x = 2 -> 17
        assert_eq!(polyval(&[1.0, 2.0, 3.0], 2.0), 17.0);
        assert_eq!(polyval(&[], 2.0), 0.0);
    }

    #[test]
    fn polyfit_quadratic() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - 0.5 * x + 0.25 * x * x).collect();
        let coeffs = polyfit(&xs, &ys, 2).unwrap();
        assert!((coeffs[0] - 1.0).abs() < 1e-8);
        assert!((coeffs[1] + 0.5).abs() < 1e-8);
        assert!((coeffs[2] - 0.25).abs() < 1e-8);
    }
}
