//! # cps-linalg
//!
//! Dense small-matrix linear algebra substrate for the DATE 2019 reproduction
//! *Exploiting System Dynamics for Resource-Efficient Automotive CPS Design*.
//!
//! Automotive control loops involve plants with a handful of states, so this
//! crate favours clarity, exhaustive validation and predictable numerics over
//! raw throughput. It provides exactly the operations the rest of the
//! workspace needs:
//!
//! * [`Matrix`] — dense row-major matrices with shape-checked arithmetic,
//!   plus a two-tier in-place API for hot paths: validated `matvec_into` /
//!   `matmul_into` / `add_assign_scaled` entry points over debug-asserted
//!   `matvec_kernel` / `matmul_kernel` / [`axpy`] inner loops that simulation
//!   kernels call on pre-allocated workspaces (validate once, then
//!   allocation-free).
//! * [`matvec_kernel_n`] / [`matmul_kernel_n`] / [`axpy_n`] — const-generic
//!   unrolled twins of the dynamic kernels for the 2–6 state dimensions the
//!   case study actually has ([`matvec_kernel_dyn`] dispatches at run time),
//!   plus the lane-batched family ([`matvec_lanes_kernel`],
//!   [`matvec_lanes_kernel_k`], [`matvec_lane_strided`]) that steps K packed
//!   scenarios per instruction stream — all bit-identical to the dynamic
//!   tier by construction.
//! * [`Lu`] / [`solve`] / [`inverse`] / [`determinant`] — LU factorisation
//!   with partial pivoting.
//! * [`Qr`] / [`polyfit`] — Householder QR and least-squares fitting.
//! * [`eigenvalues`] / [`spectral_radius`] / [`is_schur_stable`] — spectra of
//!   small real matrices via Hessenberg reduction + shifted QR.
//! * [`expm`] / [`discretize_zoh`] / [`input_integral`] — matrix exponential
//!   and the zero-order-hold integrals behind the paper's delayed-input plant
//!   model (Eq. (1)).
//! * [`solve_discrete_lyapunov`] — Lyapunov-based stability certificates.
//! * [`solve_dare`] / [`dlqr`] — discrete Riccati equation and LQR synthesis.
//!
//! # Example
//!
//! ```
//! use cps_linalg::{dlqr, discretize_zoh, is_schur_stable, DareOptions, Matrix};
//!
//! // Continuous-time double integrator, sampled with h = 20 ms.
//! let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]])?;
//! let b = Matrix::column(&[0.0, 1.0])?;
//! let (phi, gamma) = discretize_zoh(&a, &b, 0.02)?;
//!
//! let sol = dlqr(&phi, &gamma, &Matrix::identity(2), &Matrix::from_rows(&[&[0.1]])?,
//!                DareOptions::default())?;
//! let closed_loop = phi.sub_matrix(&gamma.matmul(&sol.gain)?)?;
//! assert!(is_schur_stable(&closed_loop)?);
//! # Ok::<(), cps_linalg::LinalgError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod expm;
mod lu;
mod lyapunov;
mod matrix;
mod qr;
mod riccati;
mod specialized;

pub mod eig;

pub use eig::{eigenvalues, is_hurwitz_stable, is_schur_stable, spectral_radius, Complex};
pub use error::{LinalgError, Result};
pub use expm::{
    discretize_zoh, discretize_zoh_with, expm, expm_into, expm_with, input_integral,
    input_integral_with, ExpmWorkspace,
};
pub use lu::{determinant, inverse, solve, Lu};
pub use lyapunov::{is_positive_definite, is_schur_stable_lyapunov, solve_discrete_lyapunov};
pub use matrix::{axpy, dot, vec_norm, Matrix};
pub use qr::{polyfit, polyval, Qr};
pub use riccati::{
    dlqr, dlqr_with, solve_dare, solve_dare_in_place, solve_dare_reference, solve_dare_with,
    DareOptions, LqrSolution, RiccatiWorkspace,
};
pub use specialized::{
    axpy_n, matmul_kernel_n, matvec_kernel_dyn, matvec_kernel_n, matvec_lane_strided,
    matvec_lane_strided_n, matvec_lanes_kernel, matvec_lanes_kernel_k, matvec_lanes_kernel_nk,
};
