//! Discrete-time Lyapunov equation solver.
//!
//! Used to certify stability of the designed closed loops and to compute
//! quadratic performance bounds for the switched system analysis.

use crate::error::{LinalgError, Result};
use crate::lu::Lu;
use crate::matrix::Matrix;

/// Solves the discrete-time Lyapunov equation
/// `AᵀPA − P + Q = 0` for `P`.
///
/// The equation is vectorised via the Kronecker identity
/// `(Aᵀ ⊗ Aᵀ − I) vec(P) = −vec(Q)` and solved with a dense LU
/// factorisation; for the ≤ 10-state systems in this repository the `n² × n²`
/// system is tiny.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] on malformed
///   inputs.
/// * [`LinalgError::Singular`] if `A` has an eigenvalue pair with
///   `λᵢ·λⱼ = 1` (the equation then has no unique solution — in particular
///   when `A` is not Schur stable and `Q` ≻ 0 there is no positive-definite
///   solution).
///
/// # Example
///
/// ```
/// use cps_linalg::{solve_discrete_lyapunov, Matrix};
///
/// let a = Matrix::from_rows(&[&[0.5, 0.1], &[0.0, 0.8]])?;
/// let q = Matrix::identity(2);
/// let p = solve_discrete_lyapunov(&a, &q)?;
/// // Residual AᵀPA − P + Q must vanish.
/// let residual = a.transpose().matmul(&p)?.matmul(&a)?.sub_matrix(&p)?.add_matrix(&q)?;
/// assert!(residual.max_abs() < 1e-10);
/// # Ok::<(), cps_linalg::LinalgError>(())
/// ```
pub fn solve_discrete_lyapunov(a: &Matrix, q: &Matrix) -> Result<Matrix> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "discrete lyapunov" });
    }
    if q.shape() != a.shape() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: q.shape(),
            op: "discrete lyapunov",
        });
    }
    let n = a.rows();
    let at = a.transpose();
    // Build M = (Aᵀ ⊗ Aᵀ) − I, acting on vec(P) with column-major vec
    // convention vec(P)[i + j*n] = P[i][j].
    let dim = n * n;
    let mut m = Matrix::zeros(dim, dim);
    for i in 0..n {
        for j in 0..n {
            let row = i + j * n;
            for k in 0..n {
                for l in 0..n {
                    let col = k + l * n;
                    // (Aᵀ P A)[i][j] = Σ_{k,l} Aᵀ[i][k] P[k][l] A[l][j]
                    //               = Σ_{k,l} A[k][i] P[k][l] A[l][j]
                    m[(row, col)] += at[(i, k)] * a[(l, j)];
                }
            }
            m[(row, row)] -= 1.0;
        }
    }
    // Right-hand side: −vec(Q).
    let mut rhs = vec![0.0; dim];
    for i in 0..n {
        for j in 0..n {
            rhs[i + j * n] = -q[(i, j)];
        }
    }
    let sol = Lu::decompose(&m)?.solve(&rhs)?;
    let mut p = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            p[(i, j)] = sol[i + j * n];
        }
    }
    // Symmetrise against round-off: the exact solution is symmetric whenever
    // Q is symmetric.
    let p_sym = p.add_matrix(&p.transpose())?.scale(0.5);
    Ok(if q.is_symmetric(1e-12) { p_sym } else { p })
}

/// Checks Schur stability of `A` through the Lyapunov criterion: `A` is
/// stable iff the Lyapunov equation with `Q = I` has a positive-definite
/// solution.
///
/// This provides an independent cross-check of the eigenvalue-based
/// [`crate::eig::is_schur_stable`] and is used in tests.
///
/// # Errors
///
/// Propagates solver errors, except singularity which is mapped to
/// `Ok(false)` (an eigenvalue product on the unit circle is not stable).
pub fn is_schur_stable_lyapunov(a: &Matrix) -> Result<bool> {
    let q = Matrix::identity(a.rows());
    match solve_discrete_lyapunov(a, &q) {
        Ok(p) => Ok(is_positive_definite(&p)),
        Err(LinalgError::Singular { .. }) => Ok(false),
        Err(e) => Err(e),
    }
}

/// Returns `true` if the symmetric matrix `p` is positive definite, tested
/// via an LDLᵀ-free Cholesky factorisation attempt.
pub fn is_positive_definite(p: &Matrix) -> bool {
    if !p.is_square() {
        return false;
    }
    let n = p.rows();
    let mut chol = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = p[(i, j)];
            for k in 0..j {
                sum -= chol[i][k] * chol[j][k];
            }
            if i == j {
                if sum <= 0.0 {
                    return false;
                }
                chol[i][j] = sum.sqrt();
            } else {
                chol[i][j] = sum / chol[j][j];
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::is_schur_stable;

    #[test]
    fn lyapunov_residual_vanishes() {
        let a = Matrix::from_rows(&[&[0.9, 0.2, 0.0], &[-0.1, 0.7, 0.1], &[0.0, 0.0, 0.5]]).unwrap();
        let q = Matrix::identity(3);
        let p = solve_discrete_lyapunov(&a, &q).unwrap();
        let residual = a
            .transpose()
            .matmul(&p)
            .unwrap()
            .matmul(&a)
            .unwrap()
            .sub_matrix(&p)
            .unwrap()
            .add_matrix(&q)
            .unwrap();
        assert!(residual.max_abs() < 1e-9);
        assert!(p.is_symmetric(1e-9));
        assert!(is_positive_definite(&p));
    }

    #[test]
    fn stable_matrix_gives_positive_definite_solution() {
        let a = Matrix::from_rows(&[&[0.3, -0.4], &[0.4, 0.3]]).unwrap();
        assert!(is_schur_stable(&a).unwrap());
        assert!(is_schur_stable_lyapunov(&a).unwrap());
    }

    #[test]
    fn unstable_matrix_fails_lyapunov_test() {
        let a = Matrix::from_rows(&[&[1.1, 0.0], &[0.0, 0.2]]).unwrap();
        assert!(!is_schur_stable(&a).unwrap());
        assert!(!is_schur_stable_lyapunov(&a).unwrap());
    }

    #[test]
    fn shape_validation() {
        let a = Matrix::identity(2).scale(0.5);
        assert!(solve_discrete_lyapunov(&Matrix::zeros(2, 3), &Matrix::identity(2)).is_err());
        assert!(solve_discrete_lyapunov(&a, &Matrix::identity(3)).is_err());
    }

    #[test]
    fn positive_definite_detection() {
        assert!(is_positive_definite(&Matrix::identity(3)));
        let indefinite = Matrix::diagonal(&[1.0, -1.0]).unwrap();
        assert!(!is_positive_definite(&indefinite));
        assert!(!is_positive_definite(&Matrix::zeros(2, 3)));
        let semidefinite = Matrix::diagonal(&[1.0, 0.0]).unwrap();
        assert!(!is_positive_definite(&semidefinite));
    }
}
