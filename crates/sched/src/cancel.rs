//! Cooperative cancellation for long-running analyses.
//!
//! The design-as-a-service layer runs the exact branch-and-bound search (and
//! the fleet-design and robustness-campaign pipelines built on top of it)
//! under per-request deadlines. None of those loops can be preempted safely —
//! they own scratch buffers mid-update — so cancellation is *cooperative*: a
//! [`CancelToken`] is an `Arc`-shared atomic flag the owner (a deadline
//! watchdog, a shutdown path, a test) flips once, and the workers poll at
//! natural budget checkpoints (search-tree nodes, design-chunk boundaries,
//! scenario boundaries).
//!
//! The checkpoint poll is a single relaxed atomic load — no allocation, no
//! syscall — so threading a token through a hot loop does not disturb the
//! zero-allocation guarantees of the analysis kernels (asserted in
//! `tests/zero_alloc.rs`, which solves with an armed token inside the
//! counting-allocator window).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag.
///
/// Cloning is cheap (an `Arc` bump) and every clone observes the same flag;
/// once cancelled, a token stays cancelled — there is deliberately no reset,
/// so a token's lifetime is one request/operation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation: every holder of a clone observes
    /// [`CancelToken::is_cancelled`] from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested. A single relaxed atomic load —
    /// cheap enough to poll at every search node or scenario boundary.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
        // Idempotent.
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(!b.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                while !observer.is_cancelled() {
                    std::thread::yield_now();
                }
                true
            });
            token.cancel();
            assert!(handle.join().unwrap());
        });
    }
}
