//! Maximum-wait-time analysis (the paper's Section IV).
//!
//! When application `Cᵢ` requests the shared TT slot, the worst case is that
//! the lower-priority application with the largest dwell time has just
//! grabbed the slot (non-preemption) and every higher-priority application
//! keeps requesting it as often as its disturbance inter-arrival time allows.
//! The resulting maximum wait time is the fixed point of
//!
//! ```text
//! f(w) = max_{k lower priority} ξᴹₖ  +  Σ_{j higher priority} ⌈w / rⱼ⌉ · ξᴹⱼ   (Eq. (5))
//! ```
//!
//! The paper proves the fixed point exists whenever the higher-priority
//! utilisation `m = Σ ξᴹⱼ/rⱼ` is below one and bounds it by
//! `a/(1−m) ≤ ŵ < a′/(1−m)` with `a′ = a + Σ ξᴹⱼ` (Eqs. (20)–(21)). Both the
//! closed-form bound (used in the paper's case study) and the exact
//! fixed-point iteration are implemented here.

use crate::app::AppTimingParams;
use crate::dwell::{max_dwell_for, ModelKind};
use crate::error::{Result, SchedError};
use crate::timing::SlotTiming;

/// Interference context of one application within a TT slot: the blocking
/// term, the higher-priority interference terms and the derived utilisation.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceContext {
    /// Blocking term `a`: the largest maximum dwell time among lower-priority
    /// applications sharing the slot (zero when there are none).
    pub blocking: f64,
    /// `(ξᴹⱼ, rⱼ)` pairs of the higher-priority applications sharing the slot.
    pub higher_priority: Vec<(f64, f64)>,
}

impl InterferenceContext {
    /// Builds the interference context for `apps[index]` among the
    /// applications listed in `slot` (indices into `apps`), using the dwell
    /// bound of the selected model under the design-baseline slot geometry
    /// ([`SlotTiming::ZERO`]).
    ///
    /// Priorities follow the paper: a smaller deadline means a higher
    /// priority; ties are broken by name for determinism.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] if `index` is not contained
    /// in `slot` or any slot index is out of range.
    pub fn for_application(
        apps: &[AppTimingParams],
        slot: &[usize],
        index: usize,
        kind: ModelKind,
    ) -> Result<Self> {
        Self::for_application_with(apps, slot, index, kind, SlotTiming::ZERO)
    }

    /// [`InterferenceContext::for_application`] under an explicit slot
    /// geometry: every blocking/interference dwell bound is stretched by the
    /// per-slot transmission overhead `ξᴹⱼ + ΔΨ` before it enters the
    /// analysis. With [`SlotTiming::ZERO`] the context is bit-identical to
    /// [`InterferenceContext::for_application`].
    ///
    /// # Errors
    ///
    /// As [`InterferenceContext::for_application`].
    pub fn for_application_with(
        apps: &[AppTimingParams],
        slot: &[usize],
        index: usize,
        kind: ModelKind,
        timing: SlotTiming,
    ) -> Result<Self> {
        if !slot.contains(&index) {
            return Err(SchedError::InvalidParameter {
                reason: format!("application index {index} is not part of the analysed slot"),
            });
        }
        if slot.iter().any(|&i| i >= apps.len()) {
            return Err(SchedError::InvalidParameter {
                reason: "slot references an application index out of range".to_string(),
            });
        }
        let subject = &apps[index];
        let mut blocking: f64 = 0.0;
        let mut higher_priority = Vec::new();
        for &other_index in slot {
            if other_index == index {
                continue;
            }
            let other = &apps[other_index];
            let dwell_bound = timing.effective_dwell(max_dwell_for(other, kind));
            if other.outranks(subject) {
                higher_priority.push((dwell_bound, other.inter_arrival));
            } else {
                blocking = blocking.max(dwell_bound);
            }
        }
        Ok(InterferenceContext { blocking, higher_priority })
    }

    /// Higher-priority slot utilisation `m = Σ ξᴹⱼ / rⱼ` (Eq. (19)).
    pub fn utilization(&self) -> f64 {
        self.higher_priority.iter().map(|(dwell, r)| dwell / r).sum()
    }

    /// Sum of the higher-priority dwell bounds, `Σ ξᴹⱼ`.
    pub fn interference_sum(&self) -> f64 {
        self.higher_priority.iter().map(|(dwell, _)| *dwell).sum()
    }

    /// One evaluation of the paper's Eq. (5): `f(w) = a + Σ ⌈w/rⱼ⌉·ξᴹⱼ`.
    pub fn request_function(&self, wait: f64) -> f64 {
        self.blocking
            + self
                .higher_priority
                .iter()
                .map(|(dwell, r)| (wait / r).ceil().max(0.0) * dwell)
                .sum::<f64>()
    }
}

/// Closed-form upper bound on the maximum wait time, `a′/(1−m)` (Eq. (20)) —
/// the value the paper uses throughout the case study.
///
/// # Errors
///
/// Returns [`SchedError::SlotOverloaded`] if the higher-priority utilisation
/// `m` is ≥ 1, in which case no finite wait-time bound exists.
pub fn max_wait_time_bound(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
) -> Result<f64> {
    max_wait_time_bound_with(apps, slot, index, kind, SlotTiming::ZERO)
}

/// [`max_wait_time_bound`] under an explicit slot geometry (per-slot
/// transmission overheads stretch the blocking and interference terms).
///
/// # Errors
///
/// As [`max_wait_time_bound`].
pub fn max_wait_time_bound_with(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
    timing: SlotTiming,
) -> Result<f64> {
    let ctx = InterferenceContext::for_application_with(apps, slot, index, kind, timing)?;
    let m = ctx.utilization();
    if m >= 1.0 {
        return Err(SchedError::SlotOverloaded {
            application: apps[index].name.clone(),
            utilization: m,
        });
    }
    let a_prime = ctx.blocking + ctx.interference_sum();
    Ok(a_prime / (1.0 - m))
}

/// Closed-form lower bound on the maximum wait time, `a/(1−m)` (Eq. (21)).
///
/// # Errors
///
/// Returns [`SchedError::SlotOverloaded`] if `m ≥ 1`.
pub fn max_wait_time_lower_bound(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
) -> Result<f64> {
    max_wait_time_lower_bound_with(apps, slot, index, kind, SlotTiming::ZERO)
}

/// [`max_wait_time_lower_bound`] under an explicit slot geometry.
///
/// # Errors
///
/// As [`max_wait_time_lower_bound`].
pub fn max_wait_time_lower_bound_with(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
    timing: SlotTiming,
) -> Result<f64> {
    let ctx = InterferenceContext::for_application_with(apps, slot, index, kind, timing)?;
    let m = ctx.utilization();
    if m >= 1.0 {
        return Err(SchedError::SlotOverloaded {
            application: apps[index].name.clone(),
            utilization: m,
        });
    }
    Ok(ctx.blocking / (1.0 - m))
}

/// Maximum number of fixed-point iterations before declaring divergence
/// (shared with the branch-and-bound solver's streaming analysis so both
/// paths agree on the divergence budget).
pub(crate) const MAX_FIXED_POINT_ITERATIONS: usize = 10_000;

/// Exact maximum wait time: the least fixed point of the paper's Eq. (5),
/// computed by the standard monotone iteration `w ← f(w)` starting from the
/// blocking term (plus one interference hit from every higher-priority
/// application, matching the "all request simultaneously" worst case).
///
/// This is at most the closed-form bound of [`max_wait_time_bound`]; the
/// difference is exercised by the `ablation_fixed_point` benchmark.
///
/// # Errors
///
/// * [`SchedError::SlotOverloaded`] if `m ≥ 1`.
/// * [`SchedError::FixedPointDiverged`] if the iteration does not converge
///   within its budget (cannot happen when `m < 1`, kept as a defensive
///   bound).
pub fn max_wait_time_fixed_point(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
) -> Result<f64> {
    max_wait_time_fixed_point_with(apps, slot, index, kind, SlotTiming::ZERO)
}

/// [`max_wait_time_fixed_point`] under an explicit slot geometry.
///
/// # Errors
///
/// As [`max_wait_time_fixed_point`].
pub fn max_wait_time_fixed_point_with(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
    timing: SlotTiming,
) -> Result<f64> {
    let ctx = InterferenceContext::for_application_with(apps, slot, index, kind, timing)?;
    let m = ctx.utilization();
    if m >= 1.0 {
        return Err(SchedError::SlotOverloaded {
            application: apps[index].name.clone(),
            utilization: m,
        });
    }
    // Start from the smallest state in which the worst case can occur: the
    // blocking application holds the slot and every higher-priority
    // application has one pending request.
    let mut wait = ctx.blocking + ctx.interference_sum();
    for _ in 0..MAX_FIXED_POINT_ITERATIONS {
        let next = ctx.request_function(wait);
        if (next - wait).abs() < 1e-12 {
            return Ok(next);
        }
        wait = next;
    }
    Err(SchedError::FixedPointDiverged {
        application: apps[index].name.clone(),
        iterations: MAX_FIXED_POINT_ITERATIONS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I.
    fn table1() -> Vec<AppTimingParams> {
        vec![
            AppTimingParams::with_explicit_conservative_dwell(
                "C1", 200.0, 9.5, 1.68, 11.62, 5.30, 2.27, 6.59,
            )
            .unwrap(),
            AppTimingParams::with_explicit_conservative_dwell(
                "C2", 20.0, 6.25, 2.58, 8.59, 2.95, 1.34, 3.50,
            )
            .unwrap(),
            AppTimingParams::with_explicit_conservative_dwell(
                "C3", 15.0, 2.0, 0.39, 3.97, 0.64, 0.69, 0.77,
            )
            .unwrap(),
            AppTimingParams::with_explicit_conservative_dwell(
                "C4", 200.0, 7.5, 2.50, 10.40, 4.03, 1.92, 4.94,
            )
            .unwrap(),
            AppTimingParams::with_explicit_conservative_dwell(
                "C5", 20.0, 8.5, 2.75, 10.63, 4.58, 1.97, 5.62,
            )
            .unwrap(),
            AppTimingParams::with_explicit_conservative_dwell(
                "C6", 6.0, 6.0, 0.71, 7.94, 0.92, 0.67, 1.01,
            )
            .unwrap(),
        ]
    }

    #[test]
    fn highest_priority_application_alone_has_zero_wait() {
        let apps = table1();
        // C3 alone on a slot: no blocking, no interference.
        let wait = max_wait_time_bound(&apps, &[2], 2, ModelKind::NonMonotonic).unwrap();
        assert_eq!(wait, 0.0);
        let exact = max_wait_time_fixed_point(&apps, &[2], 2, ModelKind::NonMonotonic).unwrap();
        assert_eq!(exact, 0.0);
    }

    #[test]
    fn c6_wait_time_matches_paper_value() {
        let apps = table1();
        // Slot S1 = {C3, C6}; analysing C6 (lower priority than C3).
        let wait = max_wait_time_bound(&apps, &[2, 5], 5, ModelKind::NonMonotonic).unwrap();
        assert!((wait - 0.669).abs() < 0.001, "wait = {wait}");
    }

    #[test]
    fn c3_wait_time_when_sharing_with_c6_matches_paper_value() {
        let apps = table1();
        // Analysing C3 (higher priority): blocked by C6's maximum dwell 0.92.
        let wait = max_wait_time_bound(&apps, &[2, 5], 2, ModelKind::NonMonotonic).unwrap();
        assert!((wait - 0.92).abs() < 1e-9);
    }

    #[test]
    fn monotonic_c2_wait_time_matches_paper_value() {
        let apps = table1();
        // Monotonic case, slot {C2, C4}: C2 is higher priority, blocked by
        // C4's conservative dwell xi'_M = 4.94.
        let wait =
            max_wait_time_bound(&apps, &[1, 3], 1, ModelKind::ConservativeMonotonic).unwrap();
        assert!((wait - 4.94).abs() < 1e-9);
    }

    #[test]
    fn fixed_point_never_exceeds_bound() {
        let apps = table1();
        // Analyse every application on a fully shared slot.
        let slot: Vec<usize> = (0..apps.len()).collect();
        for kind in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
            for index in 0..apps.len() {
                let bound = max_wait_time_bound(&apps, &slot, index, kind).unwrap();
                let exact = max_wait_time_fixed_point(&apps, &slot, index, kind).unwrap();
                let lower = max_wait_time_lower_bound(&apps, &slot, index, kind).unwrap();
                assert!(
                    exact <= bound + 1e-9,
                    "{}: exact {exact} must not exceed bound {bound}",
                    apps[index].name
                );
                assert!(
                    exact + 1e-9 >= lower,
                    "{}: exact {exact} must not fall below lower bound {lower}",
                    apps[index].name
                );
            }
        }
    }

    #[test]
    fn overloaded_slot_is_reported() {
        // Two higher-priority applications whose dwell consumes the full
        // inter-arrival budget of the lowest-priority one.
        let apps = vec![
            AppTimingParams::new("H1", 1.0, 0.5, 0.3, 2.0, 0.6, 0.5).unwrap(),
            AppTimingParams::new("H2", 1.0, 0.6, 0.3, 2.0, 0.6, 0.5).unwrap(),
            AppTimingParams::new("L", 10.0, 5.0, 0.3, 2.0, 0.6, 0.5).unwrap(),
        ];
        let slot = vec![0, 1, 2];
        let err = max_wait_time_bound(&apps, &slot, 2, ModelKind::NonMonotonic).unwrap_err();
        assert!(matches!(err, SchedError::SlotOverloaded { .. }));
        assert!(matches!(
            max_wait_time_fixed_point(&apps, &slot, 2, ModelKind::NonMonotonic),
            Err(SchedError::SlotOverloaded { .. })
        ));
        assert!(matches!(
            max_wait_time_lower_bound(&apps, &slot, 2, ModelKind::NonMonotonic),
            Err(SchedError::SlotOverloaded { .. })
        ));
    }

    #[test]
    fn context_validation() {
        let apps = table1();
        assert!(InterferenceContext::for_application(&apps, &[0, 1], 2, ModelKind::NonMonotonic)
            .is_err());
        assert!(InterferenceContext::for_application(&apps, &[0, 99], 0, ModelKind::NonMonotonic)
            .is_err());
    }

    #[test]
    fn request_function_is_monotone_in_wait() {
        let apps = table1();
        let slot: Vec<usize> = (0..apps.len()).collect();
        let ctx =
            InterferenceContext::for_application(&apps, &slot, 0, ModelKind::NonMonotonic).unwrap();
        let mut previous = ctx.request_function(0.0);
        for i in 1..50 {
            let wait = i as f64 * 0.5;
            let value = ctx.request_function(wait);
            assert!(value + 1e-12 >= previous);
            previous = value;
        }
    }

    #[test]
    fn slot_timing_overhead_stretches_blocking_and_interference() {
        let apps = table1();
        let slot = vec![2, 5]; // {C3, C6}
        // Zero overhead reproduces the baseline analysis bit for bit.
        let zero = SlotTiming::ZERO;
        for index in [2usize, 5] {
            let base = max_wait_time_bound(&apps, &slot, index, ModelKind::NonMonotonic).unwrap();
            let with_zero =
                max_wait_time_bound_with(&apps, &slot, index, ModelKind::NonMonotonic, zero)
                    .unwrap();
            assert_eq!(base.to_bits(), with_zero.to_bits());
        }
        // For C3 (highest priority, blocked by C6): wait = (xi_m_6 + delta).
        let delta = 0.25;
        let timing = SlotTiming::new(delta).unwrap();
        let wait =
            max_wait_time_bound_with(&apps, &slot, 2, ModelKind::NonMonotonic, timing).unwrap();
        assert!((wait - (0.92 + delta)).abs() < 1e-12);
        // For C6 (interfered by C3): a' = xi_m_3 + delta, m = (xi_m_3 + delta)/r_3.
        let effective = 0.64 + delta;
        let expected = effective / (1.0 - effective / 15.0);
        let wait =
            max_wait_time_bound_with(&apps, &slot, 5, ModelKind::NonMonotonic, timing).unwrap();
        assert!((wait - expected).abs() < 1e-12);
        // The exact fixed point and the lower bound respect the same ordering
        // under overhead as without.
        let exact =
            max_wait_time_fixed_point_with(&apps, &slot, 5, ModelKind::NonMonotonic, timing)
                .unwrap();
        let lower =
            max_wait_time_lower_bound_with(&apps, &slot, 5, ModelKind::NonMonotonic, timing)
                .unwrap();
        assert!(lower <= exact + 1e-12 && exact <= wait + 1e-12);
        // Overheads only grow the wait (monotone in delta).
        let larger =
            max_wait_time_bound_with(&apps, &slot, 5, ModelKind::NonMonotonic,
                SlotTiming::new(2.0 * delta).unwrap())
            .unwrap();
        assert!(larger > wait);
    }

    #[test]
    fn deterministic_tie_break_on_equal_deadlines() {
        let apps = vec![
            AppTimingParams::new("A", 10.0, 5.0, 0.3, 2.0, 0.5, 0.4).unwrap(),
            AppTimingParams::new("B", 10.0, 5.0, 0.3, 2.0, 0.5, 0.4).unwrap(),
        ];
        // With equal deadlines, "A" (lexicographically smaller) is treated as
        // higher priority, so analysing A sees B as lower priority (blocking)
        // and analysing B sees A as interference.
        let ctx_a =
            InterferenceContext::for_application(&apps, &[0, 1], 0, ModelKind::NonMonotonic)
                .unwrap();
        assert_eq!(ctx_a.higher_priority.len(), 0);
        assert!(ctx_a.blocking > 0.0);
        let ctx_b =
            InterferenceContext::for_application(&apps, &[0, 1], 1, ModelKind::NonMonotonic)
                .unwrap();
        assert_eq!(ctx_b.higher_priority.len(), 1);
        assert_eq!(ctx_b.blocking, 0.0);
    }
}
