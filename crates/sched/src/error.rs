//! Error type for the schedulability-analysis crate.

use std::fmt;

/// Errors reported by the dwell-time models, wait-time analysis and slot
/// allocation.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A timing parameter violates its precondition (negative time, deadline
    /// exceeding the inter-arrival time, inconsistent curve breakpoints, ...).
    InvalidParameter {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// The higher-priority interference alone already saturates the slot
    /// (`m ≥ 1` in the paper's Eq. (19)); the application cannot be
    /// schedulable on this slot.
    SlotOverloaded {
        /// Name of the application whose analysis failed.
        application: String,
        /// The interference utilisation `m = Σ ξᴹⱼ / rⱼ` that was computed.
        utilization: f64,
    },
    /// The exact fixed-point iteration did not converge within its budget.
    FixedPointDiverged {
        /// Name of the application whose analysis failed.
        application: String,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The allocator ran out of slots (more slots would be required than the
    /// configured maximum).
    InsufficientSlots {
        /// Number of slots that were available.
        available: usize,
        /// Name of the first application that could not be placed.
        application: String,
    },
    /// The exact branch-and-bound search proved that no feasible slot
    /// allocation exists within the configured maximum (unlike
    /// [`SchedError::InsufficientSlots`], no single application is to blame:
    /// the verdict is about the whole fleet).
    NoFeasibleAllocation {
        /// Maximum number of slots the search was allowed to open.
        max_slots: usize,
    },
    /// The exact search was cut short — cancellation token fired or the node
    /// budget ran out — before any feasible allocation (incumbent included)
    /// was known. Neither feasibility nor infeasibility is proven.
    SearchCancelled {
        /// Search-tree nodes expanded before the cut.
        nodes: u64,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            SchedError::SlotOverloaded { application, utilization } => write!(
                f,
                "application {application} cannot be scheduled: interference utilisation {utilization:.3} >= 1"
            ),
            SchedError::FixedPointDiverged { application, iterations } => write!(
                f,
                "fixed-point iteration for {application} did not converge after {iterations} iterations"
            ),
            SchedError::InsufficientSlots { available, application } => write!(
                f,
                "application {application} cannot be placed within {available} TT slots"
            ),
            SchedError::NoFeasibleAllocation { max_slots } => write!(
                f,
                "no feasible slot allocation exists within {max_slots} TT slots"
            ),
            SchedError::SearchCancelled { nodes } => write!(
                f,
                "exact allocation search cancelled after {nodes} nodes with no incumbent"
            ),
        }
    }
}

impl std::error::Error for SchedError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SchedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SchedError::InvalidParameter { reason: "negative deadline".into() };
        assert!(e.to_string().contains("invalid parameter"));
        let e = SchedError::SlotOverloaded { application: "C1".into(), utilization: 1.2 };
        assert!(e.to_string().contains("C1"));
        assert!(e.to_string().contains("1.200"));
        let e = SchedError::FixedPointDiverged { application: "C2".into(), iterations: 99 };
        assert!(e.to_string().contains("99"));
        let e = SchedError::InsufficientSlots { available: 3, application: "C4".into() };
        assert!(e.to_string().contains("3 TT slots"));
        let e = SchedError::NoFeasibleAllocation { max_slots: 4 };
        assert!(e.to_string().contains("no feasible slot allocation"));
        assert!(e.to_string().contains("4 TT slots"));
        let e = SchedError::SearchCancelled { nodes: 17 };
        assert!(e.to_string().contains("cancelled after 17 nodes"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchedError>();
    }
}
