//! TT-slot allocation heuristics (the paper's Section IV allocation
//! procedure plus first-fit/best-fit ablations).
//!
//! Finding the minimum number of slots is NP-hard (it generalises bin
//! packing), so the paper uses a greedy heuristic: walk the applications in
//! priority order and keep adding them to the most recently opened slot; as
//! soon as an addition breaks the schedulability of *any* application already
//! in that slot, open a new slot and place the application there.

use crate::app::{priority_order, AppTimingParams};
use crate::dwell::ModelKind;
use crate::error::{Result, SchedError};
use crate::schedulability::{analyze_slot_with, is_slot_schedulable_with, WaitTimeMethod};
use crate::timing::SlotTiming;

/// Which greedy packing strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocationStrategy {
    /// The paper's procedure: try only the most recently opened slot and open
    /// a new one on failure.
    #[default]
    NextFit,
    /// Try every existing slot in creation order before opening a new one.
    FirstFit,
    /// Place the application into the schedulable slot that leaves the least
    /// remaining slack (tightest fit), opening a new one only if none fits.
    BestFit,
}

impl std::fmt::Display for AllocationStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocationStrategy::NextFit => write!(f, "next-fit"),
            AllocationStrategy::FirstFit => write!(f, "first-fit"),
            AllocationStrategy::BestFit => write!(f, "best-fit"),
        }
    }
}

/// The result of a slot allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotAllocation {
    /// Slots in creation order; each slot lists indices into the original
    /// application slice.
    pub slots: Vec<Vec<usize>>,
    /// The dwell-time model the allocation was computed with.
    pub model: ModelKind,
    /// The wait-time method the allocation was computed with.
    pub method: WaitTimeMethod,
}

impl SlotAllocation {
    /// Number of TT slots used.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Returns the slot index holding the given application, if any.
    pub fn slot_of(&self, app_index: usize) -> Option<usize> {
        self.slots.iter().position(|slot| slot.contains(&app_index))
    }

    /// Verifies that every slot of the allocation is schedulable (under the
    /// design-baseline slot geometry, [`SlotTiming::ZERO`]) and every
    /// application is placed exactly once.
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    pub fn verify(&self, apps: &[AppTimingParams]) -> Result<bool> {
        self.verify_with(apps, SlotTiming::ZERO)
    }

    /// [`SlotAllocation::verify`] under an explicit slot geometry — the
    /// check to use for allocations computed with a non-zero
    /// [`AllocatorConfig::slot_timing`] (the allocation records its model
    /// and method but not the geometry it was packed under).
    ///
    /// # Errors
    ///
    /// Propagates analysis errors.
    pub fn verify_with(&self, apps: &[AppTimingParams], timing: SlotTiming) -> Result<bool> {
        let mut seen = vec![0usize; apps.len()];
        for slot in &self.slots {
            for &index in slot {
                if index >= apps.len() {
                    return Ok(false);
                }
                seen[index] += 1;
            }
            if !is_slot_schedulable_with(apps, slot, self.model, self.method, timing)? {
                return Ok(false);
            }
        }
        Ok(seen.iter().all(|&count| count == 1))
    }
}

/// Configuration of the slot allocator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocatorConfig {
    /// Dwell-time model used for the schedulability analysis.
    pub model: ModelKind,
    /// Wait-time computation method.
    pub method: WaitTimeMethod,
    /// Packing strategy.
    pub strategy: AllocationStrategy,
    /// Maximum number of TT slots that may be opened (the static segment has
    /// finitely many; the paper's bus offers 10 per cycle).
    pub max_slots: usize,
    /// Per-slot transmission timing of the analysed bus geometry: the extra
    /// occupancy a candidate slot length Ψ adds to every blocking and
    /// interference interval ([`SlotTiming::ZERO`], the default, is the
    /// design baseline).
    pub slot_timing: SlotTiming,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            model: ModelKind::NonMonotonic,
            method: WaitTimeMethod::ClosedFormBound,
            strategy: AllocationStrategy::NextFit,
            max_slots: 10,
            slot_timing: SlotTiming::ZERO,
        }
    }
}

impl AllocatorConfig {
    /// The full safe sweep matrix over this configuration's `max_slots` and
    /// `slot_timing`: every packing strategy crossed with every *safe*
    /// dwell-time model and both wait-time methods (the unsafe simple
    /// monotonic model is excluded — it can certify allocations that miss
    /// deadlines). The slot-map sweep workloads feed this into
    /// [`allocation_sweep`].
    pub fn sweep_matrix(&self) -> Vec<AllocatorConfig> {
        let mut configs = Vec::new();
        for strategy in [
            AllocationStrategy::NextFit,
            AllocationStrategy::FirstFit,
            AllocationStrategy::BestFit,
        ] {
            for model in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
                for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
                    configs.push(AllocatorConfig {
                        model,
                        method,
                        strategy,
                        max_slots: self.max_slots,
                        slot_timing: self.slot_timing,
                    });
                }
            }
        }
        configs
    }
}

/// Slot-map sweep plumbing: runs the allocator once per configuration and
/// returns the *distinct* feasible slot maps in input order (configurations
/// that fail — unschedulable application, too few slots — are skipped, and
/// allocations with identical slot structure are deduplicated). The result
/// feeds directly into per-scenario slot-map overrides in the co-simulation
/// layer.
pub fn allocation_sweep(
    apps: &[AppTimingParams],
    configs: &[AllocatorConfig],
) -> Vec<SlotAllocation> {
    let mut distinct: Vec<SlotAllocation> = Vec::new();
    for config in configs {
        if let Ok(allocation) = allocate_slots(apps, config) {
            if !distinct.iter().any(|existing| existing.slots == allocation.slots) {
                distinct.push(allocation);
            }
        }
    }
    distinct
}

/// Allocates the applications to TT slots with the configured greedy
/// strategy, processing them in priority order (decreasing priority, i.e.
/// increasing deadline) exactly as in the paper's case study.
///
/// # Errors
///
/// * [`SchedError::InvalidParameter`] if `apps` is empty, `max_slots` is
///   zero, or an application is unschedulable even alone on a dedicated slot.
/// * [`SchedError::InsufficientSlots`] if more than `max_slots` slots would
///   be required.
pub fn allocate_slots(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
) -> Result<SlotAllocation> {
    if apps.is_empty() {
        return Err(SchedError::InvalidParameter {
            reason: "cannot allocate an empty application set".to_string(),
        });
    }
    if config.max_slots == 0 {
        return Err(SchedError::InvalidParameter {
            reason: "max_slots must be at least one".to_string(),
        });
    }
    let order = priority_order(apps);
    dedicated_slot_precheck(apps, config, &order)?;
    allocate_slots_prechecked(apps, config, &order)
}

/// Verifies, in priority order, that every application is at least
/// schedulable alone on a dedicated TT slot (its pure-TT response meets the
/// deadline) — the precondition of every greedy strategy. Factored out so
/// the branch-and-bound incumbent seeding pays this characterisation pass
/// **once** across all three greedy strategies instead of once per strategy.
///
/// # Errors
///
/// [`SchedError::InvalidParameter`] naming the first (highest-priority)
/// application that cannot meet its deadline; analysis errors are
/// propagated.
pub(crate) fn dedicated_slot_precheck(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
    order: &[usize],
) -> Result<()> {
    for &app_index in order {
        if !is_slot_schedulable_with(
            apps,
            &[app_index],
            config.model,
            config.method,
            config.slot_timing,
        )? {
            return Err(SchedError::InvalidParameter {
                reason: format!(
                    "application {} cannot meet its deadline even with a dedicated TT slot",
                    apps[app_index].name
                ),
            });
        }
    }
    Ok(())
}

/// The greedy packing loop of [`allocate_slots`], reusing a precomputed
/// priority order whose applications passed [`dedicated_slot_precheck`].
/// Produces exactly the allocation of [`allocate_slots`].
///
/// # Errors
///
/// [`SchedError::InsufficientSlots`] if more than `config.max_slots` slots
/// would be required; analysis errors are propagated.
pub(crate) fn allocate_slots_prechecked(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
    order: &[usize],
) -> Result<SlotAllocation> {
    let mut slots: Vec<Vec<usize>> = Vec::new();
    for &app_index in order {
        let last_slot = slots.len().checked_sub(1);
        let placed_slot = match config.strategy {
            AllocationStrategy::NextFit => {
                try_slots(apps, &mut slots, app_index, config, last_slot)?
            }
            AllocationStrategy::FirstFit => try_slots(apps, &mut slots, app_index, config, None)?,
            AllocationStrategy::BestFit => best_fit(apps, &mut slots, app_index, config)?,
        };
        if placed_slot.is_none() {
            if slots.len() >= config.max_slots {
                return Err(SchedError::InsufficientSlots {
                    available: config.max_slots,
                    application: apps[app_index].name.clone(),
                });
            }
            slots.push(vec![app_index]);
        }
    }
    Ok(SlotAllocation { slots, model: config.model, method: config.method })
}

/// Tries to place the application into existing slots. With `only` set, only
/// that slot index is tried (next-fit); otherwise all slots are tried in
/// creation order (first-fit). Returns the slot index used, if any.
fn try_slots(
    apps: &[AppTimingParams],
    slots: &mut [Vec<usize>],
    app_index: usize,
    config: &AllocatorConfig,
    only: Option<usize>,
) -> Result<Option<usize>> {
    let candidates: Vec<usize> = match only {
        Some(slot_index) => vec![slot_index],
        None => (0..slots.len()).collect(),
    };
    for slot_index in candidates {
        let slot = &mut slots[slot_index];
        slot.push(app_index);
        if is_slot_schedulable_with(apps, slot, config.model, config.method, config.slot_timing)? {
            return Ok(Some(slot_index));
        }
        slot.pop();
    }
    Ok(None)
}

/// Best-fit placement: among the slots that remain schedulable with the
/// application added, pick the one whose minimum slack is smallest.
fn best_fit(
    apps: &[AppTimingParams],
    slots: &mut [Vec<usize>],
    app_index: usize,
    config: &AllocatorConfig,
) -> Result<Option<usize>> {
    let mut best: Option<(usize, f64)> = None;
    for slot_index in 0..slots.len() {
        let mut candidate = slots[slot_index].clone();
        candidate.push(app_index);
        let analysis =
            analyze_slot_with(apps, &candidate, config.model, config.method, config.slot_timing)?;
        if analysis.is_schedulable() {
            let min_slack = analysis
                .analyses
                .iter()
                .map(|a| a.slack())
                .fold(f64::INFINITY, f64::min);
            if best.map_or(true, |(_, slack)| min_slack < slack) {
                best = Some((slot_index, min_slack));
            }
        }
    }
    if let Some((slot_index, _)) = best {
        slots[slot_index].push(app_index);
        return Ok(Some(slot_index));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study_fixtures::paper_table1;

    #[test]
    fn paper_case_study_needs_three_slots_with_non_monotonic_model() {
        let apps = paper_table1();
        let allocation = allocate_slots(&apps, &AllocatorConfig::default()).unwrap();
        assert_eq!(allocation.slot_count(), 3, "allocation = {:?}", allocation.slots);
        assert!(allocation.verify(&apps).unwrap());

        // Paper: S1 = {C3, C6}, S2 = {C2, C4}, S3 = {C5, C1} (indices 2,5 / 1,3 / 4,0).
        assert_eq!(allocation.slots[0], vec![2, 5]);
        assert_eq!(allocation.slots[1], vec![1, 3]);
        assert_eq!(allocation.slots[2], vec![4, 0]);
    }

    #[test]
    fn paper_case_study_needs_five_slots_with_conservative_monotonic_model() {
        let apps = paper_table1();
        let config = AllocatorConfig {
            model: ModelKind::ConservativeMonotonic,
            ..AllocatorConfig::default()
        };
        let allocation = allocate_slots(&apps, &config).unwrap();
        assert_eq!(allocation.slot_count(), 5, "allocation = {:?}", allocation.slots);
        assert!(allocation.verify(&apps).unwrap());

        // Paper: S1 = {C3, C6}, then C2, C4, C5, C1 each alone.
        assert_eq!(allocation.slots[0], vec![2, 5]);
        assert_eq!(allocation.slots.len(), 5);
    }

    #[test]
    fn allocation_sweep_yields_distinct_feasible_slot_maps() {
        let apps = paper_table1();
        let configs = AllocatorConfig::default().sweep_matrix();
        // 3 strategies × 2 safe models × 2 wait-time methods.
        assert_eq!(configs.len(), 12);
        assert!(configs.iter().all(|c| c.model != ModelKind::SimpleMonotonic));

        let allocations = allocation_sweep(&apps, &configs);
        assert!(!allocations.is_empty());
        // Every returned slot map is feasible and they are pairwise distinct.
        for (index, allocation) in allocations.iter().enumerate() {
            assert!(allocation.verify(&apps).unwrap());
            for other in &allocations[index + 1..] {
                assert_ne!(allocation.slots, other.slots);
            }
        }
        // The paper's 3-slot and 5-slot maps are both in the sweep.
        assert!(allocations.iter().any(|a| a.slot_count() == 3));
        assert!(allocations.iter().any(|a| a.slot_count() == 5));
        // Infeasible configurations are skipped, not fatal.
        let strangled = AllocatorConfig { max_slots: 1, ..AllocatorConfig::default() };
        let few = allocation_sweep(&apps, &strangled.sweep_matrix());
        assert!(few.iter().all(|a| a.slot_count() <= 1));
    }

    #[test]
    fn slot_timing_overhead_forces_wider_allocations() {
        let apps = paper_table1();
        // A per-slot overhead of 0.8 s breaks S1 = {C3, C6}'s sharing (C3's
        // deadline gives way once the overhead exceeds ≈ 0.603 s), so the
        // greedy packing must open more slots than the baseline's three. The
        // overhead is exaggerated — physical slot-length deltas are
        // microseconds — to make the mechanism observable on the paper fleet.
        let baseline = allocate_slots(&apps, &AllocatorConfig::default()).unwrap();
        let timing = SlotTiming::new(0.8).unwrap();
        let config = AllocatorConfig { slot_timing: timing, ..AllocatorConfig::default() };
        let stretched = allocate_slots(&apps, &config).unwrap();
        assert!(stretched.slot_count() > baseline.slot_count());
        // The result verifies under its own geometry but not necessarily
        // under the baseline check; the baseline allocation in turn fails
        // under the stretched geometry.
        assert!(stretched.verify_with(&apps, timing).unwrap());
        assert!(!baseline.verify_with(&apps, timing).unwrap());
        // The sweep matrix propagates the timing to every configuration.
        assert!(config.sweep_matrix().iter().all(|c| c.slot_timing == timing));
    }

    #[test]
    fn resource_saving_is_67_percent() {
        let apps = paper_table1();
        let non_monotonic = allocate_slots(&apps, &AllocatorConfig::default()).unwrap();
        let monotonic = allocate_slots(
            &apps,
            &AllocatorConfig {
                model: ModelKind::ConservativeMonotonic,
                ..AllocatorConfig::default()
            },
        )
        .unwrap();
        let overhead = (monotonic.slot_count() as f64 - non_monotonic.slot_count() as f64)
            / non_monotonic.slot_count() as f64;
        assert!((overhead - 0.67).abs() < 0.01, "overhead = {overhead}");
    }

    #[test]
    fn slot_of_reports_placement() {
        let apps = paper_table1();
        let allocation = allocate_slots(&apps, &AllocatorConfig::default()).unwrap();
        assert_eq!(allocation.slot_of(2), Some(0)); // C3 in S1
        assert_eq!(allocation.slot_of(0), Some(2)); // C1 in S3
        assert_eq!(allocation.slot_of(42), None);
    }

    #[test]
    fn first_fit_never_uses_more_slots_than_next_fit() {
        let apps = paper_table1();
        for model in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
            let next_fit = allocate_slots(
                &apps,
                &AllocatorConfig { model, ..AllocatorConfig::default() },
            )
            .unwrap();
            let first_fit = allocate_slots(
                &apps,
                &AllocatorConfig {
                    model,
                    strategy: AllocationStrategy::FirstFit,
                    ..AllocatorConfig::default()
                },
            )
            .unwrap();
            assert!(first_fit.slot_count() <= next_fit.slot_count());
            assert!(first_fit.verify(&apps).unwrap());
        }
    }

    #[test]
    fn best_fit_produces_valid_allocations() {
        let apps = paper_table1();
        let allocation = allocate_slots(
            &apps,
            &AllocatorConfig {
                strategy: AllocationStrategy::BestFit,
                ..AllocatorConfig::default()
            },
        )
        .unwrap();
        assert!(allocation.verify(&apps).unwrap());
        assert!(allocation.slot_count() <= 6);
    }

    #[test]
    fn max_slots_limit_is_enforced() {
        let apps = paper_table1();
        let config = AllocatorConfig {
            model: ModelKind::ConservativeMonotonic,
            max_slots: 3,
            ..AllocatorConfig::default()
        };
        assert!(matches!(
            allocate_slots(&apps, &config),
            Err(SchedError::InsufficientSlots { .. })
        ));
    }

    #[test]
    fn empty_input_and_zero_slots_are_rejected() {
        let apps = paper_table1();
        assert!(allocate_slots(&[], &AllocatorConfig::default()).is_err());
        assert!(allocate_slots(
            &apps,
            &AllocatorConfig { max_slots: 0, ..AllocatorConfig::default() }
        )
        .is_err());
    }

    #[test]
    fn infeasible_application_is_rejected() {
        // Deadline shorter than even the pure-TT response time.
        let apps = vec![AppTimingParams::new("X", 10.0, 0.2, 0.39, 3.97, 0.64, 0.69).unwrap()];
        assert!(allocate_slots(&apps, &AllocatorConfig::default()).is_err());
    }

    #[test]
    fn single_application_gets_single_slot() {
        let apps = vec![AppTimingParams::new("X", 10.0, 2.0, 0.39, 3.97, 0.64, 0.69).unwrap()];
        let allocation = allocate_slots(&apps, &AllocatorConfig::default()).unwrap();
        assert_eq!(allocation.slot_count(), 1);
        assert_eq!(allocation.slots[0], vec![0]);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(AllocationStrategy::NextFit.to_string(), "next-fit");
        assert_eq!(AllocationStrategy::FirstFit.to_string(), "first-fit");
        assert_eq!(AllocationStrategy::BestFit.to_string(), "best-fit");
        assert_eq!(AllocationStrategy::default(), AllocationStrategy::NextFit);
    }

    #[test]
    fn simple_monotonic_model_uses_fewer_or_equal_slots_but_is_unsafe() {
        // The unsafe simple model under-estimates dwell times, so it can only
        // make packing look easier — the point the paper makes about earlier
        // work producing invalid guarantees.
        let apps = paper_table1();
        let simple = allocate_slots(
            &apps,
            &AllocatorConfig { model: ModelKind::SimpleMonotonic, ..AllocatorConfig::default() },
        )
        .unwrap();
        let non_monotonic = allocate_slots(&apps, &AllocatorConfig::default()).unwrap();
        assert!(simple.slot_count() <= non_monotonic.slot_count());
    }
}
