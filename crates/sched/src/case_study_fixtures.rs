//! The paper's Table I, as published (all values in seconds).
//!
//! These are the exact numbers from Section V of the paper and drive the
//! reproduction of the headline result (3 TT slots with the non-monotonic
//! model versus 5 with the conservative monotonic one). The ξ′ᴹ column is
//! taken verbatim from the table rather than re-derived, because the
//! published values are rounded to two decimals.

use crate::app::AppTimingParams;

/// Returns the six case-study applications C1…C6 with the timing parameters
/// of the paper's Table I.
///
/// # Panics
///
/// Never panics: the published values satisfy all validation invariants,
/// which is itself covered by a test.
pub fn paper_table1() -> Vec<AppTimingParams> {
    // name, r, xi_d, xi_tt, xi_et, xi_m, k_p, xi'_m — one tuple per row.
    #[allow(clippy::type_complexity)]
    let rows: [(&str, f64, f64, f64, f64, f64, f64, f64); 6] = [
        // name,  r,     xi_d, xi_tt, xi_et, xi_m, k_p,  xi'_m
        ("C1", 200.0, 9.5, 1.68, 11.62, 5.30, 2.27, 6.59),
        ("C2", 20.0, 6.25, 2.58, 8.59, 2.95, 1.34, 3.50),
        ("C3", 15.0, 2.0, 0.39, 3.97, 0.64, 0.69, 0.77),
        ("C4", 200.0, 7.5, 2.50, 10.40, 4.03, 1.92, 4.94),
        ("C5", 20.0, 8.5, 2.75, 10.63, 4.58, 1.97, 5.62),
        ("C6", 6.0, 6.0, 0.71, 7.94, 0.92, 0.67, 1.01),
    ];
    rows.iter()
        .map(|&(name, r, deadline, xi_tt, xi_et, xi_m, k_p, xi_prime_m)| {
            AppTimingParams::with_explicit_conservative_dwell(
                name, r, deadline, xi_tt, xi_et, xi_m, k_p, xi_prime_m,
            )
            .expect("the published Table I values satisfy the model invariants")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_valid_applications() {
        let apps = paper_table1();
        assert_eq!(apps.len(), 6);
        assert_eq!(apps[2].name, "C3");
        assert_eq!(apps[2].deadline, 2.0);
        assert_eq!(apps[5].inter_arrival, 6.0);
    }

    #[test]
    fn published_conservative_dwell_matches_envelope_formula() {
        // The published xi'_m values are (rounded) instances of
        // xi_m / (1 - k_p / xi_et); verify they agree to the table precision.
        for app in paper_table1() {
            let derived = app.xi_m / (1.0 - app.k_p / app.xi_et);
            assert!(
                (derived - app.xi_prime_m).abs() < 0.02,
                "{}: derived {derived:.3} vs published {:.3}",
                app.name,
                app.xi_prime_m
            );
        }
    }

    #[test]
    fn deadlines_do_not_exceed_inter_arrival_times() {
        // Section II-C assumes xi_d <= r for every application.
        for app in paper_table1() {
            assert!(app.deadline <= app.inter_arrival);
        }
    }

    #[test]
    fn priority_order_is_c3_c6_c2_c4_c5_c1() {
        let apps = paper_table1();
        let order = crate::app::priority_order(&apps);
        let names: Vec<&str> = order.iter().map(|&i| apps[i].name.as_str()).collect();
        assert_eq!(names, vec!["C3", "C6", "C2", "C4", "C5", "C1"]);
    }
}
