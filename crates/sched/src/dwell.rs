//! Dwell-time models: how long an application needs the TT slot as a
//! function of how long it already waited in ET communication (Figure 4).
//!
//! Three analytical models are provided, mirroring the paper's discussion:
//!
//! * [`NonMonotonicModel`] — the paper's contribution: two piecewise-linear
//!   segments rising from ξᵀᵀ at zero wait to the peak ξᴹ at `k_p` and
//!   falling back to zero at ξᴱᵀ.
//! * [`ConservativeMonotonicModel`] — a monotonically decreasing line from
//!   ξ′ᴹ at zero wait to zero at ξᴱᵀ that upper-bounds the true curve
//!   everywhere (safe but over-provisioned).
//! * [`SimpleMonotonicModel`] — the *unsafe* assumption of earlier work: a
//!   line from ξᵀᵀ to zero, which under-estimates the dwell time in the
//!   rising region.
//!
//! A general [`PiecewiseLinearModel`] with any number of segments is also
//! provided as the paper's suggested extension ("may be modeled with three or
//! more piecewise linear curves").

use crate::app::AppTimingParams;
use crate::error::{Result, SchedError};

/// A model of the dwell time `k_dw` as a function of the wait time `k_wait`.
///
/// Implementations must be *safe over-approximations*: for schedulability
/// analysis the modelled dwell time must never under-estimate the true one
/// (except for [`SimpleMonotonicModel`], which exists precisely to
/// demonstrate why that assumption is unsafe).
pub trait DwellTimeModel {
    /// Modelled dwell time (seconds) for the given wait time (seconds).
    fn dwell(&self, wait: f64) -> f64;

    /// The maximum dwell time over all wait times — the blocking/interference
    /// term used by the schedulability analysis.
    fn max_dwell(&self) -> f64;

    /// Worst-case total response time for a given wait time:
    /// `ξ(k_wait) = k_wait + k_dw(k_wait)`.
    fn response_time(&self, wait: f64) -> f64 {
        wait + self.dwell(wait)
    }
}

/// Which analytical dwell-time model to use in the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// The paper's two-segment non-monotonic model.
    #[default]
    NonMonotonic,
    /// The conservative monotonic upper bound.
    ConservativeMonotonic,
    /// The unsafe simple monotonic assumption of earlier work.
    SimpleMonotonic,
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelKind::NonMonotonic => write!(f, "non-monotonic"),
            ModelKind::ConservativeMonotonic => write!(f, "conservative monotonic"),
            ModelKind::SimpleMonotonic => write!(f, "simple monotonic"),
        }
    }
}

/// The paper's two-segment piecewise-linear non-monotonic model (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonMonotonicModel {
    xi_tt: f64,
    xi_m: f64,
    k_p: f64,
    xi_et: f64,
}

impl NonMonotonicModel {
    /// Builds the model from the characteristic points.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] unless
    /// `0 < ξᵀᵀ ≤ ξᴹ`, `0 ≤ k_p < ξᴱᵀ` and `ξᴱᵀ > 0`.
    pub fn new(xi_tt: f64, xi_m: f64, k_p: f64, xi_et: f64) -> Result<Self> {
        if !(xi_tt > 0.0 && xi_m > 0.0 && xi_et > 0.0 && k_p >= 0.0)
            || [xi_tt, xi_m, k_p, xi_et].iter().any(|v| !v.is_finite())
        {
            return Err(SchedError::InvalidParameter {
                reason: "non-monotonic model requires positive finite parameters".to_string(),
            });
        }
        if xi_tt > xi_m + 1e-12 {
            return Err(SchedError::InvalidParameter {
                reason: format!("xi_tt ({xi_tt}) must not exceed xi_m ({xi_m})"),
            });
        }
        if k_p >= xi_et {
            return Err(SchedError::InvalidParameter {
                reason: format!("k_p ({k_p}) must be smaller than xi_et ({xi_et})"),
            });
        }
        Ok(NonMonotonicModel { xi_tt, xi_m, k_p, xi_et })
    }

    /// Builds the model for an application from its Table-I parameters.
    pub fn for_app(app: &AppTimingParams) -> Self {
        // AppTimingParams already validated the same invariants.
        NonMonotonicModel { xi_tt: app.xi_tt, xi_m: app.xi_m, k_p: app.k_p, xi_et: app.xi_et }
    }

    /// The conservative monotonic envelope of this model: the line through
    /// `(k_p, ξᴹ)` and `(ξᴱᵀ, 0)` extended back to wait zero (intercept ξ′ᴹ).
    pub fn conservative_envelope(&self) -> ConservativeMonotonicModel {
        let xi_prime_m = if self.k_p == 0.0 {
            self.xi_m
        } else {
            self.xi_m / (1.0 - self.k_p / self.xi_et)
        };
        ConservativeMonotonicModel { xi_prime_m, xi_et: self.xi_et }
    }

    /// Pure-ET response time ξᴱᵀ used as the end of the falling segment.
    pub fn xi_et(&self) -> f64 {
        self.xi_et
    }

    /// Wait time of the dwell peak, k_p.
    pub fn peak_wait(&self) -> f64 {
        self.k_p
    }
}

impl DwellTimeModel for NonMonotonicModel {
    fn dwell(&self, wait: f64) -> f64 {
        if wait <= 0.0 {
            return self.xi_tt;
        }
        if wait >= self.xi_et {
            return 0.0;
        }
        if wait <= self.k_p {
            // Rising segment from (0, xi_tt) to (k_p, xi_m).
            self.xi_tt + (self.xi_m - self.xi_tt) * wait / self.k_p
        } else {
            // Falling segment from (k_p, xi_m) to (xi_et, 0).
            self.xi_m * (self.xi_et - wait) / (self.xi_et - self.k_p)
        }
    }

    fn max_dwell(&self) -> f64 {
        self.xi_m
    }
}

/// The conservative monotonic model: a line from ξ′ᴹ at zero wait down to
/// zero at ξᴱᵀ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConservativeMonotonicModel {
    xi_prime_m: f64,
    xi_et: f64,
}

impl ConservativeMonotonicModel {
    /// Builds the model from ξ′ᴹ and ξᴱᵀ.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] unless both are positive and
    /// finite.
    pub fn new(xi_prime_m: f64, xi_et: f64) -> Result<Self> {
        if !(xi_prime_m > 0.0 && xi_et > 0.0 && xi_prime_m.is_finite() && xi_et.is_finite()) {
            return Err(SchedError::InvalidParameter {
                reason: "conservative model requires positive finite parameters".to_string(),
            });
        }
        Ok(ConservativeMonotonicModel { xi_prime_m, xi_et })
    }

    /// Builds the model for an application from its Table-I parameters.
    pub fn for_app(app: &AppTimingParams) -> Self {
        ConservativeMonotonicModel { xi_prime_m: app.xi_prime_m, xi_et: app.xi_et }
    }
}

impl DwellTimeModel for ConservativeMonotonicModel {
    fn dwell(&self, wait: f64) -> f64 {
        if wait <= 0.0 {
            return self.xi_prime_m;
        }
        if wait >= self.xi_et {
            return 0.0;
        }
        self.xi_prime_m * (1.0 - wait / self.xi_et)
    }

    fn max_dwell(&self) -> f64 {
        self.xi_prime_m
    }
}

/// The *unsafe* simple monotonic model assumed by earlier work: a line from
/// ξᵀᵀ at zero wait down to zero at ξᴱᵀ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleMonotonicModel {
    xi_tt: f64,
    xi_et: f64,
}

impl SimpleMonotonicModel {
    /// Builds the model from ξᵀᵀ and ξᴱᵀ.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] unless `0 < ξᵀᵀ ≤ ξᴱᵀ`.
    pub fn new(xi_tt: f64, xi_et: f64) -> Result<Self> {
        if !(xi_tt > 0.0 && xi_et >= xi_tt && xi_tt.is_finite() && xi_et.is_finite()) {
            return Err(SchedError::InvalidParameter {
                reason: "simple model requires 0 < xi_tt <= xi_et".to_string(),
            });
        }
        Ok(SimpleMonotonicModel { xi_tt, xi_et })
    }

    /// Builds the model for an application from its Table-I parameters.
    pub fn for_app(app: &AppTimingParams) -> Self {
        SimpleMonotonicModel { xi_tt: app.xi_tt, xi_et: app.xi_et }
    }
}

impl DwellTimeModel for SimpleMonotonicModel {
    fn dwell(&self, wait: f64) -> f64 {
        if wait <= 0.0 {
            return self.xi_tt;
        }
        if wait >= self.xi_et {
            return 0.0;
        }
        self.xi_tt * (1.0 - wait / self.xi_et)
    }

    fn max_dwell(&self) -> f64 {
        self.xi_tt
    }
}

/// A general piecewise-linear dwell-time model with an arbitrary number of
/// breakpoints — the paper's suggested refinement beyond two segments.
///
/// Breakpoints are `(wait, dwell)` pairs with strictly increasing wait times;
/// the model interpolates linearly between them and is constant outside the
/// covered range (clamped to the first/last dwell values).
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinearModel {
    breakpoints: Vec<(f64, f64)>,
}

impl PiecewiseLinearModel {
    /// Builds the model from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] if fewer than two breakpoints
    /// are given, wait times are not strictly increasing, or any value is
    /// negative or non-finite.
    pub fn new(breakpoints: Vec<(f64, f64)>) -> Result<Self> {
        if breakpoints.len() < 2 {
            return Err(SchedError::InvalidParameter {
                reason: "piecewise-linear model needs at least two breakpoints".to_string(),
            });
        }
        for window in breakpoints.windows(2) {
            if window[1].0 <= window[0].0 {
                return Err(SchedError::InvalidParameter {
                    reason: "breakpoint wait times must be strictly increasing".to_string(),
                });
            }
        }
        if breakpoints.iter().any(|(w, d)| *w < 0.0 || *d < 0.0 || !w.is_finite() || !d.is_finite())
        {
            return Err(SchedError::InvalidParameter {
                reason: "breakpoints must be non-negative and finite".to_string(),
            });
        }
        Ok(PiecewiseLinearModel { breakpoints })
    }

    /// The breakpoints of the model.
    pub fn breakpoints(&self) -> &[(f64, f64)] {
        &self.breakpoints
    }
}

impl DwellTimeModel for PiecewiseLinearModel {
    fn dwell(&self, wait: f64) -> f64 {
        let first = self.breakpoints.first().expect("validated: at least two breakpoints");
        let last = self.breakpoints.last().expect("validated: at least two breakpoints");
        if wait <= first.0 {
            return first.1;
        }
        if wait >= last.0 {
            return last.1;
        }
        for window in self.breakpoints.windows(2) {
            let (w0, d0) = window[0];
            let (w1, d1) = window[1];
            if wait >= w0 && wait <= w1 {
                let t = (wait - w0) / (w1 - w0);
                return d0 + t * (d1 - d0);
            }
        }
        last.1
    }

    fn max_dwell(&self) -> f64 {
        self.breakpoints.iter().map(|(_, d)| *d).fold(0.0, f64::max)
    }
}

/// Returns the dwell time predicted by the selected analytical model for an
/// application described by its Table-I parameters.
pub fn dwell_for(app: &AppTimingParams, kind: ModelKind, wait: f64) -> f64 {
    match kind {
        ModelKind::NonMonotonic => NonMonotonicModel::for_app(app).dwell(wait),
        ModelKind::ConservativeMonotonic => ConservativeMonotonicModel::for_app(app).dwell(wait),
        ModelKind::SimpleMonotonic => SimpleMonotonicModel::for_app(app).dwell(wait),
    }
}

/// Returns the maximum dwell time of the selected analytical model — the
/// quantity that enters the blocking and interference terms of the
/// schedulability analysis (ξᴹ for the non-monotonic model, ξ′ᴹ for the
/// conservative monotonic one, ξᵀᵀ for the unsafe simple model).
pub fn max_dwell_for(app: &AppTimingParams, kind: ModelKind) -> f64 {
    match kind {
        ModelKind::NonMonotonic => app.xi_m,
        ModelKind::ConservativeMonotonic => app.xi_prime_m,
        ModelKind::SimpleMonotonic => app.xi_tt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c3() -> AppTimingParams {
        AppTimingParams::new("C3", 15.0, 2.0, 0.39, 3.97, 0.64, 0.69).unwrap()
    }

    #[test]
    fn non_monotonic_endpoints_and_peak() {
        let model = NonMonotonicModel::for_app(&c3());
        assert!((model.dwell(0.0) - 0.39).abs() < 1e-12);
        assert!((model.dwell(0.69) - 0.64).abs() < 1e-12);
        assert!(model.dwell(3.97).abs() < 1e-12);
        assert!(model.dwell(10.0).abs() < 1e-12);
        assert_eq!(model.max_dwell(), 0.64);
        assert_eq!(model.peak_wait(), 0.69);
        assert_eq!(model.xi_et(), 3.97);
    }

    #[test]
    fn non_monotonic_matches_case_study_evaluations() {
        // The two dwell evaluations used in the paper's Section V.
        let c3_model = NonMonotonicModel::for_app(&c3());
        // k_wait = xi_m of C6 = 0.92 -> dwell ≈ 0.595 so the response is 1.515.
        assert!((c3_model.response_time(0.92) - 1.515).abs() < 0.005);

        let c6 = AppTimingParams::new("C6", 6.0, 6.0, 0.71, 7.94, 0.92, 0.67).unwrap();
        let c6_model = NonMonotonicModel::for_app(&c6);
        // k_wait = 0.669 -> response ≈ 1.589.
        assert!((c6_model.response_time(0.669) - 1.589).abs() < 0.005);
    }

    #[test]
    fn non_monotonic_rises_then_falls() {
        let model = NonMonotonicModel::for_app(&c3());
        assert!(model.dwell(0.3) > model.dwell(0.0));
        assert!(model.dwell(0.69) > model.dwell(0.3));
        assert!(model.dwell(2.0) < model.dwell(0.69));
        assert!(model.dwell(3.5) < model.dwell(2.0));
    }

    #[test]
    fn conservative_envelope_dominates_non_monotonic_model() {
        let app = c3();
        let nm = NonMonotonicModel::for_app(&app);
        let cm = nm.conservative_envelope();
        assert!((cm.max_dwell() - app.xi_prime_m).abs() < 1e-12);
        for i in 0..=100 {
            let wait = app.xi_et * i as f64 / 100.0;
            assert!(
                cm.dwell(wait) + 1e-9 >= nm.dwell(wait),
                "conservative model must dominate at wait {wait}"
            );
        }
    }

    #[test]
    fn conservative_envelope_with_zero_peak_wait() {
        let nm = NonMonotonicModel::new(0.5, 0.5, 0.0, 2.0).unwrap();
        let cm = nm.conservative_envelope();
        assert!((cm.max_dwell() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simple_model_underestimates_in_rising_region() {
        let app = c3();
        let nm = NonMonotonicModel::for_app(&app);
        let simple = SimpleMonotonicModel::for_app(&app);
        // At the peak wait time the simple model is clearly below the truth —
        // this is exactly why the paper calls it unsafe.
        assert!(simple.dwell(app.k_p) < nm.dwell(app.k_p));
        assert_eq!(simple.max_dwell(), app.xi_tt);
        assert!((simple.dwell(0.0) - app.xi_tt).abs() < 1e-12);
        assert!(simple.dwell(app.xi_et).abs() < 1e-12);
    }

    #[test]
    fn conservative_model_endpoints() {
        let cm = ConservativeMonotonicModel::new(0.77, 3.97).unwrap();
        assert!((cm.dwell(0.0) - 0.77).abs() < 1e-12);
        assert!(cm.dwell(3.97).abs() < 1e-12);
        assert!(cm.dwell(5.0).abs() < 1e-12);
        // Monotone decreasing.
        assert!(cm.dwell(1.0) > cm.dwell(2.0));
    }

    #[test]
    fn model_validation() {
        assert!(NonMonotonicModel::new(0.0, 0.6, 0.7, 4.0).is_err());
        assert!(NonMonotonicModel::new(0.8, 0.6, 0.7, 4.0).is_err());
        assert!(NonMonotonicModel::new(0.4, 0.6, 4.5, 4.0).is_err());
        assert!(ConservativeMonotonicModel::new(0.0, 4.0).is_err());
        assert!(ConservativeMonotonicModel::new(f64::NAN, 4.0).is_err());
        assert!(SimpleMonotonicModel::new(2.0, 1.0).is_err());
        assert!(SimpleMonotonicModel::new(0.0, 1.0).is_err());
    }

    #[test]
    fn piecewise_linear_interpolation() {
        let model =
            PiecewiseLinearModel::new(vec![(0.0, 0.4), (0.5, 0.8), (1.0, 0.6), (2.0, 0.0)]).unwrap();
        assert!((model.dwell(0.25) - 0.6).abs() < 1e-12);
        assert!((model.dwell(0.75) - 0.7).abs() < 1e-12);
        assert!((model.dwell(1.5) - 0.3).abs() < 1e-12);
        assert_eq!(model.dwell(-1.0), 0.4);
        assert_eq!(model.dwell(3.0), 0.0);
        assert_eq!(model.max_dwell(), 0.8);
        assert_eq!(model.breakpoints().len(), 4);
    }

    #[test]
    fn piecewise_linear_validation() {
        assert!(PiecewiseLinearModel::new(vec![(0.0, 0.4)]).is_err());
        assert!(PiecewiseLinearModel::new(vec![(0.0, 0.4), (0.0, 0.5)]).is_err());
        assert!(PiecewiseLinearModel::new(vec![(0.0, -0.4), (1.0, 0.5)]).is_err());
    }

    #[test]
    fn dwell_for_and_max_dwell_for_dispatch() {
        let app = c3();
        assert_eq!(max_dwell_for(&app, ModelKind::NonMonotonic), app.xi_m);
        assert_eq!(max_dwell_for(&app, ModelKind::ConservativeMonotonic), app.xi_prime_m);
        assert_eq!(max_dwell_for(&app, ModelKind::SimpleMonotonic), app.xi_tt);
        assert!((dwell_for(&app, ModelKind::NonMonotonic, 0.0) - app.xi_tt).abs() < 1e-12);
        assert!(
            (dwell_for(&app, ModelKind::ConservativeMonotonic, 0.0) - app.xi_prime_m).abs() < 1e-12
        );
        assert!((dwell_for(&app, ModelKind::SimpleMonotonic, 0.0) - app.xi_tt).abs() < 1e-12);
    }

    #[test]
    fn model_kind_display_and_default() {
        assert_eq!(ModelKind::default(), ModelKind::NonMonotonic);
        assert_eq!(ModelKind::NonMonotonic.to_string(), "non-monotonic");
        assert_eq!(ModelKind::ConservativeMonotonic.to_string(), "conservative monotonic");
        assert_eq!(ModelKind::SimpleMonotonic.to_string(), "simple monotonic");
    }
}
