//! Per-slot transmission timing: how the bus's slot geometry (the static
//! slot length Ψ and the frame payload that determines it) enters the
//! wait-time analysis.
//!
//! The dwell/wait characterisation measures *control-layer* transients under
//! the design-baseline bus: the TT delay the controllers were discretised
//! with already accounts for one baseline slot transmission, so the Table-I
//! dwell times absorb the baseline geometry. Sweeping the bus to a *longer*
//! slot Ψ > Ψ₀ stretches every slot acquisition by the extra transmission
//! time ΔΨ = Ψ − Ψ₀: each occupancy interval another application observes on
//! the slot — the blocking term and every interference hit of the paper's
//! Eq. (5) — grows by that overhead. A shorter slot cannot shorten the
//! characterised dwell (the control transient dominates the frame time), so
//! the overhead is floored at zero and the model stays a safe
//! over-approximation.
//!
//! [`SlotTiming`] carries that overhead through the analysis: the effective
//! dwell bound of an *interfering or blocking* application becomes
//! `ξᴹⱼ + ΔΨ`, which enters the utilisation `m = Σ (ξᴹⱼ + ΔΨ)/rⱼ`, the
//! closed-form bound `a′/(1 − m)`, the exact fixed point and the
//! branch-and-bound slot-demand relaxation. The analysed application's *own*
//! response `ξ(ŵ) = ŵ + k_dw(ŵ)` is unchanged — its settling is a
//! control-layer event; only the occupancy other applications see stretches.
//!
//! [`SlotTiming::ZERO`] (the default) reproduces the baseline analysis bit
//! for bit.

use crate::error::{Result, SchedError};

/// Per-slot transmission timing seen by the wait-time analysis: the extra
/// occupancy ΔΨ (seconds) each dwell interval adds on top of the
/// characterised control-layer dwell time.
///
/// Construct with [`SlotTiming::new`] (validated) or use [`SlotTiming::ZERO`]
/// for the design-baseline geometry; derive from a swept bus with
/// `BusConfigSweep` in `cps-core`, which maps candidate slot lengths to
/// overheads relative to its base configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotTiming {
    /// Extra per-slot occupancy ΔΨ in seconds (≥ 0, finite).
    transmission_overhead: f64,
}

impl SlotTiming {
    /// The design-baseline geometry: no extra per-slot occupancy. The
    /// analysis under `ZERO` is bit-identical to the overhead-free paths.
    pub const ZERO: SlotTiming = SlotTiming { transmission_overhead: 0.0 };

    /// A timing with the given extra per-slot transmission overhead in
    /// seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] unless the overhead is
    /// finite and non-negative.
    pub fn new(transmission_overhead: f64) -> Result<Self> {
        if !transmission_overhead.is_finite() || transmission_overhead < 0.0 {
            return Err(SchedError::InvalidParameter {
                reason: format!(
                    "per-slot transmission overhead must be finite and non-negative, \
                     got {transmission_overhead}"
                ),
            });
        }
        Ok(SlotTiming { transmission_overhead })
    }

    /// The extra per-slot occupancy ΔΨ in seconds.
    pub fn overhead(&self) -> f64 {
        self.transmission_overhead
    }

    /// The effective occupancy another application observes for a dwell
    /// interval with the given model dwell bound: `ξᴹ + ΔΨ`.
    pub fn effective_dwell(&self, dwell_bound: f64) -> f64 {
        dwell_bound + self.transmission_overhead
    }
}

impl Default for SlotTiming {
    fn default() -> Self {
        SlotTiming::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let timing = SlotTiming::new(0.25).unwrap();
        assert_eq!(timing.overhead(), 0.25);
        assert_eq!(timing.effective_dwell(1.0), 1.25);
        assert_eq!(SlotTiming::default(), SlotTiming::ZERO);
        assert_eq!(SlotTiming::ZERO.overhead(), 0.0);
        // Zero overhead is the bitwise identity on positive dwell bounds.
        let dwell = 0.64_f64;
        assert_eq!(SlotTiming::ZERO.effective_dwell(dwell).to_bits(), dwell.to_bits());
    }

    #[test]
    fn validation_rejects_bad_overheads() {
        assert!(SlotTiming::new(-0.1).is_err());
        assert!(SlotTiming::new(f64::NAN).is_err());
        assert!(SlotTiming::new(f64::INFINITY).is_err());
        assert!(SlotTiming::new(0.0).is_ok());
    }
}
