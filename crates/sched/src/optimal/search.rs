//! Search core shared by the sequential and parallel exact allocators.
//!
//! The core separates the three ingredients every solver mode combines:
//!
//! * [`Problem`] — the immutable description of one exact-allocation
//!   instance: fleet, analysis configuration, deterministic priority order,
//!   and the precomputed bound data ([`super::bounds`]).
//! * [`SearchState`] — the mutable per-worker node state (open slots, their
//!   feasibility status, demand loads and conflict unions), sized once at
//!   construction so a solve never allocates.
//! * [`Driver`] — the policy object a depth-first [`dfs`] consults at every
//!   node: where the incumbent bound comes from (a plain field for the
//!   sequential solver, a shared atomic for portfolio workers), how nodes
//!   are counted against budgets, and what happens at a feasible leaf
//!   (record-and-continue, or stop — the reconstruction mode).
//!
//! Keeping one `dfs` for all modes is what makes the portfolio's
//! bit-identity argument short: every mode explores prefixes in the same
//! restricted-growth order with the same deadness test and the same valid
//! lower bounds, so "first feasible leaf with the optimal count in DFS
//! order" means the same leaf everywhere.

use crate::allocation::{AllocationStrategy, AllocatorConfig};
use crate::app::{priority_order, AppTimingParams};
use crate::dwell::{dwell_for, max_dwell_for, ModelKind};
use crate::error::{Result, SchedError};
use crate::schedulability::WaitTimeMethod;
use crate::timing::SlotTiming;
use crate::wait_time::MAX_FIXED_POINT_ITERATIONS;

use super::bounds::CliqueBounds;

/// Verdict of the allocation-free per-slot analysis at a search node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotStatus {
    /// Every member currently meets its deadline.
    Feasible,
    /// Some member misses its deadline, but a future addition could still
    /// repair it (the dwell curve is non-monotonic).
    Infeasible,
    /// Provably unschedulable for every superset of the current members.
    Dead,
}

/// Immutable description of one exact-allocation instance.
#[derive(Debug)]
pub(crate) struct Problem<'a> {
    pub apps: &'a [AppTimingParams],
    pub model: ModelKind,
    pub method: WaitTimeMethod,
    /// The configured cap (kept for error reporting; the working pool is
    /// [`Problem::pool`]).
    pub max_slots: usize,
    /// Per-slot transmission timing of the analysed bus geometry.
    pub timing: SlotTiming,
    /// Applications in decreasing priority (the branching order).
    pub order: Vec<usize>,
    /// Per-application slot demand `uᵢ = (ξᴹᵢ + ΔΨ)/rᵢ`.
    pub demand: Vec<f64>,
    /// Capacity `1 + u_max` of the demand relaxation.
    pub capacity: f64,
    /// `suffix_demand[k]` = total demand of `order[k..]`.
    pub suffix_demand: Vec<f64>,
    /// Pairwise-conflict clique bound data (see [`super::bounds`]).
    pub clique: CliqueBounds,
}

impl<'a> Problem<'a> {
    /// Validates the fleet and precomputes order, demands and bound data.
    pub(crate) fn new(apps: &'a [AppTimingParams], config: &AllocatorConfig) -> Result<Self> {
        if apps.is_empty() {
            return Err(SchedError::InvalidParameter {
                reason: "cannot allocate an empty application set".to_string(),
            });
        }
        if config.max_slots == 0 {
            return Err(SchedError::InvalidParameter {
                reason: "max_slots must be at least one".to_string(),
            });
        }
        let order = priority_order(apps);
        let demand: Vec<f64> = apps
            .iter()
            .map(|app| {
                config.slot_timing.effective_dwell(max_dwell_for(app, config.model))
                    / app.inter_arrival
            })
            .collect();
        let capacity = 1.0 + demand.iter().copied().fold(0.0, f64::max);
        let mut suffix_demand = vec![0.0; apps.len() + 1];
        for k in (0..apps.len()).rev() {
            suffix_demand[k] = suffix_demand[k + 1] + demand[order[k]];
        }
        let clique =
            CliqueBounds::new(apps, &order, config.model, config.method, config.slot_timing);
        Ok(Problem {
            apps,
            model: config.model,
            method: config.method,
            max_slots: config.max_slots,
            timing: config.slot_timing,
            order,
            demand,
            capacity,
            suffix_demand,
            clique,
        })
    }

    /// Size of the working slot pool (a partition never needs more slots
    /// than applications).
    pub(crate) fn pool(&self) -> usize {
        self.max_slots.min(self.apps.len())
    }

    /// The allocator configuration this problem was built from, with the
    /// given greedy strategy substituted (for incumbent seeding/restarts).
    pub(crate) fn config_with(&self, strategy: AllocationStrategy) -> AllocatorConfig {
        AllocatorConfig {
            model: self.model,
            method: self.method,
            strategy,
            max_slots: self.max_slots,
            slot_timing: self.timing,
        }
    }
}

/// Saved per-slot fields for undoing one [`SearchState::push`].
#[derive(Clone, Copy)]
pub(crate) struct Saved {
    status: SlotStatus,
    load: f64,
    union: u128,
    opened: bool,
}

/// Mutable node state of one worker: the open slots of the current partial
/// assignment plus the per-slot data the bounds and the deadness test
/// consume. All buffers are sized at construction; a solve never allocates.
#[derive(Debug)]
pub(crate) struct SearchState {
    /// Slot pool: `slots[..used]` are the open slots of the current node.
    pub slots: Vec<Vec<usize>>,
    pub status: Vec<SlotStatus>,
    /// Demand load `Σ uⱼ` of each open slot, recomputed exactly whenever a
    /// slot's membership changes (no incremental float drift).
    pub load: Vec<f64>,
    /// OR of the conflict rows of each open slot's members (the clique
    /// bound's "which clique members could this slot still absorb" input).
    pub conflict_union: Vec<u128>,
    pub used: usize,
}

impl SearchState {
    pub(crate) fn new(problem: &Problem<'_>) -> Self {
        let pool = problem.pool();
        SearchState {
            slots: (0..pool).map(|_| Vec::with_capacity(problem.apps.len())).collect(),
            status: vec![SlotStatus::Feasible; pool],
            load: vec![0.0; pool],
            conflict_union: vec![0; pool],
            used: 0,
        }
    }

    /// Back to the root (no open slots). Slot vectors are cleared lazily by
    /// the next `push` that opens them.
    pub(crate) fn reset(&mut self) {
        self.used = 0;
    }

    /// Whether every open slot is currently feasible (the leaf test).
    pub(crate) fn feasible(&self) -> bool {
        self.status[..self.used].iter().all(|&s| s == SlotStatus::Feasible)
    }

    /// Assigns `app` to slot `s` (`s == used` opens the next slot —
    /// restricted-growth canonical form) and recomputes that slot's status,
    /// exact demand load and conflict union. Returns the saved fields for
    /// [`SearchState::pop`].
    pub(crate) fn push(&mut self, problem: &Problem<'_>, s: usize, app: usize) -> Saved {
        let opened = s == self.used;
        let saved = Saved {
            status: self.status[s],
            load: self.load[s],
            union: self.conflict_union[s],
            opened,
        };
        if opened {
            self.slots[s].clear();
            self.used += 1;
        }
        self.slots[s].push(app);
        self.status[s] = slot_status(
            problem.apps,
            &self.slots[s],
            problem.model,
            problem.method,
            problem.timing,
        );
        self.load[s] = self.slots[s].iter().map(|&i| problem.demand[i]).sum();
        self.conflict_union[s] =
            if opened { problem.clique.conflict_row(app) } else { saved.union | problem.clique.conflict_row(app) };
        saved
    }

    /// Undoes the matching [`SearchState::push`].
    pub(crate) fn pop(&mut self, s: usize, saved: Saved) {
        self.slots[s].pop();
        self.status[s] = saved.status;
        self.load[s] = saved.load;
        self.conflict_union[s] = saved.union;
        if saved.opened {
            self.used -= 1;
        }
    }

    /// Rebuilds the state for a frontier prefix: `prefix[d]` is the slot
    /// index of `order[d]`. The prefix must be a valid restricted-growth
    /// string (as emitted by the portfolio's frontier generation).
    pub(crate) fn replay(&mut self, problem: &Problem<'_>, prefix: &[usize]) {
        self.reset();
        for (depth, &s) in prefix.iter().enumerate() {
            self.push(problem, s, problem.order[depth]);
        }
    }
}

/// What a [`dfs`] node returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Flow {
    /// Subtree fully explored (or cut by a valid bound).
    Done,
    /// The driver's budget/cancellation checkpoint fired; the state has
    /// been unwound but the subtree is incomplete.
    Aborted,
    /// The driver asked to stop at a feasible leaf (reconstruction mode).
    Stopped,
}

/// Per-mode policy consulted by [`dfs`] at every node.
pub(crate) trait Driver {
    /// Exclusive incumbent bound: subtrees whose slot-count floor reaches
    /// this value are cut, and only leaves strictly below it are reported.
    /// `usize::MAX` means "no incumbent known".
    fn bound(&self) -> usize;
    /// Counts the node against budgets and polls cancellation. Returning
    /// `false` aborts the search (the incumbent is kept).
    fn enter_node(&mut self) -> bool;
    /// A feasible leaf using `state.used < bound()` slots. Returning `false`
    /// stops the search (reconstruction found its target).
    fn on_leaf(&mut self, state: &SearchState) -> bool;
}

/// Depth-first branch-and-bound over restricted-growth assignments, from
/// `depth` down. On return the state is unwound to its entry value for every
/// flow, so workers can reuse one state across frontier items.
pub(crate) fn dfs<D: Driver>(
    problem: &Problem<'_>,
    state: &mut SearchState,
    driver: &mut D,
    depth: usize,
) -> Flow {
    if !driver.enter_node() {
        return Flow::Aborted;
    }
    // Bound: every completion opens at least `lower_bound` more slots, so
    // cut when even that cannot beat the incumbent.
    let bound = driver.bound();
    let floor = state.used + super::bounds::lower_bound(problem, state, depth);
    if bound != usize::MAX && floor >= bound {
        return Flow::Done;
    }
    if depth == problem.order.len() {
        if state.used < bound && state.feasible() && !driver.on_leaf(state) {
            return Flow::Stopped;
        }
        return Flow::Done;
    }
    let app = problem.order[depth];
    // Existing slots in creation order, then (canonically) the next unused
    // slot — deterministic tie-breaking in every mode.
    let branches = if state.used < state.slots.len() { state.used + 1 } else { state.used };
    for s in 0..branches {
        let saved = state.push(problem, s, app);
        let flow = if state.status[s] != SlotStatus::Dead {
            dfs(problem, state, driver, depth + 1)
        } else {
            Flow::Done
        };
        state.pop(s, saved);
        // Fast unwind once the budget fired (or reconstruction finished):
        // skip the slot analyses the remaining siblings would run.
        if flow != Flow::Done {
            return flow;
        }
    }
    Flow::Done
}

/// Allocation-free analysis of a candidate slot: mirrors
/// [`crate::analyze_slot`] member for member (identical accumulation order,
/// so the verdict is bit-for-bit the one `SlotAllocation::verify` computes),
/// and additionally detects dead slots.
pub(crate) fn slot_status(
    apps: &[AppTimingParams],
    members: &[usize],
    model: ModelKind,
    method: WaitTimeMethod,
    timing: SlotTiming,
) -> SlotStatus {
    let mut feasible = true;
    for &index in members {
        match member_response(apps, members, index, model, method, timing) {
            MemberResponse::Overloaded => return SlotStatus::Dead,
            MemberResponse::Diverged => return SlotStatus::Dead,
            MemberResponse::Finite { wait, response } => {
                let app = &apps[index];
                if response > app.deadline {
                    feasible = false;
                    // Dead only if no future wait can repair the member:
                    // waits only grow, and the response floor over [wait, ∞)
                    // is attained at a segment endpoint.
                    if min_future_response(app, model, wait) > app.deadline {
                        return SlotStatus::Dead;
                    }
                }
            }
        }
    }
    if feasible {
        SlotStatus::Feasible
    } else {
        SlotStatus::Infeasible
    }
}

/// Outcome of the streaming per-member analysis.
pub(crate) enum MemberResponse {
    /// Higher-priority utilisation `m ≥ 1`: unbounded wait, permanently
    /// unschedulable (matches the infinite response `analyze_slot` reports).
    Overloaded,
    /// The exact fixed-point iteration did not converge (cannot happen for
    /// `m < 1`; treated as unschedulable, matching the defensive bound).
    Diverged,
    /// Finite maximum wait time and worst-case response.
    Finite { wait: f64, response: f64 },
}

/// Streaming replica of [`crate::analyze_application`] for one member of a
/// candidate slot: same formulas, same accumulation order over the slot
/// members, no heap allocation. Keeping the float operation order identical
/// makes the verdicts bit-compatible with the `InterferenceContext` path.
pub(crate) fn member_response(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
    method: WaitTimeMethod,
    timing: SlotTiming,
) -> MemberResponse {
    let subject = &apps[index];
    // One pass in slot order mirrors `InterferenceContext::for_application`:
    // `higher_priority` entries are visited in the same order (with the same
    // per-slot overhead applied to each dwell bound), so the utilisation and
    // interference sums round identically.
    let mut blocking: f64 = 0.0;
    let mut utilization: f64 = 0.0;
    let mut interference_sum: f64 = 0.0;
    for &other_index in slot {
        if other_index == index {
            continue;
        }
        let other = &apps[other_index];
        let dwell_bound = timing.effective_dwell(max_dwell_for(other, kind));
        if other.outranks(subject) {
            utilization += dwell_bound / other.inter_arrival;
            interference_sum += dwell_bound;
        } else {
            blocking = blocking.max(dwell_bound);
        }
    }
    if utilization >= 1.0 {
        return MemberResponse::Overloaded;
    }
    let wait = match method {
        WaitTimeMethod::ClosedFormBound => {
            let a_prime = blocking + interference_sum;
            a_prime / (1.0 - utilization)
        }
        WaitTimeMethod::ExactFixedPoint => {
            // The monotone iteration of Eq. (5), started (like the reference
            // implementation) from one pending request per higher-priority
            // application on top of the blocking term.
            let mut wait = blocking + interference_sum;
            let mut converged = None;
            for _ in 0..MAX_FIXED_POINT_ITERATIONS {
                // `request_function`: blocking + Σ ⌈w/rⱼ⌉·ξᴹⱼ, higher-priority
                // terms summed in slot order.
                let mut interference = 0.0;
                for &other_index in slot {
                    if other_index == index {
                        continue;
                    }
                    let other = &apps[other_index];
                    if other.outranks(subject) {
                        let dwell_bound = timing.effective_dwell(max_dwell_for(other, kind));
                        interference += (wait / other.inter_arrival).ceil().max(0.0) * dwell_bound;
                    }
                }
                let next = blocking + interference;
                if (next - wait).abs() < 1e-12 {
                    converged = Some(next);
                    break;
                }
                wait = next;
            }
            match converged {
                Some(wait) => wait,
                None => return MemberResponse::Diverged,
            }
        }
    };
    let dwell = dwell_for(subject, kind, wait);
    let response = if wait >= subject.xi_et { subject.xi_et } else { wait + dwell };
    MemberResponse::Finite { wait, response }
}

/// Floor of the worst-case response over every wait `t ≥ wait`:
/// `min_{t ≥ wait} ξ(t)` with `ξ(t) = t + k_dw(t)` for `t < ξᴱᵀ` and
/// `ξ(t) = ξᴱᵀ` beyond. All three analytical dwell models are piecewise
/// linear with breakpoints at most `{k_p, ξᴱᵀ}`, so the minimum over the
/// tail is attained at `wait` itself, at a breakpoint to its right, or at
/// the ξᴱᵀ cap. This is the monotone (non-increasing in no argument,
/// non-decreasing in `wait`) under-envelope of the response curve: the
/// deadness test and the pairwise-conflict bound both judge slots against
/// it, which is exactly the "sound monotone over-approximation" of the
/// dwell curve's repair potential.
pub(crate) fn min_future_response(app: &AppTimingParams, kind: ModelKind, wait: f64) -> f64 {
    let response_at = |t: f64| {
        if t >= app.xi_et {
            app.xi_et
        } else {
            t + dwell_for(app, kind, t)
        }
    };
    let mut floor = response_at(wait).min(app.xi_et);
    if app.k_p > wait {
        floor = floor.min(response_at(app.k_p));
    }
    floor
}

/// Runs the three greedy strategies under the problem's model/method and
/// stores the best feasible allocation in `seed_slots`, returning its slot
/// count (`usize::MAX` when no greedy strategy succeeds).
///
/// The problem's priority order and one dedicated-slot feasibility pass are
/// shared across all three strategies
/// ([`crate::allocation::dedicated_slot_precheck`]), so seeding pays the
/// per-application characterisation work once instead of once per strategy.
pub(crate) fn seed_greedy(problem: &Problem<'_>, seed_slots: &mut [Vec<usize>]) -> usize {
    let base = problem.config_with(AllocationStrategy::NextFit);
    if crate::allocation::dedicated_slot_precheck(problem.apps, &base, &problem.order).is_err() {
        // Some application misses its deadline even alone: no greedy
        // strategy can succeed (they all require dedicated-slot
        // feasibility), so the incumbent stays unseeded.
        return usize::MAX;
    }
    let mut seed_used = usize::MAX;
    for strategy in [
        AllocationStrategy::NextFit,
        AllocationStrategy::FirstFit,
        AllocationStrategy::BestFit,
    ] {
        let candidate = crate::allocation::allocate_slots_prechecked(
            problem.apps,
            &problem.config_with(strategy),
            &problem.order,
        );
        if let Ok(allocation) = candidate {
            if allocation.slot_count() < seed_used.min(seed_slots.len() + 1) {
                seed_used = allocation.slot_count();
                for (buffer, slot) in seed_slots.iter_mut().zip(&allocation.slots) {
                    buffer.clear();
                    buffer.extend_from_slice(slot);
                }
            }
        }
    }
    seed_used
}
