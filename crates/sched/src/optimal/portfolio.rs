//! Parallel portfolio branch-and-bound: the scaled exact allocator.
//!
//! The portfolio returns **bit-identical optima to the sequential
//! [`super::OptimalAllocator`] for every worker count**. That guarantee is
//! engineered, not incidental, and rests on one characterisation of the
//! sequential answer (both solvers share `dfs`, the deadness test and the
//! valid lower bounds of [`super::bounds`]):
//!
//! > The sequential solver returns the greedy three-strategy seed when the
//! > seed's slot count equals the optimum `k*`; otherwise it returns the
//! > **first feasible leaf with `k*` slots in restricted-growth DFS
//! > order**. (Valid lower-bound pruning can never cut the path to that
//! > leaf — along it the floor never exceeds `k*`, while a cut requires
//! > the floor to reach the incumbent, which stays `> k*` until an optimal
//! > leaf is recorded — and dead-slot pruning never fires on the path to
//! > any feasible leaf.)
//!
//! The parallel solve therefore never races on an assignment, only on a
//! *count*:
//!
//! 1. **Seeding.** The greedy three-strategy seed plus a deterministic
//!    LKH-style schedule of randomized-priority-order first-fit restarts
//!    run at construction. Their slot counts tighten the initial shared
//!    upper bound; the best assignment among them (deterministic
//!    tie-break: seed first, then lowest restart index) is the
//!    *degradation incumbent* a cut solve falls back to.
//! 2. **Frontier.** The restricted-growth prefix tree is expanded
//!    breadth-first (with the same node counting, deadness and bound
//!    pruning a `dfs` would apply) until it holds enough subtree roots to
//!    feed every worker.
//! 3. **Count search.** Workers claim frontier items from a shared atomic
//!    cursor and run the common `dfs` with a [`CountDriver`]: the
//!    incumbent is a single `AtomicUsize` slot count updated with
//!    `fetch_min` — no assignment is stored, so worker interleaving cannot
//!    influence anything but how early subtrees get pruned. All node
//!    budgets and the cancellation token aggregate across workers through
//!    one shared atomic counter.
//! 4. **Reconstruction.** If the seed already attains `k*`, the seed is
//!    the answer (exactly as in the sequential solver). Otherwise one
//!    deterministic sequential `dfs` pruned at `floor > k*` re-derives the
//!    first feasible `k*`-leaf in DFS order — provably the sequential
//!    solver's answer — and stops there.
//!
//! A solve cut by the aggregate budget or the token keeps the degradation
//! incumbent and reports `certified_optimal() == false`, mirroring the
//! sequential degradation ladder the design service relies on.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use crate::allocation::{AllocationStrategy, AllocatorConfig, SlotAllocation};
use crate::app::AppTimingParams;
use crate::cancel::CancelToken;
use crate::error::{Result, SchedError};

use super::bounds;
use super::search::{dfs, seed_greedy, Driver, Flow, Problem, SearchState, SlotStatus};

/// Tuning knobs of the [`PortfolioAllocator`]. The defaults are the
/// configuration every production caller uses; tests pin worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Worker threads for the count search. `0` resolves to the machine's
    /// available parallelism; `1` runs every phase on the calling thread
    /// (no spawn — the allocation-free configuration).
    pub threads: usize,
    /// Number of randomized-priority-order greedy restarts seeding the
    /// shared upper bound (deterministic: restart `r` of a given `seed`
    /// always builds the same order).
    pub restarts: usize,
    /// Base seed of the restart schedule's splitmix64 stream.
    pub seed: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig { threads: 0, restarts: 8, seed: 0x5DEECE66D }
    }
}

impl PortfolioConfig {
    /// A portfolio pinned to `threads` workers (0 = auto).
    pub fn with_threads(threads: usize) -> Self {
        PortfolioConfig { threads, ..PortfolioConfig::default() }
    }

    /// The worker count this configuration resolves to on this machine.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.threads
        }
    }
}

/// `splitmix64`: the restart schedule's deterministic RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregate budget checkpoint shared by every phase and worker: one node
/// counter, one optional cap, one cancellation token.
#[derive(Clone, Copy)]
struct BudgetRef<'s> {
    nodes: &'s AtomicU64,
    budget: Option<u64>,
    cancel: Option<&'s CancelToken>,
}

impl BudgetRef<'_> {
    /// Counts one node; `false` once the aggregate budget fired (same
    /// `>=` semantics as the sequential solver: a budget of 1 cuts at the
    /// root).
    fn enter(&self) -> bool {
        let entered = self.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(budget) = self.budget {
            if entered >= budget {
                return false;
            }
        }
        !self.cancel.as_ref().is_some_and(|token| token.is_cancelled())
    }
}

/// Phase-1 driver: shared atomic slot-count incumbent, no assignment.
struct CountDriver<'s> {
    best: &'s AtomicUsize,
    budget: BudgetRef<'s>,
}

impl Driver for CountDriver<'_> {
    fn bound(&self) -> usize {
        self.best.load(Ordering::Relaxed)
    }
    fn enter_node(&mut self) -> bool {
        self.budget.enter()
    }
    fn on_leaf(&mut self, state: &SearchState) -> bool {
        // `fetch_min` makes a stale `bound()` read harmless: a racing
        // better count always wins.
        self.best.fetch_min(state.used, Ordering::Relaxed);
        true
    }
}

/// Phase-2 driver: deterministic sequential walk to the first feasible
/// leaf with at most `target` slots (the proven optimum, so exactly
/// `target`), pruning every subtree whose floor exceeds the target.
struct ReconstructDriver<'s> {
    target: usize,
    budget: BudgetRef<'s>,
    out_slots: &'s mut [Vec<usize>],
    found: &'s mut bool,
}

impl Driver for ReconstructDriver<'_> {
    fn bound(&self) -> usize {
        self.target + 1
    }
    fn enter_node(&mut self) -> bool {
        self.budget.enter()
    }
    fn on_leaf(&mut self, state: &SearchState) -> bool {
        for (out, slot) in self.out_slots.iter_mut().zip(&state.slots).take(state.used) {
            out.clear();
            out.extend_from_slice(slot);
        }
        *self.found = true;
        false
    }
}

/// The breadth-first work pool of phase 1: restricted-growth prefixes of a
/// uniform depth, stored flat (`count` items of `depth` slot indices each)
/// in buffers sized at construction so regeneration never allocates.
#[derive(Debug)]
struct Frontier {
    /// Stop expanding once this many prefixes are available (≈ 8 per
    /// worker, so claim order imbalance cannot starve anyone).
    target: usize,
    depth: usize,
    count: usize,
    active: Vec<usize>,
    scratch: Vec<usize>,
}

/// Expands the prefix tree level by level until the frontier holds
/// [`Frontier::target`] subtree roots (or the tree is exhausted). Applies
/// the exact per-node accounting a `dfs` would: every non-dead child is
/// counted against the aggregate budget and bound-checked; children at
/// full depth are leaf-checked into the shared count incumbent.
fn generate_frontier(
    problem: &Problem<'_>,
    state: &mut SearchState,
    frontier: &mut Frontier,
    best: &AtomicUsize,
    budget: &BudgetRef<'_>,
) -> Flow {
    let n = problem.order.len();
    frontier.depth = 0;
    frontier.count = 1;
    frontier.active.clear();
    // The root prefix, counted and bounded exactly like a `dfs` entry. A
    // root-level cut means the seeds' count is already provably optimal
    // (the clique/demand floor reaches it): phase 1 is over before it
    // starts.
    if !budget.enter() {
        return Flow::Aborted;
    }
    state.reset();
    let bound = best.load(Ordering::Relaxed);
    if bound != usize::MAX && bounds::lower_bound(problem, state, 0) >= bound {
        frontier.count = 0;
        return Flow::Done;
    }
    while frontier.count > 0 && frontier.count < frontier.target && frontier.depth < n {
        let depth = frontier.depth;
        let child_depth = depth + 1;
        let app = problem.order[depth];
        frontier.scratch.clear();
        let mut emitted = 0usize;
        for item in 0..frontier.count {
            let prefix = &frontier.active[item * depth..(item + 1) * depth];
            state.replay(problem, prefix);
            let branches =
                if state.used < state.slots.len() { state.used + 1 } else { state.used };
            for s in 0..branches {
                let saved = state.push(problem, s, app);
                if state.status[s] != SlotStatus::Dead {
                    if !budget.enter() {
                        state.pop(s, saved);
                        return Flow::Aborted;
                    }
                    let bound = best.load(Ordering::Relaxed);
                    let floor = state.used + bounds::lower_bound(problem, state, child_depth);
                    if bound == usize::MAX || floor < bound {
                        if child_depth == n {
                            if state.used < bound && state.feasible() {
                                best.fetch_min(state.used, Ordering::Relaxed);
                            }
                        } else {
                            frontier.scratch.extend_from_slice(prefix);
                            frontier.scratch.push(s);
                            emitted += 1;
                        }
                    }
                }
                state.pop(s, saved);
            }
        }
        std::mem::swap(&mut frontier.active, &mut frontier.scratch);
        frontier.count = emitted;
        frontier.depth = child_depth;
    }
    Flow::Done
}

/// One worker's phase-1 loop: claim frontier items off the shared cursor
/// ("work stealing" from one shared deque), replay each prefix into the
/// worker's preallocated state, and run the common `dfs` against the
/// shared count incumbent. A budget/cancel abort raises the shared flag so
/// sibling workers stop claiming.
#[allow(clippy::too_many_arguments)]
fn drain_frontier(
    problem: &Problem<'_>,
    state: &mut SearchState,
    items: &[usize],
    depth: usize,
    count: usize,
    cursor: &AtomicUsize,
    best: &AtomicUsize,
    budget: BudgetRef<'_>,
    aborted: &AtomicBool,
) {
    loop {
        if aborted.load(Ordering::Relaxed) {
            return;
        }
        let item = cursor.fetch_add(1, Ordering::Relaxed);
        if item >= count {
            return;
        }
        state.replay(problem, &items[item * depth..(item + 1) * depth]);
        let mut driver = CountDriver { best, budget };
        if dfs(problem, state, &mut driver, depth) == Flow::Aborted {
            aborted.store(true, Ordering::Relaxed);
            return;
        }
    }
}

/// Parallel exact minimum-slot allocator: a portfolio-seeded,
/// work-distributed branch-and-bound that returns **bit-identical results
/// to [`super::OptimalAllocator`] for every worker count** (same slot
/// count, same deterministically-tie-broken assignment, same
/// feasible/infeasible verdicts on exhausted solves).
///
/// Construction validates the fleet, seeds the incumbent (greedy
/// strategies plus the restart schedule) and sizes every worker state and
/// the frontier buffers; [`PortfolioAllocator::solve_in_place`] then runs
/// without heap allocation when `threads == 1` (multi-threaded solves
/// allocate only the spawned threads' stacks — the per-node search itself
/// stays allocation-free on every worker).
#[derive(Debug)]
pub struct PortfolioAllocator<'a> {
    problem: Problem<'a>,
    threads: usize,
    /// Best slot count over the restart schedule (`usize::MAX` when no
    /// restart succeeded) — an upper bound for phase 1, never an answer.
    restart_bound: usize,
    /// The greedy three-strategy seed: the certified answer whenever its
    /// count equals the optimum (the sequential solver's rule).
    seed_slots: Vec<Vec<usize>>,
    seed_used: usize,
    /// Degradation incumbent: best of seed + restarts, deterministic
    /// tie-break. What a cut solve returns.
    incumbent_slots: Vec<Vec<usize>>,
    incumbent_used: usize,
    best_slots: Vec<Vec<usize>>,
    best_used: usize,
    /// One preallocated search state per worker; `states[0]` doubles as
    /// the frontier-generation and reconstruction state.
    states: Vec<SearchState>,
    frontier: Frontier,
    /// Aggregate search-tree nodes across generation, every worker and
    /// reconstruction (the budget's denominator).
    nodes: AtomicU64,
    cancel: Option<CancelToken>,
    node_budget: Option<u64>,
    exhausted: bool,
}

impl<'a> PortfolioAllocator<'a> {
    /// Builds a portfolio solver for the fleet under the given allocator
    /// configuration (`config.strategy` is ignored) and portfolio tuning.
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidParameter`] if `apps` is empty or
    /// `config.max_slots` is zero.
    pub fn new(
        apps: &'a [AppTimingParams],
        config: &AllocatorConfig,
        portfolio: &PortfolioConfig,
    ) -> Result<Self> {
        let problem = Problem::new(apps, config)?;
        let pool = problem.pool();
        let make_pool =
            || -> Vec<Vec<usize>> { (0..pool).map(|_| Vec::with_capacity(apps.len())).collect() };

        let mut seed_slots = make_pool();
        let seed_used = seed_greedy(&problem, &mut seed_slots);

        let mut incumbent_slots = make_pool();
        let mut incumbent_used = seed_used;
        if seed_used != usize::MAX {
            for (buffer, slot) in incumbent_slots.iter_mut().zip(&seed_slots).take(seed_used) {
                buffer.clear();
                buffer.extend_from_slice(slot);
            }
        }

        // LKH-style restart schedule: first-fit under deterministic
        // randomized priority orders. Counts tighten the shared upper
        // bound; assignments only ever serve as the degradation incumbent
        // (strict improvement, lowest restart index wins), never as a
        // certified answer — that stays the seed-or-reconstruction rule.
        let mut restart_bound = usize::MAX;
        let base = problem.config_with(AllocationStrategy::NextFit);
        let precheck_ok =
            crate::allocation::dedicated_slot_precheck(apps, &base, &problem.order).is_ok();
        if precheck_ok {
            let restart_config = problem.config_with(AllocationStrategy::FirstFit);
            let mut shuffled = problem.order.clone();
            for restart in 0..portfolio.restarts {
                let mut rng = portfolio
                    .seed
                    .wrapping_add((restart as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                shuffled.copy_from_slice(&problem.order);
                for i in (1..shuffled.len()).rev() {
                    let j = (splitmix64(&mut rng) % (i as u64 + 1)) as usize;
                    shuffled.swap(i, j);
                }
                let candidate = crate::allocation::allocate_slots_prechecked(
                    apps,
                    &restart_config,
                    &shuffled,
                );
                if let Ok(allocation) = candidate {
                    let count = allocation.slot_count();
                    restart_bound = restart_bound.min(count);
                    if count < incumbent_used.min(incumbent_slots.len() + 1) {
                        incumbent_used = count;
                        for (buffer, slot) in
                            incumbent_slots.iter_mut().zip(&allocation.slots)
                        {
                            buffer.clear();
                            buffer.extend_from_slice(slot);
                        }
                    }
                }
            }
        }

        let threads = portfolio.effective_threads().max(1);
        let states: Vec<SearchState> =
            (0..threads).map(|_| SearchState::new(&problem)).collect();
        // Frontier sizing: expansion only runs while `count < target`, and
        // a prefix has at most `pool + 1` children, so `target * (pool+1)`
        // items of at most `apps.len()` indices each bounds every level.
        let target = (threads * 8).max(16);
        let cap_items = target * (pool + 1);
        let frontier = Frontier {
            target,
            depth: 0,
            count: 0,
            active: Vec::with_capacity(cap_items * apps.len()),
            scratch: Vec::with_capacity(cap_items * apps.len()),
        };

        Ok(PortfolioAllocator {
            problem,
            threads,
            restart_bound,
            seed_slots,
            seed_used,
            incumbent_slots,
            incumbent_used,
            best_slots: make_pool(),
            best_used: usize::MAX,
            states,
            frontier,
            nodes: AtomicU64::new(0),
            cancel: None,
            node_budget: None,
            exhausted: true,
        })
    }

    /// The slot count of the greedy three-strategy seed, if any greedy
    /// strategy succeeded (the count [`super::OptimalAllocator`] would
    /// report as its greedy bound).
    pub fn greedy_bound(&self) -> Option<usize> {
        (self.seed_used != usize::MAX).then_some(self.seed_used)
    }

    /// The slot count of the degradation incumbent: the best allocation
    /// known before any search (greedy seed plus restart schedule).
    pub fn incumbent_bound(&self) -> Option<usize> {
        (self.incumbent_used != usize::MAX).then_some(self.incumbent_used)
    }

    /// Size of the root conflict clique: a certified lower bound on the
    /// optimal slot count (0 when the clique bound is disabled).
    pub fn clique_lower_bound(&self) -> usize {
        self.problem.clique.root_clique_size()
    }

    /// Resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Aggregate search-tree nodes of the last solve, summed across
    /// frontier generation, every worker and reconstruction. Deterministic
    /// for `threads == 1`; with more workers the total varies run-to-run
    /// (pruning races), though the returned optimum never does.
    pub fn nodes_explored(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Installs (or clears) a cooperative cancellation token, polled once
    /// per aggregate node by whichever phase/worker counts it.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Caps the *aggregate* node count across all workers and phases; the
    /// same `>=` semantics as the sequential solver, so a budget of 1 cuts
    /// at the root and always degrades.
    pub fn set_node_budget(&mut self, budget: Option<u64>) {
        self.node_budget = budget;
    }

    /// Whether the last solve ran to exhaustion (`true`: the result is the
    /// certified optimum, or infeasibility is proven on `None`).
    pub fn certified_optimal(&self) -> bool {
        self.exhausted
    }

    /// Runs the portfolio search and returns the minimum slot count, or
    /// `None` if no feasible allocation within `max_slots` exists (when
    /// [`PortfolioAllocator::certified_optimal`]) or nothing is known (cut
    /// with no incumbent). Allocation-free for `threads == 1`.
    pub fn solve_in_place(&mut self) -> Option<usize> {
        let PortfolioAllocator {
            problem,
            threads: _,
            restart_bound,
            seed_slots,
            seed_used,
            incumbent_slots,
            incumbent_used,
            best_slots,
            best_used,
            states,
            frontier,
            nodes,
            cancel,
            node_budget,
            exhausted,
        } = self;

        // Degradation default: the portfolio incumbent (re-copied so
        // repeated solves are idempotent).
        *best_used = *incumbent_used;
        if *incumbent_used != usize::MAX {
            for (best, slot) in best_slots.iter_mut().zip(&*incumbent_slots).take(*incumbent_used)
            {
                best.clear();
                best.extend_from_slice(slot);
            }
        }
        nodes.store(0, Ordering::Relaxed);
        *exhausted = true;

        let shared_best = AtomicUsize::new((*seed_used).min(*restart_bound));
        let budget =
            BudgetRef { nodes, budget: *node_budget, cancel: cancel.as_ref() };

        // Phases 0+1: frontier generation, then the parallel count search.
        let (first, rest) = states.split_first_mut().expect("at least one worker state");
        let mut cut = generate_frontier(problem, first, frontier, &shared_best, &budget)
            == Flow::Aborted;
        if !cut && frontier.count > 0 {
            let aborted = AtomicBool::new(false);
            let cursor = AtomicUsize::new(0);
            let items = &frontier.active[..frontier.count * frontier.depth];
            let (depth, count) = (frontier.depth, frontier.count);
            if rest.is_empty() {
                // Single worker: the calling thread drains the whole
                // frontier — no spawn, no allocation.
                drain_frontier(
                    problem, first, items, depth, count, &cursor, &shared_best, budget, &aborted,
                );
            } else {
                std::thread::scope(|scope| {
                    for state in rest.iter_mut() {
                        scope.spawn(|| {
                            drain_frontier(
                                problem,
                                state,
                                items,
                                depth,
                                count,
                                &cursor,
                                &shared_best,
                                budget,
                                &aborted,
                            );
                        });
                    }
                    drain_frontier(
                        problem, first, items, depth, count, &cursor, &shared_best, budget,
                        &aborted,
                    );
                });
            }
            cut = aborted.load(Ordering::Relaxed);
        }
        if cut {
            *exhausted = false;
            return (*best_used != usize::MAX).then_some(*best_used);
        }

        // Phase 1 exhausted: the shared count is the certified optimum.
        let optimum = shared_best.load(Ordering::Relaxed);
        if optimum == usize::MAX {
            // No feasible leaf anywhere and no greedy/restart incumbent:
            // infeasibility within `max_slots` is proven.
            *best_used = usize::MAX;
            return None;
        }
        if *seed_used == optimum {
            // The sequential rule: a seed matching the optimum *is* the
            // answer (the search never records a non-improving leaf).
            *best_used = optimum;
            for (best, slot) in best_slots.iter_mut().zip(&*seed_slots).take(optimum) {
                best.clear();
                best.extend_from_slice(slot);
            }
            return Some(optimum);
        }

        // Phase 2: deterministic reconstruction of the first feasible
        // `optimum`-slot leaf in DFS order — the sequential solver's
        // assignment — under the same aggregate budget.
        first.reset();
        let mut found = false;
        let mut driver = ReconstructDriver {
            target: optimum,
            budget,
            out_slots: best_slots,
            found: &mut found,
        };
        let flow = dfs(problem, first, &mut driver, 0);
        if found {
            *best_used = optimum;
            return Some(optimum);
        }
        // The optimum was proven reachable, so an un-found leaf means the
        // budget/token cut reconstruction short: degrade to the incumbent.
        debug_assert_eq!(flow, Flow::Aborted);
        *exhausted = false;
        (*best_used != usize::MAX).then_some(*best_used)
    }

    /// Materialises the best allocation found by the last solve.
    pub fn best_allocation(&self) -> Option<SlotAllocation> {
        (self.best_used != usize::MAX).then(|| SlotAllocation {
            slots: self.best_slots[..self.best_used].to_vec(),
            model: self.problem.model,
            method: self.problem.method,
        })
    }

    /// Convenience: solve and materialise.
    ///
    /// # Errors
    ///
    /// * [`SchedError::NoFeasibleAllocation`] if the exhausted search
    ///   proves no feasible allocation exists within `max_slots`.
    /// * [`SchedError::SearchCancelled`] if the search was cut short
    ///   (token or aggregate node budget) before *any* feasible allocation
    ///   — incumbent included — was known.
    pub fn solve(&mut self) -> Result<SlotAllocation> {
        match self.solve_in_place() {
            Some(_) => Ok(self.best_allocation().expect("solution recorded")),
            None if self.exhausted => {
                Err(SchedError::NoFeasibleAllocation { max_slots: self.problem.max_slots })
            }
            None => Err(SchedError::SearchCancelled { nodes: self.nodes_explored() }),
        }
    }
}

/// Allocates the applications to TT slots with the *minimum possible* slot
/// count, like [`super::allocate_slots_optimal`], but distributing the
/// search over `portfolio` workers. Bit-identical to the sequential result
/// for every worker count.
///
/// # Errors
///
/// Same contract as [`super::allocate_slots_optimal`].
pub fn allocate_slots_portfolio(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
    portfolio: &PortfolioConfig,
) -> Result<SlotAllocation> {
    PortfolioAllocator::new(apps, config, portfolio)?.solve()
}
