//! Lower bounds for the exact slot search: the slot-demand relaxation and a
//! pairwise-conflict clique bound.
//!
//! # Demand relaxation
//!
//! For the lowest-priority member `i` of a feasible slot `S`, the paper's
//! Eq. (19) requires `m = Σ_{j∈S∖{i}} ξ̃ᴹⱼ/rⱼ < 1`, hence every feasible slot
//! carries total demand `Σ_{j∈S} uⱼ < 1 + uᵢ ≤ 1 + u_max` with
//! `uⱼ = ξ̃ᴹⱼ/rⱼ`, where `ξ̃ᴹⱼ = ξᴹⱼ + ΔΨ` is the dwell bound stretched by the
//! per-slot transmission overhead of the analysed bus geometry. Relaxing
//! schedulability to this scalar capacity yields a bin-packing bound: with
//! `D` the demand of the unassigned applications and `R` the residual
//! capacity of the open slots, at least `⌈(D − R)/(1 + u_max)⌉` further
//! slots are needed.
//!
//! # Pairwise-conflict clique bound
//!
//! Two applications *conflict* when the two-member slot `{i, j}` is provably
//! [`SlotStatus::Dead`]: some member is overloaded (`m ≥ 1`), or its
//! response floor under the **monotone over-approximation of the dwell
//! curve** — the non-increasing under-envelope
//! `ξ̲(w) = min_{t ≥ w} ξ(t)` of [`min_future_response`] — already misses
//! its deadline. Deadness is closed under supersets (waits only grow as a
//! slot fills, and the envelope is monotone in the wait), so **no feasible
//! allocation may ever co-locate two conflicting applications**: judging
//! the pair against the envelope over-approximates everything any future
//! slot mate could repair, which is what makes the verdict sound for every
//! completion. Mutually-conflicting applications therefore occupy pairwise
//! distinct slots, and a clique in the conflict graph is a lower bound on
//! the slot count.
//!
//! Per search node the bound is made incremental: a greedy clique
//! `C(depth)` over the *unassigned* suffix `order[depth..]` is precomputed
//! per depth at construction; at a node with open slots `s = 0..used`, an
//! open slot can absorb **at most one** member of `C(depth)` (its members
//! mutually conflict), and only if at least one member does not conflict
//! with any current member of `s` (tracked as the OR of conflict rows,
//! [`SearchState::conflict_union`]). Hence at least
//! `|C(depth)| − #{absorbing slots}` *new* slots must open.
//!
//! Both bounds are valid (they never exceed the slot count of any feasible
//! completion), so branch-and-bound pruning with their maximum preserves
//! not only the optimal count but the *identity* of the first optimal leaf
//! in DFS order — the determinism invariant the portfolio relies on.
//!
//! Conflict rows are `u128` bitmasks; fleets beyond 128 applications
//! disable the clique bound (empty masks, zero cliques) and fall back to
//! the demand relaxation alone.

use crate::app::AppTimingParams;
use crate::dwell::ModelKind;
use crate::schedulability::WaitTimeMethod;
use crate::timing::SlotTiming;

use super::search::{slot_status, Problem, SearchState, SlotStatus};

/// Largest fleet for which conflict rows fit one machine word pair.
const CLIQUE_MAX_APPS: usize = 128;

/// Precomputed pairwise-conflict data: per-application conflict rows and a
/// greedy conflict clique per priority-order suffix.
#[derive(Debug, Clone)]
pub(crate) struct CliqueBounds {
    /// `conflict[i]` has bit `j` set when `{i, j}` is a dead pair. All-zero
    /// (bound disabled) for fleets beyond [`CLIQUE_MAX_APPS`].
    conflict: Vec<u128>,
    /// `suffix_mask[k]` / `suffix_size[k]`: a greedy clique over
    /// `order[k..]` in the conflict graph (members as an index bitmask, and
    /// its cardinality).
    suffix_mask: Vec<u128>,
    suffix_size: Vec<usize>,
}

impl CliqueBounds {
    /// Builds the conflict rows (one dead-pair analysis per application
    /// pair) and the per-depth greedy suffix cliques.
    pub(crate) fn new(
        apps: &[AppTimingParams],
        order: &[usize],
        model: ModelKind,
        method: WaitTimeMethod,
        timing: SlotTiming,
    ) -> Self {
        let n = apps.len();
        let mut conflict = vec![0u128; n];
        if n <= CLIQUE_MAX_APPS {
            for a in 0..n {
                for b in (a + 1)..n {
                    if slot_status(apps, &[a, b], model, method, timing) == SlotStatus::Dead {
                        conflict[a] |= 1u128 << b;
                        conflict[b] |= 1u128 << a;
                    }
                }
            }
        }
        // Greedy clique per suffix, scanned in priority order so the clique
        // (and with it the whole bound) is a deterministic function of the
        // problem. Growing a clique only ever requires candidates that
        // conflict with every member so far.
        let mut suffix_mask = vec![0u128; n + 1];
        let mut suffix_size = vec![0usize; n + 1];
        for k in (0..n).rev() {
            let mut mask = 0u128;
            let mut size = 0usize;
            for &app in &order[k..] {
                if mask & !conflict[app] == 0 {
                    mask |= 1u128 << app;
                    size += 1;
                }
            }
            suffix_mask[k] = mask;
            suffix_size[k] = size;
        }
        CliqueBounds { conflict, suffix_mask, suffix_size }
    }

    /// The conflict row of one application (all-zero when disabled).
    #[inline]
    pub(crate) fn conflict_row(&self, app: usize) -> u128 {
        self.conflict[app]
    }

    /// The size of the greedy conflict clique over the whole fleet — a
    /// valid lower bound on the optimal slot count of any feasible
    /// allocation (0 when the bound is disabled).
    pub(crate) fn root_clique_size(&self) -> usize {
        self.suffix_size[0]
    }

    /// Lower bound on the number of *additional* slots any completion must
    /// open for `order[depth..]`, given the conflict unions of the open
    /// slots: clique members pairwise exclude each other, and each open
    /// slot absorbs at most one member — and only when at least one clique
    /// member is conflict-free against that slot's current membership.
    #[inline]
    pub(crate) fn extra(&self, depth: usize, open_unions: &[u128]) -> usize {
        let size = self.suffix_size[depth];
        if size == 0 {
            return 0;
        }
        let mask = self.suffix_mask[depth];
        let mut absorbing = 0usize;
        for &union in open_unions {
            if mask & !union != 0 {
                absorbing += 1;
            }
        }
        size.saturating_sub(absorbing)
    }
}

/// Demand-relaxation lower bound on the number of *additional* slots any
/// completion of the current node must open for `order[depth..]`.
fn demand_extra(problem: &Problem<'_>, state: &SearchState, depth: usize) -> usize {
    let remaining = problem.suffix_demand[depth];
    if remaining <= 0.0 {
        return 0;
    }
    let mut residual = 0.0;
    for s in 0..state.used {
        residual += (problem.capacity - state.load[s]).max(0.0);
    }
    if remaining <= residual {
        return 0;
    }
    ((remaining - residual) / problem.capacity).ceil() as usize
}

/// Combined node lower bound: the larger of the demand relaxation and the
/// conflict-clique bound (both valid, so their maximum is).
#[inline]
pub(crate) fn lower_bound(problem: &Problem<'_>, state: &SearchState, depth: usize) -> usize {
    demand_extra(problem, state, depth)
        .max(problem.clique.extra(depth, &state.conflict_union[..state.used]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocatorConfig;
    use crate::case_study_fixtures::paper_table1;
    use crate::optimal::search::min_future_response;

    /// A dead pair must be dead in every superset sampled: the soundness
    /// fact the conflict definition rests on (waits grow, envelope is
    /// monotone).
    #[test]
    fn conflicting_pairs_stay_infeasible_in_sampled_supersets() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let problem = Problem::new(&apps, &config).unwrap();
        let n = apps.len();
        for a in 0..n {
            for b in (a + 1)..n {
                if problem.clique.conflict_row(a) & (1u128 << b) == 0 {
                    continue;
                }
                // Every superset {a, b, c} must analyse as unschedulable.
                for c in 0..n {
                    if c == a || c == b {
                        continue;
                    }
                    let schedulable = crate::is_slot_schedulable_with(
                        &apps,
                        &[a, b, c],
                        config.model,
                        config.method,
                        config.slot_timing,
                    )
                    .unwrap();
                    assert!(
                        !schedulable,
                        "dead pair ({a},{b}) became schedulable with {c} added"
                    );
                }
            }
        }
    }

    /// The monotone-envelope definition: a pair is only conflicting when a
    /// member's response floor misses its deadline (or the pair overloads),
    /// never merely because the current response does.
    #[test]
    fn conflict_requires_the_envelope_to_miss_not_just_the_response() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        for a in 0..apps.len() {
            for b in (a + 1)..apps.len() {
                let status = slot_status(
                    &apps,
                    &[a, b],
                    config.model,
                    config.method,
                    config.slot_timing,
                );
                if status == SlotStatus::Infeasible {
                    // Infeasible-but-not-dead: some member misses now, but
                    // the envelope still clears its deadline somewhere in
                    // the tail — the pair must not be a conflict edge.
                    let problem = Problem::new(&apps, &config).unwrap();
                    assert_eq!(problem.clique.conflict_row(a) & (1u128 << b), 0);
                }
            }
        }
    }

    #[test]
    fn suffix_cliques_are_cliques_within_their_suffix() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let problem = Problem::new(&apps, &config).unwrap();
        let clique = &problem.clique;
        for k in 0..=apps.len() {
            let mask = clique.suffix_mask[k];
            assert_eq!(mask.count_ones() as usize, clique.suffix_size[k]);
            let members: Vec<usize> =
                (0..apps.len()).filter(|&a| mask & (1u128 << a) != 0).collect();
            for &a in &members {
                // Members come from the unassigned suffix only...
                assert!(problem.order[k..].contains(&a));
                // ...and conflict pairwise (the property the bound needs).
                for &b in &members {
                    if a != b {
                        assert_ne!(clique.conflict_row(a) & (1u128 << b), 0);
                    }
                }
            }
        }
        // The root clique may never exceed the known optimum (3 slots under
        // the default configuration).
        assert!(clique.root_clique_size() <= 3);
    }

    #[test]
    fn min_future_response_is_monotone_in_wait() {
        let apps = paper_table1();
        for app in &apps {
            for kind in [
                ModelKind::NonMonotonic,
                ModelKind::ConservativeMonotonic,
                ModelKind::SimpleMonotonic,
            ] {
                let mut previous = f64::NEG_INFINITY;
                for step in 0..200 {
                    let wait = step as f64 * 0.05;
                    let floor = min_future_response(app, kind, wait);
                    assert!(
                        floor + 1e-9 >= previous,
                        "{}: envelope dropped from {previous} to {floor} at wait {wait}",
                        app.name
                    );
                    previous = floor;
                }
            }
        }
    }
}
