//! Exact TT-slot allocation by branch-and-bound (the design-space companion
//! to the greedy heuristics of [`crate::allocate_slots`]).
//!
//! Minimising the number of TT slots generalises bin packing and is NP-hard,
//! but the fleets the paper dimensions are small (a handful to a few dozen
//! applications), so an exact search is practical — and it turns the
//! heuristic sweep into a provable tool: every greedy answer becomes an upper
//! bound the solver must meet or beat.
//!
//! The module splits into the pieces the two solvers share:
//!
//! * [`search`](self) (private) — the restricted-growth DFS core, the
//!   allocation-free per-slot analysis and the deadness test;
//! * `bounds` (private) — the slot-demand relaxation and the
//!   pairwise-conflict clique lower bound;
//! * [`OptimalAllocator`] — the sequential reference solver;
//! * [`PortfolioAllocator`] — the parallel portfolio solver, bit-identical
//!   to the sequential one for every worker count.
//!
//! # Search space
//!
//! Applications are processed in the same deterministic priority order as the
//! greedy allocator (increasing deadline, name tie-break). A node of the
//! search tree is a partial assignment of the first `k` applications to
//! slots; application `k` branches over every currently open slot (in
//! creation order) and, last, over opening a new slot. Because applications
//! arrive in a fixed order and a new slot is always the next unused index,
//! every set partition of the fleet is enumerated exactly once (the standard
//! restricted-growth canonical form), so slot-relabelling symmetries are
//! never explored.
//!
//! # Feasibility is a property of *final* slot contents
//!
//! The non-monotonic dwell curve means schedulability is **not** monotone
//! under adding applications to a slot: the extra interference increases a
//! member's maximum wait time, and on the falling segment of the curve a
//! larger wait can *reduce* the total response `ξ(k̂) = k̂ + k_dw(k̂)` (or push
//! it past ξᴱᵀ, where the response caps at ξᴱᵀ). A sound exact solver may
//! therefore only prune a branch when a slot is **dead** — provably
//! unschedulable for *every* superset of its current members — and must
//! verify full schedulability at the leaves. Deadness uses two monotone
//! facts proved in the paper's analysis:
//!
//! * the maximum wait time of a member only grows as applications join its
//!   slot (more blocking, more interference, larger utilisation `m`), and an
//!   overloaded slot (`m ≥ 1`) can never recover;
//! * the response at any *future* wait `w′ ≥ w` is bounded below by
//!   `min_{t ≥ w} ξ(t)`, which is attained at a segment endpoint of the
//!   piecewise-linear dwell model (the current wait, the peak `k_p`, or
//!   ξᴱᵀ).
//!
//! If that floor already exceeds a member's deadline, no completion can fix
//! the slot and the branch is cut.
//!
//! # Lower bounds
//!
//! Nodes are cut when `open slots + lower bound ≥ incumbent`. Two valid
//! bounds combine (their maximum): the slot-demand relaxation of the
//! paper's Eq. (19) (every feasible slot carries demand
//! `Σ (ξᴹⱼ + ΔΨ)/rⱼ < 1 + u_max`, yielding a bin-packing floor for the
//! unassigned suffix) and a pairwise-conflict clique bound (applications
//! whose two-member slot is provably dead under the monotone response
//! envelope can never share a slot, so a conflict clique forces that many
//! distinct slots). See the `bounds` module docs for the soundness
//! arguments.
//!
//! The incumbent is seeded with the best feasible greedy allocation
//! (next-fit, first-fit and best-fit under the same model and wait-time
//! method), so the search is pure improvement: it returns a strictly better
//! allocation or proves the greedy one optimal.
//!
//! # Determinism and allocation-freedom
//!
//! Branching order, priority order and tie-breaks are all deterministic, so
//! the returned allocation is a pure function of the inputs — for the
//! sequential solver *and* for the portfolio at any worker count (see
//! [`PortfolioAllocator`] for the two-phase argument). After
//! [`OptimalAllocator::new`] returns, [`OptimalAllocator::solve_in_place`]
//! performs no heap allocation: slot membership, status flags and the best
//! assignment live in buffers sized at construction, and the per-node
//! schedulability check and bound stream over those buffers (verified by the
//! workspace's counting-allocator test; the same holds for
//! [`PortfolioAllocator::solve_in_place`] at one worker).

mod bounds;
mod portfolio;
mod search;

pub use portfolio::{allocate_slots_portfolio, PortfolioAllocator, PortfolioConfig};

use crate::allocation::{AllocatorConfig, SlotAllocation};
use crate::app::AppTimingParams;
use crate::cancel::CancelToken;
use crate::error::{Result, SchedError};

use search::{dfs, seed_greedy, Driver, Flow, Problem, SearchState};

/// Exact minimum-slot allocator: a reusable branch-and-bound search over slot
/// assignments for one fleet under one [`AllocatorConfig`].
///
/// Construction validates the fleet, precomputes the priority order,
/// per-application demands and conflict cliques, and seeds the incumbent
/// with the best greedy allocation. [`OptimalAllocator::solve_in_place`]
/// then runs the exact search without allocating;
/// [`OptimalAllocator::best_allocation`] materialises the result. The
/// `strategy` field of the configuration is ignored — the solver searches
/// over *all* packings.
#[derive(Debug)]
pub struct OptimalAllocator<'a> {
    problem: Problem<'a>,
    state: SearchState,
    /// Best known solution (`best_used` slots in `best_slots[..best_used]`);
    /// `usize::MAX` when none is known.
    best_slots: Vec<Vec<usize>>,
    best_used: usize,
    /// The greedy seed the incumbent is (re)initialised from.
    seed_slots: Vec<Vec<usize>>,
    seed_used: usize,
    /// Search-tree nodes expanded by the last `solve_in_place`.
    nodes: u64,
    /// Cooperative cancellation checkpoint, polled once per search node (a
    /// relaxed atomic load — no allocation, so the solve stays on the
    /// zero-alloc hot path).
    cancel: Option<CancelToken>,
    /// Optional cap on search-tree nodes per solve — the deterministic
    /// budget the design service uses to bound exact-search latency.
    node_budget: Option<u64>,
    /// Whether the last solve ran the search to exhaustion (`false` when the
    /// cancellation token fired or the node budget ran out mid-search).
    exhausted: bool,
}

/// The sequential solver's [`Driver`]: plain-field incumbent and node
/// counter, record-and-continue at improving leaves.
struct SequentialDriver<'s> {
    best_slots: &'s mut [Vec<usize>],
    best_used: &'s mut usize,
    nodes: &'s mut u64,
    budget: Option<u64>,
    cancel: Option<&'s CancelToken>,
}

impl Driver for SequentialDriver<'_> {
    fn bound(&self) -> usize {
        *self.best_used
    }
    fn enter_node(&mut self) -> bool {
        *self.nodes += 1;
        // `>=` so that a budget of 1 fires at the root node: the search may
        // *start* at most `budget` nodes, and a cut solve always degrades —
        // there is no budget small enough to certify by accident. (The wire
        // protocol reserves 0 for "unbounded", so 1 is the smallest budget a
        // service request can carry.)
        if let Some(budget) = self.budget {
            if *self.nodes >= budget {
                return false;
            }
        }
        !self.cancel.as_ref().is_some_and(|token| token.is_cancelled())
    }
    fn on_leaf(&mut self, state: &SearchState) -> bool {
        *self.best_used = state.used;
        for (best, slot) in self.best_slots.iter_mut().zip(&state.slots).take(state.used) {
            best.clear();
            best.extend_from_slice(slot);
        }
        true
    }
}

impl<'a> OptimalAllocator<'a> {
    /// Builds a solver for the fleet under the given configuration
    /// (`config.strategy` is ignored).
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidParameter`] if `apps` is empty or
    /// `config.max_slots` is zero.
    pub fn new(apps: &'a [AppTimingParams], config: &AllocatorConfig) -> Result<Self> {
        let problem = Problem::new(apps, config)?;
        let pool = problem.pool();
        let make_pool =
            || -> Vec<Vec<usize>> { (0..pool).map(|_| Vec::with_capacity(apps.len())).collect() };
        let state = SearchState::new(&problem);
        let mut seed_slots = make_pool();
        let seed_used = seed_greedy(&problem, &mut seed_slots);
        Ok(OptimalAllocator {
            problem,
            state,
            best_slots: make_pool(),
            best_used: usize::MAX,
            seed_slots,
            seed_used,
            nodes: 0,
            cancel: None,
            node_budget: None,
            exhausted: true,
        })
    }

    /// The slot count of the greedy seed, if any greedy strategy succeeded.
    pub fn greedy_bound(&self) -> Option<usize> {
        (self.seed_used != usize::MAX).then_some(self.seed_used)
    }

    /// Size of the root conflict clique: a certified lower bound on the
    /// optimal slot count of any feasible allocation (0 when the fleet is
    /// too large for the clique bound, which falls back to demand alone).
    pub fn clique_lower_bound(&self) -> usize {
        self.problem.clique.root_clique_size()
    }

    /// Number of search-tree nodes expanded by the last
    /// [`OptimalAllocator::solve_in_place`].
    pub fn nodes_explored(&self) -> u64 {
        self.nodes
    }

    /// Installs (or clears) a cooperative cancellation token. The search
    /// polls it once per expanded node — a relaxed atomic load, nothing
    /// more — and, when it fires, unwinds immediately while keeping the best
    /// incumbent found so far (typically the greedy seed): the degradation
    /// ladder of the design service.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Caps the search: the solve cuts once `budget` nodes have been
    /// entered, so a budget of 1 abandons at the root (`None`, the default,
    /// is unbounded). A cut behaves exactly like cancellation — incumbent
    /// kept, [`OptimalAllocator::certified_optimal`] reports `false` — but
    /// is a *deterministic* trigger, which is what the service's tests pin
    /// degradation behaviour on.
    pub fn set_node_budget(&mut self, budget: Option<u64>) {
        self.node_budget = budget;
    }

    /// Whether the last [`OptimalAllocator::solve_in_place`] ran the search
    /// to exhaustion. `true` means the recorded best allocation is the
    /// provable minimum (or, on `None`, that infeasibility is proven);
    /// `false` means the solve was cut short by the cancellation token or
    /// the node budget and the recorded best is only an upper bound —
    /// `certified_optimal=false` in a served response.
    pub fn certified_optimal(&self) -> bool {
        self.exhausted
    }

    /// Runs the exact search and returns the minimum number of TT slots, or
    /// `None` if no feasible allocation within `max_slots` exists. Performs
    /// no heap allocation; the result is stored internally and can be
    /// materialised with [`OptimalAllocator::best_allocation`].
    pub fn solve_in_place(&mut self) -> Option<usize> {
        // Re-seed the incumbent from the greedy solution so repeated solves
        // are idempotent.
        self.best_used = self.seed_used;
        if self.seed_used != usize::MAX {
            let OptimalAllocator { seed_slots, best_slots, .. } = self;
            for (best, seed) in best_slots.iter_mut().zip(&*seed_slots).take(self.seed_used) {
                best.clear();
                best.extend_from_slice(seed);
            }
        }
        self.state.reset();
        self.nodes = 0;
        let OptimalAllocator {
            problem, state, best_slots, best_used, nodes, cancel, node_budget, ..
        } = self;
        let mut driver = SequentialDriver {
            best_slots,
            best_used,
            nodes,
            budget: *node_budget,
            cancel: cancel.as_ref(),
        };
        let flow = dfs(problem, state, &mut driver, 0);
        self.exhausted = flow != Flow::Aborted;
        (self.best_used != usize::MAX).then_some(self.best_used)
    }

    /// Materialises the best allocation found by the last solve.
    pub fn best_allocation(&self) -> Option<SlotAllocation> {
        (self.best_used != usize::MAX).then(|| SlotAllocation {
            slots: self.best_slots[..self.best_used].to_vec(),
            model: self.problem.model,
            method: self.problem.method,
        })
    }

    /// Convenience: solve and materialise.
    ///
    /// # Errors
    ///
    /// * [`SchedError::NoFeasibleAllocation`] if the exhausted search proves
    ///   no feasible allocation exists within `max_slots`.
    /// * [`SchedError::SearchCancelled`] if the search was cut short (token
    ///   or node budget) before *any* feasible allocation — incumbent
    ///   included — was known; with an incumbent, a cut-short solve still
    ///   returns it (check [`OptimalAllocator::certified_optimal`]).
    pub fn solve(&mut self) -> Result<SlotAllocation> {
        match self.solve_in_place() {
            Some(_) => Ok(self.best_allocation().expect("solution recorded")),
            None if self.exhausted => {
                Err(SchedError::NoFeasibleAllocation { max_slots: self.problem.max_slots })
            }
            None => Err(SchedError::SearchCancelled { nodes: self.nodes }),
        }
    }
}

/// Allocates the applications to TT slots with the *minimum possible* slot
/// count under the configured dwell model and wait-time method
/// (`config.strategy` is ignored): an exact branch-and-bound search whose
/// result never uses more slots than any greedy strategy.
///
/// Unlike the greedy [`crate::allocate_slots`] — which requires every
/// application to be schedulable on a dedicated slot because it only ever
/// *adds* blocking — the exact search also finds allocations in which an
/// application is only schedulable thanks to its slot mates (possible under
/// the non-monotonic dwell curve).
///
/// # Errors
///
/// * [`SchedError::InvalidParameter`] if `apps` is empty or `max_slots` is
///   zero.
/// * [`SchedError::NoFeasibleAllocation`] if the exhausted search proves no
///   feasible allocation within `config.max_slots` slots exists.
pub fn allocate_slots_optimal(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
) -> Result<SlotAllocation> {
    OptimalAllocator::new(apps, config)?.solve()
}

#[cfg(test)]
mod tests {
    use super::search::{member_response, min_future_response, MemberResponse};
    use super::*;
    use crate::allocation::allocate_slots;
    use crate::case_study_fixtures::paper_table1;
    use crate::dwell::{dwell_for, ModelKind};
    use crate::schedulability::WaitTimeMethod;
    use crate::timing::SlotTiming;

    fn configs() -> Vec<AllocatorConfig> {
        let mut out = Vec::new();
        for model in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
            for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
                out.push(AllocatorConfig { model, method, ..AllocatorConfig::default() });
            }
        }
        out
    }

    #[test]
    fn paper_case_study_optima_match_the_greedy_headline() {
        let apps = paper_table1();
        for config in configs() {
            let optimal = allocate_slots_optimal(&apps, &config).unwrap();
            let greedy = allocate_slots(&apps, &config).unwrap();
            assert!(optimal.verify(&apps).unwrap());
            assert!(optimal.slot_count() <= greedy.slot_count());
        }
        // The paper's greedy 3-slot result is already optimal.
        let optimal = allocate_slots_optimal(&apps, &AllocatorConfig::default()).unwrap();
        assert_eq!(optimal.slot_count(), 3);
    }

    #[test]
    fn streaming_member_analysis_matches_reference_analysis() {
        let apps = paper_table1();
        let slots: Vec<Vec<usize>> =
            vec![vec![2, 5], vec![1, 3], vec![4, 0], vec![0, 1, 2, 3, 4, 5], vec![3]];
        let timings =
            [SlotTiming::ZERO, SlotTiming::new(0.3).unwrap(), SlotTiming::new(0.8).unwrap()];
        for model in
            [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic, ModelKind::SimpleMonotonic]
        {
            for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
                for timing in timings {
                    for slot in &slots {
                        let mut streaming = true;
                        for &index in slot {
                            match member_response(&apps, slot, index, model, method, timing) {
                                MemberResponse::Finite { response, .. } => {
                                    if response > apps[index].deadline {
                                        streaming = false;
                                    }
                                }
                                _ => streaming = false,
                            }
                        }
                        let reference =
                            crate::is_slot_schedulable_with(&apps, slot, model, method, timing)
                                .unwrap();
                        assert_eq!(
                            streaming, reference,
                            "slot {slot:?} model {model:?} method {method:?} timing {timing:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slot_timing_overhead_raises_the_optimum() {
        let apps = paper_table1();
        // The baseline optimum is the greedy 3-slot packing; a 0.8 s
        // per-slot overhead (exaggerated — physical ΔΨ is microseconds)
        // makes S1 = {C3, C6} infeasible, so even the exact search needs
        // more slots, and its result verifies only under its own geometry.
        let timing = SlotTiming::new(0.8).unwrap();
        let config = AllocatorConfig { slot_timing: timing, ..AllocatorConfig::default() };
        let baseline = allocate_slots_optimal(&apps, &AllocatorConfig::default()).unwrap();
        let stretched = allocate_slots_optimal(&apps, &config).unwrap();
        assert_eq!(baseline.slot_count(), 3);
        assert!(stretched.slot_count() > baseline.slot_count());
        assert!(stretched.verify_with(&apps, timing).unwrap());
        assert!(!baseline.verify_with(&apps, timing).unwrap());
        // The exact search still meets or beats every greedy strategy under
        // the same geometry.
        let greedy = allocate_slots(&apps, &config).unwrap();
        assert!(stretched.slot_count() <= greedy.slot_count());
    }

    #[test]
    fn solver_is_idempotent_and_counts_nodes() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver = OptimalAllocator::new(&apps, &config).unwrap();
        assert_eq!(solver.greedy_bound(), Some(3));
        let first = solver.solve_in_place();
        let nodes = solver.nodes_explored();
        let allocation_a = solver.best_allocation().unwrap();
        let second = solver.solve_in_place();
        let allocation_b = solver.best_allocation().unwrap();
        assert_eq!(first, Some(3));
        assert_eq!(first, second);
        assert_eq!(allocation_a, allocation_b);
        assert_eq!(nodes, solver.nodes_explored());
        assert!(nodes > 0);
    }

    #[test]
    fn clique_lower_bound_never_exceeds_the_optimum() {
        let apps = paper_table1();
        for config in configs() {
            let mut solver = OptimalAllocator::new(&apps, &config).unwrap();
            let clique = solver.clique_lower_bound();
            if let Some(optimum) = solver.solve_in_place() {
                assert!(
                    clique <= optimum,
                    "clique bound {clique} exceeds optimum {optimum} under {config:?}"
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_degrades_to_the_greedy_incumbent() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver = OptimalAllocator::new(&apps, &config).unwrap();
        let exact = solver.solve_in_place();
        assert!(solver.certified_optimal());
        let exact_allocation = solver.best_allocation().unwrap();

        // A zero node budget cuts the search at the root: the solve returns
        // the greedy incumbent and refuses to certify it.
        solver.set_node_budget(Some(0));
        let degraded = solver.solve_in_place();
        assert_eq!(degraded, solver.greedy_bound());
        assert!(!solver.certified_optimal());
        let incumbent = solver.best_allocation().unwrap();
        assert!(incumbent.verify(&apps).unwrap());

        // Restoring the budget restores the exact (certified) answer —
        // budget runs never corrupt solver state.
        solver.set_node_budget(None);
        assert_eq!(solver.solve_in_place(), exact);
        assert!(solver.certified_optimal());
        assert_eq!(solver.best_allocation().unwrap(), exact_allocation);
    }

    #[test]
    fn cancellation_token_degrades_and_reports() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver = OptimalAllocator::new(&apps, &config).unwrap();
        let token = crate::CancelToken::new();
        solver.set_cancel_token(Some(token.clone()));

        // Un-cancelled token: behaviour (and result bits) unchanged.
        let nominal = solver.solve_in_place();
        assert_eq!(nominal, Some(3));
        assert!(solver.certified_optimal());

        // Pre-cancelled token: the incumbent survives, certification drops.
        token.cancel();
        assert_eq!(solver.solve_in_place(), solver.greedy_bound());
        assert!(!solver.certified_optimal());
        assert!(solver.best_allocation().unwrap().verify(&apps).unwrap());

        // A fleet with no greedy incumbent and a cancelled search has no
        // answer at all: solve() reports the cut, not infeasibility.
        let impossible =
            vec![AppTimingParams::new("X", 10.0, 0.2, 0.39, 3.97, 0.64, 0.69).unwrap()];
        let mut solver = OptimalAllocator::new(&impossible, &config).unwrap();
        solver.set_cancel_token(Some(token));
        assert!(matches!(solver.solve(), Err(SchedError::SearchCancelled { .. })));
    }

    #[test]
    fn infeasible_fleets_report_no_feasible_allocation() {
        let apps = paper_table1();
        let config = AllocatorConfig {
            model: ModelKind::ConservativeMonotonic,
            max_slots: 3,
            ..AllocatorConfig::default()
        };
        // The conservative model needs 5 slots; 3 are offered.
        assert!(matches!(
            allocate_slots_optimal(&apps, &config),
            Err(SchedError::NoFeasibleAllocation { max_slots: 3 })
        ));
        // An application that can never meet its deadline poisons every
        // partition.
        let impossible =
            vec![AppTimingParams::new("X", 10.0, 0.2, 0.39, 3.97, 0.64, 0.69).unwrap()];
        assert!(allocate_slots_optimal(&impossible, &AllocatorConfig::default()).is_err());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let apps = paper_table1();
        assert!(allocate_slots_optimal(&[], &AllocatorConfig::default()).is_err());
        assert!(allocate_slots_optimal(
            &apps,
            &AllocatorConfig { max_slots: 0, ..AllocatorConfig::default() }
        )
        .is_err());
    }

    #[test]
    fn single_application_needs_one_slot() {
        let apps = vec![AppTimingParams::new("X", 10.0, 2.0, 0.39, 3.97, 0.64, 0.69).unwrap()];
        let allocation = allocate_slots_optimal(&apps, &AllocatorConfig::default()).unwrap();
        assert_eq!(allocation.slot_count(), 1);
        assert_eq!(allocation.slots[0], vec![0]);
    }

    #[test]
    fn min_future_response_is_a_true_floor() {
        let apps = paper_table1();
        for app in &apps {
            for kind in [
                ModelKind::NonMonotonic,
                ModelKind::ConservativeMonotonic,
                ModelKind::SimpleMonotonic,
            ] {
                for start in 0..40 {
                    let wait = start as f64 * 0.33;
                    let floor = min_future_response(app, kind, wait);
                    // Sample the tail densely; the floor must bound it below.
                    for extra in 0..200 {
                        let t = wait + extra as f64 * 0.1;
                        let response = if t >= app.xi_et {
                            app.xi_et
                        } else {
                            t + dwell_for(app, kind, t)
                        };
                        assert!(
                            floor <= response + 1e-9,
                            "{} {kind:?}: floor {floor} exceeds response {response} at t={t}",
                            app.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn portfolio_matches_sequential_on_the_paper_fleet() {
        let apps = paper_table1();
        for config in configs() {
            let sequential = allocate_slots_optimal(&apps, &config).unwrap();
            for threads in 1..=4 {
                let portfolio = PortfolioConfig::with_threads(threads);
                let parallel = allocate_slots_portfolio(&apps, &config, &portfolio).unwrap();
                assert_eq!(parallel, sequential, "threads={threads} config={config:?}");
            }
        }
    }

    #[test]
    fn portfolio_is_idempotent_and_aggregates_nodes() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver =
            PortfolioAllocator::new(&apps, &config, &PortfolioConfig::with_threads(1)).unwrap();
        assert_eq!(solver.greedy_bound(), Some(3));
        assert!(solver.incumbent_bound().unwrap() <= 3);
        let first = solver.solve_in_place();
        let nodes = solver.nodes_explored();
        let allocation_a = solver.best_allocation().unwrap();
        assert_eq!(first, Some(3));
        assert!(solver.certified_optimal());
        assert_eq!(solver.solve_in_place(), first);
        assert_eq!(solver.best_allocation().unwrap(), allocation_a);
        // One worker: the aggregate node count is deterministic.
        assert_eq!(solver.nodes_explored(), nodes);
        assert!(nodes > 0);
    }

    #[test]
    fn portfolio_budget_and_cancellation_degrade_like_sequential() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver =
            PortfolioAllocator::new(&apps, &config, &PortfolioConfig::with_threads(2)).unwrap();
        let exact = solver.solve_in_place();
        assert!(solver.certified_optimal());

        // Aggregate budget of 1: cut at the generation root, incumbent
        // returned uncertified.
        solver.set_node_budget(Some(1));
        assert_eq!(solver.solve_in_place(), solver.incumbent_bound());
        assert!(!solver.certified_optimal());
        assert!(solver.best_allocation().unwrap().verify(&apps).unwrap());

        // Pre-cancelled token: same ladder.
        solver.set_node_budget(None);
        let token = crate::CancelToken::new();
        token.cancel();
        solver.set_cancel_token(Some(token));
        assert_eq!(solver.solve_in_place(), solver.incumbent_bound());
        assert!(!solver.certified_optimal());

        // Clearing both restores the certified optimum.
        solver.set_cancel_token(None);
        assert_eq!(solver.solve_in_place(), exact);
        assert!(solver.certified_optimal());
    }

    #[test]
    fn portfolio_proves_infeasibility_like_sequential() {
        let apps = paper_table1();
        let config = AllocatorConfig {
            model: ModelKind::ConservativeMonotonic,
            max_slots: 3,
            ..AllocatorConfig::default()
        };
        for threads in [1, 3] {
            let result =
                allocate_slots_portfolio(&apps, &config, &PortfolioConfig::with_threads(threads));
            assert!(matches!(result, Err(SchedError::NoFeasibleAllocation { max_slots: 3 })));
        }
    }
}
