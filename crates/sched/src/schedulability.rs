//! Worst-case response times and per-slot schedulability (Section IV).

use crate::app::AppTimingParams;
use crate::dwell::{dwell_for, ModelKind};
use crate::error::{Result, SchedError};
use crate::timing::SlotTiming;
use crate::wait_time::{max_wait_time_bound_with, max_wait_time_fixed_point_with};

/// How the maximum wait time is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WaitTimeMethod {
    /// The closed-form upper bound `a′/(1−m)` of the paper's Eq. (20) — what
    /// the paper uses in its case study.
    #[default]
    ClosedFormBound,
    /// The exact least fixed point of Eq. (5) (tighter, still safe).
    ExactFixedPoint,
}

/// The result of analysing one application on one TT slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseTimeAnalysis {
    /// Name of the analysed application.
    pub application: String,
    /// Maximum wait time k̂_wait before the application gets the slot.
    pub max_wait_time: f64,
    /// Dwell time predicted by the model at that wait time.
    pub dwell_at_max_wait: f64,
    /// Worst-case response time ξ̂ = k̂_wait + k_dw(k̂_wait).
    pub worst_case_response_time: f64,
    /// The application's deadline ξᵈ.
    pub deadline: f64,
}

impl ResponseTimeAnalysis {
    /// Returns `true` if the worst-case response time meets the deadline.
    pub fn is_schedulable(&self) -> bool {
        self.worst_case_response_time <= self.deadline
    }

    /// Slack (deadline minus worst-case response time); negative when the
    /// deadline is missed.
    pub fn slack(&self) -> f64 {
        self.deadline - self.worst_case_response_time
    }
}

/// Analyses one application (given by `index` into `apps`) on the TT slot
/// holding the applications in `slot`.
///
/// # Errors
///
/// * [`SchedError::SlotOverloaded`] if the higher-priority utilisation is ≥ 1.
/// * [`SchedError::InvalidParameter`] if the slot/index combination is
///   malformed.
pub fn analyze_application(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
    method: WaitTimeMethod,
) -> Result<ResponseTimeAnalysis> {
    analyze_application_with(apps, slot, index, kind, method, SlotTiming::ZERO)
}

/// [`analyze_application`] under an explicit slot geometry: the per-slot
/// transmission overhead stretches the blocking and interference occupancy
/// intervals feeding the wait time; the analysed application's own response
/// `ξ(ŵ) = ŵ + k_dw(ŵ)` is a control-layer settling event and is not
/// stretched. With [`SlotTiming::ZERO`] the analysis is bit-identical to
/// [`analyze_application`].
///
/// # Errors
///
/// As [`analyze_application`].
pub fn analyze_application_with(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
    method: WaitTimeMethod,
    timing: SlotTiming,
) -> Result<ResponseTimeAnalysis> {
    let app = apps.get(index).ok_or_else(|| SchedError::InvalidParameter {
        reason: format!("application index {index} out of range"),
    })?;
    let max_wait = match method {
        WaitTimeMethod::ClosedFormBound => {
            max_wait_time_bound_with(apps, slot, index, kind, timing)?
        }
        WaitTimeMethod::ExactFixedPoint => {
            max_wait_time_fixed_point_with(apps, slot, index, kind, timing)?
        }
    };
    // If the maximum wait already exceeds the pure-ET settling time, the
    // disturbance is rejected entirely over ET communication; the response
    // time is then xi_et (the dwell model evaluates to zero there).
    let dwell = dwell_for(app, kind, max_wait);
    let response = if max_wait >= app.xi_et { app.xi_et } else { max_wait + dwell };
    Ok(ResponseTimeAnalysis {
        application: app.name.clone(),
        max_wait_time: max_wait,
        dwell_at_max_wait: dwell,
        worst_case_response_time: response,
        deadline: app.deadline,
    })
}

/// The verdict for a whole slot: the per-application analyses and whether all
/// of them meet their deadlines.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotAnalysis {
    /// Analyses of every application sharing the slot (in the order given).
    pub analyses: Vec<ResponseTimeAnalysis>,
}

impl SlotAnalysis {
    /// Returns `true` if every application on the slot meets its deadline.
    pub fn is_schedulable(&self) -> bool {
        self.analyses.iter().all(ResponseTimeAnalysis::is_schedulable)
    }

    /// The first application (if any) that misses its deadline.
    pub fn first_violation(&self) -> Option<&ResponseTimeAnalysis> {
        self.analyses.iter().find(|a| !a.is_schedulable())
    }
}

/// Analyses all applications sharing one TT slot.
///
/// Note that adding an application to a slot can break the schedulability of
/// applications that were already there (it adds blocking for
/// higher-priority ones and interference for lower-priority ones), which is
/// why the whole slot must be re-analysed after every change — exactly as the
/// paper's allocation procedure does.
///
/// # Errors
///
/// `SlotOverloaded` from the wait-time analysis is mapped to an
/// unschedulable verdict rather than an error (an overloaded slot simply
/// cannot hold the application); other parameter errors are propagated.
pub fn analyze_slot(
    apps: &[AppTimingParams],
    slot: &[usize],
    kind: ModelKind,
    method: WaitTimeMethod,
) -> Result<SlotAnalysis> {
    analyze_slot_with(apps, slot, kind, method, SlotTiming::ZERO)
}

/// [`analyze_slot`] under an explicit slot geometry (see
/// [`analyze_application_with`]).
///
/// # Errors
///
/// As [`analyze_slot`].
pub fn analyze_slot_with(
    apps: &[AppTimingParams],
    slot: &[usize],
    kind: ModelKind,
    method: WaitTimeMethod,
    timing: SlotTiming,
) -> Result<SlotAnalysis> {
    let mut analyses = Vec::with_capacity(slot.len());
    for &index in slot {
        match analyze_application_with(apps, slot, index, kind, method, timing) {
            Ok(analysis) => analyses.push(analysis),
            Err(SchedError::SlotOverloaded { application, .. }) => {
                // Utilisation ≥ 1 means the wait time is unbounded: represent
                // it as an infinite response time so the slot reports
                // unschedulable.
                let app = &apps[index];
                debug_assert_eq!(application, app.name);
                analyses.push(ResponseTimeAnalysis {
                    application: app.name.clone(),
                    max_wait_time: f64::INFINITY,
                    dwell_at_max_wait: 0.0,
                    worst_case_response_time: f64::INFINITY,
                    deadline: app.deadline,
                });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(SlotAnalysis { analyses })
}

/// Convenience wrapper: is the given set of applications schedulable on a
/// single shared TT slot?
///
/// # Errors
///
/// Propagates parameter errors from [`analyze_slot`].
pub fn is_slot_schedulable(
    apps: &[AppTimingParams],
    slot: &[usize],
    kind: ModelKind,
    method: WaitTimeMethod,
) -> Result<bool> {
    Ok(analyze_slot(apps, slot, kind, method)?.is_schedulable())
}

/// [`is_slot_schedulable`] under an explicit slot geometry.
///
/// # Errors
///
/// Propagates parameter errors from [`analyze_slot_with`].
pub fn is_slot_schedulable_with(
    apps: &[AppTimingParams],
    slot: &[usize],
    kind: ModelKind,
    method: WaitTimeMethod,
    timing: SlotTiming,
) -> Result<bool> {
    Ok(analyze_slot_with(apps, slot, kind, method, timing)?.is_schedulable())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study_fixtures::paper_table1;

    #[test]
    fn c3_alone_has_tt_response_time() {
        let apps = paper_table1();
        let analysis = analyze_application(
            &apps,
            &[2],
            2,
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        assert_eq!(analysis.max_wait_time, 0.0);
        assert!((analysis.worst_case_response_time - 0.39).abs() < 1e-9);
        assert!(analysis.is_schedulable());
        assert!(analysis.slack() > 1.5);
    }

    #[test]
    fn c6_with_c3_matches_paper_response_time() {
        let apps = paper_table1();
        let analysis = analyze_application(
            &apps,
            &[2, 5],
            5,
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        assert!((analysis.max_wait_time - 0.669).abs() < 0.001);
        assert!((analysis.worst_case_response_time - 1.589).abs() < 0.005);
        assert!(analysis.is_schedulable());
    }

    #[test]
    fn c3_with_c6_matches_paper_response_time() {
        let apps = paper_table1();
        let analysis = analyze_application(
            &apps,
            &[2, 5],
            2,
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        assert!((analysis.max_wait_time - 0.92).abs() < 1e-9);
        assert!((analysis.worst_case_response_time - 1.515).abs() < 0.005);
        assert!(analysis.is_schedulable());
    }

    #[test]
    fn adding_c2_to_slot1_breaks_c3() {
        let apps = paper_table1();
        let slot = vec![2, 5, 1]; // C3, C6, C2
        let analysis = analyze_slot(
            &apps,
            &slot,
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        assert!(!analysis.is_schedulable());
        let violation = analysis.first_violation().unwrap();
        assert_eq!(violation.application, "C3");
        assert!(violation.worst_case_response_time > violation.deadline);
    }

    #[test]
    fn monotonic_c2_with_c4_misses_deadline_as_in_paper() {
        let apps = paper_table1();
        let analysis = analyze_application(
            &apps,
            &[1, 3],
            1,
            ModelKind::ConservativeMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        // Paper: k̂'_wait,2 = 4.94 and ξ̂'_2 = 6.426 > 6.25.
        assert!((analysis.max_wait_time - 4.94).abs() < 1e-9);
        assert!((analysis.worst_case_response_time - 6.426).abs() < 0.01);
        assert!(!analysis.is_schedulable());
    }

    #[test]
    fn non_monotonic_c2_with_c4_is_schedulable() {
        let apps = paper_table1();
        let analysis = analyze_slot(
            &apps,
            &[1, 3],
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        assert!(analysis.is_schedulable(), "S2 = {{C2, C4}} must be schedulable: {analysis:?}");
    }

    #[test]
    fn slot3_c5_c1_is_schedulable_non_monotonic() {
        let apps = paper_table1();
        let analysis = analyze_slot(
            &apps,
            &[4, 0],
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        assert!(analysis.is_schedulable(), "S3 = {{C5, C1}} must be schedulable: {analysis:?}");
    }

    #[test]
    fn exact_fixed_point_is_never_more_pessimistic() {
        let apps = paper_table1();
        let slot: Vec<usize> = (0..apps.len()).collect();
        for index in 0..apps.len() {
            let bound = analyze_application(
                &apps,
                &slot,
                index,
                ModelKind::NonMonotonic,
                WaitTimeMethod::ClosedFormBound,
            )
            .unwrap();
            let exact = analyze_application(
                &apps,
                &slot,
                index,
                ModelKind::NonMonotonic,
                WaitTimeMethod::ExactFixedPoint,
            )
            .unwrap();
            assert!(exact.max_wait_time <= bound.max_wait_time + 1e-9);
        }
    }

    #[test]
    fn overloaded_slot_reports_unschedulable_not_error() {
        let apps = vec![
            AppTimingParams::new("H1", 1.0, 0.5, 0.3, 2.0, 0.6, 0.5).unwrap(),
            AppTimingParams::new("H2", 1.0, 0.6, 0.3, 2.0, 0.6, 0.5).unwrap(),
            AppTimingParams::new("L", 10.0, 5.0, 0.3, 2.0, 0.6, 0.5).unwrap(),
        ];
        let analysis = analyze_slot(
            &apps,
            &[0, 1, 2],
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
        )
        .unwrap();
        assert!(!analysis.is_schedulable());
        assert!(analysis.analyses[2].worst_case_response_time.is_infinite());
        assert!(!is_slot_schedulable(
            &apps,
            &[0, 1, 2],
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound
        )
        .unwrap());
    }

    #[test]
    fn slot_timing_can_break_schedulability() {
        let apps = paper_table1();
        // S1 = {C3, C6} is schedulable under the baseline geometry. Along
        // the falling dwell segment C3's response grows with the wait at
        // slope 1 − ξᴹ/(ξᴱᵀ − k_p) ≈ 0.805, so its deadline breaks once the
        // per-slot overhead exceeds ≈ 0.603 s; 0.8 s (exaggerated — physical
        // ΔΨ is microseconds) pushes it clearly past.
        let slot = [2usize, 5];
        assert!(is_slot_schedulable(&apps, &slot, ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound)
        .unwrap());
        let timing = SlotTiming::new(0.8).unwrap();
        let analysis = analyze_slot_with(
            &apps,
            &slot,
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
            timing,
        )
        .unwrap();
        assert!(!analysis.is_schedulable());
        assert_eq!(analysis.first_violation().unwrap().application, "C3");
        // The zero-overhead path is the bitwise baseline.
        let base = analyze_slot(&apps, &slot, ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound)
        .unwrap();
        let zero = analyze_slot_with(
            &apps,
            &slot,
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound,
            SlotTiming::ZERO,
        )
        .unwrap();
        assert_eq!(base, zero);
        for (a, b) in base.analyses.iter().zip(&zero.analyses) {
            assert_eq!(a.max_wait_time.to_bits(), b.max_wait_time.to_bits());
            assert_eq!(
                a.worst_case_response_time.to_bits(),
                b.worst_case_response_time.to_bits()
            );
        }
    }

    #[test]
    fn invalid_index_is_an_error() {
        let apps = paper_table1();
        assert!(analyze_application(
            &apps,
            &[0],
            42,
            ModelKind::NonMonotonic,
            WaitTimeMethod::ClosedFormBound
        )
        .is_err());
    }
}
