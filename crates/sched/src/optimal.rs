//! Exact TT-slot allocation by branch-and-bound (the design-space companion
//! to the greedy heuristics of [`crate::allocate_slots`]).
//!
//! Minimising the number of TT slots generalises bin packing and is NP-hard,
//! but the fleets the paper dimensions are small (a handful to a few dozen
//! applications), so an exact search is practical — and it turns the
//! heuristic sweep into a provable tool: every greedy answer becomes an upper
//! bound the solver must meet or beat.
//!
//! # Search space
//!
//! Applications are processed in the same deterministic priority order as the
//! greedy allocator (increasing deadline, name tie-break). A node of the
//! search tree is a partial assignment of the first `k` applications to
//! slots; application `k` branches over every currently open slot (in
//! creation order) and, last, over opening a new slot. Because applications
//! arrive in a fixed order and a new slot is always the next unused index,
//! every set partition of the fleet is enumerated exactly once (the standard
//! restricted-growth canonical form), so slot-relabelling symmetries are
//! never explored.
//!
//! # Feasibility is a property of *final* slot contents
//!
//! The non-monotonic dwell curve means schedulability is **not** monotone
//! under adding applications to a slot: the extra interference increases a
//! member's maximum wait time, and on the falling segment of the curve a
//! larger wait can *reduce* the total response `ξ(k̂) = k̂ + k_dw(k̂)` (or push
//! it past ξᴱᵀ, where the response caps at ξᴱᵀ). A sound exact solver may
//! therefore only prune a branch when a slot is **dead** — provably
//! unschedulable for *every* superset of its current members — and must
//! verify full schedulability at the leaves. Deadness uses two monotone
//! facts proved in the paper's analysis:
//!
//! * the maximum wait time of a member only grows as applications join its
//!   slot (more blocking, more interference, larger utilisation `m`), and an
//!   overloaded slot (`m ≥ 1`) can never recover;
//! * the response at any *future* wait `w′ ≥ w` is bounded below by
//!   `min_{t ≥ w} ξ(t)`, which is attained at a segment endpoint of the
//!   piecewise-linear dwell model (the current wait, the peak `k_p`, or
//!   ξᴱᵀ).
//!
//! If that floor already exceeds a member's deadline, no completion can fix
//! the slot and the branch is cut.
//!
//! # Lower bound (slot-demand relaxation)
//!
//! For the lowest-priority member `i` of a feasible slot `S`, the paper's
//! Eq. (19) requires `m = Σ_{j∈S∖{i}} ξ̃ᴹⱼ/rⱼ < 1`, hence every feasible slot
//! carries total demand `Σ_{j∈S} uⱼ < 1 + uᵢ ≤ 1 + u_max` with
//! `uⱼ = ξ̃ᴹⱼ/rⱼ`, where `ξ̃ᴹⱼ = ξᴹⱼ + ΔΨ` is the dwell bound stretched by the
//! per-slot transmission overhead of the analysed bus geometry
//! ([`crate::SlotTiming`]; zero at the design baseline). Relaxing
//! schedulability to this scalar capacity yields a
//! bin-packing bound: with `D` the demand of the unassigned applications and
//! `R` the residual capacity of the open slots, at least
//! `⌈(D − R)/(1 + u_max)⌉` further slots are needed. Nodes whose open-slot
//! count plus this bound cannot beat the incumbent are cut.
//!
//! The incumbent is seeded with the best feasible greedy allocation
//! (next-fit, first-fit and best-fit under the same model and wait-time
//! method), so the search is pure improvement: it returns a strictly better
//! allocation or proves the greedy one optimal.
//!
//! # Determinism and allocation-freedom
//!
//! Branching order, priority order and tie-breaks are all deterministic, so
//! the returned allocation is a pure function of the inputs. After
//! [`OptimalAllocator::new`] returns, [`OptimalAllocator::solve_in_place`]
//! performs no heap allocation: slot membership, status flags and the best
//! assignment live in buffers sized at construction, and the per-node
//! schedulability check and bound stream over those buffers (verified by the
//! workspace's counting-allocator test).

use crate::allocation::{AllocationStrategy, AllocatorConfig, SlotAllocation};
use crate::app::{priority_order, AppTimingParams};
use crate::cancel::CancelToken;
use crate::dwell::{dwell_for, max_dwell_for, ModelKind};
use crate::error::{Result, SchedError};
use crate::schedulability::WaitTimeMethod;
use crate::timing::SlotTiming;
use crate::wait_time::MAX_FIXED_POINT_ITERATIONS;

/// Verdict of the allocation-free per-slot analysis at a search node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotStatus {
    /// Every member currently meets its deadline.
    Feasible,
    /// Some member misses its deadline, but a future addition could still
    /// repair it (the dwell curve is non-monotonic).
    Infeasible,
    /// Provably unschedulable for every superset of the current members.
    Dead,
}

/// Exact minimum-slot allocator: a reusable branch-and-bound search over slot
/// assignments for one fleet under one [`AllocatorConfig`].
///
/// Construction validates the fleet, precomputes the priority order and
/// per-application demands, and seeds the incumbent with the best greedy
/// allocation. [`OptimalAllocator::solve_in_place`] then runs the exact
/// search without allocating; [`OptimalAllocator::best_allocation`]
/// materialises the result. The `strategy` field of the configuration is
/// ignored — the solver searches over *all* packings.
#[derive(Debug)]
pub struct OptimalAllocator<'a> {
    apps: &'a [AppTimingParams],
    model: ModelKind,
    method: WaitTimeMethod,
    max_slots: usize,
    /// Per-slot transmission timing of the analysed bus geometry: the
    /// overhead stretches every blocking/interference occupancy and the
    /// per-application demand, exactly as in the reference analysis.
    timing: SlotTiming,
    /// Applications in decreasing priority (the branching order).
    order: Vec<usize>,
    /// Per-application slot demand `uᵢ = (ξᴹᵢ + ΔΨ)/rᵢ` under the active
    /// model and slot geometry.
    demand: Vec<f64>,
    /// Capacity `1 + u_max` of the demand relaxation.
    capacity: f64,
    /// `suffix_demand[k]` = total demand of `order[k..]`.
    suffix_demand: Vec<f64>,
    /// Slot pool: `slots[..used]` are the open slots of the current node.
    slots: Vec<Vec<usize>>,
    status: Vec<SlotStatus>,
    /// Demand load `Σ uⱼ` of each open slot, recomputed exactly whenever a
    /// slot's membership changes (no incremental float drift) so the bound
    /// only pays O(open slots) per node.
    load: Vec<f64>,
    used: usize,
    /// Best known solution (`best_used` slots in `best_slots[..best_used]`);
    /// `usize::MAX` when none is known.
    best_slots: Vec<Vec<usize>>,
    best_used: usize,
    /// The greedy seed the incumbent is (re)initialised from.
    seed_slots: Vec<Vec<usize>>,
    seed_used: usize,
    /// Search-tree nodes expanded by the last `solve_in_place`.
    nodes: u64,
    /// Cooperative cancellation checkpoint, polled once per search node (a
    /// relaxed atomic load — no allocation, so the solve stays on the
    /// zero-alloc hot path).
    cancel: Option<CancelToken>,
    /// Optional cap on search-tree nodes per solve — the deterministic
    /// budget the design service uses to bound exact-search latency.
    node_budget: Option<u64>,
    /// Whether the last solve ran the search to exhaustion (`false` when the
    /// cancellation token fired or the node budget ran out mid-search).
    exhausted: bool,
}

impl<'a> OptimalAllocator<'a> {
    /// Builds a solver for the fleet under the given configuration
    /// (`config.strategy` is ignored).
    ///
    /// # Errors
    ///
    /// [`SchedError::InvalidParameter`] if `apps` is empty or
    /// `config.max_slots` is zero.
    pub fn new(apps: &'a [AppTimingParams], config: &AllocatorConfig) -> Result<Self> {
        if apps.is_empty() {
            return Err(SchedError::InvalidParameter {
                reason: "cannot allocate an empty application set".to_string(),
            });
        }
        if config.max_slots == 0 {
            return Err(SchedError::InvalidParameter {
                reason: "max_slots must be at least one".to_string(),
            });
        }
        let order = priority_order(apps);
        let demand: Vec<f64> = apps
            .iter()
            .map(|app| {
                config.slot_timing.effective_dwell(max_dwell_for(app, config.model))
                    / app.inter_arrival
            })
            .collect();
        let capacity = 1.0 + demand.iter().copied().fold(0.0, f64::max);
        let mut suffix_demand = vec![0.0; apps.len() + 1];
        for k in (0..apps.len()).rev() {
            suffix_demand[k] = suffix_demand[k + 1] + demand[order[k]];
        }
        let pool = config.max_slots.min(apps.len());
        let make_pool = || -> Vec<Vec<usize>> {
            (0..pool).map(|_| Vec::with_capacity(apps.len())).collect()
        };

        let mut solver = OptimalAllocator {
            apps,
            model: config.model,
            method: config.method,
            max_slots: config.max_slots,
            timing: config.slot_timing,
            order,
            demand,
            capacity,
            suffix_demand,
            slots: make_pool(),
            status: vec![SlotStatus::Feasible; pool],
            load: vec![0.0; pool],
            used: 0,
            best_slots: make_pool(),
            best_used: usize::MAX,
            seed_slots: make_pool(),
            seed_used: usize::MAX,
            nodes: 0,
            cancel: None,
            node_budget: None,
            exhausted: true,
        };
        solver.seed_incumbent(config);
        Ok(solver)
    }

    /// Runs the greedy strategies under the solver's model/method and stores
    /// the best feasible allocation as the incumbent seed.
    ///
    /// The solver's priority order and one dedicated-slot feasibility pass
    /// are shared across all three strategies
    /// ([`crate::allocation::dedicated_slot_precheck`]), so seeding pays the
    /// per-application characterisation work once instead of once per
    /// strategy.
    fn seed_incumbent(&mut self, config: &AllocatorConfig) {
        if crate::allocation::dedicated_slot_precheck(self.apps, config, &self.order).is_err() {
            // Some application misses its deadline even alone: no greedy
            // strategy can succeed (they all require dedicated-slot
            // feasibility), so the incumbent stays unseeded.
            return;
        }
        for strategy in [
            AllocationStrategy::NextFit,
            AllocationStrategy::FirstFit,
            AllocationStrategy::BestFit,
        ] {
            let candidate = crate::allocation::allocate_slots_prechecked(
                self.apps,
                &AllocatorConfig { strategy, ..*config },
                &self.order,
            );
            if let Ok(allocation) = candidate {
                if allocation.slot_count() < self.seed_used.min(self.seed_slots.len() + 1) {
                    self.seed_used = allocation.slot_count();
                    for (buffer, slot) in self.seed_slots.iter_mut().zip(&allocation.slots) {
                        buffer.clear();
                        buffer.extend_from_slice(slot);
                    }
                }
            }
        }
    }

    /// The slot count of the greedy seed, if any greedy strategy succeeded.
    pub fn greedy_bound(&self) -> Option<usize> {
        (self.seed_used != usize::MAX).then_some(self.seed_used)
    }

    /// Number of search-tree nodes expanded by the last
    /// [`OptimalAllocator::solve_in_place`].
    pub fn nodes_explored(&self) -> u64 {
        self.nodes
    }

    /// Installs (or clears) a cooperative cancellation token. The search
    /// polls it once per expanded node — a relaxed atomic load, nothing
    /// more — and, when it fires, unwinds immediately while keeping the best
    /// incumbent found so far (typically the greedy seed): the degradation
    /// ladder of the design service.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// Caps the search: the solve cuts once `budget` nodes have been
    /// entered, so a budget of 1 abandons at the root (`None`, the default,
    /// is unbounded). A cut behaves exactly like cancellation — incumbent
    /// kept, [`OptimalAllocator::certified_optimal`] reports `false` — but
    /// is a *deterministic* trigger, which is what the service's tests pin
    /// degradation behaviour on.
    pub fn set_node_budget(&mut self, budget: Option<u64>) {
        self.node_budget = budget;
    }

    /// Whether the last [`OptimalAllocator::solve_in_place`] ran the search
    /// to exhaustion. `true` means the recorded best allocation is the
    /// provable minimum (or, on `None`, that infeasibility is proven);
    /// `false` means the solve was cut short by the cancellation token or
    /// the node budget and the recorded best is only an upper bound —
    /// `certified_optimal=false` in a served response.
    pub fn certified_optimal(&self) -> bool {
        self.exhausted
    }

    /// Whether the budget checkpoint fired: token cancelled or node budget
    /// exhausted.
    fn out_of_budget(&self) -> bool {
        // `>=` so that a budget of 1 fires at the root node: the search may
        // *start* at most `budget` nodes, and a cut solve always degrades —
        // there is no budget small enough to certify by accident. (The wire
        // protocol reserves 0 for "unbounded", so 1 is the smallest budget a
        // service request can carry.)
        if let Some(budget) = self.node_budget {
            if self.nodes >= budget {
                return true;
            }
        }
        match &self.cancel {
            Some(token) => token.is_cancelled(),
            None => false,
        }
    }

    /// Runs the exact search and returns the minimum number of TT slots, or
    /// `None` if no feasible allocation within `max_slots` exists. Performs
    /// no heap allocation; the result is stored internally and can be
    /// materialised with [`OptimalAllocator::best_allocation`].
    pub fn solve_in_place(&mut self) -> Option<usize> {
        // Re-seed the incumbent from the greedy solution so repeated solves
        // are idempotent.
        self.best_used = self.seed_used;
        if self.seed_used != usize::MAX {
            let OptimalAllocator { seed_slots, best_slots, .. } = self;
            for (best, seed) in best_slots.iter_mut().zip(&*seed_slots).take(self.seed_used) {
                best.clear();
                best.extend_from_slice(seed);
            }
        }
        self.used = 0;
        self.nodes = 0;
        self.exhausted = true;
        self.search(0);
        (self.best_used != usize::MAX).then_some(self.best_used)
    }

    /// Materialises the best allocation found by the last solve.
    pub fn best_allocation(&self) -> Option<SlotAllocation> {
        (self.best_used != usize::MAX).then(|| SlotAllocation {
            slots: self.best_slots[..self.best_used].to_vec(),
            model: self.model,
            method: self.method,
        })
    }

    /// Convenience: solve and materialise.
    ///
    /// # Errors
    ///
    /// * [`SchedError::NoFeasibleAllocation`] if the exhausted search proves
    ///   no feasible allocation exists within `max_slots`.
    /// * [`SchedError::SearchCancelled`] if the search was cut short (token
    ///   or node budget) before *any* feasible allocation — incumbent
    ///   included — was known; with an incumbent, a cut-short solve still
    ///   returns it (check [`OptimalAllocator::certified_optimal`]).
    pub fn solve(&mut self) -> Result<SlotAllocation> {
        match self.solve_in_place() {
            Some(_) => Ok(self.best_allocation().expect("solution recorded")),
            None if self.exhausted => {
                Err(SchedError::NoFeasibleAllocation { max_slots: self.max_slots })
            }
            None => Err(SchedError::SearchCancelled { nodes: self.nodes }),
        }
    }

    /// Depth-first branch-and-bound over restricted-growth assignments.
    fn search(&mut self, depth: usize) {
        self.nodes += 1;
        // Budget checkpoint (deadline token and/or node cap): abandon the
        // search, keep the incumbent. Checked once per node — the load is
        // negligible next to the per-node slot analysis.
        if self.out_of_budget() {
            self.exhausted = false;
            return;
        }
        // Bound: every completion opens at least `extra_slots_bound` more
        // slots, so cut when even that cannot beat the incumbent.
        let floor = self.used + self.extra_slots_bound(depth);
        if self.best_used != usize::MAX && floor >= self.best_used {
            return;
        }
        if depth == self.order.len() {
            if self.status[..self.used].iter().all(|&s| s == SlotStatus::Feasible)
                && (self.best_used == usize::MAX || self.used < self.best_used)
            {
                self.best_used = self.used;
                let OptimalAllocator { slots, best_slots, .. } = self;
                for (best, slot) in best_slots.iter_mut().zip(&*slots).take(self.used) {
                    best.clear();
                    best.extend_from_slice(slot);
                }
            }
            return;
        }
        let app = self.order[depth];

        // Existing slots, in creation order (deterministic tie-breaking).
        for s in 0..self.used {
            self.slots[s].push(app);
            let saved_status = self.status[s];
            let saved_load = self.load[s];
            self.status[s] = self.slot_status(s);
            self.load[s] = self.slot_load(s);
            if self.status[s] != SlotStatus::Dead {
                self.search(depth + 1);
            }
            self.status[s] = saved_status;
            self.load[s] = saved_load;
            self.slots[s].pop();
            // Fast unwind once the budget fired: skip the (expensive) slot
            // analyses the remaining siblings would run before their child
            // calls bail out.
            if !self.exhausted {
                return;
            }
        }

        // Open a new slot (canonical: always the next unused index).
        if self.used < self.slots.len() {
            let s = self.used;
            self.slots[s].clear();
            self.slots[s].push(app);
            let saved_status = self.status[s];
            self.status[s] = self.slot_status(s);
            self.load[s] = self.demand[app];
            self.used += 1;
            if self.status[s] != SlotStatus::Dead {
                self.search(depth + 1);
            }
            self.used -= 1;
            self.status[s] = saved_status;
            self.slots[s].pop();
        }
    }

    /// Exact demand load of open slot `s` (summed in member order).
    fn slot_load(&self, s: usize) -> f64 {
        self.slots[s].iter().map(|&i| self.demand[i]).sum()
    }

    /// Demand-relaxation lower bound on the number of *additional* slots any
    /// completion of the current node must open for `order[depth..]`.
    fn extra_slots_bound(&self, depth: usize) -> usize {
        let remaining = self.suffix_demand[depth];
        if remaining <= 0.0 {
            return 0;
        }
        let mut residual = 0.0;
        for s in 0..self.used {
            residual += (self.capacity - self.load[s]).max(0.0);
        }
        if remaining <= residual {
            return 0;
        }
        ((remaining - residual) / self.capacity).ceil() as usize
    }

    /// Allocation-free analysis of open slot `s`: mirrors
    /// [`crate::analyze_slot`] member for member (identical accumulation
    /// order, so the verdict is bit-for-bit the one `SlotAllocation::verify`
    /// computes), and additionally detects dead slots.
    fn slot_status(&self, s: usize) -> SlotStatus {
        let members = &self.slots[s];
        let mut feasible = true;
        for &index in members {
            match member_response(self.apps, members, index, self.model, self.method, self.timing) {
                MemberResponse::Overloaded => return SlotStatus::Dead,
                MemberResponse::Diverged => return SlotStatus::Dead,
                MemberResponse::Finite { wait, response } => {
                    let app = &self.apps[index];
                    if response > app.deadline {
                        feasible = false;
                        // Dead only if no future wait can repair the member:
                        // waits only grow, and the response floor over
                        // [wait, ∞) is attained at a segment endpoint.
                        if min_future_response(app, self.model, wait) > app.deadline {
                            return SlotStatus::Dead;
                        }
                    }
                }
            }
        }
        if feasible {
            SlotStatus::Feasible
        } else {
            SlotStatus::Infeasible
        }
    }
}

/// Outcome of the streaming per-member analysis.
enum MemberResponse {
    /// Higher-priority utilisation `m ≥ 1`: unbounded wait, permanently
    /// unschedulable (matches the infinite response `analyze_slot` reports).
    Overloaded,
    /// The exact fixed-point iteration did not converge (cannot happen for
    /// `m < 1`; treated as unschedulable, matching the defensive bound).
    Diverged,
    /// Finite maximum wait time and worst-case response.
    Finite { wait: f64, response: f64 },
}

/// Streaming replica of [`crate::analyze_application`] for one member of a
/// candidate slot: same formulas, same accumulation order over the slot
/// members, no heap allocation. Keeping the float operation order identical
/// makes the verdicts bit-compatible with the `InterferenceContext` path.
fn member_response(
    apps: &[AppTimingParams],
    slot: &[usize],
    index: usize,
    kind: ModelKind,
    method: WaitTimeMethod,
    timing: SlotTiming,
) -> MemberResponse {
    let subject = &apps[index];
    // One pass in slot order mirrors `InterferenceContext::for_application`:
    // `higher_priority` entries are visited in the same order (with the same
    // per-slot overhead applied to each dwell bound), so the utilisation and
    // interference sums round identically.
    let mut blocking: f64 = 0.0;
    let mut utilization: f64 = 0.0;
    let mut interference_sum: f64 = 0.0;
    for &other_index in slot {
        if other_index == index {
            continue;
        }
        let other = &apps[other_index];
        let dwell_bound = timing.effective_dwell(max_dwell_for(other, kind));
        if other.outranks(subject) {
            utilization += dwell_bound / other.inter_arrival;
            interference_sum += dwell_bound;
        } else {
            blocking = blocking.max(dwell_bound);
        }
    }
    if utilization >= 1.0 {
        return MemberResponse::Overloaded;
    }
    let wait = match method {
        WaitTimeMethod::ClosedFormBound => {
            let a_prime = blocking + interference_sum;
            a_prime / (1.0 - utilization)
        }
        WaitTimeMethod::ExactFixedPoint => {
            // The monotone iteration of Eq. (5), started (like the reference
            // implementation) from one pending request per higher-priority
            // application on top of the blocking term.
            let mut wait = blocking + interference_sum;
            let mut converged = None;
            for _ in 0..MAX_FIXED_POINT_ITERATIONS {
                // `request_function`: blocking + Σ ⌈w/rⱼ⌉·ξᴹⱼ, higher-priority
                // terms summed in slot order.
                let mut interference = 0.0;
                for &other_index in slot {
                    if other_index == index {
                        continue;
                    }
                    let other = &apps[other_index];
                    if other.outranks(subject) {
                        let dwell_bound = timing.effective_dwell(max_dwell_for(other, kind));
                        interference += (wait / other.inter_arrival).ceil().max(0.0) * dwell_bound;
                    }
                }
                let next = blocking + interference;
                if (next - wait).abs() < 1e-12 {
                    converged = Some(next);
                    break;
                }
                wait = next;
            }
            match converged {
                Some(wait) => wait,
                None => return MemberResponse::Diverged,
            }
        }
    };
    let dwell = dwell_for(subject, kind, wait);
    let response = if wait >= subject.xi_et { subject.xi_et } else { wait + dwell };
    MemberResponse::Finite { wait, response }
}

/// Floor of the worst-case response over every wait `t ≥ wait`:
/// `min_{t ≥ wait} ξ(t)` with `ξ(t) = t + k_dw(t)` for `t < ξᴱᵀ` and
/// `ξ(t) = ξᴱᵀ` beyond. All three analytical dwell models are piecewise
/// linear with breakpoints at most `{k_p, ξᴱᵀ}`, so the minimum over the
/// tail is attained at `wait` itself, at a breakpoint to its right, or at
/// the ξᴱᵀ cap.
fn min_future_response(app: &AppTimingParams, kind: ModelKind, wait: f64) -> f64 {
    let response_at = |t: f64| {
        if t >= app.xi_et {
            app.xi_et
        } else {
            t + dwell_for(app, kind, t)
        }
    };
    let mut floor = response_at(wait).min(app.xi_et);
    if app.k_p > wait {
        floor = floor.min(response_at(app.k_p));
    }
    floor
}

/// Allocates the applications to TT slots with the *minimum possible* slot
/// count under the configured dwell model and wait-time method
/// (`config.strategy` is ignored): an exact branch-and-bound search whose
/// result never uses more slots than any greedy strategy.
///
/// Unlike the greedy [`crate::allocate_slots`] — which requires every
/// application to be schedulable on a dedicated slot because it only ever
/// *adds* blocking — the exact search also finds allocations in which an
/// application is only schedulable thanks to its slot mates (possible under
/// the non-monotonic dwell curve).
///
/// # Errors
///
/// * [`SchedError::InvalidParameter`] if `apps` is empty or `max_slots` is
///   zero.
/// * [`SchedError::NoFeasibleAllocation`] if the exhausted search proves no
///   feasible allocation within `config.max_slots` slots exists.
pub fn allocate_slots_optimal(
    apps: &[AppTimingParams],
    config: &AllocatorConfig,
) -> Result<SlotAllocation> {
    OptimalAllocator::new(apps, config)?.solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::allocate_slots;
    use crate::case_study_fixtures::paper_table1;

    fn configs() -> Vec<AllocatorConfig> {
        let mut out = Vec::new();
        for model in [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic] {
            for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
                out.push(AllocatorConfig { model, method, ..AllocatorConfig::default() });
            }
        }
        out
    }

    #[test]
    fn paper_case_study_optima_match_the_greedy_headline() {
        let apps = paper_table1();
        for config in configs() {
            let optimal = allocate_slots_optimal(&apps, &config).unwrap();
            let greedy = allocate_slots(&apps, &config).unwrap();
            assert!(optimal.verify(&apps).unwrap());
            assert!(optimal.slot_count() <= greedy.slot_count());
        }
        // The paper's greedy 3-slot result is already optimal.
        let optimal = allocate_slots_optimal(&apps, &AllocatorConfig::default()).unwrap();
        assert_eq!(optimal.slot_count(), 3);
    }

    #[test]
    fn streaming_member_analysis_matches_reference_analysis() {
        let apps = paper_table1();
        let slots: Vec<Vec<usize>> =
            vec![vec![2, 5], vec![1, 3], vec![4, 0], vec![0, 1, 2, 3, 4, 5], vec![3]];
        let timings =
            [SlotTiming::ZERO, SlotTiming::new(0.3).unwrap(), SlotTiming::new(0.8).unwrap()];
        for model in
            [ModelKind::NonMonotonic, ModelKind::ConservativeMonotonic, ModelKind::SimpleMonotonic]
        {
            for method in [WaitTimeMethod::ClosedFormBound, WaitTimeMethod::ExactFixedPoint] {
                for timing in timings {
                    for slot in &slots {
                        let mut streaming = true;
                        for &index in slot {
                            match member_response(&apps, slot, index, model, method, timing) {
                                MemberResponse::Finite { response, .. } => {
                                    if response > apps[index].deadline {
                                        streaming = false;
                                    }
                                }
                                _ => streaming = false,
                            }
                        }
                        let reference =
                            crate::is_slot_schedulable_with(&apps, slot, model, method, timing)
                                .unwrap();
                        assert_eq!(
                            streaming, reference,
                            "slot {slot:?} model {model:?} method {method:?} timing {timing:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slot_timing_overhead_raises_the_optimum() {
        let apps = paper_table1();
        // The baseline optimum is the greedy 3-slot packing; a 0.8 s
        // per-slot overhead (exaggerated — physical ΔΨ is microseconds)
        // makes S1 = {C3, C6} infeasible, so even the exact search needs
        // more slots, and its result verifies only under its own geometry.
        let timing = SlotTiming::new(0.8).unwrap();
        let config = AllocatorConfig { slot_timing: timing, ..AllocatorConfig::default() };
        let baseline = allocate_slots_optimal(&apps, &AllocatorConfig::default()).unwrap();
        let stretched = allocate_slots_optimal(&apps, &config).unwrap();
        assert_eq!(baseline.slot_count(), 3);
        assert!(stretched.slot_count() > baseline.slot_count());
        assert!(stretched.verify_with(&apps, timing).unwrap());
        assert!(!baseline.verify_with(&apps, timing).unwrap());
        // The exact search still meets or beats every greedy strategy under
        // the same geometry.
        let greedy = allocate_slots(&apps, &config).unwrap();
        assert!(stretched.slot_count() <= greedy.slot_count());
    }

    #[test]
    fn solver_is_idempotent_and_counts_nodes() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver = OptimalAllocator::new(&apps, &config).unwrap();
        assert_eq!(solver.greedy_bound(), Some(3));
        let first = solver.solve_in_place();
        let nodes = solver.nodes_explored();
        let allocation_a = solver.best_allocation().unwrap();
        let second = solver.solve_in_place();
        let allocation_b = solver.best_allocation().unwrap();
        assert_eq!(first, Some(3));
        assert_eq!(first, second);
        assert_eq!(allocation_a, allocation_b);
        assert_eq!(nodes, solver.nodes_explored());
        assert!(nodes > 0);
    }

    #[test]
    fn budget_exhaustion_degrades_to_the_greedy_incumbent() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver = OptimalAllocator::new(&apps, &config).unwrap();
        let exact = solver.solve_in_place();
        assert!(solver.certified_optimal());
        let exact_allocation = solver.best_allocation().unwrap();

        // A zero node budget cuts the search at the root: the solve returns
        // the greedy incumbent and refuses to certify it.
        solver.set_node_budget(Some(0));
        let degraded = solver.solve_in_place();
        assert_eq!(degraded, solver.greedy_bound());
        assert!(!solver.certified_optimal());
        let incumbent = solver.best_allocation().unwrap();
        assert!(incumbent.verify(&apps).unwrap());

        // Restoring the budget restores the exact (certified) answer —
        // budget runs never corrupt solver state.
        solver.set_node_budget(None);
        assert_eq!(solver.solve_in_place(), exact);
        assert!(solver.certified_optimal());
        assert_eq!(solver.best_allocation().unwrap(), exact_allocation);
    }

    #[test]
    fn cancellation_token_degrades_and_reports() {
        let apps = paper_table1();
        let config = AllocatorConfig::default();
        let mut solver = OptimalAllocator::new(&apps, &config).unwrap();
        let token = crate::CancelToken::new();
        solver.set_cancel_token(Some(token.clone()));

        // Un-cancelled token: behaviour (and result bits) unchanged.
        let nominal = solver.solve_in_place();
        assert_eq!(nominal, Some(3));
        assert!(solver.certified_optimal());

        // Pre-cancelled token: the incumbent survives, certification drops.
        token.cancel();
        assert_eq!(solver.solve_in_place(), solver.greedy_bound());
        assert!(!solver.certified_optimal());
        assert!(solver.best_allocation().unwrap().verify(&apps).unwrap());

        // A fleet with no greedy incumbent and a cancelled search has no
        // answer at all: solve() reports the cut, not infeasibility.
        let impossible =
            vec![AppTimingParams::new("X", 10.0, 0.2, 0.39, 3.97, 0.64, 0.69).unwrap()];
        let mut solver = OptimalAllocator::new(&impossible, &config).unwrap();
        solver.set_cancel_token(Some(token));
        assert!(matches!(solver.solve(), Err(SchedError::SearchCancelled { .. })));
    }

    #[test]
    fn infeasible_fleets_report_no_feasible_allocation() {
        let apps = paper_table1();
        let config = AllocatorConfig {
            model: ModelKind::ConservativeMonotonic,
            max_slots: 3,
            ..AllocatorConfig::default()
        };
        // The conservative model needs 5 slots; 3 are offered.
        assert!(matches!(
            allocate_slots_optimal(&apps, &config),
            Err(SchedError::NoFeasibleAllocation { max_slots: 3 })
        ));
        // An application that can never meet its deadline poisons every
        // partition.
        let impossible =
            vec![AppTimingParams::new("X", 10.0, 0.2, 0.39, 3.97, 0.64, 0.69).unwrap()];
        assert!(allocate_slots_optimal(&impossible, &AllocatorConfig::default()).is_err());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let apps = paper_table1();
        assert!(allocate_slots_optimal(&[], &AllocatorConfig::default()).is_err());
        assert!(allocate_slots_optimal(
            &apps,
            &AllocatorConfig { max_slots: 0, ..AllocatorConfig::default() }
        )
        .is_err());
    }

    #[test]
    fn single_application_needs_one_slot() {
        let apps = vec![AppTimingParams::new("X", 10.0, 2.0, 0.39, 3.97, 0.64, 0.69).unwrap()];
        let allocation = allocate_slots_optimal(&apps, &AllocatorConfig::default()).unwrap();
        assert_eq!(allocation.slot_count(), 1);
        assert_eq!(allocation.slots[0], vec![0]);
    }

    #[test]
    fn min_future_response_is_a_true_floor() {
        let apps = paper_table1();
        for app in &apps {
            for kind in [
                ModelKind::NonMonotonic,
                ModelKind::ConservativeMonotonic,
                ModelKind::SimpleMonotonic,
            ] {
                for start in 0..40 {
                    let wait = start as f64 * 0.33;
                    let floor = min_future_response(app, kind, wait);
                    // Sample the tail densely; the floor must bound it below.
                    for extra in 0..200 {
                        let t = wait + extra as f64 * 0.1;
                        let response = if t >= app.xi_et {
                            app.xi_et
                        } else {
                            t + dwell_for(app, kind, t)
                        };
                        assert!(
                            floor <= response + 1e-9,
                            "{} {kind:?}: floor {floor} exceeds response {response} at t={t}",
                            app.name
                        );
                    }
                }
            }
        }
    }
}
