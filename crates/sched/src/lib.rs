//! # cps-sched
//!
//! Schedulability analysis and TT-slot allocation for the DATE 2019
//! reproduction *Exploiting System Dynamics for Resource-Efficient Automotive
//! CPS Design*.
//!
//! The crate implements the analytical core of the paper:
//!
//! * [`AppTimingParams`] — one row of the paper's Table I (disturbance
//!   inter-arrival time, deadline, pure-mode response times, dwell-curve
//!   breakpoints).
//! * [`NonMonotonicModel`], [`ConservativeMonotonicModel`],
//!   [`SimpleMonotonicModel`], [`PiecewiseLinearModel`] — the dwell-time
//!   models of Figure 4.
//! * [`max_wait_time_bound`] / [`max_wait_time_fixed_point`] — the maximum
//!   wait time of Eq. (5) with the closed-form bound of Eq. (20) whose
//!   existence the paper proves.
//! * [`analyze_application`] / [`analyze_slot`] — worst-case response times
//!   ξ̂ = k̂_wait + k_dw(k̂_wait) and deadline checks.
//! * [`allocate_slots`] — the paper's greedy next-fit slot allocation plus
//!   first-fit and best-fit ablations.
//! * [`allocate_slots_optimal`] / [`OptimalAllocator`] — an *exact*
//!   branch-and-bound slot allocation that provably minimises the slot
//!   count: the greedy answers become upper bounds (the incumbent seed) the
//!   search must meet or beat, nodes are cut by a slot-demand relaxation of
//!   the paper's utilisation test (every feasible slot carries demand
//!   `Σ ξᴹⱼ/rⱼ < 1 + u_max`) and by provably-dead slots (wait times only
//!   grow as a slot fills, and the response floor over all larger waits is
//!   attained at a breakpoint of the piecewise-linear dwell curve).
//! * [`SlotTiming`] — how the bus's slot geometry enters the analysis: the
//!   extra per-slot transmission time of a swept static slot length Ψ
//!   stretches every blocking/interference occupancy (and the solver's
//!   demand bound) via the `_with` analysis variants, so both the greedy
//!   allocators and the exact search see Ψ-dependent per-slot capacity.
//! * [`case_study_fixtures::paper_table1`] — the published Table I, from
//!   which the headline 3-versus-5-slot result is reproduced exactly.
//!
//! # Example: the paper's headline result
//!
//! ```
//! use cps_sched::{allocate_slots, AllocatorConfig, ModelKind};
//! use cps_sched::case_study_fixtures::paper_table1;
//!
//! let apps = paper_table1();
//! let non_monotonic = allocate_slots(&apps, &AllocatorConfig::default())?;
//! let monotonic = allocate_slots(
//!     &apps,
//!     &AllocatorConfig { model: ModelKind::ConservativeMonotonic, ..AllocatorConfig::default() },
//! )?;
//! assert_eq!(non_monotonic.slot_count(), 3);
//! assert_eq!(monotonic.slot_count(), 5);
//! # Ok::<(), cps_sched::SchedError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod allocation;
mod app;
mod cancel;
mod dwell;
mod error;
mod optimal;
mod schedulability;
mod timing;
mod wait_time;

pub mod case_study_fixtures;

pub use allocation::{
    allocate_slots, allocation_sweep, AllocationStrategy, AllocatorConfig, SlotAllocation,
};
pub use cancel::CancelToken;
pub use optimal::{
    allocate_slots_optimal, allocate_slots_portfolio, OptimalAllocator, PortfolioAllocator,
    PortfolioConfig,
};
pub use app::{priority_order, AppTimingParams};
pub use dwell::{
    dwell_for, max_dwell_for, ConservativeMonotonicModel, DwellTimeModel, ModelKind,
    NonMonotonicModel, PiecewiseLinearModel, SimpleMonotonicModel,
};
pub use error::{Result, SchedError};
pub use schedulability::{
    analyze_application, analyze_application_with, analyze_slot, analyze_slot_with,
    is_slot_schedulable, is_slot_schedulable_with, ResponseTimeAnalysis, SlotAnalysis,
    WaitTimeMethod,
};
pub use timing::SlotTiming;
pub use wait_time::{
    max_wait_time_bound, max_wait_time_bound_with, max_wait_time_fixed_point,
    max_wait_time_fixed_point_with, max_wait_time_lower_bound, max_wait_time_lower_bound_with,
    InterferenceContext,
};
