//! Timing parameters of a control application, i.e. one row of the paper's
//! Table I.

use crate::error::{Result, SchedError};

/// The timing parameters the schedulability analysis needs for one control
/// application `Cᵢ` (one row of Table I, all values in seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct AppTimingParams {
    /// Human-readable application name (e.g. `"C3"`).
    pub name: String,
    /// Minimum inter-arrival time `rᵢ` of the external disturbance.
    pub inter_arrival: f64,
    /// Deadline (desired response time) ξᵈᵢ.
    pub deadline: f64,
    /// Response time with pure TT communication, ξᵀᵀᵢ.
    pub xi_tt: f64,
    /// Response time with pure ET communication, ξᴱᵀᵢ.
    pub xi_et: f64,
    /// Maximum dwell time of the non-monotonic model, ξᴹᵢ.
    pub xi_m: f64,
    /// Wait time at which the maximum dwell time occurs, k_pᵢ.
    pub k_p: f64,
    /// Maximum dwell time of the conservative monotonic model, ξ′ᴹᵢ.
    pub xi_prime_m: f64,
}

impl AppTimingParams {
    /// Creates and validates a parameter set.
    ///
    /// The conservative maximum dwell time ξ′ᴹ is derived automatically as
    /// `ξᴹ / (1 − k_p / ξᴱᵀ)` — the intercept of the line through
    /// `(k_p, ξᴹ)` and `(ξᴱᵀ, 0)`, which is the smallest monotonically
    /// decreasing linear model that upper-bounds the non-monotonic one.
    ///
    /// # Errors
    ///
    /// Returns [`SchedError::InvalidParameter`] if any value is non-positive
    /// where it must be positive, non-finite, or violates the orderings
    /// `ξᵀᵀ ≤ ξᴹ`, `ξᵀᵀ ≤ ξᴱᵀ`, `k_p < ξᴱᵀ` or `ξᵈ > 0`.
    pub fn new(
        name: impl Into<String>,
        inter_arrival: f64,
        deadline: f64,
        xi_tt: f64,
        xi_et: f64,
        xi_m: f64,
        k_p: f64,
    ) -> Result<Self> {
        let name = name.into();
        let all = [inter_arrival, deadline, xi_tt, xi_et, xi_m, k_p];
        if all.iter().any(|v| !v.is_finite()) {
            return Err(SchedError::InvalidParameter {
                reason: format!("{name}: all timing parameters must be finite"),
            });
        }
        if inter_arrival <= 0.0 || deadline <= 0.0 || xi_tt <= 0.0 || xi_et <= 0.0 || xi_m <= 0.0 {
            return Err(SchedError::InvalidParameter {
                reason: format!("{name}: times must be strictly positive"),
            });
        }
        if k_p < 0.0 {
            return Err(SchedError::InvalidParameter {
                reason: format!("{name}: peak wait time k_p must be non-negative"),
            });
        }
        if xi_tt > xi_m + 1e-12 {
            return Err(SchedError::InvalidParameter {
                reason: format!("{name}: xi_tt ({xi_tt}) must not exceed xi_m ({xi_m})"),
            });
        }
        if xi_tt > xi_et + 1e-12 {
            return Err(SchedError::InvalidParameter {
                reason: format!("{name}: xi_tt ({xi_tt}) must not exceed xi_et ({xi_et})"),
            });
        }
        if k_p >= xi_et {
            return Err(SchedError::InvalidParameter {
                reason: format!("{name}: k_p ({k_p}) must be smaller than xi_et ({xi_et})"),
            });
        }
        let xi_prime_m = xi_m / (1.0 - k_p / xi_et);
        Ok(AppTimingParams {
            name,
            inter_arrival,
            deadline,
            xi_tt,
            xi_et,
            xi_m,
            k_p,
            xi_prime_m,
        })
    }

    /// Creates a parameter set with an explicitly given conservative maximum
    /// dwell time ξ′ᴹ (used when reproducing the paper's exact Table I, whose
    /// published ξ′ᴹ values are rounded).
    ///
    /// # Errors
    ///
    /// Same validation as [`AppTimingParams::new`], plus `ξ′ᴹ ≥ ξᴹ`.
    // One argument per Table-I column; bundling them would only obscure the
    // correspondence with the paper.
    #[allow(clippy::too_many_arguments)]
    pub fn with_explicit_conservative_dwell(
        name: impl Into<String>,
        inter_arrival: f64,
        deadline: f64,
        xi_tt: f64,
        xi_et: f64,
        xi_m: f64,
        k_p: f64,
        xi_prime_m: f64,
    ) -> Result<Self> {
        let mut params = Self::new(name, inter_arrival, deadline, xi_tt, xi_et, xi_m, k_p)?;
        if xi_prime_m + 1e-12 < xi_m {
            return Err(SchedError::InvalidParameter {
                reason: format!(
                    "{}: conservative dwell ({xi_prime_m}) must be at least xi_m ({xi_m})",
                    params.name
                ),
            });
        }
        params.xi_prime_m = xi_prime_m;
        Ok(params)
    }

    /// Returns `true` if this application has a higher priority than `other`
    /// (the paper assigns priorities by deadline: the smaller ξᵈ, the higher
    /// the priority).
    pub fn has_higher_priority_than(&self, other: &AppTimingParams) -> bool {
        self.deadline < other.deadline
    }

    /// The *total* priority order used by every interference analysis:
    /// deadline first, name as the deterministic tie-break. All analysis
    /// paths (the `InterferenceContext` reference and the branch-and-bound
    /// solver's streaming replica) must use this one predicate so their
    /// verdicts stay bit-for-bit identical.
    pub fn outranks(&self, other: &AppTimingParams) -> bool {
        self.has_higher_priority_than(other)
            || (!other.has_higher_priority_than(self) && self.name < other.name)
    }
}

/// Sorts applications by decreasing priority (increasing deadline), returning
/// the permutation of indices into the original slice.
///
/// Ties are broken by name so the ordering is deterministic.
pub fn priority_order(apps: &[AppTimingParams]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..apps.len()).collect();
    order.sort_by(|&a, &b| {
        apps[a]
            .deadline
            .partial_cmp(&apps[b].deadline)
            .expect("finite deadlines")
            .then_with(|| apps[a].name.cmp(&apps[b].name))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppTimingParams {
        AppTimingParams::new("C3", 15.0, 2.0, 0.39, 3.97, 0.64, 0.69).unwrap()
    }

    #[test]
    fn conservative_dwell_is_derived_from_the_envelope_line() {
        let app = sample();
        // xi'_m = xi_m / (1 - k_p / xi_et) = 0.64 / (1 - 0.69/3.97) ≈ 0.775.
        assert!((app.xi_prime_m - 0.64 / (1.0 - 0.69 / 3.97)).abs() < 1e-12);
        assert!((app.xi_prime_m - 0.77).abs() < 0.01);
        assert!(app.xi_prime_m >= app.xi_m);
    }

    #[test]
    fn explicit_conservative_dwell_overrides_derived_value() {
        let app = AppTimingParams::with_explicit_conservative_dwell(
            "C1", 200.0, 9.5, 1.68, 11.62, 5.30, 2.27, 6.59,
        )
        .unwrap();
        assert_eq!(app.xi_prime_m, 6.59);
        // Must still dominate xi_m.
        assert!(AppTimingParams::with_explicit_conservative_dwell(
            "C1", 200.0, 9.5, 1.68, 11.62, 5.30, 2.27, 5.0,
        )
        .is_err());
    }

    #[test]
    fn validation_rejects_inconsistent_parameters() {
        assert!(AppTimingParams::new("x", 0.0, 2.0, 0.4, 4.0, 0.6, 0.7).is_err());
        assert!(AppTimingParams::new("x", 15.0, -2.0, 0.4, 4.0, 0.6, 0.7).is_err());
        assert!(AppTimingParams::new("x", 15.0, 2.0, 0.8, 4.0, 0.6, 0.7).is_err()); // xi_tt > xi_m
        assert!(AppTimingParams::new("x", 15.0, 2.0, 5.0, 4.0, 6.0, 0.7).is_err()); // xi_tt > xi_et
        assert!(AppTimingParams::new("x", 15.0, 2.0, 0.4, 4.0, 0.6, 4.5).is_err()); // k_p >= xi_et
        assert!(AppTimingParams::new("x", 15.0, 2.0, 0.4, 4.0, 0.6, -0.1).is_err());
        assert!(AppTimingParams::new("x", f64::NAN, 2.0, 0.4, 4.0, 0.6, 0.7).is_err());
    }

    #[test]
    fn priority_is_by_deadline() {
        let a = sample();
        let b = AppTimingParams::new("C6", 6.0, 6.0, 0.71, 7.94, 0.92, 0.67).unwrap();
        assert!(a.has_higher_priority_than(&b));
        assert!(!b.has_higher_priority_than(&a));
    }

    #[test]
    fn priority_order_sorts_by_deadline_then_name() {
        let apps = vec![
            AppTimingParams::new("B", 10.0, 5.0, 0.5, 4.0, 0.6, 0.5).unwrap(),
            AppTimingParams::new("A", 10.0, 5.0, 0.5, 4.0, 0.6, 0.5).unwrap(),
            AppTimingParams::new("C", 10.0, 2.0, 0.5, 4.0, 0.6, 0.5).unwrap(),
        ];
        let order = priority_order(&apps);
        assert_eq!(order, vec![2, 1, 0]);
    }
}
