//! Error type for the FlexRay bus simulator.

use std::fmt;

/// Errors reported by bus configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FlexRayError {
    /// A configuration value violates its precondition (zero slot lengths,
    /// segments exceeding the cycle, ...).
    InvalidConfig {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// A frame definition or transmission request is malformed (unknown slot,
    /// payload too large, duplicate static assignment, ...).
    InvalidFrame {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for FlexRayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlexRayError::InvalidConfig { reason } => write!(f, "invalid bus configuration: {reason}"),
            FlexRayError::InvalidFrame { reason } => write!(f, "invalid frame: {reason}"),
        }
    }
}

impl std::error::Error for FlexRayError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, FlexRayError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = FlexRayError::InvalidConfig { reason: "cycle too short".into() };
        assert!(e.to_string().contains("cycle too short"));
        let e = FlexRayError::InvalidFrame { reason: "slot 11 does not exist".into() };
        assert!(e.to_string().contains("slot 11"));
    }
}
