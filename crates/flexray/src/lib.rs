//! # cps-flexray
//!
//! Cycle-accurate FlexRay hybrid-bus simulator and timing analysis for the
//! DATE 2019 reproduction *Exploiting System Dynamics for Resource-Efficient
//! Automotive CPS Design*.
//!
//! The paper's setup closes distributed control loops over a FlexRay bus
//! whose cycle offers both a static, TDMA-style segment (time-triggered, the
//! scarce and valuable resource) and a dynamic, minislot-arbitrated segment
//! (event-triggered, cheap but with time-varying latency). This crate
//! provides:
//!
//! * [`FlexRayConfig`] — cycle/segment configuration, including the paper's
//!   case-study bus (5 ms cycle, 10 static slots in a 2 ms static segment)
//!   and the frame-payload geometry relations
//!   ([`FlexRayConfig::static_slot_length_for_payload`],
//!   [`FlexRayConfig::with_payload`]) that turn the static slot length Ψ
//!   into a swept design variable: payload words → wire bits → frame
//!   transmission time → Ψ.
//! * [`Frame`] / [`Segment`] — frame definitions and their current segment
//!   assignment (which the dynamic resource-allocation scheme changes at
//!   runtime).
//! * [`FlexRayBus`] — the cycle-accurate simulator: static slots fire
//!   deterministically (and are wasted when empty), dynamic frames arbitrate
//!   by identifier and may be deferred across cycles.
//! * [`worst_case_static_latency`] / [`worst_case_dynamic_latency`] —
//!   analytical latency bounds used to parameterise the control design
//!   (deterministic TT delay versus worst-case ET delay).
//! * [`FaultModel`] / [`SimRng`] — a seeded, deterministic fault-injection
//!   layer (independent drops, Gilbert–Elliott bursts, detected corruption,
//!   dynamic-segment background contention) installed with
//!   [`FlexRayBus::set_fault_model`], driven by a hand-rolled
//!   splitmix64/xoshiro256** generator so fault sequences replay bit for bit.
//!
//! # Example
//!
//! ```
//! use cps_flexray::{FlexRayBus, FlexRayConfig, Frame};
//!
//! let mut bus = FlexRayBus::new(FlexRayConfig::paper_case_study())?;
//! bus.register_frame(Frame::static_slot(1, "steering control input", 0, 2)?)?;
//! bus.register_frame(Frame::dynamic(7, "suspension control input", 2)?)?;
//! bus.queue_message(1, 0.0)?;
//! bus.queue_message(7, 0.0)?;
//! let transmissions = bus.run_cycle();
//! assert_eq!(transmissions.len(), 2);
//! // The static transmission is deterministic and completes before the
//! // dynamic-segment one.
//! assert!(transmissions[0].completed_at < transmissions[1].completed_at);
//! # Ok::<(), cps_flexray::FlexRayError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod bus;
mod config;
mod error;
mod fault;
mod frame;
mod rng;

pub use analysis::{worst_case_dynamic_latency, worst_case_static_latency, LatencyStats};
pub use bus::{BusStatistics, FlexRayBus};
pub use config::{FlexRayConfig, DEFAULT_BIT_RATE, MAX_PAYLOAD_WORDS};
pub use error::{FlexRayError, Result};
pub use fault::{DynamicContention, FaultModel, GilbertElliott};
pub use frame::{Frame, Segment, Transmission};
pub use rng::SimRng;
