//! FlexRay cycle configuration: static (TT) segment and dynamic (ET) segment,
//! plus the frame-payload geometry that determines the static slot length Ψ.

use crate::error::{FlexRayError, Result};

/// Default FlexRay channel bit rate in bits per second (10 Mbit/s, the rate
/// of the protocol's class-C physical layer and of the paper's case study).
pub const DEFAULT_BIT_RATE: f64 = 10_000_000.0;

/// Largest admissible frame payload in 16-bit words (the FlexRay frame
/// format reserves 7 bits for the payload-length field).
pub const MAX_PAYLOAD_WORDS: usize = 127;

/// Transmission-start sequence length in bit times.
const TSS_BITS: f64 = 11.0;
/// Frame-start sequence length in bit times.
const FSS_BITS: f64 = 1.0;
/// Frame-end sequence length in bit times.
const FES_BITS: f64 = 2.0;
/// Wire bits per frame byte: 8 data bits preceded by the 2-bit byte-start
/// sequence of the FlexRay bit coding.
const BITS_PER_CODED_BYTE: f64 = 10.0;
/// Frame header length in bytes (frame ID, payload length, header CRC,
/// cycle count).
const HEADER_BYTES: f64 = 5.0;
/// Frame trailer (CRC) length in bytes.
const TRAILER_BYTES: f64 = 3.0;
/// Action-point offset at the start of a static slot, in bit times.
const ACTION_POINT_BITS: f64 = 10.0;
/// Channel-idle delimiter closing a slot, in bit times.
const CHANNEL_IDLE_BITS: f64 = 11.0;

/// Configuration of one FlexRay communication cycle.
///
/// A cycle consists of a *static segment* with `static_slot_count` TDMA slots
/// of equal length Ψ (`static_slot_length`), followed by a *dynamic segment*
/// divided into `minislot_count` minislots of length ψ (`minislot_length`),
/// with typically ψ ≪ Ψ. Symbol window and network idle time are lumped into
/// the remainder of the cycle and not modelled explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlexRayConfig {
    /// Total cycle length in seconds (the paper's case study uses 5 ms).
    pub cycle_length: f64,
    /// Number of static (TT) slots per cycle (the paper uses 10).
    pub static_slot_count: usize,
    /// Length Ψ of each static slot in seconds.
    pub static_slot_length: f64,
    /// Number of minislots in the dynamic segment.
    pub minislot_count: usize,
    /// Length ψ of each minislot in seconds.
    pub minislot_length: f64,
}

impl FlexRayConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidConfig`] if any length or count is
    /// non-positive, if ψ ≥ Ψ, or if the two segments do not fit into the
    /// cycle.
    pub fn validate(&self) -> Result<()> {
        if !(self.cycle_length > 0.0)
            || !(self.static_slot_length > 0.0)
            || !(self.minislot_length > 0.0)
            || !self.cycle_length.is_finite()
        {
            return Err(FlexRayError::InvalidConfig {
                reason: "cycle, slot and minislot lengths must be positive and finite".to_string(),
            });
        }
        if self.static_slot_count == 0 || self.minislot_count == 0 {
            return Err(FlexRayError::InvalidConfig {
                reason: "static slot count and minislot count must be positive".to_string(),
            });
        }
        if self.minislot_length >= self.static_slot_length {
            return Err(FlexRayError::InvalidConfig {
                reason: "a minislot must be shorter than a static slot (psi << Psi)".to_string(),
            });
        }
        let needed = self.static_segment_length() + self.dynamic_segment_length();
        if needed > self.cycle_length + 1e-12 {
            return Err(FlexRayError::InvalidConfig {
                reason: format!(
                    "segments need {needed:.6} s but the cycle is only {:.6} s",
                    self.cycle_length
                ),
            });
        }
        Ok(())
    }

    /// The case-study configuration of the paper's Section V: a 5 ms cycle
    /// with 10 static slots in a 2 ms static segment (Ψ = 0.2 ms) and the
    /// remaining 3 ms as dynamic segment with ψ = 0.05 ms minislots.
    pub fn paper_case_study() -> Self {
        FlexRayConfig {
            cycle_length: 0.005,
            static_slot_count: 10,
            static_slot_length: 0.0002,
            minislot_count: 60,
            minislot_length: 0.00005,
        }
    }

    /// Total length of the static segment (`count · Ψ`).
    pub fn static_segment_length(&self) -> f64 {
        self.static_slot_count as f64 * self.static_slot_length
    }

    /// Total length of the dynamic segment (`count · ψ`).
    pub fn dynamic_segment_length(&self) -> f64 {
        self.minislot_count as f64 * self.minislot_length
    }

    /// Start time of static slot `slot` (0-based) within the cycle.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the slot index is out of
    /// range.
    pub fn static_slot_start(&self, slot: usize) -> Result<f64> {
        if slot >= self.static_slot_count {
            return Err(FlexRayError::InvalidFrame {
                reason: format!(
                    "static slot {slot} does not exist (only {} slots)",
                    self.static_slot_count
                ),
            });
        }
        Ok(slot as f64 * self.static_slot_length)
    }

    /// Start time of the dynamic segment within the cycle.
    pub fn dynamic_segment_start(&self) -> f64 {
        self.static_segment_length()
    }

    /// Wire time of one static frame carrying `payload_words` 16-bit payload
    /// words at `bit_rate` bits/s, per the FlexRay frame format: the
    /// transmission-start/frame-start sequences, the byte-coded header,
    /// payload and trailer, and the frame-end sequence.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidConfig`] if `payload_words` exceeds
    /// [`MAX_PAYLOAD_WORDS`] or `bit_rate` is not positive and finite.
    pub fn frame_transmission_time(payload_words: usize, bit_rate: f64) -> Result<f64> {
        if payload_words > MAX_PAYLOAD_WORDS {
            return Err(FlexRayError::InvalidConfig {
                reason: format!(
                    "frame payload of {payload_words} words exceeds the \
                     {MAX_PAYLOAD_WORDS}-word FlexRay maximum"
                ),
            });
        }
        if !(bit_rate > 0.0) || !bit_rate.is_finite() {
            return Err(FlexRayError::InvalidConfig {
                reason: format!("bit rate must be positive and finite, got {bit_rate}"),
            });
        }
        let frame_bytes = HEADER_BYTES + 2.0 * payload_words as f64 + TRAILER_BYTES;
        let frame_bits = TSS_BITS + FSS_BITS + frame_bytes * BITS_PER_CODED_BYTE + FES_BITS;
        Ok(frame_bits / bit_rate)
    }

    /// The static slot length Ψ required to carry frames with
    /// `payload_words` 16-bit payload words at `bit_rate` bits/s: the frame
    /// transmission time plus the action-point offset opening the slot and
    /// the channel-idle delimiter closing it. This is the minislot/static-slot
    /// timing relation that turns a frame payload size into a bus-geometry
    /// design variable.
    ///
    /// # Errors
    ///
    /// As [`FlexRayConfig::frame_transmission_time`].
    pub fn static_slot_length_for_payload(payload_words: usize, bit_rate: f64) -> Result<f64> {
        let frame = Self::frame_transmission_time(payload_words, bit_rate)?;
        Ok((ACTION_POINT_BITS + CHANNEL_IDLE_BITS) / bit_rate + frame)
    }

    /// Returns the configuration with the static slot length Ψ replaced
    /// (validation is deferred to [`FlexRayConfig::validate`], mirroring how
    /// sweep axes construct candidate configurations).
    #[must_use]
    pub fn with_static_slot_length(mut self, static_slot_length: f64) -> Self {
        self.static_slot_length = static_slot_length;
        self
    }

    /// Returns the configuration with Ψ derived from a frame payload size
    /// via [`FlexRayConfig::static_slot_length_for_payload`].
    ///
    /// # Errors
    ///
    /// As [`FlexRayConfig::frame_transmission_time`].
    pub fn with_payload(self, payload_words: usize, bit_rate: f64) -> Result<Self> {
        Ok(self.with_static_slot_length(Self::static_slot_length_for_payload(
            payload_words,
            bit_rate,
        )?))
    }
}

impl Default for FlexRayConfig {
    fn default() -> Self {
        Self::paper_case_study()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_valid() {
        let config = FlexRayConfig::paper_case_study();
        config.validate().unwrap();
        assert!((config.static_segment_length() - 0.002).abs() < 1e-12);
        assert!((config.dynamic_segment_length() - 0.003).abs() < 1e-12);
        assert_eq!(config, FlexRayConfig::default());
    }

    #[test]
    fn slot_start_times() {
        let config = FlexRayConfig::paper_case_study();
        assert_eq!(config.static_slot_start(0).unwrap(), 0.0);
        assert!((config.static_slot_start(5).unwrap() - 0.001).abs() < 1e-12);
        assert!(config.static_slot_start(10).is_err());
        assert!((config.dynamic_segment_start() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn payload_geometry_relations() {
        // The slot length grows linearly with the payload: 2 bytes per word,
        // 10 wire bits per byte.
        let short = FlexRayConfig::static_slot_length_for_payload(4, DEFAULT_BIT_RATE).unwrap();
        let long = FlexRayConfig::static_slot_length_for_payload(16, DEFAULT_BIT_RATE).unwrap();
        assert!(long > short);
        assert!((long - short - 12.0 * 2.0 * 10.0 / DEFAULT_BIT_RATE).abs() < 1e-15);
        // A zero-payload frame still pays the header/trailer/sequence
        // overhead, and the maximum payload stays within the paper's cycle.
        let empty = FlexRayConfig::frame_transmission_time(0, DEFAULT_BIT_RATE).unwrap();
        assert!(empty > 0.0);
        let widest =
            FlexRayConfig::static_slot_length_for_payload(MAX_PAYLOAD_WORDS, DEFAULT_BIT_RATE)
                .unwrap();
        assert!(widest < FlexRayConfig::paper_case_study().cycle_length);
        // Slot length dominates the bare frame time (action point + idle).
        let frame = FlexRayConfig::frame_transmission_time(4, DEFAULT_BIT_RATE).unwrap();
        assert!(short > frame);

        // Builders: a payload-derived configuration validates as long as the
        // static segment still fits the cycle and Ψ stays above the minislot
        // length (a 64-word payload gives Ψ ≈ 139.5 µs on the paper's bus).
        let config = FlexRayConfig::paper_case_study().with_payload(64, DEFAULT_BIT_RATE).unwrap();
        config.validate().unwrap();
        assert!(config.static_slot_length < 0.0002);
        // Too small a payload makes Ψ shorter than the paper's 50 µs
        // minislot, which validation rejects (ψ must stay ≪ Ψ).
        let tiny = FlexRayConfig::paper_case_study().with_payload(8, DEFAULT_BIT_RATE).unwrap();
        assert!(tiny.validate().is_err());
        let stretched = FlexRayConfig::paper_case_study().with_static_slot_length(0.0005);
        assert!(stretched.validate().is_err(), "10 x 0.5 ms slots overflow the 5 ms cycle");
        let fewer_slots = FlexRayConfig {
            static_slot_count: 4,
            ..FlexRayConfig::paper_case_study().with_static_slot_length(0.0005)
        };
        fewer_slots.validate().unwrap();

        // Invalid geometry inputs are rejected.
        assert!(FlexRayConfig::frame_transmission_time(MAX_PAYLOAD_WORDS + 1, DEFAULT_BIT_RATE)
            .is_err());
        assert!(FlexRayConfig::frame_transmission_time(4, 0.0).is_err());
        assert!(FlexRayConfig::static_slot_length_for_payload(4, f64::NAN).is_err());
        assert!(FlexRayConfig::paper_case_study().with_payload(500, DEFAULT_BIT_RATE).is_err());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut config = FlexRayConfig::paper_case_study();
        config.cycle_length = 0.0;
        assert!(config.validate().is_err());

        let mut config = FlexRayConfig::paper_case_study();
        config.static_slot_count = 0;
        assert!(config.validate().is_err());

        let mut config = FlexRayConfig::paper_case_study();
        config.minislot_length = 0.001;
        assert!(config.validate().is_err(), "minislot must be shorter than static slot");

        let mut config = FlexRayConfig::paper_case_study();
        config.cycle_length = 0.004;
        assert!(config.validate().is_err(), "segments exceed the cycle");
    }
}
