//! FlexRay cycle configuration: static (TT) segment and dynamic (ET) segment.

use crate::error::{FlexRayError, Result};

/// Configuration of one FlexRay communication cycle.
///
/// A cycle consists of a *static segment* with `static_slot_count` TDMA slots
/// of equal length Ψ (`static_slot_length`), followed by a *dynamic segment*
/// divided into `minislot_count` minislots of length ψ (`minislot_length`),
/// with typically ψ ≪ Ψ. Symbol window and network idle time are lumped into
/// the remainder of the cycle and not modelled explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlexRayConfig {
    /// Total cycle length in seconds (the paper's case study uses 5 ms).
    pub cycle_length: f64,
    /// Number of static (TT) slots per cycle (the paper uses 10).
    pub static_slot_count: usize,
    /// Length Ψ of each static slot in seconds.
    pub static_slot_length: f64,
    /// Number of minislots in the dynamic segment.
    pub minislot_count: usize,
    /// Length ψ of each minislot in seconds.
    pub minislot_length: f64,
}

impl FlexRayConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidConfig`] if any length or count is
    /// non-positive, if ψ ≥ Ψ, or if the two segments do not fit into the
    /// cycle.
    pub fn validate(&self) -> Result<()> {
        if !(self.cycle_length > 0.0)
            || !(self.static_slot_length > 0.0)
            || !(self.minislot_length > 0.0)
            || !self.cycle_length.is_finite()
        {
            return Err(FlexRayError::InvalidConfig {
                reason: "cycle, slot and minislot lengths must be positive and finite".to_string(),
            });
        }
        if self.static_slot_count == 0 || self.minislot_count == 0 {
            return Err(FlexRayError::InvalidConfig {
                reason: "static slot count and minislot count must be positive".to_string(),
            });
        }
        if self.minislot_length >= self.static_slot_length {
            return Err(FlexRayError::InvalidConfig {
                reason: "a minislot must be shorter than a static slot (psi << Psi)".to_string(),
            });
        }
        let needed = self.static_segment_length() + self.dynamic_segment_length();
        if needed > self.cycle_length + 1e-12 {
            return Err(FlexRayError::InvalidConfig {
                reason: format!(
                    "segments need {needed:.6} s but the cycle is only {:.6} s",
                    self.cycle_length
                ),
            });
        }
        Ok(())
    }

    /// The case-study configuration of the paper's Section V: a 5 ms cycle
    /// with 10 static slots in a 2 ms static segment (Ψ = 0.2 ms) and the
    /// remaining 3 ms as dynamic segment with ψ = 0.05 ms minislots.
    pub fn paper_case_study() -> Self {
        FlexRayConfig {
            cycle_length: 0.005,
            static_slot_count: 10,
            static_slot_length: 0.0002,
            minislot_count: 60,
            minislot_length: 0.00005,
        }
    }

    /// Total length of the static segment (`count · Ψ`).
    pub fn static_segment_length(&self) -> f64 {
        self.static_slot_count as f64 * self.static_slot_length
    }

    /// Total length of the dynamic segment (`count · ψ`).
    pub fn dynamic_segment_length(&self) -> f64 {
        self.minislot_count as f64 * self.minislot_length
    }

    /// Start time of static slot `slot` (0-based) within the cycle.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the slot index is out of
    /// range.
    pub fn static_slot_start(&self, slot: usize) -> Result<f64> {
        if slot >= self.static_slot_count {
            return Err(FlexRayError::InvalidFrame {
                reason: format!(
                    "static slot {slot} does not exist (only {} slots)",
                    self.static_slot_count
                ),
            });
        }
        Ok(slot as f64 * self.static_slot_length)
    }

    /// Start time of the dynamic segment within the cycle.
    pub fn dynamic_segment_start(&self) -> f64 {
        self.static_segment_length()
    }
}

impl Default for FlexRayConfig {
    fn default() -> Self {
        Self::paper_case_study()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_is_valid() {
        let config = FlexRayConfig::paper_case_study();
        config.validate().unwrap();
        assert!((config.static_segment_length() - 0.002).abs() < 1e-12);
        assert!((config.dynamic_segment_length() - 0.003).abs() < 1e-12);
        assert_eq!(config, FlexRayConfig::default());
    }

    #[test]
    fn slot_start_times() {
        let config = FlexRayConfig::paper_case_study();
        assert_eq!(config.static_slot_start(0).unwrap(), 0.0);
        assert!((config.static_slot_start(5).unwrap() - 0.001).abs() < 1e-12);
        assert!(config.static_slot_start(10).is_err());
        assert!((config.dynamic_segment_start() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut config = FlexRayConfig::paper_case_study();
        config.cycle_length = 0.0;
        assert!(config.validate().is_err());

        let mut config = FlexRayConfig::paper_case_study();
        config.static_slot_count = 0;
        assert!(config.validate().is_err());

        let mut config = FlexRayConfig::paper_case_study();
        config.minislot_length = 0.001;
        assert!(config.validate().is_err(), "minislot must be shorter than static slot");

        let mut config = FlexRayConfig::paper_case_study();
        config.cycle_length = 0.004;
        assert!(config.validate().is_err(), "segments exceed the cycle");
    }
}
