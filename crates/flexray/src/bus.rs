//! Cycle-accurate FlexRay bus simulator.
//!
//! The simulator advances one communication cycle at a time. In every cycle
//! the static (TT) slots fire in TDMA order — a slot either carries the one
//! frame assigned to it (if a payload was queued before the slot starts) or
//! is wasted — and the dynamic (ET) segment then serves pending
//! dynamic-segment frames in frame-identifier order, each consuming its
//! number of minislots, until the minislot budget of the cycle is exhausted.
//! Frames that do not fit carry over to the next cycle, which is what
//! produces the time-varying ET latency the paper contrasts with the
//! deterministic TT latency.
//!
//! A seeded [`FaultModel`] can be installed with
//! [`FlexRayBus::set_fault_model`]: transmission attempts are then routed
//! through a deterministic drop/burst/corruption layer and the dynamic
//! segment can carry background contention — see [`crate::fault`] for the
//! exact RNG draw order. Without a fault model the bus consumes no
//! randomness and behaves bit-identically to the nominal simulator.

use crate::config::FlexRayConfig;
use crate::error::{FlexRayError, Result};
use crate::fault::FaultModel;
use crate::frame::{Frame, Segment, Transmission};
use crate::rng::SimRng;
use std::collections::BTreeMap;

/// A queued, not yet transmitted payload.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingTransmission {
    frame_id: u32,
    queued_at: f64,
}

/// Counters describing bus usage, updated as the simulation advances.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BusStatistics {
    /// Number of cycles simulated so far.
    pub cycles: u64,
    /// Static-slot transmissions completed.
    pub static_transmissions: u64,
    /// Static slots that went unused (no payload queued at the slot start) —
    /// the entire slot of length Ψ is wasted, as the paper notes.
    pub wasted_static_slots: u64,
    /// Dynamic-segment transmissions completed.
    pub dynamic_transmissions: u64,
    /// Transmissions that had to be deferred to a later cycle because the
    /// dynamic segment ran out of minislots.
    pub deferred_dynamic_transmissions: u64,
    /// Transmission attempts lost to a (possibly burst-state) drop of the
    /// installed [`FaultModel`]. The slot/minislots were still consumed.
    pub dropped_frames: u64,
    /// Transmission attempts whose payload arrived corrupted; corruption is
    /// detected and the payload discarded, so these are losses too.
    pub corrupted_frames: u64,
    /// Minislots occupied by background contention traffic in the dynamic
    /// segment (only with [`FaultModel::dynamic_contention`]).
    pub background_minislots: u64,
}

impl BusStatistics {
    /// Total transmission attempts lost to the fault layer (drops plus
    /// detected corruptions).
    pub fn lost_frames(&self) -> u64 {
        self.dropped_frames + self.corrupted_frames
    }
}

/// The FlexRay bus simulator.
#[derive(Debug, Clone)]
pub struct FlexRayBus {
    config: FlexRayConfig,
    frames: BTreeMap<u32, Frame>,
    pending: Vec<PendingTransmission>,
    log: Vec<Transmission>,
    statistics: BusStatistics,
    completed_cycles: u64,
    /// Installed fault model; `None` = nominal bus, zero RNG consumption.
    fault: Option<FaultModel>,
    /// The fault layer's RNG stream (reseeded from the model on install and
    /// on [`FlexRayBus::reset`]).
    fault_rng: SimRng,
    /// Current Gilbert–Elliott channel state (`true` = bad/bursty).
    burst_bad: bool,
    /// Per-frame lost-transmission counters, filled at registration; linear
    /// search keeps the hot path allocation- and hash-free (fleets register
    /// a handful of frames).
    frame_losses: Vec<(u32, u64)>,
    /// Whether completed transmissions are appended to the log. Streaming
    /// campaigns disable this so a long run stays O(1) in memory.
    logging: bool,
    /// Reusable scratch for the dynamic-segment arbitration order.
    dynamic_scratch: Vec<PendingTransmission>,
}

impl FlexRayBus {
    /// Creates a bus with the given cycle configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: FlexRayConfig) -> Result<Self> {
        config.validate()?;
        Ok(FlexRayBus {
            config,
            frames: BTreeMap::new(),
            pending: Vec::new(),
            log: Vec::new(),
            statistics: BusStatistics::default(),
            completed_cycles: 0,
            fault: None,
            fault_rng: SimRng::seeded(0),
            burst_bad: false,
            frame_losses: Vec::new(),
            logging: true,
            dynamic_scratch: Vec::new(),
        })
    }

    /// The bus configuration.
    pub fn config(&self) -> &FlexRayConfig {
        &self.config
    }

    /// Current simulation time (start of the next cycle to simulate).
    pub fn time(&self) -> f64 {
        self.completed_cycles as f64 * self.config.cycle_length
    }

    /// Usage counters accumulated so far.
    pub fn statistics(&self) -> BusStatistics {
        self.statistics
    }

    /// All completed transmissions in completion order (empty while logging
    /// is disabled — see [`FlexRayBus::set_logging`]).
    pub fn transmissions(&self) -> &[Transmission] {
        &self.log
    }

    /// Installs (or removes, with `None`) the fault model. The fault RNG is
    /// reseeded from the model's seed, so installing the same model twice
    /// replays the same fault sequence.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidConfig`] if any model probability is
    /// outside `[0, 1]`.
    pub fn set_fault_model(&mut self, model: Option<FaultModel>) -> Result<()> {
        if let Some(model) = &model {
            model.validate()?;
        }
        self.fault = model;
        self.reseed_faults();
        Ok(())
    }

    /// The currently installed fault model, if any.
    pub fn fault_model(&self) -> Option<FaultModel> {
        self.fault
    }

    /// Enables or disables the transmission log. Disabling keeps long runs
    /// O(1) in memory (the counters still accumulate); the log contents are
    /// unchanged until the next completed transmission or reset.
    pub fn set_logging(&mut self, logging: bool) {
        self.logging = logging;
    }

    /// Whether completed transmissions are appended to the log.
    pub fn logging(&self) -> bool {
        self.logging
    }

    /// Number of transmission attempts of `frame_id` lost to the fault layer
    /// (drops plus detected corruptions) since the last reset.
    pub fn losses_of(&self, frame_id: u32) -> u64 {
        self.frame_losses
            .iter()
            .find(|(id, _)| *id == frame_id)
            .map(|(_, losses)| *losses)
            .unwrap_or(0)
    }

    /// Registers a frame on the bus.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the identifier is already
    /// registered, the frame references a non-existent static slot, the slot
    /// is already owned by another frame, or the frame needs more minislots
    /// than the dynamic segment offers.
    pub fn register_frame(&mut self, frame: Frame) -> Result<()> {
        if self.frames.contains_key(&frame.id) {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("frame id {} is already registered", frame.id),
            });
        }
        if frame.dynamic_minislots > self.config.minislot_count {
            return Err(FlexRayError::InvalidFrame {
                reason: format!(
                    "frame {} needs {} minislots but the dynamic segment has only {}",
                    frame.id, frame.dynamic_minislots, self.config.minislot_count
                ),
            });
        }
        if let Segment::Static { slot } = frame.segment {
            self.validate_static_assignment(frame.id, slot)?;
        }
        self.frame_losses.push((frame.id, 0));
        self.frames.insert(frame.id, frame);
        Ok(())
    }

    fn validate_static_assignment(&self, frame_id: u32, slot: usize) -> Result<()> {
        self.config.static_slot_start(slot)?;
        if let Some(owner) = self
            .frames
            .values()
            .find(|f| f.id != frame_id && f.segment == Segment::Static { slot })
        {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("static slot {slot} is already owned by frame {}", owner.id),
            });
        }
        Ok(())
    }

    /// Moves a frame between the static and dynamic segments — the bus-level
    /// primitive behind the paper's dynamic resource-allocation scheme
    /// (Figure 1): a control signal requests a TT slot during a transient and
    /// relinquishes it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the frame is unknown or the
    /// requested static slot is invalid or occupied.
    pub fn reassign_frame(&mut self, frame_id: u32, segment: Segment) -> Result<()> {
        if !self.frames.contains_key(&frame_id) {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("frame id {frame_id} is not registered"),
            });
        }
        if let Segment::Static { slot } = segment {
            self.validate_static_assignment(frame_id, slot)?;
        }
        if let Some(frame) = self.frames.get_mut(&frame_id) {
            frame.segment = segment;
        }
        Ok(())
    }

    /// Returns the frame registered under `frame_id`, if any.
    pub fn frame(&self, frame_id: u32) -> Option<&Frame> {
        self.frames.get(&frame_id)
    }

    /// Queues a payload of `frame_id` for transmission at time `queued_at`.
    ///
    /// Earlier queued payloads of the same frame that are still pending are
    /// replaced (a control signal always transmits its freshest value).
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the frame is unknown.
    pub fn queue_message(&mut self, frame_id: u32, queued_at: f64) -> Result<()> {
        if !self.frames.contains_key(&frame_id) {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("frame id {frame_id} is not registered"),
            });
        }
        self.pending.retain(|p| p.frame_id != frame_id);
        self.pending.push(PendingTransmission { frame_id, queued_at });
        Ok(())
    }

    /// Routes one transmission attempt through the fault layer. Returns
    /// `true` if the payload arrives intact; losses bump the statistics and
    /// the per-frame counter. See [`crate::fault`] for the draw order.
    fn transmission_survives(&mut self, frame_id: u32) -> bool {
        let Some(model) = self.fault else {
            return true;
        };
        if let Some(burst) = model.burst {
            let transition = if self.burst_bad {
                burst.recover_probability
            } else {
                burst.degrade_probability
            };
            if self.fault_rng.next_unit() < transition {
                self.burst_bad = !self.burst_bad;
            }
        }
        let drop_probability = match (model.burst, self.burst_bad) {
            (Some(burst), true) => burst.bad_drop_probability,
            _ => model.drop_probability,
        };
        if self.fault_rng.next_unit() < drop_probability {
            self.statistics.dropped_frames += 1;
            self.record_loss(frame_id);
            return false;
        }
        if self.fault_rng.next_unit() < model.corruption_probability {
            self.statistics.corrupted_frames += 1;
            self.record_loss(frame_id);
            return false;
        }
        true
    }

    fn record_loss(&mut self, frame_id: u32) {
        if let Some(entry) = self.frame_losses.iter_mut().find(|(id, _)| *id == frame_id) {
            entry.1 += 1;
        }
    }

    /// Simulates one full communication cycle; completed transmissions go to
    /// the log (when logging) and to `out` (when given). Allocation-free:
    /// the arbitration order lives in a reusable scratch buffer.
    fn cycle_into(&mut self, mut out: Option<&mut Vec<Transmission>>) {
        let cycle_start = self.time();

        // Static (TT) segment: each slot carries its owner's payload if one
        // was queued before the slot begins. A lost payload still consumed
        // its slot (the wire was busy), so the TDMA timetable is unaffected.
        for slot in 0..self.config.static_slot_count {
            let slot_start = cycle_start
                + self.config.static_slot_start(slot).expect("slot index within configured range");
            let owner = self
                .frames
                .values()
                .find(|f| f.segment == Segment::Static { slot })
                .map(|f| f.id);
            let Some(owner_id) = owner else {
                continue;
            };
            let ready = self
                .pending
                .iter()
                .position(|p| p.frame_id == owner_id && p.queued_at <= slot_start);
            match ready {
                Some(index) => {
                    let request = self.pending.remove(index);
                    if self.transmission_survives(owner_id) {
                        let tx = Transmission {
                            frame_id: owner_id,
                            queued_at: request.queued_at,
                            completed_at: slot_start + self.config.static_slot_length,
                            used_static_slot: true,
                        };
                        self.statistics.static_transmissions += 1;
                        if self.logging {
                            self.log.push(tx);
                        }
                        if let Some(sink) = out.as_deref_mut() {
                            sink.push(tx);
                        }
                    }
                }
                None => {
                    self.statistics.wasted_static_slots += 1;
                }
            }
        }

        // Dynamic (ET) segment: background contention (if modelled) occupies
        // the head of the minislot budget, then pending dynamic frames
        // arbitrate in identifier order over what is left.
        let dynamic_start = cycle_start + self.config.dynamic_segment_start();
        let mut used_minislots = 0usize;
        if let Some(contention) = self.fault.and_then(|m| m.dynamic_contention) {
            let background = self
                .fault_rng
                .next_below(contention.max_background_minislots as u64 + 1)
                as usize;
            used_minislots = background.min(self.config.minislot_count);
            self.statistics.background_minislots += used_minislots as u64;
        }
        let mut ready = std::mem::take(&mut self.dynamic_scratch);
        ready.clear();
        ready.extend(self.pending.iter().copied().filter(|p| {
            p.queued_at <= dynamic_start
                && self.frames.get(&p.frame_id).map(|f| !f.is_static()).unwrap_or(false)
        }));
        ready.sort_by_key(|p| p.frame_id);
        for request in &ready {
            let minislots = self.frames[&request.frame_id].dynamic_minislots;
            if used_minislots + minislots > self.config.minislot_count {
                // Does not fit any more: deferred to the next cycle.
                self.statistics.deferred_dynamic_transmissions += 1;
                continue;
            }
            used_minislots += minislots;
            self.pending.retain(|p| p.frame_id != request.frame_id);
            if self.transmission_survives(request.frame_id) {
                let tx = Transmission {
                    frame_id: request.frame_id,
                    queued_at: request.queued_at,
                    completed_at: dynamic_start
                        + used_minislots as f64 * self.config.minislot_length,
                    used_static_slot: false,
                };
                self.statistics.dynamic_transmissions += 1;
                if self.logging {
                    self.log.push(tx);
                }
                if let Some(sink) = out.as_deref_mut() {
                    sink.push(tx);
                }
            }
        }
        self.dynamic_scratch = ready;

        self.statistics.cycles += 1;
        self.completed_cycles += 1;
    }

    /// Simulates one full communication cycle and returns the transmissions
    /// completed during it.
    pub fn run_cycle(&mut self) -> Vec<Transmission> {
        let mut completed = Vec::new();
        self.cycle_into(Some(&mut completed));
        completed
    }

    /// Simulates one full communication cycle without materialising the
    /// completed transmissions — the allocation-free twin of
    /// [`FlexRayBus::run_cycle`] for streaming workloads (combine with
    /// [`FlexRayBus::set_logging`]`(false)` for O(1) memory).
    pub fn advance_cycle(&mut self) {
        self.cycle_into(None);
    }

    /// Runs full cycles until the simulation time reaches at least `time`,
    /// returning all transmissions completed on the way.
    pub fn run_until(&mut self, time: f64) -> Vec<Transmission> {
        let mut all = Vec::new();
        while self.time() < time {
            self.cycle_into(Some(&mut all));
        }
        all
    }

    /// Runs full cycles until the simulation time reaches at least `time`
    /// without materialising transmissions — the allocation-free twin of
    /// [`FlexRayBus::run_until`].
    pub fn advance_until(&mut self, time: f64) {
        while self.time() < time {
            self.cycle_into(None);
        }
    }

    /// Latencies of all completed transmissions of the given frame.
    pub fn latencies_of(&self, frame_id: u32) -> Vec<f64> {
        self.log.iter().filter(|t| t.frame_id == frame_id).map(Transmission::latency).collect()
    }

    /// Rewinds the bus to time zero: pending payloads, the transmission log,
    /// the usage counters, the cycle counter, the per-frame loss counters
    /// and the fault layer's RNG/burst state are cleared (the fault RNG is
    /// reseeded from the installed model, so a rerun replays the same fault
    /// sequence). Registered frames, the installed fault model and the
    /// logging flag are kept, so a simulation can be rerun without
    /// rebuilding the bus — the primitive behind `CoSimulation::reset` and
    /// the scenario/campaign engines.
    pub fn reset(&mut self) {
        self.pending.clear();
        self.log.clear();
        self.statistics = BusStatistics::default();
        self.completed_cycles = 0;
        for entry in &mut self.frame_losses {
            entry.1 = 0;
        }
        self.reseed_faults();
    }

    /// Rewinds the fault RNG stream to the installed model's seed and the
    /// burst channel to the good state.
    fn reseed_faults(&mut self) {
        self.fault_rng = SimRng::seeded(self.fault.map(|m| m.seed).unwrap_or(0));
        self.burst_bad = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::GilbertElliott;

    fn paper_bus() -> FlexRayBus {
        FlexRayBus::new(FlexRayConfig::paper_case_study()).unwrap()
    }

    #[test]
    fn static_transmission_is_deterministic() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 2, 1).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 1);
        let tx = txs[0];
        assert!(tx.used_static_slot);
        // Slot 2 starts at 0.4 ms and lasts 0.2 ms.
        assert!((tx.completed_at - 0.0006).abs() < 1e-12);
        assert_eq!(bus.statistics().static_transmissions, 1);
        // The other 9 slots are unowned and do not count as wasted? They do not
        // have owners, so they are simply skipped; only owned-but-empty slots
        // count as wasted.
        assert_eq!(bus.statistics().wasted_static_slots, 0);
    }

    #[test]
    fn owned_but_empty_static_slot_is_wasted() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        bus.run_cycle();
        assert_eq!(bus.statistics().wasted_static_slots, 1);
    }

    #[test]
    fn dynamic_arbitration_is_by_frame_id() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::dynamic(10, "low", 4).unwrap()).unwrap();
        bus.register_frame(Frame::dynamic(2, "high", 4).unwrap()).unwrap();
        bus.queue_message(10, 0.0).unwrap();
        bus.queue_message(2, 0.0).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 2);
        // Frame 2 (higher priority) completes before frame 10.
        let high = txs.iter().find(|t| t.frame_id == 2).unwrap();
        let low = txs.iter().find(|t| t.frame_id == 10).unwrap();
        assert!(high.completed_at < low.completed_at);
        // Dynamic segment starts at 2 ms; frame 2 uses 4 minislots of 0.05 ms.
        assert!((high.completed_at - 0.0022).abs() < 1e-9);
    }

    #[test]
    fn dynamic_overflow_defers_to_next_cycle() {
        let mut bus = paper_bus();
        // Two frames of 40 minislots each cannot share one 60-minislot segment.
        bus.register_frame(Frame::dynamic(1, "a", 40).unwrap()).unwrap();
        bus.register_frame(Frame::dynamic(2, "b", 40).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        bus.queue_message(2, 0.0).unwrap();
        let first_cycle = bus.run_cycle();
        assert_eq!(first_cycle.len(), 1);
        assert_eq!(first_cycle[0].frame_id, 1);
        assert_eq!(bus.statistics().deferred_dynamic_transmissions, 1);
        let second_cycle = bus.run_cycle();
        assert_eq!(second_cycle.len(), 1);
        assert_eq!(second_cycle[0].frame_id, 2);
        // The deferred frame's latency exceeds one cycle.
        assert!(second_cycle[0].latency() > bus.config().cycle_length);
    }

    #[test]
    fn message_queued_after_slot_start_waits_for_next_cycle() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        // Queued after slot 0 of the first cycle has already started.
        bus.queue_message(1, 0.0001).unwrap();
        let first = bus.run_cycle();
        assert!(first.is_empty());
        let second = bus.run_cycle();
        assert_eq!(second.len(), 1);
        assert!((second[0].completed_at - (0.005 + 0.0002)).abs() < 1e-12);
    }

    #[test]
    fn reassignment_moves_frame_between_segments() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::dynamic(1, "c1", 2).unwrap()).unwrap();
        bus.reassign_frame(1, Segment::Static { slot: 3 }).unwrap();
        assert!(bus.frame(1).unwrap().is_static());
        bus.reassign_frame(1, Segment::Dynamic).unwrap();
        assert!(!bus.frame(1).unwrap().is_static());
        assert!(bus.reassign_frame(99, Segment::Dynamic).is_err());
    }

    #[test]
    fn duplicate_ids_and_slot_collisions_are_rejected() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "a", 0, 1).unwrap()).unwrap();
        assert!(bus.register_frame(Frame::dynamic(1, "dup", 1).unwrap()).is_err());
        assert!(bus.register_frame(Frame::static_slot(2, "b", 0, 1).unwrap()).is_err());
        assert!(bus.register_frame(Frame::static_slot(3, "c", 99, 1).unwrap()).is_err());
        assert!(bus.register_frame(Frame::dynamic(4, "huge", 1000).unwrap()).is_err());
        assert!(bus.queue_message(99, 0.0).is_err());
    }

    #[test]
    fn requeue_replaces_stale_payload() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::dynamic(1, "c1", 2).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        bus.queue_message(1, 0.001).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 1);
        // The latency is measured from the *fresh* queueing instant.
        assert!((txs[0].queued_at - 0.001).abs() < 1e-12);
    }

    #[test]
    fn reset_rewinds_but_keeps_frames() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        bus.run_cycle();
        assert_eq!(bus.statistics().static_transmissions, 1);
        bus.reset();
        assert_eq!(bus.time(), 0.0);
        assert_eq!(bus.statistics(), BusStatistics::default());
        assert!(bus.transmissions().is_empty());
        assert!(bus.frame(1).is_some(), "registered frames survive a reset");
        // The rerun reproduces the original timeline exactly.
        bus.queue_message(1, 0.0).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 1);
        assert!((txs[0].completed_at - 0.0002).abs() < 1e-12);
    }

    #[test]
    fn run_until_advances_multiple_cycles() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        for k in 0..4 {
            bus.queue_message(1, k as f64 * 0.005).unwrap();
            bus.run_cycle();
        }
        assert_eq!(bus.latencies_of(1).len(), 4);
        let mut bus2 = paper_bus();
        bus2.run_until(0.02);
        assert_eq!(bus2.statistics().cycles, 4);
        assert!((bus2.time() - 0.02).abs() < 1e-12);
    }

    // --- fault layer -----------------------------------------------------

    /// Drives `cycles` cycles with one static and one dynamic frame queued
    /// every cycle, returning the final statistics.
    fn drive(bus: &mut FlexRayBus, cycles: usize) -> BusStatistics {
        for k in 0..cycles {
            let t = k as f64 * bus.config().cycle_length;
            bus.queue_message(1, t).unwrap();
            bus.queue_message(2, t).unwrap();
            bus.advance_cycle();
        }
        bus.statistics()
    }

    fn faulty_bus(model: FaultModel) -> FlexRayBus {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "tt", 0, 1).unwrap()).unwrap();
        bus.register_frame(Frame::dynamic(2, "et", 2).unwrap()).unwrap();
        bus.set_fault_model(Some(model)).unwrap();
        bus
    }

    #[test]
    fn certain_drop_loses_everything_but_keeps_timing() {
        let mut bus = faulty_bus(FaultModel::drops(1, 1.0));
        let stats = drive(&mut bus, 10);
        assert_eq!(stats.static_transmissions, 0);
        assert_eq!(stats.dynamic_transmissions, 0);
        assert_eq!(stats.dropped_frames, 20);
        assert_eq!(stats.lost_frames(), 20);
        // The lost payloads consumed their slots: nothing was "wasted" and
        // nothing deferred — the timetable is unchanged.
        assert_eq!(stats.wasted_static_slots, 0);
        assert_eq!(stats.deferred_dynamic_transmissions, 0);
        assert_eq!(bus.losses_of(1), 10);
        assert_eq!(bus.losses_of(2), 10);
        assert_eq!(bus.losses_of(99), 0);
    }

    #[test]
    fn zero_probability_model_is_nominal() {
        let mut nominal = paper_bus();
        nominal.register_frame(Frame::static_slot(1, "tt", 0, 1).unwrap()).unwrap();
        nominal.register_frame(Frame::dynamic(2, "et", 2).unwrap()).unwrap();
        let nominal_stats = drive(&mut nominal, 10);

        let mut faulty = faulty_bus(FaultModel::drops(7, 0.0));
        let faulty_stats = drive(&mut faulty, 10);
        assert_eq!(nominal_stats, faulty_stats);
        assert_eq!(faulty_stats.lost_frames(), 0);
    }

    #[test]
    fn corruption_is_counted_separately_from_drops() {
        let mut bus = faulty_bus(FaultModel::drops(3, 0.0).with_corruption(1.0));
        let stats = drive(&mut bus, 5);
        assert_eq!(stats.corrupted_frames, 10);
        assert_eq!(stats.dropped_frames, 0);
        assert_eq!(stats.lost_frames(), 10);
        assert_eq!(stats.static_transmissions, 0);
        assert_eq!(stats.dynamic_transmissions, 0);
    }

    #[test]
    fn fault_sequence_is_seed_deterministic() {
        let model = FaultModel::drops(42, 0.3).with_corruption(0.1).with_burst(GilbertElliott {
            degrade_probability: 0.1,
            recover_probability: 0.4,
            bad_drop_probability: 0.9,
        });
        let mut a = faulty_bus(model);
        let mut b = faulty_bus(model);
        assert_eq!(drive(&mut a, 50), drive(&mut b, 50));

        let mut other_seed = faulty_bus(FaultModel { seed: 43, ..model });
        assert_ne!(drive(&mut other_seed, 50).lost_frames(), a.statistics().lost_frames());
    }

    #[test]
    fn reset_replays_the_fault_sequence() {
        let model = FaultModel::drops(11, 0.4).with_burst(GilbertElliott {
            degrade_probability: 0.2,
            recover_probability: 0.3,
            bad_drop_probability: 0.95,
        });
        let mut bus = faulty_bus(model);
        let first = drive(&mut bus, 40);
        assert!(first.lost_frames() > 0, "p=0.4 over 80 attempts must lose frames");
        bus.reset();
        assert_eq!(bus.statistics(), BusStatistics::default());
        assert_eq!(bus.losses_of(1), 0);
        let second = drive(&mut bus, 40);
        assert_eq!(first, second, "reset must rewind the fault RNG to the seed");
    }

    #[test]
    fn burst_channel_produces_bursty_losses() {
        // Near-certain loss in the bad state, no independent drops: losses
        // only happen inside bursts, and with slow transitions the loss
        // count differs markedly from the independent-drop model at the same
        // average intensity.
        let model = FaultModel::drops(5, 0.0).with_burst(GilbertElliott {
            degrade_probability: 0.05,
            recover_probability: 0.2,
            bad_drop_probability: 1.0,
        });
        let mut bus = faulty_bus(model);
        let stats = drive(&mut bus, 200);
        assert!(stats.dropped_frames > 0, "bursts must produce losses");
        assert!(
            stats.dropped_frames < 400,
            "not every attempt is inside a burst: {}",
            stats.dropped_frames
        );
    }

    #[test]
    fn dynamic_contention_defers_control_traffic() {
        // Background traffic can occupy the whole 60-minislot segment; the
        // 2-minislot control frame then sometimes defers to a later cycle.
        let mut bus = faulty_bus(FaultModel {
            seed: 8,
            ..FaultModel::default()
        }
        .with_dynamic_contention(60));
        let stats = drive(&mut bus, 100);
        assert!(stats.background_minislots > 0);
        assert!(
            stats.deferred_dynamic_transmissions > 0,
            "full-segment background bursts must defer the control frame"
        );
        // Static traffic is untouched by dynamic-segment contention.
        assert_eq!(stats.static_transmissions, 100);
    }

    #[test]
    fn invalid_fault_models_are_rejected_and_not_installed() {
        let mut bus = paper_bus();
        assert!(bus.set_fault_model(Some(FaultModel::drops(0, 2.0))).is_err());
        assert!(bus.fault_model().is_none());
        bus.set_fault_model(Some(FaultModel::drops(1, 0.5))).unwrap();
        assert_eq!(bus.fault_model().unwrap().seed, 1);
        bus.set_fault_model(None).unwrap();
        assert!(bus.fault_model().is_none());
    }

    #[test]
    fn advance_cycle_matches_run_cycle_and_logging_can_be_disabled() {
        let mut logged = paper_bus();
        logged.register_frame(Frame::static_slot(1, "tt", 0, 1).unwrap()).unwrap();
        logged.register_frame(Frame::dynamic(2, "et", 2).unwrap()).unwrap();
        let mut unlogged = logged.clone();
        unlogged.set_logging(false);
        assert!(!unlogged.logging());

        for k in 0..6 {
            let t = k as f64 * 0.005;
            logged.queue_message(1, t).unwrap();
            logged.queue_message(2, t).unwrap();
            logged.run_cycle();
            unlogged.queue_message(1, t).unwrap();
            unlogged.queue_message(2, t).unwrap();
            unlogged.advance_cycle();
        }
        assert_eq!(logged.statistics(), unlogged.statistics());
        assert_eq!(logged.transmissions().len(), 12);
        assert!(unlogged.transmissions().is_empty(), "logging off: O(1) memory");
        assert_eq!(logged.time(), unlogged.time());

        // advance_until mirrors run_until.
        let mut a = paper_bus();
        let mut b = paper_bus();
        a.run_until(0.03);
        b.advance_until(0.03);
        assert_eq!(a.statistics(), b.statistics());
    }
}
