//! Cycle-accurate FlexRay bus simulator.
//!
//! The simulator advances one communication cycle at a time. In every cycle
//! the static (TT) slots fire in TDMA order — a slot either carries the one
//! frame assigned to it (if a payload was queued before the slot starts) or
//! is wasted — and the dynamic (ET) segment then serves pending
//! dynamic-segment frames in frame-identifier order, each consuming its
//! number of minislots, until the minislot budget of the cycle is exhausted.
//! Frames that do not fit carry over to the next cycle, which is what
//! produces the time-varying ET latency the paper contrasts with the
//! deterministic TT latency.

use crate::config::FlexRayConfig;
use crate::error::{FlexRayError, Result};
use crate::frame::{Frame, Segment, Transmission};
use std::collections::BTreeMap;

/// A queued, not yet transmitted payload.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PendingTransmission {
    frame_id: u32,
    queued_at: f64,
}

/// Counters describing bus usage, updated as the simulation advances.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BusStatistics {
    /// Number of cycles simulated so far.
    pub cycles: u64,
    /// Static-slot transmissions completed.
    pub static_transmissions: u64,
    /// Static slots that went unused (no payload queued at the slot start) —
    /// the entire slot of length Ψ is wasted, as the paper notes.
    pub wasted_static_slots: u64,
    /// Dynamic-segment transmissions completed.
    pub dynamic_transmissions: u64,
    /// Transmissions that had to be deferred to a later cycle because the
    /// dynamic segment ran out of minislots.
    pub deferred_dynamic_transmissions: u64,
}

/// The FlexRay bus simulator.
#[derive(Debug, Clone)]
pub struct FlexRayBus {
    config: FlexRayConfig,
    frames: BTreeMap<u32, Frame>,
    pending: Vec<PendingTransmission>,
    log: Vec<Transmission>,
    statistics: BusStatistics,
    completed_cycles: u64,
}

impl FlexRayBus {
    /// Creates a bus with the given cycle configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidConfig`] if the configuration is
    /// inconsistent.
    pub fn new(config: FlexRayConfig) -> Result<Self> {
        config.validate()?;
        Ok(FlexRayBus {
            config,
            frames: BTreeMap::new(),
            pending: Vec::new(),
            log: Vec::new(),
            statistics: BusStatistics::default(),
            completed_cycles: 0,
        })
    }

    /// The bus configuration.
    pub fn config(&self) -> &FlexRayConfig {
        &self.config
    }

    /// Current simulation time (start of the next cycle to simulate).
    pub fn time(&self) -> f64 {
        self.completed_cycles as f64 * self.config.cycle_length
    }

    /// Usage counters accumulated so far.
    pub fn statistics(&self) -> BusStatistics {
        self.statistics
    }

    /// All completed transmissions in completion order.
    pub fn transmissions(&self) -> &[Transmission] {
        &self.log
    }

    /// Registers a frame on the bus.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the identifier is already
    /// registered, the frame references a non-existent static slot, the slot
    /// is already owned by another frame, or the frame needs more minislots
    /// than the dynamic segment offers.
    pub fn register_frame(&mut self, frame: Frame) -> Result<()> {
        if self.frames.contains_key(&frame.id) {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("frame id {} is already registered", frame.id),
            });
        }
        if frame.dynamic_minislots > self.config.minislot_count {
            return Err(FlexRayError::InvalidFrame {
                reason: format!(
                    "frame {} needs {} minislots but the dynamic segment has only {}",
                    frame.id, frame.dynamic_minislots, self.config.minislot_count
                ),
            });
        }
        if let Segment::Static { slot } = frame.segment {
            self.validate_static_assignment(frame.id, slot)?;
        }
        self.frames.insert(frame.id, frame);
        Ok(())
    }

    fn validate_static_assignment(&self, frame_id: u32, slot: usize) -> Result<()> {
        self.config.static_slot_start(slot)?;
        if let Some(owner) = self
            .frames
            .values()
            .find(|f| f.id != frame_id && f.segment == Segment::Static { slot })
        {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("static slot {slot} is already owned by frame {}", owner.id),
            });
        }
        Ok(())
    }

    /// Moves a frame between the static and dynamic segments — the bus-level
    /// primitive behind the paper's dynamic resource-allocation scheme
    /// (Figure 1): a control signal requests a TT slot during a transient and
    /// relinquishes it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the frame is unknown or the
    /// requested static slot is invalid or occupied.
    pub fn reassign_frame(&mut self, frame_id: u32, segment: Segment) -> Result<()> {
        if !self.frames.contains_key(&frame_id) {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("frame id {frame_id} is not registered"),
            });
        }
        if let Segment::Static { slot } = segment {
            self.validate_static_assignment(frame_id, slot)?;
        }
        if let Some(frame) = self.frames.get_mut(&frame_id) {
            frame.segment = segment;
        }
        Ok(())
    }

    /// Returns the frame registered under `frame_id`, if any.
    pub fn frame(&self, frame_id: u32) -> Option<&Frame> {
        self.frames.get(&frame_id)
    }

    /// Queues a payload of `frame_id` for transmission at time `queued_at`.
    ///
    /// Earlier queued payloads of the same frame that are still pending are
    /// replaced (a control signal always transmits its freshest value).
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if the frame is unknown.
    pub fn queue_message(&mut self, frame_id: u32, queued_at: f64) -> Result<()> {
        if !self.frames.contains_key(&frame_id) {
            return Err(FlexRayError::InvalidFrame {
                reason: format!("frame id {frame_id} is not registered"),
            });
        }
        self.pending.retain(|p| p.frame_id != frame_id);
        self.pending.push(PendingTransmission { frame_id, queued_at });
        Ok(())
    }

    /// Simulates one full communication cycle and returns the transmissions
    /// completed during it.
    pub fn run_cycle(&mut self) -> Vec<Transmission> {
        let cycle_start = self.time();
        let mut completed = Vec::new();

        // Static (TT) segment: each slot carries its owner's payload if one
        // was queued before the slot begins.
        for slot in 0..self.config.static_slot_count {
            let slot_start = cycle_start
                + self.config.static_slot_start(slot).expect("slot index within configured range");
            let owner = self
                .frames
                .values()
                .find(|f| f.segment == Segment::Static { slot })
                .map(|f| f.id);
            let Some(owner_id) = owner else {
                continue;
            };
            let ready = self
                .pending
                .iter()
                .position(|p| p.frame_id == owner_id && p.queued_at <= slot_start);
            match ready {
                Some(index) => {
                    let request = self.pending.remove(index);
                    let tx = Transmission {
                        frame_id: owner_id,
                        queued_at: request.queued_at,
                        completed_at: slot_start + self.config.static_slot_length,
                        used_static_slot: true,
                    };
                    completed.push(tx);
                    self.statistics.static_transmissions += 1;
                }
                None => {
                    self.statistics.wasted_static_slots += 1;
                }
            }
        }

        // Dynamic (ET) segment: pending dynamic frames in identifier order.
        let dynamic_start = cycle_start + self.config.dynamic_segment_start();
        let mut used_minislots = 0usize;
        let mut dynamic_ready: Vec<PendingTransmission> = self
            .pending
            .iter()
            .copied()
            .filter(|p| {
                p.queued_at <= dynamic_start
                    && self.frames.get(&p.frame_id).map(|f| !f.is_static()).unwrap_or(false)
            })
            .collect();
        dynamic_ready.sort_by_key(|p| p.frame_id);
        for request in dynamic_ready {
            let frame = &self.frames[&request.frame_id];
            if used_minislots + frame.dynamic_minislots > self.config.minislot_count {
                // Does not fit any more: deferred to the next cycle.
                self.statistics.deferred_dynamic_transmissions += 1;
                continue;
            }
            used_minislots += frame.dynamic_minislots;
            let tx = Transmission {
                frame_id: request.frame_id,
                queued_at: request.queued_at,
                completed_at: dynamic_start
                    + used_minislots as f64 * self.config.minislot_length,
                used_static_slot: false,
            };
            completed.push(tx);
            self.statistics.dynamic_transmissions += 1;
            self.pending.retain(|p| p.frame_id != request.frame_id);
        }

        self.statistics.cycles += 1;
        self.completed_cycles += 1;
        self.log.extend_from_slice(&completed);
        completed
    }

    /// Runs full cycles until the simulation time reaches at least `time`,
    /// returning all transmissions completed on the way.
    pub fn run_until(&mut self, time: f64) -> Vec<Transmission> {
        let mut all = Vec::new();
        while self.time() < time {
            all.extend(self.run_cycle());
        }
        all
    }

    /// Latencies of all completed transmissions of the given frame.
    pub fn latencies_of(&self, frame_id: u32) -> Vec<f64> {
        self.log.iter().filter(|t| t.frame_id == frame_id).map(Transmission::latency).collect()
    }

    /// Rewinds the bus to time zero: pending payloads, the transmission log,
    /// the usage counters and the cycle counter are cleared. Registered
    /// frames are kept (their current segment assignment included), so a
    /// simulation can be rerun without rebuilding the bus — the primitive
    /// behind `CoSimulation::reset` and the scenario batch engine.
    pub fn reset(&mut self) {
        self.pending.clear();
        self.log.clear();
        self.statistics = BusStatistics::default();
        self.completed_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_bus() -> FlexRayBus {
        FlexRayBus::new(FlexRayConfig::paper_case_study()).unwrap()
    }

    #[test]
    fn static_transmission_is_deterministic() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 2, 1).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 1);
        let tx = txs[0];
        assert!(tx.used_static_slot);
        // Slot 2 starts at 0.4 ms and lasts 0.2 ms.
        assert!((tx.completed_at - 0.0006).abs() < 1e-12);
        assert_eq!(bus.statistics().static_transmissions, 1);
        // The other 9 slots are unowned and do not count as wasted? They do not
        // have owners, so they are simply skipped; only owned-but-empty slots
        // count as wasted.
        assert_eq!(bus.statistics().wasted_static_slots, 0);
    }

    #[test]
    fn owned_but_empty_static_slot_is_wasted() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        bus.run_cycle();
        assert_eq!(bus.statistics().wasted_static_slots, 1);
    }

    #[test]
    fn dynamic_arbitration_is_by_frame_id() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::dynamic(10, "low", 4).unwrap()).unwrap();
        bus.register_frame(Frame::dynamic(2, "high", 4).unwrap()).unwrap();
        bus.queue_message(10, 0.0).unwrap();
        bus.queue_message(2, 0.0).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 2);
        // Frame 2 (higher priority) completes before frame 10.
        let high = txs.iter().find(|t| t.frame_id == 2).unwrap();
        let low = txs.iter().find(|t| t.frame_id == 10).unwrap();
        assert!(high.completed_at < low.completed_at);
        // Dynamic segment starts at 2 ms; frame 2 uses 4 minislots of 0.05 ms.
        assert!((high.completed_at - 0.0022).abs() < 1e-9);
    }

    #[test]
    fn dynamic_overflow_defers_to_next_cycle() {
        let mut bus = paper_bus();
        // Two frames of 40 minislots each cannot share one 60-minislot segment.
        bus.register_frame(Frame::dynamic(1, "a", 40).unwrap()).unwrap();
        bus.register_frame(Frame::dynamic(2, "b", 40).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        bus.queue_message(2, 0.0).unwrap();
        let first_cycle = bus.run_cycle();
        assert_eq!(first_cycle.len(), 1);
        assert_eq!(first_cycle[0].frame_id, 1);
        assert_eq!(bus.statistics().deferred_dynamic_transmissions, 1);
        let second_cycle = bus.run_cycle();
        assert_eq!(second_cycle.len(), 1);
        assert_eq!(second_cycle[0].frame_id, 2);
        // The deferred frame's latency exceeds one cycle.
        assert!(second_cycle[0].latency() > bus.config().cycle_length);
    }

    #[test]
    fn message_queued_after_slot_start_waits_for_next_cycle() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        // Queued after slot 0 of the first cycle has already started.
        bus.queue_message(1, 0.0001).unwrap();
        let first = bus.run_cycle();
        assert!(first.is_empty());
        let second = bus.run_cycle();
        assert_eq!(second.len(), 1);
        assert!((second[0].completed_at - (0.005 + 0.0002)).abs() < 1e-12);
    }

    #[test]
    fn reassignment_moves_frame_between_segments() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::dynamic(1, "c1", 2).unwrap()).unwrap();
        bus.reassign_frame(1, Segment::Static { slot: 3 }).unwrap();
        assert!(bus.frame(1).unwrap().is_static());
        bus.reassign_frame(1, Segment::Dynamic).unwrap();
        assert!(!bus.frame(1).unwrap().is_static());
        assert!(bus.reassign_frame(99, Segment::Dynamic).is_err());
    }

    #[test]
    fn duplicate_ids_and_slot_collisions_are_rejected() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "a", 0, 1).unwrap()).unwrap();
        assert!(bus.register_frame(Frame::dynamic(1, "dup", 1).unwrap()).is_err());
        assert!(bus.register_frame(Frame::static_slot(2, "b", 0, 1).unwrap()).is_err());
        assert!(bus.register_frame(Frame::static_slot(3, "c", 99, 1).unwrap()).is_err());
        assert!(bus.register_frame(Frame::dynamic(4, "huge", 1000).unwrap()).is_err());
        assert!(bus.queue_message(99, 0.0).is_err());
    }

    #[test]
    fn requeue_replaces_stale_payload() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::dynamic(1, "c1", 2).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        bus.queue_message(1, 0.001).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 1);
        // The latency is measured from the *fresh* queueing instant.
        assert!((txs[0].queued_at - 0.001).abs() < 1e-12);
    }

    #[test]
    fn reset_rewinds_but_keeps_frames() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        bus.queue_message(1, 0.0).unwrap();
        bus.run_cycle();
        assert_eq!(bus.statistics().static_transmissions, 1);
        bus.reset();
        assert_eq!(bus.time(), 0.0);
        assert_eq!(bus.statistics(), BusStatistics::default());
        assert!(bus.transmissions().is_empty());
        assert!(bus.frame(1).is_some(), "registered frames survive a reset");
        // The rerun reproduces the original timeline exactly.
        bus.queue_message(1, 0.0).unwrap();
        let txs = bus.run_cycle();
        assert_eq!(txs.len(), 1);
        assert!((txs[0].completed_at - 0.0002).abs() < 1e-12);
    }

    #[test]
    fn run_until_advances_multiple_cycles() {
        let mut bus = paper_bus();
        bus.register_frame(Frame::static_slot(1, "c1", 0, 1).unwrap()).unwrap();
        for k in 0..4 {
            bus.queue_message(1, k as f64 * 0.005).unwrap();
            bus.run_cycle();
        }
        assert_eq!(bus.latencies_of(1).len(), 4);
        let mut bus2 = paper_bus();
        bus2.run_until(0.02);
        assert_eq!(bus2.statistics().cycles, 4);
        assert!((bus2.time() - 0.02).abs() < 1e-12);
    }
}
