//! Frames and transmission requests.

use crate::error::{FlexRayError, Result};

/// Where a frame is transmitted within the FlexRay cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Time-triggered transmission in the given static slot (0-based).
    Static {
        /// Index of the owned static slot.
        slot: usize,
    },
    /// Event-triggered transmission in the dynamic segment, arbitrated by
    /// frame identifier (lower identifier = higher priority).
    Dynamic,
}

/// A frame definition registered on the bus.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Frame identifier; doubles as the dynamic-segment priority (lower is
    /// higher priority), mirroring FlexRay's minislot counting scheme.
    pub id: u32,
    /// Human-readable name of the signal carried by this frame.
    pub name: String,
    /// Number of minislots one transmission of this frame occupies in the
    /// dynamic segment (a static transmission always occupies exactly its
    /// slot).
    pub dynamic_minislots: usize,
    /// Segment this frame is (currently) assigned to.
    pub segment: Segment,
}

impl Frame {
    /// Creates a dynamic-segment frame.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if `dynamic_minislots` is zero.
    pub fn dynamic(id: u32, name: impl Into<String>, dynamic_minislots: usize) -> Result<Self> {
        if dynamic_minislots == 0 {
            return Err(FlexRayError::InvalidFrame {
                reason: "a dynamic frame must occupy at least one minislot".to_string(),
            });
        }
        Ok(Frame { id, name: name.into(), dynamic_minislots, segment: Segment::Dynamic })
    }

    /// Creates a static-slot frame.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidFrame`] if `dynamic_minislots` is zero
    /// (the value is still needed in case the frame is later moved to the
    /// dynamic segment by the dynamic resource-allocation scheme).
    pub fn static_slot(
        id: u32,
        name: impl Into<String>,
        slot: usize,
        dynamic_minislots: usize,
    ) -> Result<Self> {
        if dynamic_minislots == 0 {
            return Err(FlexRayError::InvalidFrame {
                reason: "a frame must occupy at least one minislot".to_string(),
            });
        }
        Ok(Frame {
            id,
            name: name.into(),
            dynamic_minislots,
            segment: Segment::Static { slot },
        })
    }

    /// Returns `true` if the frame currently uses a static (TT) slot.
    pub fn is_static(&self) -> bool {
        matches!(self.segment, Segment::Static { .. })
    }
}

/// A completed transmission, as recorded by the bus simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transmission {
    /// Identifier of the transmitted frame.
    pub frame_id: u32,
    /// Time at which the payload was queued at the sending controller.
    pub queued_at: f64,
    /// Time at which the transmission completed on the bus.
    pub completed_at: f64,
    /// Whether the transmission used a static slot.
    pub used_static_slot: bool,
}

impl Transmission {
    /// End-to-end communication latency (queueing + transmission).
    pub fn latency(&self) -> f64 {
        self.completed_at - self.queued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_constructors() {
        let dynamic = Frame::dynamic(7, "steering torque", 2).unwrap();
        assert!(!dynamic.is_static());
        assert_eq!(dynamic.dynamic_minislots, 2);
        let fixed = Frame::static_slot(3, "brake demand", 1, 2).unwrap();
        assert!(fixed.is_static());
        assert!(Frame::dynamic(7, "x", 0).is_err());
        assert!(Frame::static_slot(7, "x", 0, 0).is_err());
    }

    #[test]
    fn transmission_latency() {
        let tx = Transmission {
            frame_id: 1,
            queued_at: 0.010,
            completed_at: 0.0145,
            used_static_slot: false,
        };
        assert!((tx.latency() - 0.0045).abs() < 1e-12);
    }
}
