//! Seeded, deterministic fault model for the FlexRay bus.
//!
//! Nominal bus behaviour validates the paper's designs under ideal
//! conditions; the fault model injects the non-ideal ones a real automotive
//! network exhibits — independent frame drops, Gilbert–Elliott burst losses,
//! detected payload corruption, and a contended dynamic segment occupied by
//! background traffic — all driven by one [`crate::SimRng`] stream seeded
//! from [`FaultModel::seed`], so an identically configured bus replays its
//! fault sequence bit for bit.
//!
//! # Draw order (the contract replays depend on)
//!
//! Per cycle, the fault RNG is consumed in exactly this order:
//!
//! 1. For every *static-slot transmission attempt* in slot order (a slot
//!    whose owner has a payload queued in time): the burst-channel
//!    transition draw (only when [`FaultModel::burst`] is configured), then
//!    the drop draw, then — only if not dropped — the corruption draw.
//! 2. One background-contention draw at the start of the dynamic segment
//!    (only when [`FaultModel::dynamic_contention`] is configured).
//! 3. For every *dynamic transmission attempt* in arbitration order that
//!    fits the remaining minislot budget: the same
//!    transition/drop/corruption sequence as in 1.
//!
//! Lost frames (dropped or corrupted) still consume their static slot or
//! dynamic minislots — the wire was occupied; the receiver just never got a
//! valid payload — so the *timing* of every other frame is unchanged and the
//! effect of a loss is purely a missing command at the actuator.

use crate::error::{FlexRayError, Result};

/// Two-state Gilbert–Elliott burst-loss channel.
///
/// The channel is in a *good* or *bad* state; at every transmission attempt
/// it first transitions (good→bad with [`GilbertElliott::degrade_probability`],
/// bad→good with [`GilbertElliott::recover_probability`]), then the attempt
/// is dropped with the state's drop probability — the bus-wide
/// [`FaultModel::drop_probability`] in the good state,
/// [`GilbertElliott::bad_drop_probability`] in the bad state. Small
/// transition probabilities with a large bad-state drop probability produce
/// the bursty loss pattern (EMI near the harness, a babbling node) that
/// independent drops cannot model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of a good→bad transition per transmission attempt.
    pub degrade_probability: f64,
    /// Probability of a bad→good transition per transmission attempt.
    pub recover_probability: f64,
    /// Drop probability while the channel is in the bad state (replaces the
    /// model's base drop probability there).
    pub bad_drop_probability: f64,
}

/// Background traffic contending for the dynamic segment.
///
/// Models other (non-control) ECUs transmitting in the dynamic segment: at
/// the start of every dynamic segment a uniform draw in
/// `0..=max_background_minislots` decides how many minislots background
/// frames occupy before the control frames arbitrate — the fair-sharing view
/// of a contended resource (cf. the dslab throughput-sharing idiom): the
/// control traffic gets whatever budget the background load leaves over,
/// which stretches ET latency and forces deferrals exactly like a real
/// loaded bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicContention {
    /// Largest number of minislots the background traffic may occupy in one
    /// cycle (the draw is uniform over `0..=max_background_minislots`).
    pub max_background_minislots: usize,
}

/// The complete fault configuration of a bus, installed with
/// [`crate::FlexRayBus::set_fault_model`].
///
/// All fields are plain values ([`Copy`]), so a fault model can be stored in
/// scenario descriptions and compared for bit-identity. `FaultModel::default`
/// is the *identity* model (seed 0, all probabilities zero, no burst
/// channel, no contention) — installing it still routes transmissions
/// through the fault path (consuming RNG draws) but never loses a frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultModel {
    /// Seed of the bus's fault RNG stream; [`crate::FlexRayBus::reset`]
    /// rewinds the stream to this seed.
    pub seed: u64,
    /// Independent per-attempt drop probability (good-state drop probability
    /// when a burst channel is configured).
    pub drop_probability: f64,
    /// Probability that a non-dropped frame arrives corrupted. Corruption is
    /// *detected* (CRC) and the payload discarded, so a corrupted frame is a
    /// loss with its own counter.
    pub corruption_probability: f64,
    /// Optional Gilbert–Elliott burst-loss channel.
    pub burst: Option<GilbertElliott>,
    /// Optional background contention for the dynamic segment.
    pub dynamic_contention: Option<DynamicContention>,
}

fn require_probability(value: f64, what: &str) -> Result<()> {
    if !(0.0..=1.0).contains(&value) {
        return Err(FlexRayError::InvalidConfig {
            reason: format!("{what} must be a probability in [0, 1], got {value}"),
        });
    }
    Ok(())
}

impl FaultModel {
    /// A model with independent drops only.
    pub fn drops(seed: u64, drop_probability: f64) -> Self {
        FaultModel { seed, drop_probability, ..FaultModel::default() }
    }

    /// Returns the model with a Gilbert–Elliott burst channel.
    #[must_use]
    pub fn with_burst(mut self, burst: GilbertElliott) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Returns the model with detected payload corruption.
    #[must_use]
    pub fn with_corruption(mut self, corruption_probability: f64) -> Self {
        self.corruption_probability = corruption_probability;
        self
    }

    /// Returns the model with background contention in the dynamic segment.
    #[must_use]
    pub fn with_dynamic_contention(mut self, max_background_minislots: usize) -> Self {
        self.dynamic_contention = Some(DynamicContention { max_background_minislots });
        self
    }

    /// Validates every probability.
    ///
    /// # Errors
    ///
    /// Returns [`FlexRayError::InvalidConfig`] if any probability lies
    /// outside `[0, 1]` (NaN included).
    pub fn validate(&self) -> Result<()> {
        require_probability(self.drop_probability, "drop probability")?;
        require_probability(self.corruption_probability, "corruption probability")?;
        if let Some(burst) = &self.burst {
            require_probability(burst.degrade_probability, "burst degrade probability")?;
            require_probability(burst.recover_probability, "burst recover probability")?;
            require_probability(burst.bad_drop_probability, "burst bad-state drop probability")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_and_validates() {
        let model = FaultModel::drops(9, 0.1)
            .with_corruption(0.05)
            .with_burst(GilbertElliott {
                degrade_probability: 0.02,
                recover_probability: 0.3,
                bad_drop_probability: 0.8,
            })
            .with_dynamic_contention(20);
        assert!(model.validate().is_ok());
        assert_eq!(model.seed, 9);
        assert_eq!(model.dynamic_contention.unwrap().max_background_minislots, 20);

        assert!(FaultModel::drops(0, -0.1).validate().is_err());
        assert!(FaultModel::drops(0, 1.5).validate().is_err());
        assert!(FaultModel::drops(0, f64::NAN).validate().is_err());
        assert!(FaultModel::drops(0, 0.0).with_corruption(2.0).validate().is_err());
        let bad_burst = FaultModel::drops(0, 0.0).with_burst(GilbertElliott {
            degrade_probability: 0.5,
            recover_probability: -1.0,
            bad_drop_probability: 0.5,
        });
        assert!(bad_burst.validate().is_err());
    }

    #[test]
    fn default_is_the_identity_model() {
        let model = FaultModel::default();
        assert!(model.validate().is_ok());
        assert_eq!(model.drop_probability, 0.0);
        assert_eq!(model.corruption_probability, 0.0);
        assert!(model.burst.is_none());
        assert!(model.dynamic_contention.is_none());
    }
}
