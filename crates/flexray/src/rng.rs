//! Hand-rolled deterministic pseudo-random number generator for the fault
//! and campaign layers.
//!
//! The build environment cannot reach a crates registry, so the robustness
//! layer carries its own small generator: a splitmix64 seed expander feeding
//! an xoshiro256**-style stream (Blackman & Vigna). Determinism is the whole
//! point — a [`SimRng`] is a value type whose entire future is its seed, and
//! [`SimRng::derive`] gives the campaign engine a documented, stable scheme
//! for deriving per-scenario seeds from a campaign seed and a scenario
//! *index* (never from worker identity), which is what makes streaming
//! Monte-Carlo campaigns bit-identical for any worker count.

/// Weyl-sequence increment of splitmix64 (the golden-ratio constant).
const SPLITMIX_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// One splitmix64 step: advances `state` and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, deterministic generator (xoshiro256**-style state update,
/// splitmix64 seed expansion).
///
/// Used by the FlexRay fault model for drop/corruption/burst draws and by
/// the co-simulation degradation layer for sensor noise. Not
/// cryptographically secure — it exists for reproducible simulation only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed. The four words of state are
    /// expanded with splitmix64, so nearby seeds yield uncorrelated streams
    /// (and the all-zero state cannot occur).
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut state);
        }
        if s == [0; 4] {
            // Unreachable for splitmix64 outputs, kept as a hard guarantee:
            // xoshiro must never run on the all-zero state.
            s[0] = SPLITMIX_GAMMA;
        }
        SimRng { s }
    }

    /// The documented seed-derivation scheme of the campaign layer: mixes a
    /// base seed with a stream/scenario `index` into a new independent seed.
    ///
    /// `derive(campaign_seed, scenario_index)` is a pure function of its two
    /// arguments — per-scenario randomness therefore depends only on the
    /// campaign seed and the scenario's position in the campaign, never on
    /// which worker thread happens to execute it.
    pub fn derive(seed: u64, index: u64) -> u64 {
        let mut state = seed ^ index.wrapping_mul(0x2545_f491_4f6c_dd1d);
        // Two rounds separate (seed, index) pairs that differ in few bits.
        let first = splitmix64(&mut state);
        state ^= first;
        splitmix64(&mut state)
    }

    /// Next raw 64-bit output (xoshiro256** scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[-1, 1)`.
    pub fn next_signed_unit(&mut self) -> f64 {
        2.0 * self.next_unit() - 1.0
    }

    /// Uniform draw in `{0, 1, …, n-1}`; returns 0 when `n` is 0.
    ///
    /// Plain modulo reduction: the bias is below 2⁻⁵³ for the small ranges
    /// the fault model draws (minislot counts), and — unlike rejection
    /// sampling — it consumes exactly one output per call, which keeps the
    /// draw sequence documentable.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(42);
        let mut b = SimRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_draws_stay_in_range_and_cover_it() {
        let mut rng = SimRng::seeded(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let u = rng.next_unit();
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
        }
        assert!(min < 0.01 && max > 0.99, "10k draws must span [0,1): {min} {max}");
        let mut signed_min = 1.0f64;
        for _ in 0..1_000 {
            let s = rng.next_signed_unit();
            assert!((-1.0..1.0).contains(&s));
            signed_min = signed_min.min(s);
        }
        assert!(signed_min < 0.0, "signed draws must reach negative values");
    }

    #[test]
    fn bounded_draws() {
        let mut rng = SimRng::seeded(3);
        assert_eq!(rng.next_below(0), 0);
        assert_eq!(rng.next_below(1), 0);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 draws must hit every residue of 5");
    }

    #[test]
    fn derive_is_pure_and_index_sensitive() {
        assert_eq!(SimRng::derive(99, 5), SimRng::derive(99, 5));
        assert_ne!(SimRng::derive(99, 5), SimRng::derive(99, 6));
        assert_ne!(SimRng::derive(99, 5), SimRng::derive(100, 5));
        // Derived seeds feed independent streams.
        let mut a = SimRng::seeded(SimRng::derive(99, 0));
        let mut b = SimRng::seeded(SimRng::derive(99, 1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = SimRng::seeded(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }
}
