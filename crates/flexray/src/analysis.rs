//! Worst-case communication latency analysis for both segments.
//!
//! The TT latency is trivially bounded by one cycle plus the slot length
//! (the payload may just miss its slot). For the dynamic segment a
//! conservative bound in the spirit of Pop et al., *Timing analysis of the
//! FlexRay communication protocol*, is computed: in every cycle all
//! higher-priority dynamic frames may transmit before the frame under
//! analysis, so the number of cycles needed is bounded by how many cycles it
//! takes to drain that interference plus the frame itself through the
//! per-cycle minislot budget.

use crate::config::FlexRayConfig;
use crate::error::{FlexRayError, Result};
use crate::frame::{Frame, Segment};

/// Worst-case latency of a static-slot (TT) frame: the payload arrives just
/// after its slot started, waits for the next cycle and is then transmitted
/// within its slot.
pub fn worst_case_static_latency(config: &FlexRayConfig, slot: usize) -> Result<f64> {
    let slot_start = config.static_slot_start(slot)?;
    Ok(config.cycle_length + slot_start + config.static_slot_length)
}

/// Conservative worst-case latency of a dynamic-segment (ET) frame.
///
/// `frames` must contain the frame under analysis (`frame_id`); every other
/// dynamic frame with a lower identifier is treated as interfering in every
/// cycle, and static frames are irrelevant (their bandwidth is already
/// reserved by the static segment).
///
/// # Errors
///
/// * [`FlexRayError::InvalidFrame`] if `frame_id` is not in `frames`, is not
///   a dynamic frame, or needs more minislots than one dynamic segment
///   offers.
/// * [`FlexRayError::InvalidConfig`] if the configuration is inconsistent.
pub fn worst_case_dynamic_latency(
    config: &FlexRayConfig,
    frames: &[Frame],
    frame_id: u32,
) -> Result<f64> {
    config.validate()?;
    let target = frames.iter().find(|f| f.id == frame_id).ok_or_else(|| {
        FlexRayError::InvalidFrame { reason: format!("frame {frame_id} not found") }
    })?;
    if target.is_static() {
        return Err(FlexRayError::InvalidFrame {
            reason: format!("frame {frame_id} is assigned to a static slot"),
        });
    }
    if target.dynamic_minislots > config.minislot_count {
        return Err(FlexRayError::InvalidFrame {
            reason: format!(
                "frame {frame_id} needs {} minislots but only {} exist per cycle",
                target.dynamic_minislots, config.minislot_count
            ),
        });
    }
    // Higher-priority (lower id) dynamic interference per cycle, capped at the
    // per-cycle budget: anything beyond that simply pushes the analysis to
    // one more full cycle.
    let interference: usize = frames
        .iter()
        .filter(|f| f.id < frame_id && matches!(f.segment, Segment::Dynamic))
        .map(|f| f.dynamic_minislots)
        .sum();
    let budget = config.minislot_count;
    // Number of whole cycles needed to drain the interference plus the frame
    // itself, assuming the interference repeats every cycle. If the
    // interference alone fills the budget the frame can starve; report the
    // pessimistic bound of the full hyper-period of repetitions by treating
    // it as unschedulable-in-one-cycle and charging one extra cycle per
    // budget's worth of interference.
    let per_cycle_free = budget.saturating_sub(interference);
    let cycles_needed = if per_cycle_free >= target.dynamic_minislots {
        1
    } else if per_cycle_free == 0 {
        // The frame can be starved indefinitely by higher-priority traffic;
        // report infinity so callers can flag the configuration.
        return Ok(f64::INFINITY);
    } else {
        target.dynamic_minislots.div_ceil(per_cycle_free)
    };
    // One initial cycle may be lost because the payload arrives after the
    // dynamic segment of the current cycle has started.
    let total_cycles = cycles_needed as f64 + 1.0;
    Ok(total_cycles * config.cycle_length)
}

/// Summary statistics over a set of observed latencies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of observations.
    pub count: usize,
    /// Minimum latency.
    pub min: f64,
    /// Maximum latency.
    pub max: f64,
    /// Mean latency.
    pub mean: f64,
}

impl LatencyStats {
    /// Computes statistics over the given latencies; returns the default
    /// (all-zero) value for an empty slice.
    pub fn from_latencies(latencies: &[f64]) -> Self {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        let min = latencies.iter().copied().fold(f64::INFINITY, f64::min);
        let max = latencies.iter().copied().fold(0.0, f64::max);
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        LatencyStats { count: latencies.len(), min, max, mean }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FlexRayConfig {
        FlexRayConfig::paper_case_study()
    }

    #[test]
    fn static_latency_bound() {
        let bound = worst_case_static_latency(&config(), 0).unwrap();
        assert!((bound - (0.005 + 0.0002)).abs() < 1e-12);
        let later_slot = worst_case_static_latency(&config(), 9).unwrap();
        assert!(later_slot > bound);
        assert!(worst_case_static_latency(&config(), 10).is_err());
    }

    #[test]
    fn dynamic_latency_without_interference_is_two_cycles() {
        let frames = vec![Frame::dynamic(5, "only", 4).unwrap()];
        let bound = worst_case_dynamic_latency(&config(), &frames, 5).unwrap();
        assert!((bound - 0.010).abs() < 1e-12);
    }

    #[test]
    fn dynamic_latency_grows_with_interference() {
        let frames = vec![
            Frame::dynamic(1, "hp1", 30).unwrap(),
            Frame::dynamic(2, "hp2", 25).unwrap(),
            Frame::dynamic(9, "target", 20).unwrap(),
        ];
        let bound = worst_case_dynamic_latency(&config(), &frames, 9).unwrap();
        // Only 5 free minislots per cycle -> 4 cycles to push 20 minislots, +1.
        assert!((bound - 5.0 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn starvation_is_reported_as_infinite() {
        let frames = vec![
            Frame::dynamic(1, "hp", 60).unwrap(),
            Frame::dynamic(2, "target", 4).unwrap(),
        ];
        let bound = worst_case_dynamic_latency(&config(), &frames, 2).unwrap();
        assert!(bound.is_infinite());
    }

    #[test]
    fn dynamic_latency_validation() {
        let frames = vec![Frame::static_slot(1, "tt", 0, 2).unwrap()];
        assert!(worst_case_dynamic_latency(&config(), &frames, 1).is_err());
        assert!(worst_case_dynamic_latency(&config(), &frames, 99).is_err());
    }

    #[test]
    fn bound_dominates_simulation() {
        use crate::bus::FlexRayBus;
        // Simulate a congested dynamic segment and verify the analytical
        // bound is never exceeded by the observed latencies.
        let frames = vec![
            Frame::dynamic(1, "hp1", 25).unwrap(),
            Frame::dynamic(2, "hp2", 20).unwrap(),
            Frame::dynamic(9, "target", 10).unwrap(),
        ];
        let bound = worst_case_dynamic_latency(&config(), &frames, 9).unwrap();
        let mut bus = FlexRayBus::new(config()).unwrap();
        for frame in &frames {
            bus.register_frame(frame.clone()).unwrap();
        }
        for k in 0..20u32 {
            let t = k as f64 * 0.02;
            for frame in &frames {
                bus.queue_message(frame.id, t).unwrap();
            }
            bus.run_until(t + 0.02);
        }
        let observed = bus.latencies_of(9);
        assert!(!observed.is_empty());
        assert!(observed.iter().all(|&l| l <= bound + 1e-12));
    }

    #[test]
    fn latency_stats() {
        let stats = LatencyStats::from_latencies(&[0.001, 0.003, 0.002]);
        assert_eq!(stats.count, 3);
        assert!((stats.min - 0.001).abs() < 1e-12);
        assert!((stats.max - 0.003).abs() < 1e-12);
        assert!((stats.mean - 0.002).abs() < 1e-12);
        assert_eq!(LatencyStats::from_latencies(&[]), LatencyStats::default());
    }
}
