//! Switched-system analysis: the dwell-time / wait-time relation of
//! Section III.
//!
//! The closed loop evolves with the event-triggered dynamics `A₁` for
//! `k_wait` samples and then switches (once, non-preemptively) to the
//! time-triggered dynamics `A₂`:
//!
//! ```text
//! x₁[k]          = A₁ᵏ·x₀                      (before the switch)
//! x₂[k_wait, k]  = A₂ᵏ·A₁^{k_wait}·x₀          (after the switch)
//! ```
//!
//! The dwell time `k_dw(k_wait)` is how long the application then needs on
//! the TT slot until the plant-state norm is back at or below `E_th`. The
//! paper's central observation is that this map is *not* monotone in
//! `k_wait`.

use crate::delayed::{plant_state_norm, DelayedLtiSystem};
use crate::error::{ControlError, Result};
use crate::response::{norm_trajectory, settling_index};
use cps_linalg::{vec_norm, Matrix};

/// One point of the dwell-time/wait-time characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DwellWaitPoint {
    /// Wait time spent on ET communication before the switch, in seconds.
    pub wait_time: f64,
    /// Wait time in samples.
    pub wait_steps: usize,
    /// Dwell time needed on the TT slot after the switch, in seconds.
    pub dwell_time: f64,
    /// Dwell time in samples.
    pub dwell_steps: usize,
    /// Plant-state norm at the moment of the switch.
    pub norm_at_switch: f64,
}

/// The full characterisation of one application's switching behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct DwellWaitCurve {
    /// Sampled relation, one entry per wait time `0, h, 2h, …`.
    pub points: Vec<DwellWaitPoint>,
    /// Response (settling) time with pure TT communication, ξᵀᵀ, in seconds.
    pub xi_tt: f64,
    /// Response (settling) time with pure ET communication, ξᴱᵀ, in seconds.
    pub xi_et: f64,
    /// Sampling period used for the characterisation.
    pub period: f64,
}

impl DwellWaitCurve {
    /// Maximum dwell time over the whole curve, ξᴹ, in seconds.
    pub fn max_dwell(&self) -> f64 {
        self.points.iter().map(|p| p.dwell_time).fold(0.0, f64::max)
    }

    /// Wait time at which the maximum dwell time occurs, k_p, in seconds.
    pub fn peak_wait(&self) -> f64 {
        self.points
            .iter()
            .max_by(|a, b| a.dwell_time.partial_cmp(&b.dwell_time).expect("finite dwell times"))
            .map(|p| p.wait_time)
            .unwrap_or(0.0)
    }

    /// Returns `true` if the curve is non-monotonic, i.e. the dwell time
    /// strictly increases somewhere before decreasing — the phenomenon the
    /// paper exploits.
    pub fn is_non_monotonic(&self) -> bool {
        let dwell: Vec<f64> = self.points.iter().map(|p| p.dwell_time).collect();
        let rises = dwell.windows(2).any(|w| w[1] > w[0] + 1e-12);
        let falls = dwell.windows(2).any(|w| w[1] < w[0] - 1e-12);
        rises && falls
    }

    /// Total response time ξ(k_wait) = k_wait + k_dw(k_wait) for each sampled
    /// wait time, in seconds.
    pub fn total_response_times(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.wait_time + p.dwell_time).collect()
    }
}

/// Simulates the switched trajectory: `k_switch` samples under `a1`, then the
/// remainder under `a2`; returns the plant-state norms of the whole horizon
/// (length `horizon + 1`, including the initial state).
///
/// # Errors
///
/// * [`ControlError::InvalidModel`] if the matrices have different shapes or
///   the initial state does not match.
pub fn switched_norm_trajectory(
    a1: &Matrix,
    a2: &Matrix,
    initial_state: &[f64],
    plant_order: usize,
    k_switch: usize,
    horizon: usize,
) -> Result<Vec<f64>> {
    if a1.shape() != a2.shape() || !a1.is_square() {
        return Err(ControlError::InvalidModel {
            reason: format!(
                "switched dynamics must share a square shape, got {:?} and {:?}",
                a1.shape(),
                a2.shape()
            ),
        });
    }
    if initial_state.len() != a1.cols() {
        return Err(ControlError::InvalidModel {
            reason: format!(
                "initial state has length {} but the system has {} states",
                initial_state.len(),
                a1.cols()
            ),
        });
    }
    let k_switch = k_switch.min(horizon);
    let mut norms = Vec::with_capacity(horizon + 1);
    let mut state = initial_state.to_vec();
    norms.push(crate::delayed::plant_state_norm(&state, plant_order));
    for k in 0..horizon {
        let dynamics = if k < k_switch { a1 } else { a2 };
        state = dynamics.matvec(&state)?;
        norms.push(crate::delayed::plant_state_norm(&state, plant_order));
    }
    Ok(norms)
}

/// Computes the dwell time (in samples) for a single wait time: the number of
/// additional samples after the switch until the plant-state norm stays at or
/// below `threshold`.
///
/// If the state has already settled during the ET phase and never re-crosses
/// the threshold afterwards, the dwell time is zero (the application never
/// actually needs the slot).
///
/// # Errors
///
/// * Propagates simulation errors.
/// * [`ControlError::HorizonExceeded`] if the switched system does not settle
///   within `horizon` samples.
pub fn dwell_steps(
    a1: &Matrix,
    a2: &Matrix,
    initial_state: &[f64],
    plant_order: usize,
    threshold: f64,
    wait_steps: usize,
    horizon: usize,
) -> Result<usize> {
    if !(threshold > 0.0) {
        return Err(ControlError::InvalidModel {
            reason: format!("threshold must be positive, got {threshold}"),
        });
    }
    let norms =
        switched_norm_trajectory(a1, a2, initial_state, plant_order, wait_steps, horizon)?;
    let settle = settling_index(&norms, threshold)
        .ok_or(ControlError::HorizonExceeded { what: "switched settling", steps: horizon })?;
    Ok(settle.saturating_sub(wait_steps))
}

/// Safety factor applied to the analytical early-exit bounds: stopping is
/// only allowed when the guaranteed tail norm is clearly below the
/// threshold, so floating-point rounding in the simulated trajectory cannot
/// disagree with the proof.
const EARLY_EXIT_SAFETY: f64 = 0.999;

/// Maximum number of matrix powers examined by [`power_norm_bound`] before
/// giving up (the bound then degrades to `∞` and early exit is disabled —
/// results stay exact, only the shortcut is lost).
const POWER_BOUND_MAX_POWERS: usize = 50_000;

/// Upper bound on `sup_{j ≥ 1} ‖Aʲ‖₂` via Frobenius norms of successive
/// powers: powers are multiplied out until one has Frobenius norm below 1;
/// by submultiplicativity every later power is then dominated by an earlier
/// one, so the running maximum is a true supremum bound. Returns `∞` if no
/// contracting power is found within the iteration budget (e.g. an unstable
/// or marginally stable matrix).
///
/// # Errors
///
/// Returns [`ControlError::InvalidModel`] if `a` is not square.
pub fn power_norm_bound(a: &Matrix) -> Result<f64> {
    if !a.is_square() {
        return Err(ControlError::InvalidModel {
            reason: format!("power norm bound needs a square matrix, got {:?}", a.shape()),
        });
    }
    let mut power = Matrix::zeros(a.rows(), a.cols());
    let mut next = Matrix::zeros(a.rows(), a.cols());
    power_norm_bound_into(a, &mut power, &mut next)
}

/// The buffer-reusing core of [`power_norm_bound`]: `power` and `next` are
/// caller-provided `n × n` scratch matrices (their contents are overwritten).
/// Produces exactly the bound of [`power_norm_bound`]; the characterisation
/// workspace pools the scratch per matrix order.
fn power_norm_bound_into(a: &Matrix, power: &mut Matrix, next: &mut Matrix) -> Result<f64> {
    // ρ(A) ≥ 1 means no power ever contracts — skip the power iteration
    // entirely instead of grinding to the cap.
    if let Ok(rho) = cps_linalg::spectral_radius(a) {
        if rho >= 1.0 {
            return Ok(f64::INFINITY);
        }
    }
    power.copy_from(a)?;
    let mut bound = 1.0f64;
    for _ in 0..POWER_BOUND_MAX_POWERS {
        let norm = power.frobenius_norm();
        if !norm.is_finite() {
            return Ok(f64::INFINITY);
        }
        bound = bound.max(norm);
        if norm < 1.0 {
            return Ok(bound);
        }
        power.matmul_into(a, next)?;
        std::mem::swap(power, next);
    }
    Ok(f64::INFINITY)
}

/// The state machinery a [`settle_driver`] run drives: one switched
/// simulation (linear or saturated) exposing its current plant norm, its
/// provable-settling test and one step of its dynamics.
trait SettleSim {
    /// Plant-state norm of the current sample.
    fn plant_norm(&self) -> f64;
    /// Whether the remaining trajectory is provably settled, given that the
    /// mode is fixed to ET (`true`) / TT (`false`) for the rest of the run.
    fn provably_settled(&self, et_mode: bool, threshold: f64) -> bool;
    /// Advances one sampling period (`et_phase` selects the pre-switch
    /// dynamics).
    fn advance(&mut self, et_phase: bool);
}

/// The settle loop shared by every switched simulation: simulate until the
/// trajectory is provably settled (early exit) or the horizon cap is hit,
/// tracking the last threshold violation. Returns the settling index with
/// exactly the semantics of simulating the full horizon and applying
/// [`settling_index`] (`None` = not settled within `horizon`); with
/// `record` set, the visited plant-state norms are appended (the buffer is
/// cleared first, reusing its capacity).
///
/// `k_switch` must already be clamped to `horizon` by the caller (after
/// loading the initial state).
fn settle_driver<S: SettleSim>(
    sim: &mut S,
    threshold: f64,
    k_switch: usize,
    horizon: usize,
    mut record: Option<&mut Vec<f64>>,
) -> Option<usize> {
    if let Some(buffer) = record.as_deref_mut() {
        buffer.clear();
    }
    // The mode is fixed for the rest of the run from `fixed_from` on; only
    // then can a tail bound prove settling.
    let et_fixed = k_switch >= horizon;
    let fixed_from = if et_fixed { 0 } else { k_switch };
    let mut last_above: Option<usize> = None;
    for index in 0..=horizon {
        let norm = sim.plant_norm();
        if let Some(buffer) = record.as_deref_mut() {
            buffer.push(norm);
        }
        if norm > threshold {
            last_above = Some(index);
        } else if index >= fixed_from && sim.provably_settled(et_fixed, threshold) {
            // Every future plant norm is provably ≤ threshold: settled.
            break;
        }
        if index == horizon {
            break;
        }
        sim.advance(index < k_switch);
    }
    match last_above {
        None => Some(0),
        Some(index) if index < horizon => Some(index + 1),
        Some(_) => None,
    }
}

/// Allocation-free switched settling engine: the scratch-buffer machinery of
/// [`StepKernel`](crate::StepKernel) applied to the dwell/wait
/// characterisation, with analytically justified early exit.
///
/// Construction validates the matrix pair once and precomputes the
/// [`power_norm_bound`] of each mode; every subsequent
/// [`SwitchedKernel::settle_steps`] / [`SwitchedKernel::dwell_steps`] call
/// is a bare `matvec_kernel` loop on two pre-allocated state buffers that
/// stops as soon as the remaining trajectory is *provably* settled, instead
/// of simulating a fixed full horizon and scanning backwards. Results are
/// identical to the full-horizon reference path point for point.
#[derive(Debug)]
pub struct SwitchedKernel<'m> {
    a1: &'m Matrix,
    a2: &'m Matrix,
    plant_order: usize,
    /// `sup_{j≥1} ‖A₁ʲ‖` bound for runs that never switch.
    et_bound: f64,
    /// `sup_{j≥1} ‖A₂ʲ‖` bound for the post-switch tail.
    tt_bound: f64,
    z: Vec<f64>,
    z_next: Vec<f64>,
}

impl<'m> SwitchedKernel<'m> {
    /// Validates the switched pair and precomputes the early-exit bounds.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the matrices have different
    /// shapes, are not square, or `plant_order` exceeds the state dimension.
    pub fn new(a1: &'m Matrix, a2: &'m Matrix, plant_order: usize) -> Result<Self> {
        if a1.shape() != a2.shape() || !a1.is_square() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "switched dynamics must share a square shape, got {:?} and {:?}",
                    a1.shape(),
                    a2.shape()
                ),
            });
        }
        if plant_order > a1.cols() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "plant order {} exceeds the state dimension {}",
                    plant_order,
                    a1.cols()
                ),
            });
        }
        let et_bound = power_norm_bound(a1)?;
        let tt_bound = power_norm_bound(a2)?;
        let order = a1.cols();
        Ok(SwitchedKernel {
            a1,
            a2,
            plant_order,
            et_bound,
            tt_bound,
            z: vec![0.0; order],
            z_next: vec![0.0; order],
        })
    }

    /// Settling index of the switched trajectory (`k_switch` samples under
    /// `A₁`, then `A₂`): the first sample from which the plant-state norm
    /// stays at or below `threshold` for good, or `None` if the trajectory
    /// does not settle within `horizon` samples — exactly the semantics of
    /// simulating the full horizon and applying
    /// [`settling_index`](crate::settling_index).
    ///
    /// With `record` set, the plant-state norms visited up to the stopping
    /// point are appended (the buffer is cleared first; its capacity is
    /// reused).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if `initial_state` has the
    /// wrong length or `threshold` is not positive.
    pub fn settle_steps(
        &mut self,
        initial_state: &[f64],
        threshold: f64,
        k_switch: usize,
        horizon: usize,
        record: Option<&mut Vec<f64>>,
    ) -> Result<Option<usize>> {
        self.drive().settle_steps(initial_state, threshold, k_switch, horizon, record)
    }

    /// Dwell time (in samples) for a single wait time, with early exit —
    /// the allocation-free equivalent of the free-function [`dwell_steps`].
    ///
    /// # Errors
    ///
    /// * As [`SwitchedKernel::settle_steps`].
    /// * [`ControlError::HorizonExceeded`] if the switched trajectory does
    ///   not settle within `horizon` samples.
    pub fn dwell_steps(
        &mut self,
        initial_state: &[f64],
        threshold: f64,
        wait_steps: usize,
        horizon: usize,
    ) -> Result<usize> {
        self.drive().dwell_steps(initial_state, threshold, wait_steps, horizon)
    }

    /// The settle-loop view over this kernel's own buffers.
    fn drive(&mut self) -> SwitchedDrive<'m, '_> {
        SwitchedDrive {
            a1: self.a1,
            a2: self.a2,
            plant_order: self.plant_order,
            et_bound: self.et_bound,
            tt_bound: self.tt_bound,
            z: &mut self.z,
            z_next: &mut self.z_next,
        }
    }
}

/// The shared settle-loop state of the linear switched simulation, borrowed
/// either from a [`SwitchedKernel`]'s own buffers or from the
/// [`CharacterizationWorkspace`] pool — one [`SettleSim`] implementation
/// drives both, so the pooled path is bit-identical by construction.
struct SwitchedDrive<'m, 'b> {
    a1: &'m Matrix,
    a2: &'m Matrix,
    plant_order: usize,
    et_bound: f64,
    tt_bound: f64,
    z: &'b mut Vec<f64>,
    z_next: &'b mut Vec<f64>,
}

impl SwitchedDrive<'_, '_> {
    /// The one validation + settle implementation behind
    /// [`SwitchedKernel::settle_steps`] and
    /// [`PooledSwitchedKernel::settle_steps`].
    fn settle_steps(
        &mut self,
        initial_state: &[f64],
        threshold: f64,
        k_switch: usize,
        horizon: usize,
        record: Option<&mut Vec<f64>>,
    ) -> Result<Option<usize>> {
        if initial_state.len() != self.z.len() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "initial state has length {} but the system has {} states",
                    initial_state.len(),
                    self.z.len()
                ),
            });
        }
        if !(threshold > 0.0) {
            return Err(ControlError::InvalidModel {
                reason: format!("threshold must be positive, got {threshold}"),
            });
        }
        self.z.copy_from_slice(initial_state);
        let clamped_switch = k_switch.min(horizon);
        Ok(settle_driver(self, threshold, clamped_switch, horizon, record))
    }

    /// The one dwell implementation behind [`SwitchedKernel::dwell_steps`]
    /// and [`PooledSwitchedKernel::dwell_steps`].
    fn dwell_steps(
        &mut self,
        initial_state: &[f64],
        threshold: f64,
        wait_steps: usize,
        horizon: usize,
    ) -> Result<usize> {
        let settle = self
            .settle_steps(initial_state, threshold, wait_steps, horizon, None)?
            .ok_or(ControlError::HorizonExceeded { what: "switched settling", steps: horizon })?;
        Ok(settle.saturating_sub(wait_steps))
    }
}

impl SettleSim for SwitchedDrive<'_, '_> {
    fn plant_norm(&self) -> f64 {
        plant_state_norm(self.z, self.plant_order)
    }

    fn provably_settled(&self, et_mode: bool, threshold: f64) -> bool {
        let bound = if et_mode { self.et_bound } else { self.tt_bound };
        // Every future plant norm is ≤ bound·‖z‖.
        vec_norm(self.z) * bound <= threshold * EARLY_EXIT_SAFETY
    }

    fn advance(&mut self, et_phase: bool) {
        let dynamics = if et_phase { self.a1 } else { self.a2 };
        dynamics.matvec_kernel(self.z, self.z_next);
        std::mem::swap(self.z, self.z_next);
    }
}

/// Switched-state buffer pair of the workspace pool, keyed by the augmented
/// state order.
#[derive(Debug)]
struct StateScratch {
    z: Vec<f64>,
    z_next: Vec<f64>,
}

/// Power-iteration matrix pair of the workspace pool, keyed by matrix order.
#[derive(Debug)]
struct PowerScratch {
    power: Matrix,
    next: Matrix,
}

/// Saturated-sim buffer bundle of the workspace pool, keyed by
/// `(plant_order, inputs)`.
#[derive(Debug)]
struct SatBuffers {
    /// Plant state and its double buffer.
    x: Vec<f64>,
    x_next: Vec<f64>,
    /// Current (clamped) input and the input applied one period ago.
    u: Vec<f64>,
    u_prev: Vec<f64>,
    /// Augmented state scratch handed to the gain.
    aug: Vec<f64>,
    /// The three matvec partials of the delayed-plant step.
    free: Vec<f64>,
    fresh: Vec<f64>,
    stale: Vec<f64>,
}

impl SatBuffers {
    fn new(plant_order: usize, inputs: usize) -> Self {
        SatBuffers {
            x: vec![0.0; plant_order],
            x_next: vec![0.0; plant_order],
            u: vec![0.0; inputs],
            u_prev: vec![0.0; inputs],
            aug: vec![0.0; plant_order + inputs],
            free: vec![0.0; plant_order],
            fresh: vec![0.0; plant_order],
            stale: vec![0.0; plant_order],
        }
    }

    fn dims(&self) -> (usize, usize) {
        (self.x.len(), self.u.len())
    }
}

/// Per-worker pooled characterisation scratch — the characterisation-side
/// counterpart of [`crate::DesignWorkspace`].
///
/// Every dwell/wait characterisation needs the same machinery: the switched
/// state double-buffers of the settle loop, the matrix pair of the
/// [`power_norm_bound`] precompute, the saturated-sim buffer bundle of the
/// rig model and a recording buffer for the pure-ET norm trajectory. The
/// seed path constructed all of it per application; this pool holds one
/// entry per distinct dimension (fleets mix first- and second-order plants)
/// and a design worker threads it through every characterisation, so a
/// warm worker re-allocates none of the simulation scratch per application —
/// only the materialised curve (and the eigenvalue temporaries of the
/// stability pre-check) remain per-app allocations.
///
/// Every pooled path is the `_with` twin of its allocating reference and
/// bit-identical to it (asserted by the characterisation parity tests).
#[derive(Debug, Default)]
pub struct CharacterizationWorkspace {
    /// Switched-state pairs, keyed by augmented order (linear scan: a pool
    /// holds a handful of entries, a characterisation runs thousands of
    /// kernel steps per lookup).
    states: Vec<StateScratch>,
    /// Power-iteration matrix pairs, keyed by order.
    powers: Vec<PowerScratch>,
    /// Saturated-sim bundles, keyed by `(plant_order, inputs)`.
    saturated: Vec<SatBuffers>,
    /// Recording buffer for pure-ET norm trajectories.
    norms: Vec<f64>,
}

impl CharacterizationWorkspace {
    /// Creates an empty pool; scratch is allocated on first use per
    /// dimension.
    pub fn new() -> Self {
        CharacterizationWorkspace::default()
    }

    /// Number of distinct augmented orders the pool holds switched-state
    /// buffers for.
    pub fn state_pool_size(&self) -> usize {
        self.states.len()
    }

    /// Number of distinct matrix orders the pool holds power-iteration
    /// scratch for.
    pub fn power_pool_size(&self) -> usize {
        self.powers.len()
    }

    /// Number of distinct `(plant_order, inputs)` dimensions the pool holds
    /// saturated-sim buffers for.
    pub fn saturated_pool_size(&self) -> usize {
        self.saturated.len()
    }

    /// [`power_norm_bound`] on the pooled matrix pair for `a`'s order.
    fn power_norm_bound(&mut self, a: &Matrix) -> Result<f64> {
        if !a.is_square() {
            return Err(ControlError::InvalidModel {
                reason: format!("power norm bound needs a square matrix, got {:?}", a.shape()),
            });
        }
        let order = a.rows();
        let index = match self.powers.iter().position(|entry| entry.power.rows() == order) {
            Some(index) => index,
            None => {
                self.powers.push(PowerScratch {
                    power: Matrix::zeros(order, order),
                    next: Matrix::zeros(order, order),
                });
                self.powers.len() - 1
            }
        };
        let entry = &mut self.powers[index];
        power_norm_bound_into(a, &mut entry.power, &mut entry.next)
    }

    /// A pooled switched kernel over the matrix pair, plus the pooled
    /// recording buffer for norm trajectories: the borrowed twin of
    /// [`SwitchedKernel::new`], with the state buffers and the
    /// [`power_norm_bound`] scratch coming from the pool. Settling results
    /// are bit-identical to the owning kernel's.
    ///
    /// # Errors
    ///
    /// As [`SwitchedKernel::new`].
    pub fn switched_kernel<'m, 'w>(
        &'w mut self,
        a1: &'m Matrix,
        a2: &'m Matrix,
        plant_order: usize,
    ) -> Result<(PooledSwitchedKernel<'m, 'w>, &'w mut Vec<f64>)> {
        if a1.shape() != a2.shape() || !a1.is_square() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "switched dynamics must share a square shape, got {:?} and {:?}",
                    a1.shape(),
                    a2.shape()
                ),
            });
        }
        if plant_order > a1.cols() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "plant order {} exceeds the state dimension {}",
                    plant_order,
                    a1.cols()
                ),
            });
        }
        let et_bound = self.power_norm_bound(a1)?;
        let tt_bound = self.power_norm_bound(a2)?;
        let order = a1.cols();
        let CharacterizationWorkspace { states, norms, .. } = self;
        let index = match states.iter().position(|entry| entry.z.len() == order) {
            Some(index) => index,
            None => {
                states.push(StateScratch { z: vec![0.0; order], z_next: vec![0.0; order] });
                states.len() - 1
            }
        };
        let entry = &mut states[index];
        Ok((
            PooledSwitchedKernel {
                a1,
                a2,
                plant_order,
                et_bound,
                tt_bound,
                z: &mut entry.z,
                z_next: &mut entry.z_next,
            },
            norms,
        ))
    }

    /// The pooled saturated-sim bundle for the given dimensions (borrowed
    /// alongside the power pool and the norm buffer by
    /// [`SaturatedSwitchedModel::characterize_with`]).
    fn saturated_entry(
        saturated: &mut Vec<SatBuffers>,
        plant_order: usize,
        inputs: usize,
    ) -> &mut SatBuffers {
        let index = match saturated.iter().position(|entry| entry.dims() == (plant_order, inputs))
        {
            Some(index) => index,
            None => {
                saturated.push(SatBuffers::new(plant_order, inputs));
                saturated.len() - 1
            }
        };
        &mut saturated[index]
    }
}

/// A [`SwitchedKernel`] whose state buffers live in a
/// [`CharacterizationWorkspace`] pool: constructed per application (the
/// matrices and settling bounds are per-design values), but on a warm pool
/// the construction reuses every simulation buffer, and the settle/dwell
/// sweeps afterwards are allocation-free — the property the workspace's
/// counting-allocator test pins.
#[derive(Debug)]
pub struct PooledSwitchedKernel<'m, 'w> {
    a1: &'m Matrix,
    a2: &'m Matrix,
    plant_order: usize,
    et_bound: f64,
    tt_bound: f64,
    z: &'w mut Vec<f64>,
    z_next: &'w mut Vec<f64>,
}

impl<'m> PooledSwitchedKernel<'m, '_> {
    /// [`SwitchedKernel::settle_steps`] on the pooled buffers (bit-identical
    /// results).
    ///
    /// # Errors
    ///
    /// As [`SwitchedKernel::settle_steps`].
    pub fn settle_steps(
        &mut self,
        initial_state: &[f64],
        threshold: f64,
        k_switch: usize,
        horizon: usize,
        record: Option<&mut Vec<f64>>,
    ) -> Result<Option<usize>> {
        self.drive().settle_steps(initial_state, threshold, k_switch, horizon, record)
    }

    /// [`SwitchedKernel::dwell_steps`] on the pooled buffers (bit-identical
    /// results).
    ///
    /// # Errors
    ///
    /// As [`SwitchedKernel::dwell_steps`].
    pub fn dwell_steps(
        &mut self,
        initial_state: &[f64],
        threshold: f64,
        wait_steps: usize,
        horizon: usize,
    ) -> Result<usize> {
        self.drive().dwell_steps(initial_state, threshold, wait_steps, horizon)
    }

    /// The settle-loop view over the pooled buffers.
    fn drive(&mut self) -> SwitchedDrive<'m, '_> {
        SwitchedDrive {
            a1: self.a1,
            a2: self.a2,
            plant_order: self.plant_order,
            et_bound: self.et_bound,
            tt_bound: self.tt_bound,
            z: &mut *self.z,
            z_next: &mut *self.z_next,
        }
    }
}

/// Parameters of a dwell/wait characterisation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationConfig {
    /// Sampling period `h` in seconds.
    pub period: f64,
    /// Switching threshold `E_th` on the plant-state norm.
    pub threshold: f64,
    /// Initial (post-disturbance) augmented state.
    pub initial_state: Vec<f64>,
    /// Number of physical plant states in the augmented state.
    pub plant_order: usize,
    /// Simulation horizon in samples used for every settling computation.
    pub horizon: usize,
}

impl CharacterizationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if any parameter is out of
    /// range.
    pub fn validate(&self) -> Result<()> {
        if !(self.period > 0.0) || !self.period.is_finite() {
            return Err(ControlError::InvalidModel {
                reason: format!("period must be positive, got {}", self.period),
            });
        }
        if !(self.threshold > 0.0) {
            return Err(ControlError::InvalidModel {
                reason: format!("threshold must be positive, got {}", self.threshold),
            });
        }
        if self.initial_state.is_empty() || self.plant_order == 0 {
            return Err(ControlError::InvalidModel {
                reason: "initial state and plant order must be non-empty".to_string(),
            });
        }
        if self.horizon == 0 {
            return Err(ControlError::InvalidModel {
                reason: "horizon must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Characterises the dwell-time / wait-time relation (the data behind
/// Figure 3) by sweeping the wait time from zero up to the pure-ET settling
/// time.
///
/// `a1` is the ET closed loop, `a2` the TT closed loop, both on the same
/// (delay-augmented) state.
///
/// Built on the [`SwitchedKernel`] scratch-buffer machinery: every settling
/// computation is allocation-free and exits as soon as settling is provable,
/// instead of simulating the configured horizon in full (`config.horizon`
/// acts as an upper cap only). The curve is identical to
/// [`characterize_dwell_vs_wait_reference`] point for point.
///
/// # Errors
///
/// * Propagates simulation failures.
/// * [`ControlError::HorizonExceeded`] if either pure-mode loop fails to
///   settle within the configured horizon.
pub fn characterize_dwell_vs_wait(
    a1: &Matrix,
    a2: &Matrix,
    config: &CharacterizationConfig,
) -> Result<DwellWaitCurve> {
    characterize_dwell_vs_wait_with(a1, a2, config, &mut CharacterizationWorkspace::new())
}

/// [`characterize_dwell_vs_wait`] on a caller-provided
/// [`CharacterizationWorkspace`]: the shape a fleet-design worker threads
/// through every application it characterises, so the switched-state
/// buffers, the [`power_norm_bound`] scratch and the ET-norm recording
/// buffer are allocated once per worker and dimension instead of once per
/// application. The curve is bit-identical to the one-shot path for any
/// (warm or cold, shared or private) workspace.
///
/// # Errors
///
/// As [`characterize_dwell_vs_wait`].
pub fn characterize_dwell_vs_wait_with(
    a1: &Matrix,
    a2: &Matrix,
    config: &CharacterizationConfig,
    workspace: &mut CharacterizationWorkspace,
) -> Result<DwellWaitCurve> {
    config.validate()?;
    let x0 = &config.initial_state;
    let (mut kernel, et_norms) = workspace.switched_kernel(a1, a2, config.plant_order)?;

    // Pure-mode settling times: xi_et is also the upper end of the sweep,
    // because waiting longer than xi_et means the disturbance is rejected
    // entirely on ET communication. The pure-ET norms are recorded because
    // every sweep point reports the norm at its switching instant.
    let xi_tt_steps = kernel
        .settle_steps(x0, config.threshold, 0, config.horizon, None)?
        .ok_or(ControlError::HorizonExceeded { what: "pure TT settling", steps: config.horizon })?;
    let xi_et_steps = kernel
        .settle_steps(x0, config.threshold, config.horizon, config.horizon, Some(&mut *et_norms))?
        .ok_or(ControlError::HorizonExceeded { what: "pure ET settling", steps: config.horizon })?;

    let mut points = Vec::with_capacity(xi_et_steps + 1);
    for wait in 0..=xi_et_steps {
        let dwell = kernel.dwell_steps(x0, config.threshold, wait, config.horizon)?;
        let norms_before = &et_norms[wait.min(et_norms.len() - 1)];
        points.push(DwellWaitPoint {
            wait_time: wait as f64 * config.period,
            wait_steps: wait,
            dwell_time: dwell as f64 * config.period,
            dwell_steps: dwell,
            norm_at_switch: *norms_before,
        });
    }
    Ok(DwellWaitCurve {
        points,
        xi_tt: xi_tt_steps as f64 * config.period,
        xi_et: xi_et_steps as f64 * config.period,
        period: config.period,
    })
}

/// The original full-horizon characterisation: every settling computation
/// simulates `config.horizon` samples through the allocating trajectory
/// path and scans for the settling index afterwards. Kept as the numerical
/// reference (and benchmark baseline) for [`characterize_dwell_vs_wait`],
/// which must reproduce it point for point.
///
/// # Errors
///
/// As [`characterize_dwell_vs_wait`].
pub fn characterize_dwell_vs_wait_reference(
    a1: &Matrix,
    a2: &Matrix,
    config: &CharacterizationConfig,
) -> Result<DwellWaitCurve> {
    config.validate()?;
    let x0 = &config.initial_state;
    let n = config.plant_order;

    let tt_norms = norm_trajectory(a2, x0, n, config.horizon)?;
    let xi_tt_steps = settling_index(&tt_norms, config.threshold)
        .ok_or(ControlError::HorizonExceeded { what: "pure TT settling", steps: config.horizon })?;
    let et_norms = norm_trajectory(a1, x0, n, config.horizon)?;
    let xi_et_steps = settling_index(&et_norms, config.threshold)
        .ok_or(ControlError::HorizonExceeded { what: "pure ET settling", steps: config.horizon })?;

    let mut points = Vec::with_capacity(xi_et_steps + 1);
    for wait in 0..=xi_et_steps {
        let dwell = dwell_steps(a1, a2, x0, n, config.threshold, wait, config.horizon)?;
        let norms_before = &et_norms[wait.min(et_norms.len() - 1)];
        points.push(DwellWaitPoint {
            wait_time: wait as f64 * config.period,
            wait_steps: wait,
            dwell_time: dwell as f64 * config.period,
            dwell_steps: dwell,
            norm_at_switch: *norms_before,
        });
    }
    Ok(DwellWaitCurve {
        points,
        xi_tt: xi_tt_steps as f64 * config.period,
        xi_et: xi_et_steps as f64 * config.period,
        period: config.period,
    })
}

/// Switched closed loop with an actuator magnitude limit — the model of the
/// paper's servo-motor rig, whose amplifier can only deliver a bounded
/// torque.
///
/// The paper's Figure 3 is an *experimental* curve. In a purely linear,
/// energy-dissipative closed loop the dwell time is largely governed by the
/// state's modal content and barely rises with the wait time; the pronounced
/// rise measured on the rig comes from the combination of (a) the load being
/// held upright, so gravity keeps pumping energy into the plant while the
/// slow ET loop has not yet caught it, and (b) the torque limit, which makes
/// the TT-mode recovery time grow with the accumulated kinetic energy. This
/// model captures exactly those two ingredients.
#[derive(Debug, Clone)]
pub struct SaturatedSwitchedModel {
    et_system: DelayedLtiSystem,
    tt_system: DelayedLtiSystem,
    et_gain: Matrix,
    tt_gain: Matrix,
    input_limit: f64,
}

impl SaturatedSwitchedModel {
    /// Creates the model from the two delay models, the two feedback gains
    /// (acting on the augmented state, `u = −K·z`) and the actuator limit.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the systems describe
    /// different plants, the gains have the wrong shape, or the limit is not
    /// positive.
    pub fn new(
        et_system: DelayedLtiSystem,
        tt_system: DelayedLtiSystem,
        et_gain: Matrix,
        tt_gain: Matrix,
        input_limit: f64,
    ) -> Result<Self> {
        if et_system.plant_order() != tt_system.plant_order()
            || et_system.inputs() != tt_system.inputs()
            || (et_system.period() - tt_system.period()).abs() > 1e-12
        {
            return Err(ControlError::InvalidModel {
                reason: "ET and TT models must describe the same plant and period".to_string(),
            });
        }
        let expected = (et_system.inputs(), et_system.augmented_order());
        if et_gain.shape() != expected || tt_gain.shape() != expected {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "gains must be {}x{}, got {:?} and {:?}",
                    expected.0,
                    expected.1,
                    et_gain.shape(),
                    tt_gain.shape()
                ),
            });
        }
        if !(input_limit > 0.0) || !input_limit.is_finite() {
            return Err(ControlError::InvalidModel {
                reason: format!("input limit must be positive and finite, got {input_limit}"),
            });
        }
        Ok(SaturatedSwitchedModel { et_system, tt_system, et_gain, tt_gain, input_limit })
    }

    /// Sampling period of the underlying loop.
    pub fn period(&self) -> f64 {
        self.et_system.period()
    }

    /// Number of physical plant states.
    pub fn plant_order(&self) -> usize {
        self.et_system.plant_order()
    }

    /// Simulates the switched, saturated closed loop: `k_switch` samples in
    /// ET mode, then TT mode, starting from the plant state `x0` (previous
    /// input zero). Returns the plant-state norms over `horizon + 1` samples.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if `x0` has the wrong length.
    pub fn switched_norms(
        &self,
        x0: &[f64],
        k_switch: usize,
        horizon: usize,
    ) -> Result<Vec<f64>> {
        let n = self.plant_order();
        if x0.len() != n {
            return Err(ControlError::InvalidModel {
                reason: format!("initial state has length {}, expected {n}", x0.len()),
            });
        }
        let m = self.et_system.inputs();
        let mut state = x0.to_vec();
        let mut previous_input = vec![0.0; m];
        let mut norms = Vec::with_capacity(horizon + 1);
        norms.push(vec_norm(&state));
        for k in 0..horizon {
            let (system, gain) = if k < k_switch {
                (&self.et_system, &self.et_gain)
            } else {
                (&self.tt_system, &self.tt_gain)
            };
            let mut augmented = state.clone();
            augmented.extend_from_slice(&previous_input);
            let mut input: Vec<f64> = gain.matvec(&augmented)?.iter().map(|v| -v).collect();
            for value in &mut input {
                *value = value.clamp(-self.input_limit, self.input_limit);
            }
            state = system.step(&state, &input, &previous_input)?;
            previous_input = input;
            norms.push(vec_norm(&state));
        }
        Ok(norms)
    }

    /// Characterises the dwell-time / wait-time relation of the saturated
    /// rig — the reproduction of Figure 3.
    ///
    /// `config.initial_state` must be the *plant* state here (the previous
    /// input always starts at zero).
    ///
    /// Runs on pre-allocated scratch buffers with early-exit settling
    /// detection: a run stops as soon as the tail is provably settled *and*
    /// provably free of actuator saturation (so the linear tail bound
    /// applies); `config.horizon` caps each run instead of sizing it. The
    /// curve matches [`SaturatedSwitchedModel::characterize_reference`]
    /// point for point.
    ///
    /// # Errors
    ///
    /// * Propagates simulation failures and configuration validation.
    /// * [`ControlError::HorizonExceeded`] if either pure-mode response fails
    ///   to settle within the configured horizon.
    pub fn characterize(&self, config: &CharacterizationConfig) -> Result<DwellWaitCurve> {
        self.characterize_with(config, &mut CharacterizationWorkspace::new())
    }

    /// [`SaturatedSwitchedModel::characterize`] on a caller-provided
    /// [`CharacterizationWorkspace`]: the saturated-sim buffer bundle, the
    /// [`power_norm_bound`] scratch and the ET-norm recording buffer come
    /// from the per-worker pool instead of being allocated per application.
    /// Bit-identical to the one-shot path.
    ///
    /// # Errors
    ///
    /// As [`SaturatedSwitchedModel::characterize`].
    pub fn characterize_with(
        &self,
        config: &CharacterizationConfig,
        workspace: &mut CharacterizationWorkspace,
    ) -> Result<DwellWaitCurve> {
        config.validate()?;
        let x0 = &config.initial_state;
        let threshold = config.threshold;
        let et_closed = self.et_system.closed_loop(&self.et_gain)?;
        let tt_closed = self.tt_system.closed_loop(&self.tt_gain)?;
        let et_bound = workspace.power_norm_bound(&et_closed)?;
        let tt_bound = workspace.power_norm_bound(&tt_closed)?;
        let CharacterizationWorkspace { saturated, norms: et_norms, .. } = workspace;
        let buffers = CharacterizationWorkspace::saturated_entry(
            saturated,
            self.plant_order(),
            self.et_system.inputs(),
        );
        let mut sim = SaturatedSim::with_buffers(self, buffers, et_bound, tt_bound);

        let xi_tt_steps = sim.settle_steps(x0, threshold, 0, config.horizon, None)?.ok_or(
            ControlError::HorizonExceeded { what: "pure TT settling", steps: config.horizon },
        )?;
        let xi_et_steps = sim
            .settle_steps(x0, threshold, config.horizon, config.horizon, Some(&mut *et_norms))?
            .ok_or(ControlError::HorizonExceeded {
                what: "pure ET settling",
                steps: config.horizon,
            })?;

        let mut points = Vec::with_capacity(xi_et_steps + 1);
        for wait in 0..=xi_et_steps {
            let settle = sim.settle_steps(x0, threshold, wait, config.horizon, None)?.ok_or(
                ControlError::HorizonExceeded { what: "switched settling", steps: config.horizon },
            )?;
            let dwell = settle.saturating_sub(wait);
            points.push(DwellWaitPoint {
                wait_time: wait as f64 * config.period,
                wait_steps: wait,
                dwell_time: dwell as f64 * config.period,
                dwell_steps: dwell,
                norm_at_switch: et_norms[wait.min(et_norms.len() - 1)],
            });
        }
        Ok(DwellWaitCurve {
            points,
            xi_tt: xi_tt_steps as f64 * config.period,
            xi_et: xi_et_steps as f64 * config.period,
            period: config.period,
        })
    }

    /// The original full-horizon characterisation through the allocating
    /// [`SaturatedSwitchedModel::switched_norms`] path, kept as the
    /// numerical reference (and benchmark baseline) for
    /// [`SaturatedSwitchedModel::characterize`].
    ///
    /// # Errors
    ///
    /// As [`SaturatedSwitchedModel::characterize`].
    pub fn characterize_reference(
        &self,
        config: &CharacterizationConfig,
    ) -> Result<DwellWaitCurve> {
        config.validate()?;
        let x0 = &config.initial_state;
        let threshold = config.threshold;

        let tt_norms = self.switched_norms(x0, 0, config.horizon)?;
        let xi_tt_steps = settling_index(&tt_norms, threshold).ok_or(
            ControlError::HorizonExceeded { what: "pure TT settling", steps: config.horizon },
        )?;
        let et_norms = self.switched_norms(x0, config.horizon, config.horizon)?;
        let xi_et_steps = settling_index(&et_norms, threshold).ok_or(
            ControlError::HorizonExceeded { what: "pure ET settling", steps: config.horizon },
        )?;

        let mut points = Vec::with_capacity(xi_et_steps + 1);
        for wait in 0..=xi_et_steps {
            let norms = self.switched_norms(x0, wait, config.horizon)?;
            let settle = settling_index(&norms, threshold).ok_or(
                ControlError::HorizonExceeded { what: "switched settling", steps: config.horizon },
            )?;
            let dwell = settle.saturating_sub(wait);
            points.push(DwellWaitPoint {
                wait_time: wait as f64 * config.period,
                wait_steps: wait,
                dwell_time: dwell as f64 * config.period,
                dwell_steps: dwell,
                norm_at_switch: et_norms[wait.min(et_norms.len() - 1)],
            });
        }
        Ok(DwellWaitCurve {
            points,
            xi_tt: xi_tt_steps as f64 * config.period,
            xi_et: xi_et_steps as f64 * config.period,
            period: config.period,
        })
    }
}

/// Scratch-buffer simulator for the saturated switched loop: the
/// allocation-free twin of [`SaturatedSwitchedModel::switched_norms`], with
/// the same early-exit machinery as [`SwitchedKernel`] extended by a
/// saturation guard (the linear tail bound is only valid once every future
/// input is provably inside the actuator limit). The buffers are borrowed —
/// from a one-shot [`SatBuffers`] bundle on the allocating path, or from
/// the [`CharacterizationWorkspace`] pool on the worker path.
#[derive(Debug)]
struct SaturatedSim<'a, 'b> {
    model: &'a SaturatedSwitchedModel,
    buffers: &'b mut SatBuffers,
    /// `sup_{j≥1} ‖A₁ʲ‖` / `sup_{j≥1} ‖A₂ʲ‖` of the *linear* closed loops.
    et_bound: f64,
    tt_bound: f64,
    /// Frobenius norms of the feedback gains (for the saturation guard).
    et_gain_norm: f64,
    tt_gain_norm: f64,
}

impl<'a, 'b> SaturatedSim<'a, 'b> {
    fn with_buffers(
        model: &'a SaturatedSwitchedModel,
        buffers: &'b mut SatBuffers,
        et_bound: f64,
        tt_bound: f64,
    ) -> Self {
        SaturatedSim {
            model,
            buffers,
            et_bound,
            tt_bound,
            et_gain_norm: model.et_gain.frobenius_norm(),
            tt_gain_norm: model.tt_gain.frobenius_norm(),
        }
    }

    /// Settling index of the saturated switched trajectory — the semantics
    /// of running [`SaturatedSwitchedModel::switched_norms`] over the full
    /// horizon and applying [`settling_index`], computed without allocating
    /// and with provable early exit. With `record` set, the visited
    /// plant-state norms are appended (buffer cleared first).
    fn settle_steps(
        &mut self,
        x0: &[f64],
        threshold: f64,
        k_switch: usize,
        horizon: usize,
        record: Option<&mut Vec<f64>>,
    ) -> Result<Option<usize>> {
        if x0.len() != self.buffers.x.len() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "initial state has length {}, expected {}",
                    x0.len(),
                    self.buffers.x.len()
                ),
            });
        }
        self.buffers.x.copy_from_slice(x0);
        self.buffers.u_prev.fill(0.0);
        Ok(settle_driver(self, threshold, k_switch.min(horizon), horizon, record))
    }
}

impl SettleSim for SaturatedSim<'_, '_> {
    fn plant_norm(&self) -> f64 {
        vec_norm(&self.buffers.x)
    }

    fn provably_settled(&self, et_mode: bool, threshold: f64) -> bool {
        let (bound, gain_norm) = if et_mode {
            (self.et_bound, self.et_gain_norm)
        } else {
            (self.tt_bound, self.tt_gain_norm)
        };
        // Norm of the full augmented state [x; u_prev].
        let z_norm = (self.buffers.x.iter().map(|v| v * v).sum::<f64>()
            + self.buffers.u_prev.iter().map(|v| v * v).sum::<f64>())
        .sqrt();
        // Settled only if every future input also stays strictly inside the
        // actuator limit, so the loop evolves linearly and every future
        // plant norm is ≤ bound·‖z‖ ≤ threshold.
        let tail = bound * z_norm;
        tail <= threshold * EARLY_EXIT_SAFETY
            && gain_norm * tail <= self.model.input_limit * EARLY_EXIT_SAFETY
    }

    fn advance(&mut self, et_phase: bool) {
        let buffers = &mut *self.buffers;
        let n = buffers.x.len();
        let limit = self.model.input_limit;
        let (system, gain) = if et_phase {
            (&self.model.et_system, &self.model.et_gain)
        } else {
            (&self.model.tt_system, &self.model.tt_gain)
        };
        // u = clamp(−K·[x; u_prev]).
        buffers.aug[..n].copy_from_slice(&buffers.x);
        buffers.aug[n..].copy_from_slice(&buffers.u_prev);
        gain.matvec_kernel(&buffers.aug, &mut buffers.u);
        for value in &mut buffers.u {
            *value = (-*value).clamp(-limit, limit);
        }
        // x⁺ = Φ·x + Γ₀·u + Γ₁·u_prev.
        system.phi().matvec_kernel(&buffers.x, &mut buffers.free);
        system.gamma0().matvec_kernel(&buffers.u, &mut buffers.fresh);
        system.gamma1().matvec_kernel(&buffers.u_prev, &mut buffers.stale);
        for (((next, a), b), c) in
            buffers.x_next.iter_mut().zip(&buffers.free).zip(&buffers.fresh).zip(&buffers.stale)
        {
            *next = a + b + c;
        }
        std::mem::swap(&mut buffers.x, &mut buffers.x_next);
        std::mem::swap(&mut buffers.u_prev, &mut buffers.u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lqr::design_by_pole_placement;
    use crate::plants;

    /// Linear (unsaturated) ET/TT closed loops of the servo rig, used to test
    /// the purely linear switched analysis of the paper's Eqs. (3)–(4).
    fn rig_linear_loops() -> (Matrix, Matrix) {
        let plant = plants::servo_rig_upright();
        let h = 0.02;
        let et_sys = DelayedLtiSystem::from_continuous(&plant, h, h).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, h, 0.0007).unwrap();
        let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        (et.closed_loop().clone(), tt.closed_loop().clone())
    }

    fn servo_config() -> CharacterizationConfig {
        CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            // 45 degree initial offset with zero velocity, zero previous input.
            initial_state: vec![45.0_f64.to_radians(), 0.0, 0.0],
            plant_order: 2,
            horizon: 4000,
        }
    }

    /// The saturated servo-rig model with the paper's timing parameters.
    fn rig_model() -> SaturatedSwitchedModel {
        let plant = plants::servo_rig_upright();
        let h = 0.02;
        let et_sys = DelayedLtiSystem::from_continuous(&plant, h, h).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, h, 0.0007).unwrap();
        let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        SaturatedSwitchedModel::new(
            et_sys,
            tt_sys,
            et.gain().clone(),
            tt.gain().clone(),
            plants::SERVO_RIG_TORQUE_LIMIT,
        )
        .unwrap()
    }

    #[test]
    fn switched_trajectory_switches_dynamics() {
        let a1 = Matrix::diagonal(&[1.0]).unwrap(); // marginally stable: norm constant
        let a2 = Matrix::diagonal(&[0.5]).unwrap(); // contraction after switch
        let norms = switched_norm_trajectory(&a1, &a2, &[1.0], 1, 3, 6).unwrap();
        assert_eq!(norms.len(), 7);
        assert!((norms[3] - 1.0).abs() < 1e-12);
        assert!((norms[4] - 0.5).abs() < 1e-12);
        assert!((norms[6] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn switched_trajectory_validates_shapes() {
        let a1 = Matrix::identity(2);
        let a2 = Matrix::identity(3);
        assert!(switched_norm_trajectory(&a1, &a2, &[1.0, 0.0], 2, 1, 5).is_err());
        assert!(switched_norm_trajectory(&a1, &Matrix::identity(2), &[1.0], 2, 1, 5).is_err());
    }

    #[test]
    fn dwell_time_zero_when_already_settled() {
        let a1 = Matrix::diagonal(&[0.1]).unwrap();
        let a2 = Matrix::diagonal(&[0.1]).unwrap();
        // After 3 ET steps the norm is 1e-3 << 0.1 and never rises again.
        let dwell = dwell_steps(&a1, &a2, &[1.0], 1, 0.1, 3, 100).unwrap();
        assert_eq!(dwell, 0);
    }

    #[test]
    fn dwell_time_decreases_for_scalar_contractions() {
        // With scalar (monotone) dynamics the relation IS monotone: the
        // longer we wait, the less dwell is needed. This is exactly the
        // intuition the paper shows to be false for oscillatory systems.
        let a1 = Matrix::diagonal(&[0.9]).unwrap();
        let a2 = Matrix::diagonal(&[0.5]).unwrap();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![1.0],
            plant_order: 1,
            horizon: 500,
        };
        let curve = characterize_dwell_vs_wait(&a1, &a2, &config).unwrap();
        assert!(!curve.is_non_monotonic());
        let dwell: Vec<f64> = curve.points.iter().map(|p| p.dwell_time).collect();
        assert!(dwell.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn linear_servo_curve_properties() {
        let (a1, a2) = rig_linear_loops();
        let curve = characterize_dwell_vs_wait(&a1, &a2, &servo_config()).unwrap();
        // The paper's orderings: xi_tt < xi_et.
        assert!(curve.xi_tt < curve.xi_et);
        // At wait = 0 the dwell equals the pure-TT settling time.
        assert!((curve.points[0].dwell_time - curve.xi_tt).abs() < 1e-9);
        // Once the wait reaches the ET settling time only a short residual
        // dwell remains (the TT controller taking over can briefly push the
        // norm back above the threshold).
        assert!(curve.points.last().unwrap().dwell_time <= curve.max_dwell());
        // The modelled dwell never exceeds the ET settling time.
        assert!(curve.max_dwell() <= curve.xi_et + 1e-9);
    }

    #[test]
    fn servo_rig_curve_is_non_monotonic_like_figure3() {
        let model = rig_model();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![45.0_f64.to_radians(), 0.0],
            plant_order: 2,
            horizon: 10_000,
        };
        let curve = model.characterize(&config).unwrap();
        assert!(curve.is_non_monotonic(), "rig dwell/wait relation must rise then fall");
        // Figure 3 shape: the peak dwell clearly exceeds the pure-TT response
        // and occurs at a strictly positive wait time; the pure-ET response is
        // much slower than the pure-TT one.
        assert!(curve.xi_tt < curve.xi_et);
        assert!(curve.max_dwell() > 1.1 * curve.xi_tt, "xi_m = {}, xi_tt = {}", curve.max_dwell(), curve.xi_tt);
        assert!(curve.peak_wait() >= 0.1, "k_p = {}", curve.peak_wait());
        assert!(curve.xi_et > 2.0 * curve.xi_tt);
        // At wait = 0 the dwell equals the pure-TT settling time; once the
        // wait reaches the ET settling time, only a short residual dwell can
        // remain (the aggressive TT controller may briefly push the norm back
        // over the threshold when it takes over a nearly settled state).
        assert!((curve.points[0].dwell_time - curve.xi_tt).abs() < 1e-9);
        assert!(curve.points.last().unwrap().dwell_time < curve.max_dwell() / 2.0);
    }

    #[test]
    fn pooled_characterization_matches_one_shot_and_reuses_scratch() {
        let (a1, a2) = rig_linear_loops();
        let config = servo_config();
        let one_shot = characterize_dwell_vs_wait(&a1, &a2, &config).unwrap();

        let mut ws = CharacterizationWorkspace::new();
        assert_eq!(ws.state_pool_size(), 0);
        assert_eq!(ws.power_pool_size(), 0);
        let pooled = characterize_dwell_vs_wait_with(&a1, &a2, &config, &mut ws).unwrap();
        assert_eq!(pooled, one_shot);
        assert_eq!(ws.state_pool_size(), 1);
        assert_eq!(ws.power_pool_size(), 1);

        // A second characterisation of the same dimensions grows no pools —
        // the buffers are reused — and stays bit-identical on a warm pool.
        let warm = characterize_dwell_vs_wait_with(&a1, &a2, &config, &mut ws).unwrap();
        assert_eq!(warm, one_shot);
        assert_eq!(ws.state_pool_size(), 1);
        assert_eq!(ws.power_pool_size(), 1);

        // The pooled kernel handle matches the owning kernel point for point.
        let mut owning = SwitchedKernel::new(&a1, &a2, config.plant_order).unwrap();
        let (mut kernel, _norms) = ws.switched_kernel(&a1, &a2, config.plant_order).unwrap();
        for wait in [0usize, 5, 50, 200] {
            let pooled = kernel
                .dwell_steps(&config.initial_state, config.threshold, wait, config.horizon)
                .unwrap();
            let reference = owning
                .dwell_steps(&config.initial_state, config.threshold, wait, config.horizon)
                .unwrap();
            assert_eq!(pooled, reference, "wait = {wait}");
        }
        // Validation mirrors the owning kernel.
        assert!(kernel.dwell_steps(&[1.0], 0.1, 0, 100).is_err());
        assert!(kernel.settle_steps(&config.initial_state, -1.0, 0, 100, None).is_err());
        assert!(ws.switched_kernel(&a1, &Matrix::identity(2), 2).is_err());
        assert!(ws.switched_kernel(&a1, &a2, 9).is_err());
    }

    #[test]
    fn pooled_saturated_characterization_matches_one_shot() {
        let model = rig_model();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![45.0_f64.to_radians(), 0.0],
            plant_order: 2,
            horizon: 10_000,
        };
        let one_shot = model.characterize(&config).unwrap();
        let mut ws = CharacterizationWorkspace::new();
        let pooled = model.characterize_with(&config, &mut ws).unwrap();
        assert_eq!(pooled, one_shot);
        assert_eq!(ws.saturated_pool_size(), 1);
        assert_eq!(ws.power_pool_size(), 1);
        // Warm pool: no new entries, identical curve.
        let warm = model.characterize_with(&config, &mut ws).unwrap();
        assert_eq!(warm, one_shot);
        assert_eq!(ws.saturated_pool_size(), 1);
        assert_eq!(ws.power_pool_size(), 1);
    }

    #[test]
    fn fast_linear_characterization_matches_reference_point_for_point() {
        let (a1, a2) = rig_linear_loops();
        let config = servo_config();
        let fast = characterize_dwell_vs_wait(&a1, &a2, &config).unwrap();
        let reference = characterize_dwell_vs_wait_reference(&a1, &a2, &config).unwrap();
        assert_eq!(fast, reference);
    }

    #[test]
    fn fast_saturated_characterization_matches_reference_point_for_point() {
        let model = rig_model();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![45.0_f64.to_radians(), 0.0],
            plant_order: 2,
            horizon: 10_000,
        };
        let fast = model.characterize(&config).unwrap();
        let reference = model.characterize_reference(&config).unwrap();
        assert_eq!(fast, reference);
    }

    #[test]
    fn power_norm_bound_properties() {
        // Contraction: the bound is max(1, ‖A‖_F, ...) and finite.
        let a = Matrix::diagonal(&[0.5]).unwrap();
        let bound = power_norm_bound(&a).unwrap();
        assert!((1.0..=1.5).contains(&bound));
        // Non-normal transient growth is captured.
        let transient = Matrix::from_rows(&[&[0.5, 10.0], &[0.0, 0.5]]).unwrap();
        let bound = power_norm_bound(&transient).unwrap();
        assert!(bound >= 10.0);
        // Unstable matrices degrade to infinity (early exit disabled).
        let unstable = Matrix::diagonal(&[1.1]).unwrap();
        assert_eq!(power_norm_bound(&unstable).unwrap(), f64::INFINITY);
        // Marginally stable: identity never contracts.
        assert_eq!(power_norm_bound(&Matrix::identity(2)).unwrap(), f64::INFINITY);
        assert!(power_norm_bound(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn switched_kernel_matches_allocating_dwell_steps() {
        let (a1, a2) = rig_linear_loops();
        let config = servo_config();
        let mut kernel = SwitchedKernel::new(&a1, &a2, config.plant_order).unwrap();
        for wait in [0usize, 5, 50, 200] {
            let fast = kernel
                .dwell_steps(&config.initial_state, config.threshold, wait, config.horizon)
                .unwrap();
            let reference = dwell_steps(
                &a1,
                &a2,
                &config.initial_state,
                config.plant_order,
                config.threshold,
                wait,
                config.horizon,
            )
            .unwrap();
            assert_eq!(fast, reference, "wait = {wait}");
        }
        // Validation paths.
        assert!(kernel.dwell_steps(&[1.0], 0.1, 0, 100).is_err());
        assert!(kernel
            .settle_steps(&config.initial_state, -1.0, 0, 100, None)
            .is_err());
        assert!(SwitchedKernel::new(&a1, &Matrix::identity(2), 2).is_err());
        assert!(SwitchedKernel::new(&a1, &a2, 9).is_err());
        // Unstable pair: settle within a short horizon fails like the
        // reference.
        let unstable = Matrix::diagonal(&[1.05]).unwrap();
        let mut diverging = SwitchedKernel::new(&unstable, &unstable, 1).unwrap();
        assert_eq!(diverging.settle_steps(&[1.0], 0.1, 0, 50, None).unwrap(), None);
        assert!(matches!(
            diverging.dwell_steps(&[1.0], 0.1, 0, 50),
            Err(ControlError::HorizonExceeded { .. })
        ));
    }

    #[test]
    fn switched_kernel_recording_matches_norm_trajectory_prefix() {
        let (a1, a2) = rig_linear_loops();
        let config = servo_config();
        let mut kernel = SwitchedKernel::new(&a1, &a2, 2).unwrap();
        let mut recorded = Vec::new();
        let settle = kernel
            .settle_steps(
                &config.initial_state,
                config.threshold,
                config.horizon,
                config.horizon,
                Some(&mut recorded),
            )
            .unwrap()
            .unwrap();
        let reference =
            norm_trajectory(&a1, &config.initial_state, 2, config.horizon).unwrap();
        assert!(recorded.len() > settle);
        assert_eq!(recorded, reference[..recorded.len()]);
    }

    #[test]
    fn saturated_model_validation() {
        let plant = plants::servo_rig_upright();
        let h = 0.02;
        let et_sys = DelayedLtiSystem::from_continuous(&plant, h, h).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, h, 0.0007).unwrap();
        let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        // Bad input limit.
        assert!(SaturatedSwitchedModel::new(
            et_sys.clone(),
            tt_sys.clone(),
            et.gain().clone(),
            tt.gain().clone(),
            0.0
        )
        .is_err());
        // Bad gain shape.
        assert!(SaturatedSwitchedModel::new(
            et_sys.clone(),
            tt_sys.clone(),
            Matrix::zeros(1, 2),
            tt.gain().clone(),
            1.0
        )
        .is_err());
        // Mismatched periods.
        let other = DelayedLtiSystem::from_continuous(&plant, 0.01, 0.001).unwrap();
        assert!(SaturatedSwitchedModel::new(
            et_sys.clone(),
            other,
            et.gain().clone(),
            tt.gain().clone(),
            1.0
        )
        .is_err());
        // Wrong initial state length.
        let model = rig_model();
        assert!(model.switched_norms(&[0.1], 0, 10).is_err());
        assert_eq!(model.plant_order(), 2);
        assert!((model.period() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn total_response_time_is_increasing_in_wait_on_average() {
        // Section III: because the second-segment gradient is between 0 and −1,
        // the total response time grows with the wait time. We check the
        // end-to-end property on the rig curve.
        let model = rig_model();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![45.0_f64.to_radians(), 0.0],
            plant_order: 2,
            horizon: 10_000,
        };
        let curve = model.characterize(&config).unwrap();
        let totals = curve.total_response_times();
        assert!(totals.last().unwrap() > totals.first().unwrap());
    }

    #[test]
    fn characterization_validates_config() {
        let (a1, a2) = rig_linear_loops();
        let mut config = servo_config();
        config.period = 0.0;
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
        let mut config = servo_config();
        config.threshold = -1.0;
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
        let mut config = servo_config();
        config.horizon = 0;
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
        let mut config = servo_config();
        config.initial_state.clear();
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
    }

    #[test]
    fn dwell_steps_validates_threshold() {
        let a = Matrix::identity(1);
        assert!(dwell_steps(&a, &a, &[1.0], 1, 0.0, 0, 10).is_err());
    }

    #[test]
    fn unstable_switched_system_reports_horizon_exceeded() {
        let a1 = Matrix::diagonal(&[1.05]).unwrap();
        let a2 = Matrix::diagonal(&[1.05]).unwrap();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![1.0],
            plant_order: 1,
            horizon: 50,
        };
        assert!(matches!(
            characterize_dwell_vs_wait(&a1, &a2, &config),
            Err(ControlError::HorizonExceeded { .. })
        ));
    }
}
