//! Switched-system analysis: the dwell-time / wait-time relation of
//! Section III.
//!
//! The closed loop evolves with the event-triggered dynamics `A₁` for
//! `k_wait` samples and then switches (once, non-preemptively) to the
//! time-triggered dynamics `A₂`:
//!
//! ```text
//! x₁[k]          = A₁ᵏ·x₀                      (before the switch)
//! x₂[k_wait, k]  = A₂ᵏ·A₁^{k_wait}·x₀          (after the switch)
//! ```
//!
//! The dwell time `k_dw(k_wait)` is how long the application then needs on
//! the TT slot until the plant-state norm is back at or below `E_th`. The
//! paper's central observation is that this map is *not* monotone in
//! `k_wait`.

use crate::delayed::DelayedLtiSystem;
use crate::error::{ControlError, Result};
use crate::response::{norm_trajectory, settling_index};
use cps_linalg::{vec_norm, Matrix};

/// One point of the dwell-time/wait-time characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DwellWaitPoint {
    /// Wait time spent on ET communication before the switch, in seconds.
    pub wait_time: f64,
    /// Wait time in samples.
    pub wait_steps: usize,
    /// Dwell time needed on the TT slot after the switch, in seconds.
    pub dwell_time: f64,
    /// Dwell time in samples.
    pub dwell_steps: usize,
    /// Plant-state norm at the moment of the switch.
    pub norm_at_switch: f64,
}

/// The full characterisation of one application's switching behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct DwellWaitCurve {
    /// Sampled relation, one entry per wait time `0, h, 2h, …`.
    pub points: Vec<DwellWaitPoint>,
    /// Response (settling) time with pure TT communication, ξᵀᵀ, in seconds.
    pub xi_tt: f64,
    /// Response (settling) time with pure ET communication, ξᴱᵀ, in seconds.
    pub xi_et: f64,
    /// Sampling period used for the characterisation.
    pub period: f64,
}

impl DwellWaitCurve {
    /// Maximum dwell time over the whole curve, ξᴹ, in seconds.
    pub fn max_dwell(&self) -> f64 {
        self.points.iter().map(|p| p.dwell_time).fold(0.0, f64::max)
    }

    /// Wait time at which the maximum dwell time occurs, k_p, in seconds.
    pub fn peak_wait(&self) -> f64 {
        self.points
            .iter()
            .max_by(|a, b| a.dwell_time.partial_cmp(&b.dwell_time).expect("finite dwell times"))
            .map(|p| p.wait_time)
            .unwrap_or(0.0)
    }

    /// Returns `true` if the curve is non-monotonic, i.e. the dwell time
    /// strictly increases somewhere before decreasing — the phenomenon the
    /// paper exploits.
    pub fn is_non_monotonic(&self) -> bool {
        let dwell: Vec<f64> = self.points.iter().map(|p| p.dwell_time).collect();
        let rises = dwell.windows(2).any(|w| w[1] > w[0] + 1e-12);
        let falls = dwell.windows(2).any(|w| w[1] < w[0] - 1e-12);
        rises && falls
    }

    /// Total response time ξ(k_wait) = k_wait + k_dw(k_wait) for each sampled
    /// wait time, in seconds.
    pub fn total_response_times(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.wait_time + p.dwell_time).collect()
    }
}

/// Simulates the switched trajectory: `k_switch` samples under `a1`, then the
/// remainder under `a2`; returns the plant-state norms of the whole horizon
/// (length `horizon + 1`, including the initial state).
///
/// # Errors
///
/// * [`ControlError::InvalidModel`] if the matrices have different shapes or
///   the initial state does not match.
pub fn switched_norm_trajectory(
    a1: &Matrix,
    a2: &Matrix,
    initial_state: &[f64],
    plant_order: usize,
    k_switch: usize,
    horizon: usize,
) -> Result<Vec<f64>> {
    if a1.shape() != a2.shape() || !a1.is_square() {
        return Err(ControlError::InvalidModel {
            reason: format!(
                "switched dynamics must share a square shape, got {:?} and {:?}",
                a1.shape(),
                a2.shape()
            ),
        });
    }
    if initial_state.len() != a1.cols() {
        return Err(ControlError::InvalidModel {
            reason: format!(
                "initial state has length {} but the system has {} states",
                initial_state.len(),
                a1.cols()
            ),
        });
    }
    let k_switch = k_switch.min(horizon);
    let mut norms = Vec::with_capacity(horizon + 1);
    let mut state = initial_state.to_vec();
    norms.push(crate::delayed::plant_state_norm(&state, plant_order));
    for k in 0..horizon {
        let dynamics = if k < k_switch { a1 } else { a2 };
        state = dynamics.matvec(&state)?;
        norms.push(crate::delayed::plant_state_norm(&state, plant_order));
    }
    Ok(norms)
}

/// Computes the dwell time (in samples) for a single wait time: the number of
/// additional samples after the switch until the plant-state norm stays at or
/// below `threshold`.
///
/// If the state has already settled during the ET phase and never re-crosses
/// the threshold afterwards, the dwell time is zero (the application never
/// actually needs the slot).
///
/// # Errors
///
/// * Propagates simulation errors.
/// * [`ControlError::HorizonExceeded`] if the switched system does not settle
///   within `horizon` samples.
pub fn dwell_steps(
    a1: &Matrix,
    a2: &Matrix,
    initial_state: &[f64],
    plant_order: usize,
    threshold: f64,
    wait_steps: usize,
    horizon: usize,
) -> Result<usize> {
    if !(threshold > 0.0) {
        return Err(ControlError::InvalidModel {
            reason: format!("threshold must be positive, got {threshold}"),
        });
    }
    let norms =
        switched_norm_trajectory(a1, a2, initial_state, plant_order, wait_steps, horizon)?;
    let settle = settling_index(&norms, threshold)
        .ok_or(ControlError::HorizonExceeded { what: "switched settling", steps: horizon })?;
    Ok(settle.saturating_sub(wait_steps))
}

/// Parameters of a dwell/wait characterisation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationConfig {
    /// Sampling period `h` in seconds.
    pub period: f64,
    /// Switching threshold `E_th` on the plant-state norm.
    pub threshold: f64,
    /// Initial (post-disturbance) augmented state.
    pub initial_state: Vec<f64>,
    /// Number of physical plant states in the augmented state.
    pub plant_order: usize,
    /// Simulation horizon in samples used for every settling computation.
    pub horizon: usize,
}

impl CharacterizationConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if any parameter is out of
    /// range.
    pub fn validate(&self) -> Result<()> {
        if !(self.period > 0.0) || !self.period.is_finite() {
            return Err(ControlError::InvalidModel {
                reason: format!("period must be positive, got {}", self.period),
            });
        }
        if !(self.threshold > 0.0) {
            return Err(ControlError::InvalidModel {
                reason: format!("threshold must be positive, got {}", self.threshold),
            });
        }
        if self.initial_state.is_empty() || self.plant_order == 0 {
            return Err(ControlError::InvalidModel {
                reason: "initial state and plant order must be non-empty".to_string(),
            });
        }
        if self.horizon == 0 {
            return Err(ControlError::InvalidModel {
                reason: "horizon must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Characterises the dwell-time / wait-time relation (the data behind
/// Figure 3) by sweeping the wait time from zero up to the pure-ET settling
/// time.
///
/// `a1` is the ET closed loop, `a2` the TT closed loop, both on the same
/// (delay-augmented) state.
///
/// # Errors
///
/// * Propagates simulation failures.
/// * [`ControlError::HorizonExceeded`] if either pure-mode loop fails to
///   settle within the configured horizon.
pub fn characterize_dwell_vs_wait(
    a1: &Matrix,
    a2: &Matrix,
    config: &CharacterizationConfig,
) -> Result<DwellWaitCurve> {
    config.validate()?;
    let x0 = &config.initial_state;
    let n = config.plant_order;

    // Pure-mode settling times: xi_et is also the upper end of the sweep,
    // because waiting longer than xi_et means the disturbance is rejected
    // entirely on ET communication.
    let tt_norms = norm_trajectory(a2, x0, n, config.horizon)?;
    let xi_tt_steps = settling_index(&tt_norms, config.threshold)
        .ok_or(ControlError::HorizonExceeded { what: "pure TT settling", steps: config.horizon })?;
    let et_norms = norm_trajectory(a1, x0, n, config.horizon)?;
    let xi_et_steps = settling_index(&et_norms, config.threshold)
        .ok_or(ControlError::HorizonExceeded { what: "pure ET settling", steps: config.horizon })?;

    let mut points = Vec::with_capacity(xi_et_steps + 1);
    for wait in 0..=xi_et_steps {
        let dwell = dwell_steps(a1, a2, x0, n, config.threshold, wait, config.horizon)?;
        let norms_before = &et_norms[wait.min(et_norms.len() - 1)];
        points.push(DwellWaitPoint {
            wait_time: wait as f64 * config.period,
            wait_steps: wait,
            dwell_time: dwell as f64 * config.period,
            dwell_steps: dwell,
            norm_at_switch: *norms_before,
        });
    }
    Ok(DwellWaitCurve {
        points,
        xi_tt: xi_tt_steps as f64 * config.period,
        xi_et: xi_et_steps as f64 * config.period,
        period: config.period,
    })
}

/// Switched closed loop with an actuator magnitude limit — the model of the
/// paper's servo-motor rig, whose amplifier can only deliver a bounded
/// torque.
///
/// The paper's Figure 3 is an *experimental* curve. In a purely linear,
/// energy-dissipative closed loop the dwell time is largely governed by the
/// state's modal content and barely rises with the wait time; the pronounced
/// rise measured on the rig comes from the combination of (a) the load being
/// held upright, so gravity keeps pumping energy into the plant while the
/// slow ET loop has not yet caught it, and (b) the torque limit, which makes
/// the TT-mode recovery time grow with the accumulated kinetic energy. This
/// model captures exactly those two ingredients.
#[derive(Debug, Clone)]
pub struct SaturatedSwitchedModel {
    et_system: DelayedLtiSystem,
    tt_system: DelayedLtiSystem,
    et_gain: Matrix,
    tt_gain: Matrix,
    input_limit: f64,
}

impl SaturatedSwitchedModel {
    /// Creates the model from the two delay models, the two feedback gains
    /// (acting on the augmented state, `u = −K·z`) and the actuator limit.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the systems describe
    /// different plants, the gains have the wrong shape, or the limit is not
    /// positive.
    pub fn new(
        et_system: DelayedLtiSystem,
        tt_system: DelayedLtiSystem,
        et_gain: Matrix,
        tt_gain: Matrix,
        input_limit: f64,
    ) -> Result<Self> {
        if et_system.plant_order() != tt_system.plant_order()
            || et_system.inputs() != tt_system.inputs()
            || (et_system.period() - tt_system.period()).abs() > 1e-12
        {
            return Err(ControlError::InvalidModel {
                reason: "ET and TT models must describe the same plant and period".to_string(),
            });
        }
        let expected = (et_system.inputs(), et_system.augmented_order());
        if et_gain.shape() != expected || tt_gain.shape() != expected {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "gains must be {}x{}, got {:?} and {:?}",
                    expected.0,
                    expected.1,
                    et_gain.shape(),
                    tt_gain.shape()
                ),
            });
        }
        if !(input_limit > 0.0) || !input_limit.is_finite() {
            return Err(ControlError::InvalidModel {
                reason: format!("input limit must be positive and finite, got {input_limit}"),
            });
        }
        Ok(SaturatedSwitchedModel { et_system, tt_system, et_gain, tt_gain, input_limit })
    }

    /// Sampling period of the underlying loop.
    pub fn period(&self) -> f64 {
        self.et_system.period()
    }

    /// Number of physical plant states.
    pub fn plant_order(&self) -> usize {
        self.et_system.plant_order()
    }

    /// Simulates the switched, saturated closed loop: `k_switch` samples in
    /// ET mode, then TT mode, starting from the plant state `x0` (previous
    /// input zero). Returns the plant-state norms over `horizon + 1` samples.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if `x0` has the wrong length.
    pub fn switched_norms(
        &self,
        x0: &[f64],
        k_switch: usize,
        horizon: usize,
    ) -> Result<Vec<f64>> {
        let n = self.plant_order();
        if x0.len() != n {
            return Err(ControlError::InvalidModel {
                reason: format!("initial state has length {}, expected {n}", x0.len()),
            });
        }
        let m = self.et_system.inputs();
        let mut state = x0.to_vec();
        let mut previous_input = vec![0.0; m];
        let mut norms = Vec::with_capacity(horizon + 1);
        norms.push(vec_norm(&state));
        for k in 0..horizon {
            let (system, gain) = if k < k_switch {
                (&self.et_system, &self.et_gain)
            } else {
                (&self.tt_system, &self.tt_gain)
            };
            let mut augmented = state.clone();
            augmented.extend_from_slice(&previous_input);
            let mut input: Vec<f64> = gain.matvec(&augmented)?.iter().map(|v| -v).collect();
            for value in &mut input {
                *value = value.clamp(-self.input_limit, self.input_limit);
            }
            state = system.step(&state, &input, &previous_input)?;
            previous_input = input;
            norms.push(vec_norm(&state));
        }
        Ok(norms)
    }

    /// Characterises the dwell-time / wait-time relation of the saturated
    /// rig — the reproduction of Figure 3.
    ///
    /// `config.initial_state` must be the *plant* state here (the previous
    /// input always starts at zero).
    ///
    /// # Errors
    ///
    /// * Propagates simulation failures and configuration validation.
    /// * [`ControlError::HorizonExceeded`] if either pure-mode response fails
    ///   to settle within the configured horizon.
    pub fn characterize(&self, config: &CharacterizationConfig) -> Result<DwellWaitCurve> {
        config.validate()?;
        let x0 = &config.initial_state;
        let threshold = config.threshold;

        let tt_norms = self.switched_norms(x0, 0, config.horizon)?;
        let xi_tt_steps = settling_index(&tt_norms, threshold).ok_or(
            ControlError::HorizonExceeded { what: "pure TT settling", steps: config.horizon },
        )?;
        let et_norms = self.switched_norms(x0, config.horizon, config.horizon)?;
        let xi_et_steps = settling_index(&et_norms, threshold).ok_or(
            ControlError::HorizonExceeded { what: "pure ET settling", steps: config.horizon },
        )?;

        let mut points = Vec::with_capacity(xi_et_steps + 1);
        for wait in 0..=xi_et_steps {
            let norms = self.switched_norms(x0, wait, config.horizon)?;
            let settle = settling_index(&norms, threshold).ok_or(
                ControlError::HorizonExceeded { what: "switched settling", steps: config.horizon },
            )?;
            let dwell = settle.saturating_sub(wait);
            points.push(DwellWaitPoint {
                wait_time: wait as f64 * config.period,
                wait_steps: wait,
                dwell_time: dwell as f64 * config.period,
                dwell_steps: dwell,
                norm_at_switch: et_norms[wait.min(et_norms.len() - 1)],
            });
        }
        Ok(DwellWaitCurve {
            points,
            xi_tt: xi_tt_steps as f64 * config.period,
            xi_et: xi_et_steps as f64 * config.period,
            period: config.period,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lqr::design_by_pole_placement;
    use crate::plants;

    /// Linear (unsaturated) ET/TT closed loops of the servo rig, used to test
    /// the purely linear switched analysis of the paper's Eqs. (3)–(4).
    fn rig_linear_loops() -> (Matrix, Matrix) {
        let plant = plants::servo_rig_upright();
        let h = 0.02;
        let et_sys = DelayedLtiSystem::from_continuous(&plant, h, h).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, h, 0.0007).unwrap();
        let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        (et.closed_loop().clone(), tt.closed_loop().clone())
    }

    fn servo_config() -> CharacterizationConfig {
        CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            // 45 degree initial offset with zero velocity, zero previous input.
            initial_state: vec![45.0_f64.to_radians(), 0.0, 0.0],
            plant_order: 2,
            horizon: 4000,
        }
    }

    /// The saturated servo-rig model with the paper's timing parameters.
    fn rig_model() -> SaturatedSwitchedModel {
        let plant = plants::servo_rig_upright();
        let h = 0.02;
        let et_sys = DelayedLtiSystem::from_continuous(&plant, h, h).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, h, 0.0007).unwrap();
        let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        SaturatedSwitchedModel::new(
            et_sys,
            tt_sys,
            et.gain().clone(),
            tt.gain().clone(),
            plants::SERVO_RIG_TORQUE_LIMIT,
        )
        .unwrap()
    }

    #[test]
    fn switched_trajectory_switches_dynamics() {
        let a1 = Matrix::diagonal(&[1.0]).unwrap(); // marginally stable: norm constant
        let a2 = Matrix::diagonal(&[0.5]).unwrap(); // contraction after switch
        let norms = switched_norm_trajectory(&a1, &a2, &[1.0], 1, 3, 6).unwrap();
        assert_eq!(norms.len(), 7);
        assert!((norms[3] - 1.0).abs() < 1e-12);
        assert!((norms[4] - 0.5).abs() < 1e-12);
        assert!((norms[6] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn switched_trajectory_validates_shapes() {
        let a1 = Matrix::identity(2);
        let a2 = Matrix::identity(3);
        assert!(switched_norm_trajectory(&a1, &a2, &[1.0, 0.0], 2, 1, 5).is_err());
        assert!(switched_norm_trajectory(&a1, &Matrix::identity(2), &[1.0], 2, 1, 5).is_err());
    }

    #[test]
    fn dwell_time_zero_when_already_settled() {
        let a1 = Matrix::diagonal(&[0.1]).unwrap();
        let a2 = Matrix::diagonal(&[0.1]).unwrap();
        // After 3 ET steps the norm is 1e-3 << 0.1 and never rises again.
        let dwell = dwell_steps(&a1, &a2, &[1.0], 1, 0.1, 3, 100).unwrap();
        assert_eq!(dwell, 0);
    }

    #[test]
    fn dwell_time_decreases_for_scalar_contractions() {
        // With scalar (monotone) dynamics the relation IS monotone: the
        // longer we wait, the less dwell is needed. This is exactly the
        // intuition the paper shows to be false for oscillatory systems.
        let a1 = Matrix::diagonal(&[0.9]).unwrap();
        let a2 = Matrix::diagonal(&[0.5]).unwrap();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![1.0],
            plant_order: 1,
            horizon: 500,
        };
        let curve = characterize_dwell_vs_wait(&a1, &a2, &config).unwrap();
        assert!(!curve.is_non_monotonic());
        let dwell: Vec<f64> = curve.points.iter().map(|p| p.dwell_time).collect();
        assert!(dwell.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    fn linear_servo_curve_properties() {
        let (a1, a2) = rig_linear_loops();
        let curve = characterize_dwell_vs_wait(&a1, &a2, &servo_config()).unwrap();
        // The paper's orderings: xi_tt < xi_et.
        assert!(curve.xi_tt < curve.xi_et);
        // At wait = 0 the dwell equals the pure-TT settling time.
        assert!((curve.points[0].dwell_time - curve.xi_tt).abs() < 1e-9);
        // Once the wait reaches the ET settling time only a short residual
        // dwell remains (the TT controller taking over can briefly push the
        // norm back above the threshold).
        assert!(curve.points.last().unwrap().dwell_time <= curve.max_dwell());
        // The modelled dwell never exceeds the ET settling time.
        assert!(curve.max_dwell() <= curve.xi_et + 1e-9);
    }

    #[test]
    fn servo_rig_curve_is_non_monotonic_like_figure3() {
        let model = rig_model();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![45.0_f64.to_radians(), 0.0],
            plant_order: 2,
            horizon: 10_000,
        };
        let curve = model.characterize(&config).unwrap();
        assert!(curve.is_non_monotonic(), "rig dwell/wait relation must rise then fall");
        // Figure 3 shape: the peak dwell clearly exceeds the pure-TT response
        // and occurs at a strictly positive wait time; the pure-ET response is
        // much slower than the pure-TT one.
        assert!(curve.xi_tt < curve.xi_et);
        assert!(curve.max_dwell() > 1.1 * curve.xi_tt, "xi_m = {}, xi_tt = {}", curve.max_dwell(), curve.xi_tt);
        assert!(curve.peak_wait() >= 0.1, "k_p = {}", curve.peak_wait());
        assert!(curve.xi_et > 2.0 * curve.xi_tt);
        // At wait = 0 the dwell equals the pure-TT settling time; once the
        // wait reaches the ET settling time, only a short residual dwell can
        // remain (the aggressive TT controller may briefly push the norm back
        // over the threshold when it takes over a nearly settled state).
        assert!((curve.points[0].dwell_time - curve.xi_tt).abs() < 1e-9);
        assert!(curve.points.last().unwrap().dwell_time < curve.max_dwell() / 2.0);
    }

    #[test]
    fn saturated_model_validation() {
        let plant = plants::servo_rig_upright();
        let h = 0.02;
        let et_sys = DelayedLtiSystem::from_continuous(&plant, h, h).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, h, 0.0007).unwrap();
        let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        // Bad input limit.
        assert!(SaturatedSwitchedModel::new(
            et_sys.clone(),
            tt_sys.clone(),
            et.gain().clone(),
            tt.gain().clone(),
            0.0
        )
        .is_err());
        // Bad gain shape.
        assert!(SaturatedSwitchedModel::new(
            et_sys.clone(),
            tt_sys.clone(),
            Matrix::zeros(1, 2),
            tt.gain().clone(),
            1.0
        )
        .is_err());
        // Mismatched periods.
        let other = DelayedLtiSystem::from_continuous(&plant, 0.01, 0.001).unwrap();
        assert!(SaturatedSwitchedModel::new(
            et_sys.clone(),
            other,
            et.gain().clone(),
            tt.gain().clone(),
            1.0
        )
        .is_err());
        // Wrong initial state length.
        let model = rig_model();
        assert!(model.switched_norms(&[0.1], 0, 10).is_err());
        assert_eq!(model.plant_order(), 2);
        assert!((model.period() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn total_response_time_is_increasing_in_wait_on_average() {
        // Section III: because the second-segment gradient is between 0 and −1,
        // the total response time grows with the wait time. We check the
        // end-to-end property on the rig curve.
        let model = rig_model();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![45.0_f64.to_radians(), 0.0],
            plant_order: 2,
            horizon: 10_000,
        };
        let curve = model.characterize(&config).unwrap();
        let totals = curve.total_response_times();
        assert!(totals.last().unwrap() > totals.first().unwrap());
    }

    #[test]
    fn characterization_validates_config() {
        let (a1, a2) = rig_linear_loops();
        let mut config = servo_config();
        config.period = 0.0;
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
        let mut config = servo_config();
        config.threshold = -1.0;
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
        let mut config = servo_config();
        config.horizon = 0;
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
        let mut config = servo_config();
        config.initial_state.clear();
        assert!(characterize_dwell_vs_wait(&a1, &a2, &config).is_err());
    }

    #[test]
    fn dwell_steps_validates_threshold() {
        let a = Matrix::identity(1);
        assert!(dwell_steps(&a, &a, &[1.0], 1, 0.0, 0, 10).is_err());
    }

    #[test]
    fn unstable_switched_system_reports_horizon_exceeded() {
        let a1 = Matrix::diagonal(&[1.05]).unwrap();
        let a2 = Matrix::diagonal(&[1.05]).unwrap();
        let config = CharacterizationConfig {
            period: 0.02,
            threshold: 0.1,
            initial_state: vec![1.0],
            plant_order: 1,
            horizon: 50,
        };
        assert!(matches!(
            characterize_dwell_vs_wait(&a1, &a2, &config),
            Err(ControlError::HorizonExceeded { .. })
        ));
    }
}
