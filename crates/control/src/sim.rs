//! Closed-loop simulation utilities with explicit control inputs,
//! disturbances and time-varying communication modes.
//!
//! The autonomous-trajectory helpers in [`crate::response`] cover the
//! analytical characterisation; this module provides the step-by-step
//! simulator that the co-simulation engine (in `cps-core`) drives alongside
//! the FlexRay bus model, where the communication mode — and therefore the
//! effective delay and controller — changes at runtime.

use crate::delayed::DelayedLtiSystem;
use crate::error::Result;
use crate::kernel::StepKernel;
use crate::lqr::StateFeedbackController;

/// Which communication mode the control signal currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommunicationMode {
    /// Event-triggered communication in the dynamic segment (default mode).
    #[default]
    EventTriggered,
    /// Time-triggered communication in an owned static slot.
    TimeTriggered,
}

impl std::fmt::Display for CommunicationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommunicationMode::EventTriggered => write!(f, "ET"),
            CommunicationMode::TimeTriggered => write!(f, "TT"),
        }
    }
}

/// A running closed-loop plant instance whose controller and effective delay
/// depend on the current communication mode.
///
/// Since the kernel refactor this is a thin, record-producing wrapper around
/// [`StepKernel`]: the per-step dynamics are one in-place matrix–vector
/// product on the fused closed-loop matrix of the active mode. Use the
/// kernel directly (via [`PlantSimulator::kernel`] or [`StepKernel::new`])
/// when the [`SimSample`] records are not needed — that path never touches
/// the heap.
#[derive(Debug, Clone)]
pub struct PlantSimulator {
    kernel: StepKernel,
}

/// One record of the simulated trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSample {
    /// Simulation time in seconds at the *start* of the step.
    pub time: f64,
    /// Norm of the physical plant state.
    pub norm: f64,
    /// Communication mode active during the step.
    pub mode: CommunicationMode,
    /// Control input applied during the step.
    pub input: Vec<f64>,
}

impl PlantSimulator {
    /// Creates a simulator from the ET/TT models and controllers of one
    /// application, starting at the origin.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`](crate::ControlError::InvalidModel) if the two models differ in
    /// dimensions or sampling period.
    pub fn new(
        et_system: DelayedLtiSystem,
        tt_system: DelayedLtiSystem,
        et_controller: StateFeedbackController,
        tt_controller: StateFeedbackController,
    ) -> Result<Self> {
        let kernel = StepKernel::new(&et_system, &tt_system, &et_controller, &tt_controller)?;
        Ok(PlantSimulator { kernel })
    }

    /// The underlying allocation-free kernel.
    pub fn kernel(&self) -> &StepKernel {
        &self.kernel
    }

    /// Consumes the simulator and returns its kernel — the preferred handle
    /// for hot loops that do not need [`SimSample`] records.
    pub fn into_kernel(self) -> StepKernel {
        self.kernel
    }

    /// Sampling period of the simulated loop.
    pub fn period(&self) -> f64 {
        self.kernel.period()
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.kernel.time()
    }

    /// Current physical plant state.
    pub fn state(&self) -> &[f64] {
        self.kernel.state()
    }

    /// Norm of the current physical plant state (the quantity compared with
    /// `E_th`).
    pub fn state_norm(&self) -> f64 {
        self.kernel.state_norm()
    }

    /// Adds a disturbance to the plant state (instantaneous state jump, the
    /// disturbance model used throughout the paper's case study).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`](crate::ControlError::InvalidModel) if the disturbance has the
    /// wrong dimension.
    pub fn inject_disturbance(&mut self, disturbance: &[f64]) -> Result<()> {
        self.kernel.inject_disturbance(disturbance)
    }

    /// Resets state, previous input and time to zero.
    pub fn reset(&mut self) {
        self.kernel.reset();
    }

    /// Advances the closed loop by one sampling period using the controller
    /// and delay model of `mode`, and returns the record of the step.
    ///
    /// The dynamics are one fused in-place matrix–vector product; the only
    /// allocation is the `input` vector of the returned record (the applied
    /// input is the tail of the kernel's new augmented state).
    ///
    /// # Errors
    ///
    /// Kept fallible for API stability; the kernel path cannot fail after
    /// construction.
    pub fn step(&mut self, mode: CommunicationMode) -> Result<SimSample> {
        let time = self.kernel.time();
        let norm = self.kernel.state_norm();
        self.kernel.step(mode);
        Ok(SimSample { time, norm, mode, input: self.kernel.previous_input().to_vec() })
    }

    /// Runs `steps` consecutive steps in a fixed mode and returns the records.
    ///
    /// # Errors
    ///
    /// Propagates failures from [`PlantSimulator::step`].
    pub fn run(&mut self, mode: CommunicationMode, steps: usize) -> Result<Vec<SimSample>> {
        let mut samples = Vec::with_capacity(steps);
        for _ in 0..steps {
            samples.push(self.step(mode)?);
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lqr::{design_switched_pair, LqrWeights};
    use crate::plants;

    fn servo_simulator() -> PlantSimulator {
        // Servo rig with the detuned ET controller and the fast TT controller
        // used throughout the Figure 3 reproduction.
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = crate::lqr::design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = crate::lqr::design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        PlantSimulator::new(et_sys, tt_sys, et, tt).unwrap()
    }

    #[test]
    fn mode_display() {
        assert_eq!(CommunicationMode::EventTriggered.to_string(), "ET");
        assert_eq!(CommunicationMode::TimeTriggered.to_string(), "TT");
        assert_eq!(CommunicationMode::default(), CommunicationMode::EventTriggered);
    }

    #[test]
    fn disturbance_rejection_in_tt_mode() {
        let mut sim = servo_simulator();
        sim.inject_disturbance(&[45.0_f64.to_radians(), 0.0]).unwrap();
        assert!(sim.state_norm() > 0.1);
        let samples = sim.run(CommunicationMode::TimeTriggered, 200).unwrap();
        assert_eq!(samples.len(), 200);
        assert!(sim.state_norm() < 0.1, "TT loop must reject the disturbance");
        // Time advances by one period per step.
        assert!((sim.time() - 200.0 * 0.02).abs() < 1e-9);
        assert!((samples[1].time - 0.02).abs() < 1e-12);
    }

    #[test]
    fn disturbance_rejection_in_et_mode_is_slower() {
        let mut sim_tt = servo_simulator();
        let mut sim_et = servo_simulator();
        let disturbance = [45.0_f64.to_radians(), 0.0];
        sim_tt.inject_disturbance(&disturbance).unwrap();
        sim_et.inject_disturbance(&disturbance).unwrap();

        let settle = |sim: &mut PlantSimulator, mode| {
            let mut steps = 0;
            while sim.state_norm() > 0.1 && steps < 5000 {
                sim.step(mode).unwrap();
                steps += 1;
            }
            steps
        };
        let tt_steps = settle(&mut sim_tt, CommunicationMode::TimeTriggered);
        let et_steps = settle(&mut sim_et, CommunicationMode::EventTriggered);
        assert!(tt_steps < et_steps, "TT ({tt_steps}) must settle faster than ET ({et_steps})");
    }

    #[test]
    fn switching_mid_transient_still_settles() {
        let mut sim = servo_simulator();
        sim.inject_disturbance(&[45.0_f64.to_radians(), 0.0]).unwrap();
        sim.run(CommunicationMode::EventTriggered, 15).unwrap();
        sim.run(CommunicationMode::TimeTriggered, 400).unwrap();
        assert!(sim.state_norm() < 0.1);
    }

    #[test]
    fn reset_clears_state_and_time() {
        let mut sim = servo_simulator();
        sim.inject_disturbance(&[0.5, 0.5]).unwrap();
        sim.run(CommunicationMode::EventTriggered, 3).unwrap();
        sim.reset();
        assert_eq!(sim.state_norm(), 0.0);
        assert_eq!(sim.time(), 0.0);
        assert_eq!(sim.state(), &[0.0, 0.0]);
    }

    #[test]
    fn disturbance_dimension_is_validated() {
        let mut sim = servo_simulator();
        assert!(sim.inject_disturbance(&[1.0]).is_err());
    }

    #[test]
    fn mismatched_models_are_rejected() {
        let servo = plants::servo_position();
        let suspension = plants::quarter_car_suspension();
        let w2 = LqrWeights::identity_with_input_weight(2, 0.1);
        let w4 = LqrWeights::identity_with_input_weight(4, 0.1);
        let servo_pair = design_switched_pair(&servo, 0.02, 0.02, 0.0, &w2, &w2).unwrap();
        let susp_pair = design_switched_pair(&suspension, 0.02, 0.02, 0.0, &w4, &w4).unwrap();
        assert!(PlantSimulator::new(
            servo_pair.et_system.clone(),
            susp_pair.tt_system,
            servo_pair.et.clone(),
            susp_pair.tt,
        )
        .is_err());

        // Same plant but different sampling periods must also be rejected.
        let fast = design_switched_pair(&servo, 0.01, 0.01, 0.0, &w2, &w2).unwrap();
        assert!(PlantSimulator::new(
            servo_pair.et_system,
            fast.tt_system,
            servo_pair.et,
            fast.tt,
        )
        .is_err());
    }

    #[test]
    fn sample_records_mode_and_input() {
        let mut sim = servo_simulator();
        sim.inject_disturbance(&[0.3, 0.0]).unwrap();
        let s = sim.step(CommunicationMode::TimeTriggered).unwrap();
        assert_eq!(s.mode, CommunicationMode::TimeTriggered);
        assert_eq!(s.input.len(), 1);
        assert!(s.norm > 0.0);
        assert_eq!(s.time, 0.0);
    }
}
