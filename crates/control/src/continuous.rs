//! Continuous-time linear time-invariant (LTI) plant models.

use crate::error::{ControlError, Result};
use cps_linalg::{eigenvalues, is_hurwitz_stable, Complex, Matrix};

/// A continuous-time LTI system
/// `ẋ = A·x + B·u`, `y = C·x`.
///
/// This is the form in which the automotive plants of the case study are
/// specified before being discretised into the paper's Eq. (1).
///
/// # Example
///
/// ```
/// use cps_control::ContinuousStateSpace;
/// use cps_linalg::Matrix;
///
/// // Double integrator (servo position).
/// let plant = ContinuousStateSpace::new(
///     Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]])?,
///     Matrix::column(&[0.0, 1.0])?,
///     Matrix::from_rows(&[&[1.0, 0.0]])?,
/// )?;
/// assert_eq!(plant.order(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuousStateSpace {
    a: Matrix,
    b: Matrix,
    c: Matrix,
}

impl ContinuousStateSpace {
    /// Creates a continuous-time state-space model.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if
    /// * `A` is not square,
    /// * `B` does not have the same number of rows as `A`,
    /// * `C` does not have the same number of columns as `A`, or
    /// * any matrix contains non-finite entries.
    pub fn new(a: Matrix, b: Matrix, c: Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(ControlError::InvalidModel {
                reason: format!("state matrix must be square, got {:?}", a.shape()),
            });
        }
        if b.rows() != a.rows() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "input matrix has {} rows but the system has {} states",
                    b.rows(),
                    a.rows()
                ),
            });
        }
        if c.cols() != a.cols() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "output matrix has {} columns but the system has {} states",
                    c.cols(),
                    a.cols()
                ),
            });
        }
        if !(a.is_finite() && b.is_finite() && c.is_finite()) {
            return Err(ControlError::InvalidModel {
                reason: "system matrices must be finite".to_string(),
            });
        }
        Ok(ContinuousStateSpace { a, b, c })
    }

    /// Creates a model whose output is the full state (`C = I`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ContinuousStateSpace::new`].
    pub fn with_full_state_output(a: Matrix, b: Matrix) -> Result<Self> {
        let n = a.rows();
        Self::new(a, b, Matrix::identity(n))
    }

    /// State matrix `A`.
    pub fn a(&self) -> &Matrix {
        &self.a
    }

    /// Input matrix `B`.
    pub fn b(&self) -> &Matrix {
        &self.b
    }

    /// Output matrix `C`.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// Number of states.
    pub fn order(&self) -> usize {
        self.a.rows()
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.b.cols()
    }

    /// Number of outputs.
    pub fn outputs(&self) -> usize {
        self.c.rows()
    }

    /// Open-loop eigenvalues (continuous-time poles).
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-solver failures.
    pub fn poles(&self) -> Result<Vec<Complex>> {
        Ok(eigenvalues(&self.a)?)
    }

    /// Returns `true` if the open-loop plant is asymptotically stable
    /// (all poles in the open left half-plane).
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-solver failures.
    pub fn is_stable(&self) -> Result<bool> {
        Ok(is_hurwitz_stable(&self.a)?)
    }

    /// Controllability matrix `[B, AB, A²B, …, Aⁿ⁻¹B]`.
    ///
    /// # Errors
    ///
    /// Propagates matrix-arithmetic failures.
    pub fn controllability_matrix(&self) -> Result<Matrix> {
        let n = self.order();
        let mut block = self.b.clone();
        let mut ctrb = self.b.clone();
        for _ in 1..n {
            block = self.a.matmul(&block)?;
            ctrb = ctrb.hstack(&block)?;
        }
        Ok(ctrb)
    }

    /// Returns `true` if the pair `(A, B)` is controllable (the
    /// controllability matrix has full row rank).
    ///
    /// Rank is estimated from the QR factorisation of the transposed
    /// controllability matrix.
    ///
    /// # Errors
    ///
    /// Propagates matrix-arithmetic failures.
    pub fn is_controllable(&self) -> Result<bool> {
        let ctrb = self.controllability_matrix()?;
        Ok(rank(&ctrb) == self.order())
    }
}

/// Numerical rank of a matrix via QR with a fixed relative tolerance.
pub(crate) fn rank(m: &Matrix) -> usize {
    // Work on the transpose when the matrix is wide so QR applies.
    let tall = if m.rows() >= m.cols() { m.clone() } else { m.transpose() };
    let qr = match cps_linalg::Qr::decompose(&tall) {
        Ok(qr) => qr,
        Err(_) => return 0,
    };
    let r = qr.r();
    let k = r.rows().min(r.cols());
    let scale = r.max_abs().max(1e-300);
    (0..k).filter(|&i| r[(i, i)].abs() > 1e-10 * scale).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double_integrator() -> ContinuousStateSpace {
        ContinuousStateSpace::new(
            Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]).unwrap(),
            Matrix::column(&[0.0, 1.0]).unwrap(),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn dimensions_are_reported() {
        let plant = double_integrator();
        assert_eq!(plant.order(), 2);
        assert_eq!(plant.inputs(), 1);
        assert_eq!(plant.outputs(), 1);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::column(&[1.0, 0.0]).unwrap();
        let c = Matrix::identity(2);
        assert!(ContinuousStateSpace::new(a, b.clone(), c.clone()).is_err());
        let a = Matrix::identity(2);
        assert!(ContinuousStateSpace::new(a.clone(), Matrix::column(&[1.0]).unwrap(), c).is_err());
        assert!(ContinuousStateSpace::new(a.clone(), b.clone(), Matrix::identity(3)).is_err());
        let mut nan = Matrix::identity(2);
        nan[(0, 0)] = f64::NAN;
        assert!(ContinuousStateSpace::new(nan, b, Matrix::identity(2)).is_err());
    }

    #[test]
    fn full_state_output_constructor() {
        let plant = ContinuousStateSpace::with_full_state_output(
            Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -2.0]]).unwrap(),
            Matrix::column(&[1.0, 1.0]).unwrap(),
        )
        .unwrap();
        assert_eq!(plant.c(), &Matrix::identity(2));
        assert_eq!(plant.outputs(), 2);
    }

    #[test]
    fn stability_and_poles() {
        let stable = ContinuousStateSpace::with_full_state_output(
            Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -2.0]]).unwrap(),
            Matrix::column(&[1.0, 1.0]).unwrap(),
        )
        .unwrap();
        assert!(stable.is_stable().unwrap());
        assert_eq!(stable.poles().unwrap().len(), 2);
        // Double integrator is not asymptotically stable.
        assert!(!double_integrator().is_stable().unwrap());
    }

    #[test]
    fn controllability_of_double_integrator() {
        let plant = double_integrator();
        assert!(plant.is_controllable().unwrap());
        let ctrb = plant.controllability_matrix().unwrap();
        assert_eq!(ctrb.shape(), (2, 2));
    }

    #[test]
    fn uncontrollable_pair_is_detected() {
        // Second state unreachable from the input.
        let plant = ContinuousStateSpace::with_full_state_output(
            Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -2.0]]).unwrap(),
            Matrix::column(&[1.0, 0.0]).unwrap(),
        )
        .unwrap();
        assert!(!plant.is_controllable().unwrap());
    }

    #[test]
    fn rank_helper() {
        assert_eq!(rank(&Matrix::identity(3)), 3);
        let low = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(rank(&low), 1);
        let wide = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]).unwrap();
        assert_eq!(rank(&wide), 2);
    }
}
