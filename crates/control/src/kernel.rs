//! Precompiled, allocation-free closed-loop simulation kernel.
//!
//! With the state-feedback law `u = −K·z` substituted into the
//! delay-augmented dynamics of Eq. (1), one sampling period of the closed
//! loop is a single linear map on the augmented state `z = [x; u_prev]`:
//!
//! ```text
//! z[k+1] = (A_aug − B_aug·K) · z[k]
//! ```
//!
//! [`StepKernel`] fuses `Φ`, `Γ₀`, `Γ₁` (the delay block) and the feedback
//! gain of *both* communication modes into the two closed-loop matrices
//! `A₁`/`A₂` of the paper's Section III at construction time — every shape is
//! validated exactly once there — so [`StepKernel::step`] is one in-place
//! matrix–vector product on a pre-allocated workspace: no heap allocation, no
//! `Result`, no shape checks on the hot path. Because the bottom block row of
//! `A_aug` is zero and the bottom block of `B_aug` is the identity, the tail
//! of the new augmented state *is* the input applied during the step, so the
//! control signal comes out of the same product for free.
//!
//! The co-simulation engine and the scenario batch runner in `cps-core` step
//! thousands of these kernels per simulated second; the allocating
//! [`crate::PlantSimulator`] API is a thin wrapper that keeps the original
//! record-producing interface.

use crate::delayed::{plant_state_norm, DelayedLtiSystem};
use crate::error::{ControlError, Result};
use crate::lqr::StateFeedbackController;
use crate::sim::CommunicationMode;
use cps_linalg::Matrix;
use std::sync::Arc;

/// The immutable, shareable half of a [`StepKernel`]: the two fused
/// closed-loop matrices of one application plus the validated dimensions.
///
/// Compiling these matrices costs two augmented-matrix products; an
/// `Arc<KernelMatrices>` lets a designed fleet pay that cost once and hand
/// every scenario worker a [`StepKernel`] whose construction is just two
/// state-buffer allocations ([`KernelMatrices::kernel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMatrices {
    /// Fused ET closed-loop matrix `A₁ = A_aug − B_aug·K_ET`.
    et: Matrix,
    /// Fused TT closed-loop matrix `A₂ = A_aug − B_aug·K_TT`.
    tt: Matrix,
    /// Open-loop hold matrix `H = [[Φ, Γ₀+Γ₁], [0, I]]`: one period with the
    /// *previous* input held at the actuator because no fresh command
    /// arrived (a dropped control frame). `Γ₀+Γ₁` is the full-period input
    /// integral, which is delay-independent, so one matrix serves both
    /// communication modes.
    hold: Matrix,
    plant_order: usize,
    inputs: usize,
    period: f64,
}

impl KernelMatrices {
    /// Compiles the fused closed-loop matrices from the ET/TT models and
    /// controllers of one application.
    ///
    /// All validation happens here: the models must describe the same plant
    /// with the same sampling period, and each gain must match its model's
    /// augmented order. After this returns, stepping is infallible.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] on any dimension or period
    /// mismatch.
    pub fn compile(
        et_system: &DelayedLtiSystem,
        tt_system: &DelayedLtiSystem,
        et_controller: &StateFeedbackController,
        tt_controller: &StateFeedbackController,
    ) -> Result<Self> {
        if et_system.plant_order() != tt_system.plant_order()
            || et_system.inputs() != tt_system.inputs()
        {
            return Err(ControlError::InvalidModel {
                reason: "ET and TT models must describe the same plant".to_string(),
            });
        }
        if (et_system.period() - tt_system.period()).abs() > 1e-12 {
            return Err(ControlError::InvalidModel {
                reason: "ET and TT models must share the sampling period".to_string(),
            });
        }
        // `closed_loop` validates the gain shape against the augmented order.
        let et = et_system.closed_loop(et_controller.gain())?;
        let tt = tt_system.closed_loop(tt_controller.gain())?;
        let plant_order = et_system.plant_order();
        let inputs = et_system.inputs();
        // Hold-last-command dynamics: when no fresh command reaches the
        // actuator, the plant evolves open loop under the held input for the
        // whole period — `x⁺ = Φx + (Γ₀+Γ₁)u_prev`, `u_prev⁺ = u_prev`.
        let mut hold = Matrix::zeros(plant_order + inputs, plant_order + inputs);
        hold.set_block(0, 0, et_system.phi())?;
        hold.set_block(0, plant_order, &et_system.gamma0().add_matrix(et_system.gamma1())?)?;
        hold.set_block(plant_order, plant_order, &Matrix::identity(inputs))?;
        Ok(KernelMatrices {
            et,
            tt,
            hold,
            plant_order,
            inputs,
            period: et_system.period(),
        })
    }

    /// Dimension of the augmented state the matrices act on.
    pub fn augmented_order(&self) -> usize {
        self.plant_order + self.inputs
    }

    /// Number of physical plant states.
    pub fn plant_order(&self) -> usize {
        self.plant_order
    }

    /// Number of control inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Sampling period of the loop in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The fused closed-loop matrix of `mode`.
    pub fn closed_loop(&self, mode: CommunicationMode) -> &Matrix {
        match mode {
            CommunicationMode::EventTriggered => &self.et,
            CommunicationMode::TimeTriggered => &self.tt,
        }
    }

    /// The hold-last-command matrix `H = [[Φ, Γ₀+Γ₁], [0, I]]` applied by
    /// [`StepKernel::step_hold`] when a control frame is lost.
    pub fn hold_matrix(&self) -> &Matrix {
        &self.hold
    }

    /// Builds a fresh stepper (state at the origin) sharing these matrices:
    /// the whole per-worker construction cost is two state buffers.
    pub fn kernel(self: &Arc<Self>) -> StepKernel {
        let order = self.augmented_order();
        StepKernel {
            matrices: Arc::clone(self),
            z: vec![0.0; order],
            z_next: vec![0.0; order],
            time: 0.0,
        }
    }
}

/// A precompiled closed-loop stepper for one application: the
/// ([`Arc`]-shared) fused ET and TT closed-loop matrices plus the augmented
/// state and its scratch buffer.
#[derive(Debug, Clone)]
pub struct StepKernel {
    /// The immutable fused matrices, shared between all steppers of the
    /// same application design.
    matrices: Arc<KernelMatrices>,
    /// Augmented state `z = [x; u_prev]`.
    z: Vec<f64>,
    /// Workspace for the next state (swapped with `z` every step).
    z_next: Vec<f64>,
    time: f64,
}

impl StepKernel {
    /// Compiles the kernel from the ET/TT models and controllers of one
    /// application, starting at the origin.
    ///
    /// Equivalent to [`KernelMatrices::compile`] followed by
    /// [`KernelMatrices::kernel`]; use the two-step form when many steppers
    /// must share one compilation.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] on any dimension or period
    /// mismatch.
    pub fn new(
        et_system: &DelayedLtiSystem,
        tt_system: &DelayedLtiSystem,
        et_controller: &StateFeedbackController,
        tt_controller: &StateFeedbackController,
    ) -> Result<Self> {
        let matrices =
            KernelMatrices::compile(et_system, tt_system, et_controller, tt_controller)?;
        Ok(Arc::new(matrices).kernel())
    }

    /// The shared fused matrices this stepper runs on.
    pub fn matrices(&self) -> &Arc<KernelMatrices> {
        &self.matrices
    }

    /// Sampling period of the loop in seconds.
    pub fn period(&self) -> f64 {
        self.matrices.period
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of physical plant states.
    pub fn plant_order(&self) -> usize {
        self.matrices.plant_order
    }

    /// Number of control inputs.
    pub fn inputs(&self) -> usize {
        self.matrices.inputs
    }

    /// The physical plant state `x` (the head of the augmented state).
    pub fn state(&self) -> &[f64] {
        &self.z[..self.matrices.plant_order]
    }

    /// The input applied during the most recent step (the tail of the
    /// augmented state).
    pub fn previous_input(&self) -> &[f64] {
        &self.z[self.matrices.plant_order..]
    }

    /// The full augmented state `z = [x; u_prev]`.
    pub fn augmented_state(&self) -> &[f64] {
        &self.z
    }

    /// The fused closed-loop matrix of `mode`.
    pub fn closed_loop(&self, mode: CommunicationMode) -> &Matrix {
        self.matrices.closed_loop(mode)
    }

    /// Norm of the physical plant state (the quantity compared with `E_th`).
    #[inline]
    pub fn state_norm(&self) -> f64 {
        plant_state_norm(&self.z, self.matrices.plant_order)
    }

    /// Adds a disturbance to the plant state (instantaneous state jump, the
    /// disturbance model used throughout the paper's case study).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the disturbance has the
    /// wrong dimension.
    pub fn inject_disturbance(&mut self, disturbance: &[f64]) -> Result<()> {
        self.inject_disturbance_scaled(disturbance, 1.0)
    }

    /// Adds `scale * disturbance` to the plant state without allocating —
    /// the primitive the scenario engine uses for disturbance sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the disturbance has the
    /// wrong dimension.
    pub fn inject_disturbance_scaled(&mut self, disturbance: &[f64], scale: f64) -> Result<()> {
        if disturbance.len() != self.matrices.plant_order {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "disturbance has length {} but the plant has {} states",
                    disturbance.len(),
                    self.matrices.plant_order
                ),
            });
        }
        for (s, d) in self.z.iter_mut().zip(disturbance) {
            *s += scale * d;
        }
        Ok(())
    }

    /// Resets state, previous input and time to zero.
    pub fn reset(&mut self) {
        self.z.fill(0.0);
        self.z_next.fill(0.0);
        self.time = 0.0;
    }

    /// Advances the closed loop by one sampling period in `mode`.
    ///
    /// One in-place matrix–vector product on the pre-allocated workspace:
    /// no heap allocation, no shape checks (all validated at construction).
    #[inline]
    pub fn step(&mut self, mode: CommunicationMode) {
        let a_cl = match mode {
            CommunicationMode::EventTriggered => &self.matrices.et,
            CommunicationMode::TimeTriggered => &self.matrices.tt,
        };
        a_cl.matvec_kernel(&self.z, &mut self.z_next);
        std::mem::swap(&mut self.z, &mut self.z_next);
        self.time += self.matrices.period;
    }

    /// Advances the closed loop by one sampling period with the *previous*
    /// input held at the actuator — the graceful-degradation step applied
    /// when the control frame of this period was lost on the bus.
    ///
    /// Same cost and allocation profile as [`StepKernel::step`]; the hold
    /// matrix is mode-independent (the full-period input integral `Γ₀+Γ₁` is
    /// the same for ET and TT delays).
    #[inline]
    pub fn step_hold(&mut self) {
        self.matrices.hold.matvec_kernel(&self.z, &mut self.z_next);
        std::mem::swap(&mut self.z, &mut self.z_next);
        self.time += self.matrices.period;
    }

    /// Runs `steps` consecutive steps in a fixed mode and returns the final
    /// plant-state norm.
    pub fn run(&mut self, mode: CommunicationMode, steps: usize) -> f64 {
        for _ in 0..steps {
            self.step(mode);
        }
        self.state_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;

    fn servo_kernel() -> StepKernel {
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = crate::lqr::design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = crate::lqr::design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        StepKernel::new(&et_sys, &tt_sys, &et, &tt).unwrap()
    }

    #[test]
    fn starts_at_origin_and_steps_advance_time() {
        let mut kernel = servo_kernel();
        assert_eq!(kernel.state_norm(), 0.0);
        assert_eq!(kernel.plant_order(), 2);
        assert_eq!(kernel.inputs(), 1);
        kernel.step(CommunicationMode::TimeTriggered);
        assert!((kernel.time() - 0.02).abs() < 1e-15);
        assert_eq!(kernel.state_norm(), 0.0, "no disturbance, stays at the origin");
    }

    #[test]
    fn rejects_disturbance_in_tt_mode() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[45.0_f64.to_radians(), 0.0]).unwrap();
        assert!(kernel.state_norm() > 0.1);
        let final_norm = kernel.run(CommunicationMode::TimeTriggered, 200);
        assert!(final_norm < 0.1, "TT loop must reject the disturbance");
    }

    #[test]
    fn step_matches_closed_loop_matvec_exactly() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[0.3, -0.1]).unwrap();
        let mut reference = kernel.augmented_state().to_vec();
        for (index, mode) in [
            CommunicationMode::EventTriggered,
            CommunicationMode::TimeTriggered,
            CommunicationMode::TimeTriggered,
            CommunicationMode::EventTriggered,
        ]
        .iter()
        .enumerate()
        {
            reference = kernel.closed_loop(*mode).matvec(&reference).unwrap();
            kernel.step(*mode);
            assert_eq!(kernel.augmented_state(), reference.as_slice(), "step {index}");
        }
    }

    #[test]
    fn previous_input_is_the_applied_input() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[0.3, 0.0]).unwrap();
        // u = -K z for the mode used in the step.
        let z = kernel.augmented_state().to_vec();
        let a_cl = kernel.closed_loop(CommunicationMode::TimeTriggered).clone();
        kernel.step(CommunicationMode::TimeTriggered);
        let expected = a_cl.matvec(&z).unwrap();
        assert_eq!(kernel.previous_input(), &expected[2..]);
    }

    #[test]
    fn step_hold_keeps_the_previous_input_and_matches_the_hold_matrix() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[0.4, -0.2]).unwrap();
        // A regular step computes a fresh command; a hold step must then
        // evolve the plant open loop under exactly that command.
        kernel.step(CommunicationMode::TimeTriggered);
        let held_input = kernel.previous_input().to_vec();
        let z = kernel.augmented_state().to_vec();
        let expected = kernel.matrices().hold_matrix().matvec(&z).unwrap();
        kernel.step_hold();
        assert_eq!(kernel.augmented_state(), expected.as_slice());
        assert_eq!(kernel.previous_input(), held_input.as_slice(), "input is held");
        assert!((kernel.time() - 0.04).abs() < 1e-15, "hold advances time");
        // Holding forever is open-loop + constant input: with the unstable
        // upright servo the state must eventually diverge, unlike closed loop.
        for _ in 0..400 {
            kernel.step_hold();
        }
        let held_norm = kernel.state_norm();
        let mut closed = servo_kernel();
        closed.inject_disturbance(&[0.4, -0.2]).unwrap();
        let closed_norm = closed.run(CommunicationMode::TimeTriggered, 402);
        assert!(held_norm > 10.0 * closed_norm.max(1e-9), "hold must not stabilise");
    }

    #[test]
    fn hold_matrix_has_the_documented_block_structure() {
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = crate::lqr::design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = crate::lqr::design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        let matrices = KernelMatrices::compile(&et_sys, &tt_sys, &et, &tt).unwrap();
        let hold = matrices.hold_matrix();
        let n = matrices.plant_order();
        let m = matrices.inputs();
        assert_eq!(hold.block(0, 0, n, n).unwrap(), *et_sys.phi());
        assert_eq!(
            hold.block(0, n, n, m).unwrap(),
            et_sys.gamma0().add_matrix(et_sys.gamma1()).unwrap()
        );
        assert_eq!(hold.block(n, 0, m, n).unwrap(), cps_linalg::Matrix::zeros(m, n));
        assert_eq!(hold.block(n, n, m, m).unwrap(), cps_linalg::Matrix::identity(m));
    }

    #[test]
    fn reset_and_scaled_disturbances() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance_scaled(&[0.5, 0.5], 2.0).unwrap();
        assert!((kernel.state_norm() - 2.0 * 0.5f64.hypot(0.5)).abs() < 1e-12);
        kernel.run(CommunicationMode::EventTriggered, 3);
        kernel.reset();
        assert_eq!(kernel.state_norm(), 0.0);
        assert_eq!(kernel.time(), 0.0);
        assert!(kernel.inject_disturbance(&[1.0]).is_err());
        assert!(kernel.inject_disturbance_scaled(&[1.0], 1.0).is_err());
    }

    #[test]
    fn kernels_from_shared_matrices_are_independent_but_share_storage() {
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = crate::lqr::design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = crate::lqr::design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        let matrices =
            Arc::new(KernelMatrices::compile(&et_sys, &tt_sys, &et, &tt).unwrap());
        assert_eq!(matrices.augmented_order(), 3);
        assert_eq!(matrices.plant_order(), 2);
        assert_eq!(matrices.inputs(), 1);
        assert!((matrices.period() - 0.02).abs() < 1e-15);

        let mut first = matrices.kernel();
        let mut second = matrices.kernel();
        assert!(Arc::ptr_eq(first.matrices(), second.matrices()));
        assert!(Arc::ptr_eq(first.matrices(), &matrices));

        // Independent state, identical dynamics.
        first.inject_disturbance(&[0.3, 0.0]).unwrap();
        second.inject_disturbance(&[0.3, 0.0]).unwrap();
        first.step(CommunicationMode::TimeTriggered);
        assert!((first.time() - 0.02).abs() < 1e-15);
        assert_eq!(second.time(), 0.0);
        second.step(CommunicationMode::TimeTriggered);
        assert_eq!(first.augmented_state(), second.augmented_state());
    }

    #[test]
    fn mismatched_models_are_rejected() {
        let servo = plants::servo_position();
        let suspension = plants::quarter_car_suspension();
        let w2 = crate::lqr::LqrWeights::identity_with_input_weight(2, 0.1);
        let w4 = crate::lqr::LqrWeights::identity_with_input_weight(4, 0.1);
        let servo_pair =
            crate::lqr::design_switched_pair(&servo, 0.02, 0.02, 0.0, &w2, &w2).unwrap();
        let susp_pair =
            crate::lqr::design_switched_pair(&suspension, 0.02, 0.02, 0.0, &w4, &w4).unwrap();
        assert!(StepKernel::new(
            &servo_pair.et_system,
            &susp_pair.tt_system,
            &servo_pair.et,
            &susp_pair.tt,
        )
        .is_err());
        let fast = crate::lqr::design_switched_pair(&servo, 0.01, 0.01, 0.0, &w2, &w2).unwrap();
        assert!(StepKernel::new(
            &servo_pair.et_system,
            &fast.tt_system,
            &servo_pair.et,
            &fast.tt,
        )
        .is_err());
        // Gain with the wrong augmented order.
        assert!(StepKernel::new(
            &susp_pair.et_system,
            &susp_pair.tt_system,
            &servo_pair.et,
            &servo_pair.tt,
        )
        .is_err());
    }
}
