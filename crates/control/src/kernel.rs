//! Precompiled, allocation-free closed-loop simulation kernel.
//!
//! With the state-feedback law `u = −K·z` substituted into the
//! delay-augmented dynamics of Eq. (1), one sampling period of the closed
//! loop is a single linear map on the augmented state `z = [x; u_prev]`:
//!
//! ```text
//! z[k+1] = (A_aug − B_aug·K) · z[k]
//! ```
//!
//! [`StepKernel`] fuses `Φ`, `Γ₀`, `Γ₁` (the delay block) and the feedback
//! gain of *both* communication modes into the two closed-loop matrices
//! `A₁`/`A₂` of the paper's Section III at construction time — every shape is
//! validated exactly once there — so [`StepKernel::step`] is one in-place
//! matrix–vector product on a pre-allocated workspace: no heap allocation, no
//! `Result`, no shape checks on the hot path. Because the bottom block row of
//! `A_aug` is zero and the bottom block of `B_aug` is the identity, the tail
//! of the new augmented state *is* the input applied during the step, so the
//! control signal comes out of the same product for free.
//!
//! The co-simulation engine and the scenario batch runner in `cps-core` step
//! thousands of these kernels per simulated second; the allocating
//! [`crate::PlantSimulator`] API is a thin wrapper that keeps the original
//! record-producing interface.

use crate::delayed::{plant_state_norm, DelayedLtiSystem};
use crate::error::{ControlError, Result};
use crate::lqr::StateFeedbackController;
use crate::sim::CommunicationMode;
use cps_linalg::{
    matvec_kernel_n, matvec_lane_strided, matvec_lanes_kernel, Matrix,
};
use std::sync::Arc;

/// Const-generic kernel selection, resolved **once at construction** from
/// the augmented order: the 2–6 state dimensions of the case study hit the
/// unrolled [`cps_linalg::matvec_kernel_n`] instantiations, anything else
/// falls back to the dynamic [`Matrix::matvec_kernel`]. Every arm is
/// bit-identical to the dynamic kernel, so dispatch never changes a
/// trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelDispatch {
    N2,
    N3,
    N4,
    N5,
    N6,
    Dynamic,
}

impl KernelDispatch {
    fn select(order: usize) -> Self {
        match order {
            2 => KernelDispatch::N2,
            3 => KernelDispatch::N3,
            4 => KernelDispatch::N4,
            5 => KernelDispatch::N5,
            6 => KernelDispatch::N6,
            _ => KernelDispatch::Dynamic,
        }
    }

    #[inline]
    fn matvec(self, a: &Matrix, x: &[f64], out: &mut [f64]) {
        match self {
            KernelDispatch::N2 => matvec_kernel_n::<2>(a.as_slice(), x, out),
            KernelDispatch::N3 => matvec_kernel_n::<3>(a.as_slice(), x, out),
            KernelDispatch::N4 => matvec_kernel_n::<4>(a.as_slice(), x, out),
            KernelDispatch::N5 => matvec_kernel_n::<5>(a.as_slice(), x, out),
            KernelDispatch::N6 => matvec_kernel_n::<6>(a.as_slice(), x, out),
            KernelDispatch::Dynamic => a.matvec_kernel(x, out),
        }
    }
}

/// The immutable, shareable half of a [`StepKernel`]: the two fused
/// closed-loop matrices of one application plus the validated dimensions.
///
/// Compiling these matrices costs two augmented-matrix products; an
/// `Arc<KernelMatrices>` lets a designed fleet pay that cost once and hand
/// every scenario worker a [`StepKernel`] whose construction is just two
/// state-buffer allocations ([`KernelMatrices::kernel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMatrices {
    /// Fused ET closed-loop matrix `A₁ = A_aug − B_aug·K_ET`.
    et: Matrix,
    /// Fused TT closed-loop matrix `A₂ = A_aug − B_aug·K_TT`.
    tt: Matrix,
    /// Open-loop hold matrix `H = [[Φ, Γ₀+Γ₁], [0, I]]`: one period with the
    /// *previous* input held at the actuator because no fresh command
    /// arrived (a dropped control frame). `Γ₀+Γ₁` is the full-period input
    /// integral, which is delay-independent, so one matrix serves both
    /// communication modes.
    hold: Matrix,
    plant_order: usize,
    inputs: usize,
    period: f64,
}

impl KernelMatrices {
    /// Compiles the fused closed-loop matrices from the ET/TT models and
    /// controllers of one application.
    ///
    /// All validation happens here: the models must describe the same plant
    /// with the same sampling period, and each gain must match its model's
    /// augmented order. After this returns, stepping is infallible.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] on any dimension or period
    /// mismatch.
    pub fn compile(
        et_system: &DelayedLtiSystem,
        tt_system: &DelayedLtiSystem,
        et_controller: &StateFeedbackController,
        tt_controller: &StateFeedbackController,
    ) -> Result<Self> {
        if et_system.plant_order() != tt_system.plant_order()
            || et_system.inputs() != tt_system.inputs()
        {
            return Err(ControlError::InvalidModel {
                reason: "ET and TT models must describe the same plant".to_string(),
            });
        }
        if (et_system.period() - tt_system.period()).abs() > 1e-12 {
            return Err(ControlError::InvalidModel {
                reason: "ET and TT models must share the sampling period".to_string(),
            });
        }
        // `closed_loop` validates the gain shape against the augmented order.
        let et = et_system.closed_loop(et_controller.gain())?;
        let tt = tt_system.closed_loop(tt_controller.gain())?;
        let plant_order = et_system.plant_order();
        let inputs = et_system.inputs();
        // Hold-last-command dynamics: when no fresh command reaches the
        // actuator, the plant evolves open loop under the held input for the
        // whole period — `x⁺ = Φx + (Γ₀+Γ₁)u_prev`, `u_prev⁺ = u_prev`.
        let mut hold = Matrix::zeros(plant_order + inputs, plant_order + inputs);
        hold.set_block(0, 0, et_system.phi())?;
        hold.set_block(0, plant_order, &et_system.gamma0().add_matrix(et_system.gamma1())?)?;
        hold.set_block(plant_order, plant_order, &Matrix::identity(inputs))?;
        Ok(KernelMatrices {
            et,
            tt,
            hold,
            plant_order,
            inputs,
            period: et_system.period(),
        })
    }

    /// Dimension of the augmented state the matrices act on.
    pub fn augmented_order(&self) -> usize {
        self.plant_order + self.inputs
    }

    /// Number of physical plant states.
    pub fn plant_order(&self) -> usize {
        self.plant_order
    }

    /// Number of control inputs.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Sampling period of the loop in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The fused closed-loop matrix of `mode`.
    pub fn closed_loop(&self, mode: CommunicationMode) -> &Matrix {
        match mode {
            CommunicationMode::EventTriggered => &self.et,
            CommunicationMode::TimeTriggered => &self.tt,
        }
    }

    /// The hold-last-command matrix `H = [[Φ, Γ₀+Γ₁], [0, I]]` applied by
    /// [`StepKernel::step_hold`] when a control frame is lost.
    pub fn hold_matrix(&self) -> &Matrix {
        &self.hold
    }

    /// Builds a fresh stepper (state at the origin) sharing these matrices:
    /// the whole per-worker construction cost is two state buffers.
    pub fn kernel(self: &Arc<Self>) -> StepKernel {
        let order = self.augmented_order();
        StepKernel {
            matrices: Arc::clone(self),
            dispatch: KernelDispatch::select(order),
            z: vec![0.0; order],
            z_next: vec![0.0; order],
            time: 0.0,
        }
    }

    /// Builds a lane-batched stepper over `lanes` independent copies of this
    /// application's closed loop, all starting at the origin.
    ///
    /// See [`BatchStepKernel`] for the packed layout and the bit-identity
    /// contract with the scalar [`StepKernel`].
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn batch_kernel(self: &Arc<Self>, lanes: usize) -> BatchStepKernel {
        assert!(lanes >= 1, "batch_kernel requires at least one lane");
        let order = self.augmented_order();
        BatchStepKernel {
            matrices: Arc::clone(self),
            lanes,
            z: vec![0.0; order * lanes],
            z_next: vec![0.0; order * lanes],
            times: vec![0.0; lanes],
        }
    }
}

/// A precompiled closed-loop stepper for one application: the
/// ([`Arc`]-shared) fused ET and TT closed-loop matrices plus the augmented
/// state and its scratch buffer.
#[derive(Debug, Clone)]
pub struct StepKernel {
    /// The immutable fused matrices, shared between all steppers of the
    /// same application design.
    matrices: Arc<KernelMatrices>,
    /// Const-generic kernel arm picked once from the augmented order.
    dispatch: KernelDispatch,
    /// Augmented state `z = [x; u_prev]`.
    z: Vec<f64>,
    /// Workspace for the next state (swapped with `z` every step).
    z_next: Vec<f64>,
    time: f64,
}

impl StepKernel {
    /// Compiles the kernel from the ET/TT models and controllers of one
    /// application, starting at the origin.
    ///
    /// Equivalent to [`KernelMatrices::compile`] followed by
    /// [`KernelMatrices::kernel`]; use the two-step form when many steppers
    /// must share one compilation.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] on any dimension or period
    /// mismatch.
    pub fn new(
        et_system: &DelayedLtiSystem,
        tt_system: &DelayedLtiSystem,
        et_controller: &StateFeedbackController,
        tt_controller: &StateFeedbackController,
    ) -> Result<Self> {
        let matrices =
            KernelMatrices::compile(et_system, tt_system, et_controller, tt_controller)?;
        Ok(Arc::new(matrices).kernel())
    }

    /// The shared fused matrices this stepper runs on.
    pub fn matrices(&self) -> &Arc<KernelMatrices> {
        &self.matrices
    }

    /// Sampling period of the loop in seconds.
    pub fn period(&self) -> f64 {
        self.matrices.period
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of physical plant states.
    pub fn plant_order(&self) -> usize {
        self.matrices.plant_order
    }

    /// Number of control inputs.
    pub fn inputs(&self) -> usize {
        self.matrices.inputs
    }

    /// The physical plant state `x` (the head of the augmented state).
    pub fn state(&self) -> &[f64] {
        &self.z[..self.matrices.plant_order]
    }

    /// The input applied during the most recent step (the tail of the
    /// augmented state).
    pub fn previous_input(&self) -> &[f64] {
        &self.z[self.matrices.plant_order..]
    }

    /// The full augmented state `z = [x; u_prev]`.
    pub fn augmented_state(&self) -> &[f64] {
        &self.z
    }

    /// The fused closed-loop matrix of `mode`.
    pub fn closed_loop(&self, mode: CommunicationMode) -> &Matrix {
        self.matrices.closed_loop(mode)
    }

    /// Norm of the physical plant state (the quantity compared with `E_th`).
    #[inline]
    pub fn state_norm(&self) -> f64 {
        plant_state_norm(&self.z, self.matrices.plant_order)
    }

    /// Adds a disturbance to the plant state (instantaneous state jump, the
    /// disturbance model used throughout the paper's case study).
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the disturbance has the
    /// wrong dimension.
    pub fn inject_disturbance(&mut self, disturbance: &[f64]) -> Result<()> {
        self.inject_disturbance_scaled(disturbance, 1.0)
    }

    /// Adds `scale * disturbance` to the plant state without allocating —
    /// the primitive the scenario engine uses for disturbance sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the disturbance has the
    /// wrong dimension.
    pub fn inject_disturbance_scaled(&mut self, disturbance: &[f64], scale: f64) -> Result<()> {
        if disturbance.len() != self.matrices.plant_order {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "disturbance has length {} but the plant has {} states",
                    disturbance.len(),
                    self.matrices.plant_order
                ),
            });
        }
        for (s, d) in self.z.iter_mut().zip(disturbance) {
            *s += scale * d;
        }
        Ok(())
    }

    /// Resets state, previous input and time to zero.
    pub fn reset(&mut self) {
        self.z.fill(0.0);
        self.z_next.fill(0.0);
        self.time = 0.0;
    }

    /// Advances the closed loop by one sampling period in `mode`.
    ///
    /// One in-place matrix–vector product on the pre-allocated workspace:
    /// no heap allocation, no shape checks (all validated at construction).
    #[inline]
    pub fn step(&mut self, mode: CommunicationMode) {
        let a_cl = match mode {
            CommunicationMode::EventTriggered => &self.matrices.et,
            CommunicationMode::TimeTriggered => &self.matrices.tt,
        };
        self.dispatch.matvec(a_cl, &self.z, &mut self.z_next);
        std::mem::swap(&mut self.z, &mut self.z_next);
        self.time += self.matrices.period;
    }

    /// Advances the closed loop by one sampling period with the *previous*
    /// input held at the actuator — the graceful-degradation step applied
    /// when the control frame of this period was lost on the bus.
    ///
    /// Same cost and allocation profile as [`StepKernel::step`]; the hold
    /// matrix is mode-independent (the full-period input integral `Γ₀+Γ₁` is
    /// the same for ET and TT delays).
    #[inline]
    pub fn step_hold(&mut self) {
        self.dispatch.matvec(&self.matrices.hold, &self.z, &mut self.z_next);
        std::mem::swap(&mut self.z, &mut self.z_next);
        self.time += self.matrices.period;
    }

    /// Runs `steps` consecutive steps in a fixed mode and returns the final
    /// plant-state norm.
    pub fn run(&mut self, mode: CommunicationMode, steps: usize) -> f64 {
        for _ in 0..steps {
            self.step(mode);
        }
        self.state_norm()
    }
}

/// What one lane of a [`BatchStepKernel`] does this sampling period.
///
/// The first three variants mirror the scalar stepper exactly
/// ([`StepKernel::step`] in either mode, [`StepKernel::step_hold`]); `Skip`
/// parks a lane whose scenario already finished — state and time unchanged —
/// so ragged lane durations cost nothing but a column copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStep {
    /// Closed-loop step under the event-triggered matrix `A₁`.
    EventTriggered,
    /// Closed-loop step under the time-triggered matrix `A₂`.
    TimeTriggered,
    /// Hold-last-command step under `H` (lost actuation frame).
    Hold,
    /// Lane inactive this period: state and time unchanged.
    Skip,
}

impl LaneStep {
    /// The regular closed-loop step of `mode`.
    pub fn from_mode(mode: CommunicationMode) -> Self {
        match mode {
            CommunicationMode::EventTriggered => LaneStep::EventTriggered,
            CommunicationMode::TimeTriggered => LaneStep::TimeTriggered,
        }
    }
}

/// Lane-batched twin of [`StepKernel`]: `lanes` independent copies of one
/// application's closed loop stepped together through the packed-state
/// kernels of `cps-linalg`.
///
/// The augmented states are packed as an `order×lanes` row-major matrix
/// (`z[i * lanes + l]` = component `i` of lane `l`), so a period in which
/// every lane takes the *same* step is one `A·Z` matmul
/// ([`cps_linalg::matvec_lanes_kernel`]) — `lanes` independent accumulator
/// chains per instruction stream instead of `lanes` sequential matvecs.
/// Lanes that **diverge** (one switches communication mode, one loses its
/// actuation frame and holds, one scenario already finished) peel off to the
/// strided scalar path ([`cps_linalg::matvec_lane_strided`]) for that period
/// and rejoin the batch afterwards.
///
/// # Bit-identity
///
/// Every path — batched, strided peel-off, skip — accumulates each state
/// component in the same ascending-`k` order from `0.0` as
/// [`StepKernel::step`], so lane `l`'s trajectory is **bit-identical** to a
/// scalar kernel stepped with the same per-period [`LaneStep`] sequence,
/// for every lane width. Batching is a throughput optimisation only; it can
/// never change a result. (Pinned by `tests/batched_equivalence.rs` and the
/// unit suite below.)
#[derive(Debug, Clone)]
pub struct BatchStepKernel {
    /// The immutable fused matrices, shared with every scalar stepper of
    /// the same application design.
    matrices: Arc<KernelMatrices>,
    lanes: usize,
    /// Packed augmented states, `z[i * lanes + l]`.
    z: Vec<f64>,
    /// Workspace for the next packed states (swapped with `z` every step).
    z_next: Vec<f64>,
    /// Per-lane simulation time in seconds (lanes can be ragged).
    times: Vec<f64>,
}

impl BatchStepKernel {
    /// The shared fused matrices this batch runs on.
    pub fn matrices(&self) -> &Arc<KernelMatrices> {
        &self.matrices
    }

    /// Number of lanes stepped together.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Sampling period of the loop in seconds.
    pub fn period(&self) -> f64 {
        self.matrices.period
    }

    /// Number of physical plant states (per lane).
    pub fn plant_order(&self) -> usize {
        self.matrices.plant_order
    }

    /// Number of control inputs (per lane).
    pub fn inputs(&self) -> usize {
        self.matrices.inputs
    }

    /// Simulation time of `lane` in seconds (`Skip` periods don't advance
    /// it).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn lane_time(&self, lane: usize) -> f64 {
        self.times[lane]
    }

    /// Norm of `lane`'s physical plant state — bit-identical to
    /// [`StepKernel::state_norm`] on the same trajectory (same
    /// ascending-component sum of squares).
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    #[inline]
    pub fn lane_state_norm(&self, lane: usize) -> f64 {
        assert!(lane < self.lanes, "lane index out of bounds");
        let mut acc = 0.0;
        for i in 0..self.matrices.plant_order {
            let v = self.z[i * self.lanes + lane];
            acc += v * v;
        }
        acc.sqrt()
    }

    /// Gathers `lane`'s augmented state `z = [x; u_prev]` into `out`
    /// without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds or `out` does not have the
    /// augmented order's length.
    pub fn lane_augmented_into(&self, lane: usize, out: &mut [f64]) {
        assert!(lane < self.lanes, "lane index out of bounds");
        assert_eq!(out.len(), self.matrices.augmented_order(), "output length");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.z[i * self.lanes + lane];
        }
    }

    /// Adds `scale * disturbance` to `lane`'s plant state — the packed twin
    /// of [`StepKernel::inject_disturbance_scaled`], bit-identical per lane.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if the disturbance has the
    /// wrong dimension or `lane` is out of bounds.
    pub fn inject_lane_disturbance_scaled(
        &mut self,
        lane: usize,
        disturbance: &[f64],
        scale: f64,
    ) -> Result<()> {
        if disturbance.len() != self.matrices.plant_order {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "disturbance has length {} but the plant has {} states",
                    disturbance.len(),
                    self.matrices.plant_order
                ),
            });
        }
        if lane >= self.lanes {
            return Err(ControlError::InvalidModel {
                reason: format!("lane {lane} out of bounds for {} lanes", self.lanes),
            });
        }
        for (i, d) in disturbance.iter().enumerate() {
            self.z[i * self.lanes + lane] += scale * d;
        }
        Ok(())
    }

    /// Resets `lane`'s state and time to zero, leaving the other lanes
    /// untouched — the per-lane twin of [`StepKernel::reset`], used when a
    /// finished lane is reloaded with the next scenario.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of bounds.
    pub fn reset_lane(&mut self, lane: usize) {
        assert!(lane < self.lanes, "lane index out of bounds");
        for i in 0..self.matrices.augmented_order() {
            self.z[i * self.lanes + lane] = 0.0;
            self.z_next[i * self.lanes + lane] = 0.0;
        }
        self.times[lane] = 0.0;
    }

    /// Resets every lane's state and time to zero.
    pub fn reset(&mut self) {
        self.z.fill(0.0);
        self.z_next.fill(0.0);
        self.times.fill(0.0);
    }

    /// Advances every lane by one sampling period with the same step — the
    /// uniform fast path: one lane-batched matmul, no per-lane dispatch.
    ///
    /// `Skip` leaves the whole batch untouched.
    #[inline]
    pub fn step_uniform(&mut self, op: LaneStep) {
        let a = match op {
            LaneStep::EventTriggered => &self.matrices.et,
            LaneStep::TimeTriggered => &self.matrices.tt,
            LaneStep::Hold => &self.matrices.hold,
            LaneStep::Skip => return,
        };
        let order = self.matrices.augmented_order();
        matvec_lanes_kernel(order, a.as_slice(), &self.z, self.lanes, &mut self.z_next);
        std::mem::swap(&mut self.z, &mut self.z_next);
        for t in &mut self.times {
            *t += self.matrices.period;
        }
    }

    /// Advances the batch by one sampling period, lane `l` taking `ops[l]`.
    ///
    /// When every lane takes the same (non-`Skip`) step this is the uniform
    /// fast path of [`BatchStepKernel::step_uniform`]; otherwise each lane
    /// peels off to the strided scalar kernel (or a column copy for `Skip`)
    /// — bit-identical either way, the split is purely a perf decision.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `ops` does not have one entry per lane.
    #[inline]
    pub fn step_lanes(&mut self, ops: &[LaneStep]) {
        debug_assert_eq!(ops.len(), self.lanes, "one LaneStep per lane");
        if let Some(&first) = ops.first() {
            if ops.iter().all(|&op| op == first) {
                self.step_uniform(first);
                return;
            }
        }
        let order = self.matrices.augmented_order();
        for (lane, &op) in ops.iter().enumerate() {
            let a = match op {
                LaneStep::EventTriggered => &self.matrices.et,
                LaneStep::TimeTriggered => &self.matrices.tt,
                LaneStep::Hold => &self.matrices.hold,
                LaneStep::Skip => {
                    for i in 0..order {
                        self.z_next[i * self.lanes + lane] = self.z[i * self.lanes + lane];
                    }
                    continue;
                }
            };
            matvec_lane_strided(
                order,
                a.as_slice(),
                &self.z,
                self.lanes,
                lane,
                &mut self.z_next,
            );
            self.times[lane] += self.matrices.period;
        }
        std::mem::swap(&mut self.z, &mut self.z_next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;

    fn servo_kernel() -> StepKernel {
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = crate::lqr::design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = crate::lqr::design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        StepKernel::new(&et_sys, &tt_sys, &et, &tt).unwrap()
    }

    #[test]
    fn starts_at_origin_and_steps_advance_time() {
        let mut kernel = servo_kernel();
        assert_eq!(kernel.state_norm(), 0.0);
        assert_eq!(kernel.plant_order(), 2);
        assert_eq!(kernel.inputs(), 1);
        kernel.step(CommunicationMode::TimeTriggered);
        assert!((kernel.time() - 0.02).abs() < 1e-15);
        assert_eq!(kernel.state_norm(), 0.0, "no disturbance, stays at the origin");
    }

    #[test]
    fn rejects_disturbance_in_tt_mode() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[45.0_f64.to_radians(), 0.0]).unwrap();
        assert!(kernel.state_norm() > 0.1);
        let final_norm = kernel.run(CommunicationMode::TimeTriggered, 200);
        assert!(final_norm < 0.1, "TT loop must reject the disturbance");
    }

    #[test]
    fn step_matches_closed_loop_matvec_exactly() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[0.3, -0.1]).unwrap();
        let mut reference = kernel.augmented_state().to_vec();
        for (index, mode) in [
            CommunicationMode::EventTriggered,
            CommunicationMode::TimeTriggered,
            CommunicationMode::TimeTriggered,
            CommunicationMode::EventTriggered,
        ]
        .iter()
        .enumerate()
        {
            reference = kernel.closed_loop(*mode).matvec(&reference).unwrap();
            kernel.step(*mode);
            assert_eq!(kernel.augmented_state(), reference.as_slice(), "step {index}");
        }
    }

    #[test]
    fn previous_input_is_the_applied_input() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[0.3, 0.0]).unwrap();
        // u = -K z for the mode used in the step.
        let z = kernel.augmented_state().to_vec();
        let a_cl = kernel.closed_loop(CommunicationMode::TimeTriggered).clone();
        kernel.step(CommunicationMode::TimeTriggered);
        let expected = a_cl.matvec(&z).unwrap();
        assert_eq!(kernel.previous_input(), &expected[2..]);
    }

    #[test]
    fn step_hold_keeps_the_previous_input_and_matches_the_hold_matrix() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance(&[0.4, -0.2]).unwrap();
        // A regular step computes a fresh command; a hold step must then
        // evolve the plant open loop under exactly that command.
        kernel.step(CommunicationMode::TimeTriggered);
        let held_input = kernel.previous_input().to_vec();
        let z = kernel.augmented_state().to_vec();
        let expected = kernel.matrices().hold_matrix().matvec(&z).unwrap();
        kernel.step_hold();
        assert_eq!(kernel.augmented_state(), expected.as_slice());
        assert_eq!(kernel.previous_input(), held_input.as_slice(), "input is held");
        assert!((kernel.time() - 0.04).abs() < 1e-15, "hold advances time");
        // Holding forever is open-loop + constant input: with the unstable
        // upright servo the state must eventually diverge, unlike closed loop.
        for _ in 0..400 {
            kernel.step_hold();
        }
        let held_norm = kernel.state_norm();
        let mut closed = servo_kernel();
        closed.inject_disturbance(&[0.4, -0.2]).unwrap();
        let closed_norm = closed.run(CommunicationMode::TimeTriggered, 402);
        assert!(held_norm > 10.0 * closed_norm.max(1e-9), "hold must not stabilise");
    }

    #[test]
    fn hold_matrix_has_the_documented_block_structure() {
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = crate::lqr::design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = crate::lqr::design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        let matrices = KernelMatrices::compile(&et_sys, &tt_sys, &et, &tt).unwrap();
        let hold = matrices.hold_matrix();
        let n = matrices.plant_order();
        let m = matrices.inputs();
        assert_eq!(hold.block(0, 0, n, n).unwrap(), *et_sys.phi());
        assert_eq!(
            hold.block(0, n, n, m).unwrap(),
            et_sys.gamma0().add_matrix(et_sys.gamma1()).unwrap()
        );
        assert_eq!(hold.block(n, 0, m, n).unwrap(), cps_linalg::Matrix::zeros(m, n));
        assert_eq!(hold.block(n, n, m, m).unwrap(), cps_linalg::Matrix::identity(m));
    }

    #[test]
    fn reset_and_scaled_disturbances() {
        let mut kernel = servo_kernel();
        kernel.inject_disturbance_scaled(&[0.5, 0.5], 2.0).unwrap();
        assert!((kernel.state_norm() - 2.0 * 0.5f64.hypot(0.5)).abs() < 1e-12);
        kernel.run(CommunicationMode::EventTriggered, 3);
        kernel.reset();
        assert_eq!(kernel.state_norm(), 0.0);
        assert_eq!(kernel.time(), 0.0);
        assert!(kernel.inject_disturbance(&[1.0]).is_err());
        assert!(kernel.inject_disturbance_scaled(&[1.0], 1.0).is_err());
    }

    #[test]
    fn kernels_from_shared_matrices_are_independent_but_share_storage() {
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = crate::lqr::design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = crate::lqr::design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        let matrices =
            Arc::new(KernelMatrices::compile(&et_sys, &tt_sys, &et, &tt).unwrap());
        assert_eq!(matrices.augmented_order(), 3);
        assert_eq!(matrices.plant_order(), 2);
        assert_eq!(matrices.inputs(), 1);
        assert!((matrices.period() - 0.02).abs() < 1e-15);

        let mut first = matrices.kernel();
        let mut second = matrices.kernel();
        assert!(Arc::ptr_eq(first.matrices(), second.matrices()));
        assert!(Arc::ptr_eq(first.matrices(), &matrices));

        // Independent state, identical dynamics.
        first.inject_disturbance(&[0.3, 0.0]).unwrap();
        second.inject_disturbance(&[0.3, 0.0]).unwrap();
        first.step(CommunicationMode::TimeTriggered);
        assert!((first.time() - 0.02).abs() < 1e-15);
        assert_eq!(second.time(), 0.0);
        second.step(CommunicationMode::TimeTriggered);
        assert_eq!(first.augmented_state(), second.augmented_state());
    }

    /// Deterministic per-lane step schedule mixing modes, holds and skips —
    /// the divergence storm the batched kernel must survive bit-for-bit.
    fn lane_schedule(seed: u64, lanes: usize, steps: usize) -> Vec<Vec<LaneStep>> {
        let mut state = seed.max(1);
        (0..steps)
            .map(|_| {
                (0..lanes)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        match (state >> 33) % 4 {
                            0 => LaneStep::EventTriggered,
                            1 => LaneStep::TimeTriggered,
                            2 => LaneStep::Hold,
                            _ => LaneStep::Skip,
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batched_lanes_match_scalar_kernels_bit_for_bit() {
        let matrices = Arc::clone(servo_kernel().matrices());
        for lanes in [1usize, 2, 3, 4, 5, 7, 8] {
            let mut batch = matrices.batch_kernel(lanes);
            let mut scalars: Vec<StepKernel> =
                (0..lanes).map(|_| matrices.kernel()).collect();
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                let d = [0.3 + 0.1 * lane as f64, -0.2 + 0.05 * lane as f64];
                scalar.inject_disturbance_scaled(&d, 1.0).unwrap();
                batch.inject_lane_disturbance_scaled(lane, &d, 1.0).unwrap();
            }
            let mut gathered = vec![0.0; matrices.augmented_order()];
            for ops in lane_schedule(lanes as u64, lanes, 300) {
                batch.step_lanes(&ops);
                for (lane, scalar) in scalars.iter_mut().enumerate() {
                    match ops[lane] {
                        LaneStep::EventTriggered => {
                            scalar.step(CommunicationMode::EventTriggered)
                        }
                        LaneStep::TimeTriggered => {
                            scalar.step(CommunicationMode::TimeTriggered)
                        }
                        LaneStep::Hold => scalar.step_hold(),
                        LaneStep::Skip => {}
                    }
                    batch.lane_augmented_into(lane, &mut gathered);
                    assert_eq!(gathered.as_slice(), scalar.augmented_state());
                    assert_eq!(
                        batch.lane_state_norm(lane).to_bits(),
                        scalar.state_norm().to_bits(),
                        "norms must match bitwise"
                    );
                    assert_eq!(batch.lane_time(lane), scalar.time());
                }
            }
        }
    }

    #[test]
    fn uniform_fast_path_matches_per_lane_dispatch() {
        let matrices = Arc::clone(servo_kernel().matrices());
        let mut uniform = matrices.batch_kernel(4);
        let mut mixed = matrices.batch_kernel(4);
        for lane in 0..4 {
            let d = [0.1 * (lane + 1) as f64, -0.05];
            uniform.inject_lane_disturbance_scaled(lane, &d, 1.0).unwrap();
            mixed.inject_lane_disturbance_scaled(lane, &d, 1.0).unwrap();
        }
        let mut a = vec![0.0; matrices.augmented_order()];
        let mut b = a.clone();
        for op in [LaneStep::TimeTriggered, LaneStep::Hold, LaneStep::EventTriggered] {
            uniform.step_uniform(op);
            mixed.step_lanes(&[op; 4]);
            for lane in 0..4 {
                uniform.lane_augmented_into(lane, &mut a);
                mixed.lane_augmented_into(lane, &mut b);
                assert_eq!(a, b);
            }
        }
        // Skip is a no-op on every path.
        let before = uniform.clone();
        uniform.step_uniform(LaneStep::Skip);
        uniform.step_lanes(&[LaneStep::Skip; 4]);
        for lane in 0..4 {
            uniform.lane_augmented_into(lane, &mut a);
            before.lane_augmented_into(lane, &mut b);
            assert_eq!(a, b);
            assert_eq!(uniform.lane_time(lane), before.lane_time(lane));
        }
    }

    #[test]
    fn reset_lane_clears_one_lane_only() {
        let matrices = Arc::clone(servo_kernel().matrices());
        let mut batch = matrices.batch_kernel(3);
        for lane in 0..3 {
            batch.inject_lane_disturbance_scaled(lane, &[0.4, 0.2], 1.0).unwrap();
        }
        batch.step_uniform(LaneStep::TimeTriggered);
        let survivor_norm = batch.lane_state_norm(2);
        batch.reset_lane(1);
        assert_eq!(batch.lane_state_norm(1), 0.0);
        assert_eq!(batch.lane_time(1), 0.0);
        assert_eq!(batch.lane_state_norm(2), survivor_norm);
        assert!(batch.lane_time(2) > 0.0);
        batch.reset();
        assert_eq!(batch.lane_state_norm(0), 0.0);
        assert_eq!(batch.lane_time(2), 0.0);
        // Validation mirrors the scalar kernel.
        assert!(batch.inject_lane_disturbance_scaled(0, &[1.0], 1.0).is_err());
        assert!(batch.inject_lane_disturbance_scaled(9, &[1.0, 0.0], 1.0).is_err());
    }

    #[test]
    fn mismatched_models_are_rejected() {
        let servo = plants::servo_position();
        let suspension = plants::quarter_car_suspension();
        let w2 = crate::lqr::LqrWeights::identity_with_input_weight(2, 0.1);
        let w4 = crate::lqr::LqrWeights::identity_with_input_weight(4, 0.1);
        let servo_pair =
            crate::lqr::design_switched_pair(&servo, 0.02, 0.02, 0.0, &w2, &w2).unwrap();
        let susp_pair =
            crate::lqr::design_switched_pair(&suspension, 0.02, 0.02, 0.0, &w4, &w4).unwrap();
        assert!(StepKernel::new(
            &servo_pair.et_system,
            &susp_pair.tt_system,
            &servo_pair.et,
            &susp_pair.tt,
        )
        .is_err());
        let fast = crate::lqr::design_switched_pair(&servo, 0.01, 0.01, 0.0, &w2, &w2).unwrap();
        assert!(StepKernel::new(
            &servo_pair.et_system,
            &fast.tt_system,
            &servo_pair.et,
            &fast.tt,
        )
        .is_err());
        // Gain with the wrong augmented order.
        assert!(StepKernel::new(
            &susp_pair.et_system,
            &susp_pair.tt_system,
            &servo_pair.et,
            &servo_pair.tt,
        )
        .is_err());
    }
}
