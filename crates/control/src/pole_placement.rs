//! Pole placement (Ackermann's formula) for single-input systems.
//!
//! Provided as an alternative synthesis path to LQR; the paper only requires
//! *some* stabilising state feedback per communication mode, and pole
//! placement lets tests and ablations pin the closed-loop spectrum exactly.

use crate::error::{ControlError, Result};
use cps_linalg::{inverse, Matrix};

/// Computes a state-feedback gain `K` (with `u = −K·x`) placing the
/// eigenvalues of `A − B·K` at the desired locations, using Ackermann's
/// formula. Only real desired poles are supported (complex pairs can be
/// approximated by two nearby real poles, which is sufficient for the tests
/// and ablations in this repository).
///
/// # Errors
///
/// * [`ControlError::InvalidModel`] if the system is not single-input, the
///   number of desired poles differs from the state dimension, or dimensions
///   mismatch.
/// * [`ControlError::DesignFailed`] if the pair `(A, B)` is not controllable
///   (the controllability matrix is singular).
///
/// # Example
///
/// ```
/// use cps_control::place_poles;
/// use cps_linalg::{spectral_radius, Matrix};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]])?;
/// let b = Matrix::column(&[0.005, 0.1])?;
/// let k = place_poles(&a, &b, &[0.5, 0.6])?;
/// let closed = a.sub_matrix(&b.matmul(&k)?)?;
/// assert!((spectral_radius(&closed)? - 0.6).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn place_poles(a: &Matrix, b: &Matrix, desired_poles: &[f64]) -> Result<Matrix> {
    if !a.is_square() {
        return Err(ControlError::InvalidModel {
            reason: format!("state matrix must be square, got {:?}", a.shape()),
        });
    }
    let n = a.rows();
    if b.shape() != (n, 1) {
        return Err(ControlError::InvalidModel {
            reason: format!("pole placement requires a single-input system, B is {:?}", b.shape()),
        });
    }
    if desired_poles.len() != n {
        return Err(ControlError::InvalidModel {
            reason: format!("expected {n} desired poles, got {}", desired_poles.len()),
        });
    }

    // Controllability matrix [B, AB, ..., A^{n-1}B].
    let mut ctrb = b.clone();
    let mut block = b.clone();
    for _ in 1..n {
        block = a.matmul(&block)?;
        ctrb = ctrb.hstack(&block)?;
    }
    let ctrb_inv = inverse(&ctrb).map_err(|_| ControlError::DesignFailed {
        reason: "pair (A, B) is not controllable".to_string(),
    })?;

    // Desired characteristic polynomial evaluated at A:
    // p(A) = (A - p1 I)(A - p2 I)...(A - pn I).
    let mut p_of_a = Matrix::identity(n);
    for &pole in desired_poles {
        let factor = a.sub_matrix(&Matrix::identity(n).scale(pole))?;
        p_of_a = p_of_a.matmul(&factor)?;
    }

    // K = [0 ... 0 1] · ctrb⁻¹ · p(A).
    let mut selector = Matrix::zeros(1, n);
    selector[(0, n - 1)] = 1.0;
    Ok(selector.matmul(&ctrb_inv)?.matmul(&p_of_a)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cps_linalg::{eigenvalues, spectral_radius};

    fn double_integrator(h: f64) -> (Matrix, Matrix) {
        (
            Matrix::from_rows(&[&[1.0, h], &[0.0, 1.0]]).unwrap(),
            Matrix::column(&[h * h / 2.0, h]).unwrap(),
        )
    }

    #[test]
    fn places_poles_exactly() {
        let (a, b) = double_integrator(0.02);
        let k = place_poles(&a, &b, &[0.7, 0.8]).unwrap();
        let closed = a.sub_matrix(&b.matmul(&k).unwrap()).unwrap();
        let mut eigs: Vec<f64> = eigenvalues(&closed).unwrap().iter().map(|e| e.re).collect();
        eigs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((eigs[0] - 0.7).abs() < 1e-8);
        assert!((eigs[1] - 0.8).abs() < 1e-8);
    }

    #[test]
    fn deadbeat_control() {
        let (a, b) = double_integrator(0.1);
        let k = place_poles(&a, &b, &[0.0, 0.0]).unwrap();
        let closed = a.sub_matrix(&b.matmul(&k).unwrap()).unwrap();
        assert!(spectral_radius(&closed).unwrap() < 1e-6);
        // Deadbeat: A_cl² = 0.
        let squared = closed.matmul(&closed).unwrap();
        assert!(squared.max_abs() < 1e-9);
    }

    #[test]
    fn rejects_multi_input_and_wrong_counts() {
        let (a, _) = double_integrator(0.02);
        let wide_b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert!(place_poles(&a, &wide_b, &[0.5, 0.5]).is_err());
        let b = Matrix::column(&[0.0, 1.0]).unwrap();
        assert!(place_poles(&a, &b, &[0.5]).is_err());
        assert!(place_poles(&Matrix::zeros(2, 3), &b, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn uncontrollable_pair_fails() {
        let a = Matrix::diagonal(&[1.5, 0.5]).unwrap();
        let b = Matrix::column(&[0.0, 1.0]).unwrap();
        assert!(matches!(
            place_poles(&a, &b, &[0.1, 0.2]),
            Err(ControlError::DesignFailed { .. })
        ));
    }
}
