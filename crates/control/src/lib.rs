//! # cps-control
//!
//! Control-theory substrate for the DATE 2019 reproduction *Exploiting System
//! Dynamics for Resource-Efficient Automotive CPS Design*.
//!
//! The crate models the paper's plants and controllers end to end:
//!
//! * [`ContinuousStateSpace`] — continuous-time LTI plant models, plus the
//!   automotive plant library in [`plants`].
//! * [`DiscreteStateSpace`] — plain zero-order-hold sampling.
//! * [`DelayedLtiSystem`] — the paper's Eq. (1): sampled dynamics with a
//!   constant sensor-to-actuator delay, split into Γ₀ (fresh input) and Γ₁
//!   (stale input), with the delay-augmented state-space form used for
//!   controller design and switching analysis.
//! * [`design_lqr`] / [`design_switched_pair`] / [`place_poles`] — synthesis
//!   of the event-triggered and time-triggered state-feedback controllers.
//! * [`DesignWorkspace`] — the dimension-keyed solver-workspace bundle a
//!   fleet-design worker threads through every discretisation and synthesis
//!   via the `_with` variants ([`DelayedLtiSystem::from_continuous_with`],
//!   [`design_lqr_with`], [`design_switched_pair_with`]), bit-identical to
//!   the one-shot paths.
//! * [`CharacterizationWorkspace`] — its characterisation-side counterpart:
//!   a per-worker pool of switched-kernel state buffers, power-bound
//!   matrices and saturated-sim scratch threaded through
//!   [`characterize_dwell_vs_wait_with`] /
//!   [`SaturatedSwitchedModel::characterize_with`], so a warm worker
//!   re-allocates no simulation scratch per application (bit-identical to
//!   the one-shot paths).
//! * [`response_metrics`] / [`response_time`] — settling-time metrics (ξᵀᵀ,
//!   ξᴱᵀ).
//! * [`characterize_dwell_vs_wait`] — the switched-system sweep behind the
//!   non-monotonic dwell-time/wait-time relation of Figure 3.
//! * [`StepKernel`] — the precompiled, allocation-free closed-loop stepper:
//!   Φ, Γ₀, Γ₁ and the feedback gain fused into one augmented matrix per
//!   communication mode at construction, so a step is a single in-place
//!   matrix–vector product (dispatched once, at construction, to the
//!   const-generic unrolled kernel of the application's 2–6 state augmented
//!   order).
//! * [`BatchStepKernel`] — the lane-batched twin: K scenarios of the same
//!   application packed into an `order×K` state matrix and stepped with one
//!   matmul per period; lanes that diverge (mode switch, hold-last-command,
//!   finished scenario) peel off to a strided scalar path per [`LaneStep`]
//!   and rejoin — bit-identical to K scalar kernels on every path.
//! * [`PlantSimulator`] — step-by-step closed-loop simulation with runtime
//!   mode switching, driven by the co-simulation engine in `cps-core`.
//!
//! # Example: reproducing the shape of Figure 3
//!
//! ```
//! use cps_control::{
//!     design_by_pole_placement, plants, CharacterizationConfig, DelayedLtiSystem,
//!     SaturatedSwitchedModel,
//! };
//!
//! let rig = plants::servo_rig_upright();
//! let h = 0.02; // 20 ms sampling period, as in the paper
//! let et_sys = DelayedLtiSystem::from_continuous(&rig, h, h)?;      // worst-case ET delay
//! let tt_sys = DelayedLtiSystem::from_continuous(&rig, h, 0.0007)?; // TT delay = 0.7 ms
//! let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0])?; // detuned ET controller
//! let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0])?; // aggressive TT controller
//! let model = SaturatedSwitchedModel::new(
//!     et_sys,
//!     tt_sys,
//!     et.gain().clone(),
//!     tt.gain().clone(),
//!     plants::SERVO_RIG_TORQUE_LIMIT,
//! )?;
//! let curve = model.characterize(&CharacterizationConfig {
//!     period: h,
//!     threshold: 0.1,
//!     initial_state: vec![45.0_f64.to_radians(), 0.0],
//!     plant_order: 2,
//!     horizon: 10_000,
//! })?;
//! assert!(curve.is_non_monotonic());
//! assert!(curve.max_dwell() > curve.xi_tt);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod continuous;
mod delayed;
mod design;
mod discrete;
mod error;
mod kernel;
mod lqr;
mod pole_placement;
mod response;
mod sim;
mod switched;

pub mod plants;

pub use continuous::ContinuousStateSpace;
pub use delayed::{plant_state_norm, DelayedLtiSystem};
pub use design::DesignWorkspace;
pub use discrete::DiscreteStateSpace;
pub use error::{ControlError, Result};
pub use kernel::{BatchStepKernel, KernelMatrices, LaneStep, StepKernel};
pub use lqr::{
    design_by_pole_placement, design_lqr, design_lqr_with, design_switched_pair,
    design_switched_pair_with, LqrWeights, StateFeedbackController, SwitchedControllerPair,
};
pub use pole_placement::place_poles;
pub use response::{
    norm_trajectory, response_metrics, response_time, settling_index, ResponseMetrics,
};
pub use sim::{CommunicationMode, PlantSimulator, SimSample};
pub use switched::{
    characterize_dwell_vs_wait, characterize_dwell_vs_wait_reference,
    characterize_dwell_vs_wait_with, dwell_steps, power_norm_bound, switched_norm_trajectory,
    CharacterizationConfig, CharacterizationWorkspace, DwellWaitCurve, DwellWaitPoint,
    PooledSwitchedKernel, SaturatedSwitchedModel, SwitchedKernel,
};
