//! Response-time (settling-time) metrics on closed-loop trajectories.
//!
//! The paper's performance requirement for application `Cᵢ` is that the norm
//! of the plant state returns below the threshold `E_th` within the deadline
//! ξᵈᵢ after a disturbance. The functions here compute the corresponding
//! settling quantities from autonomous closed-loop simulations.

use crate::delayed::plant_state_norm;
use crate::error::{ControlError, Result};
use cps_linalg::Matrix;

/// Autonomous trajectory of the plant-state norm under `z[k+1] = A·z[k]`.
///
/// `plant_order` selects how many leading entries of the (possibly
/// delay-augmented) state constitute the physical plant state on which the
/// norm is evaluated.
///
/// # Errors
///
/// Returns shape errors if `initial_state` does not match `a`.
pub fn norm_trajectory(
    a: &Matrix,
    initial_state: &[f64],
    plant_order: usize,
    steps: usize,
) -> Result<Vec<f64>> {
    if initial_state.len() != a.cols() {
        return Err(ControlError::InvalidModel {
            reason: format!(
                "initial state has length {} but the system has {} states",
                initial_state.len(),
                a.cols()
            ),
        });
    }
    let mut state = initial_state.to_vec();
    let mut norms = Vec::with_capacity(steps + 1);
    norms.push(plant_state_norm(&state, plant_order));
    for _ in 0..steps {
        state = a.matvec(&state)?;
        norms.push(plant_state_norm(&state, plant_order));
    }
    Ok(norms)
}

/// Index of the first sample from which the trajectory stays at or below
/// `threshold` for the remainder of the horizon, or `None` if it never
/// settles within the recorded horizon.
///
/// This is the discrete version of the settling time used for the response
/// times ξᵀᵀ, ξᴱᵀ and the dwell time k_dw in the paper.
pub fn settling_index(norms: &[f64], threshold: f64) -> Option<usize> {
    let last_violation = norms.iter().rposition(|&n| n > threshold);
    match last_violation {
        None => Some(0),
        Some(idx) if idx + 1 < norms.len() => Some(idx + 1),
        Some(_) => None,
    }
}

/// Summary metrics of a disturbance-rejection transient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseMetrics {
    /// Settling time in seconds (first time from which the norm stays at or
    /// below the threshold).
    pub settling_time: f64,
    /// Settling time expressed in samples.
    pub settling_steps: usize,
    /// Peak norm reached during the transient.
    pub peak_norm: f64,
    /// Sample index at which the peak occurs.
    pub peak_step: usize,
}

/// Simulates the autonomous closed loop from `initial_state` and extracts the
/// settling metrics with respect to `threshold`.
///
/// `period` converts sample counts into seconds; `horizon_steps` bounds the
/// simulation.
///
/// # Errors
///
/// * Shape errors from the simulation.
/// * [`ControlError::HorizonExceeded`] if the trajectory does not settle
///   within `horizon_steps` samples (e.g. an unstable closed loop).
pub fn response_metrics(
    a: &Matrix,
    initial_state: &[f64],
    plant_order: usize,
    threshold: f64,
    period: f64,
    horizon_steps: usize,
) -> Result<ResponseMetrics> {
    if !(threshold > 0.0) {
        return Err(ControlError::InvalidModel {
            reason: format!("threshold must be positive, got {threshold}"),
        });
    }
    if !(period > 0.0) {
        return Err(ControlError::InvalidModel {
            reason: format!("period must be positive, got {period}"),
        });
    }
    let norms = norm_trajectory(a, initial_state, plant_order, horizon_steps)?;
    let settling_steps = settling_index(&norms, threshold)
        .ok_or(ControlError::HorizonExceeded { what: "settling", steps: horizon_steps })?;
    let (peak_step, peak_norm) = norms
        .iter()
        .enumerate()
        .fold((0, 0.0), |acc, (i, &n)| if n > acc.1 { (i, n) } else { acc });
    Ok(ResponseMetrics {
        settling_time: settling_steps as f64 * period,
        settling_steps,
        peak_norm,
        peak_step,
    })
}

/// Response (settling) time in seconds of the autonomous closed loop — the
/// quantity the paper denotes ξ when a single communication mode is used
/// throughout the disturbance rejection.
///
/// # Errors
///
/// Same conditions as [`response_metrics`].
pub fn response_time(
    a: &Matrix,
    initial_state: &[f64],
    plant_order: usize,
    threshold: f64,
    period: f64,
    horizon_steps: usize,
) -> Result<f64> {
    Ok(response_metrics(a, initial_state, plant_order, threshold, period, horizon_steps)?
        .settling_time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_trajectory_of_contraction_decays() {
        let a = Matrix::diagonal(&[0.5, 0.5]).unwrap();
        let norms = norm_trajectory(&a, &[1.0, 0.0], 2, 5).unwrap();
        assert_eq!(norms.len(), 6);
        assert!((norms[0] - 1.0).abs() < 1e-12);
        assert!((norms[1] - 0.5).abs() < 1e-12);
        assert!(norms.windows(2).all(|w| w[1] <= w[0]));
    }

    #[test]
    fn norm_trajectory_checks_state_length() {
        let a = Matrix::identity(2);
        assert!(norm_trajectory(&a, &[1.0], 1, 3).is_err());
    }

    #[test]
    fn settling_index_basic_cases() {
        assert_eq!(settling_index(&[1.0, 0.5, 0.05, 0.01, 0.005], 0.1), Some(2));
        // Already below threshold from the start.
        assert_eq!(settling_index(&[0.05, 0.01], 0.1), Some(0));
        // Never settles.
        assert_eq!(settling_index(&[1.0, 0.5, 0.2], 0.1), None);
        // Re-crossing pushes the settling index later.
        assert_eq!(settling_index(&[1.0, 0.05, 0.2, 0.01, 0.0], 0.1), Some(3));
    }

    #[test]
    fn response_metrics_of_decaying_system() {
        let a = Matrix::diagonal(&[0.5]).unwrap();
        let metrics = response_metrics(&a, &[1.0], 1, 0.1, 0.02, 100).unwrap();
        // 1.0 -> 0.5 -> 0.25 -> 0.125 -> 0.0625 (first <= 0.1 at step 4).
        assert_eq!(metrics.settling_steps, 4);
        assert!((metrics.settling_time - 0.08).abs() < 1e-12);
        assert!((metrics.peak_norm - 1.0).abs() < 1e-12);
        assert_eq!(metrics.peak_step, 0);
    }

    #[test]
    fn response_metrics_detects_overshoot_peak() {
        // A non-normal stable map exhibits transient norm growth before decaying.
        let a = Matrix::from_rows(&[&[0.5, 2.0], &[0.0, 0.5]]).unwrap();
        let metrics = response_metrics(&a, &[0.0, 1.0], 2, 0.1, 0.02, 500).unwrap();
        assert!(metrics.peak_norm > 1.0);
        assert!(metrics.peak_step > 0);
    }

    #[test]
    fn unstable_system_exceeds_horizon() {
        let a = Matrix::diagonal(&[1.1]).unwrap();
        assert!(matches!(
            response_metrics(&a, &[1.0], 1, 0.1, 0.02, 50),
            Err(ControlError::HorizonExceeded { .. })
        ));
    }

    #[test]
    fn parameter_validation() {
        let a = Matrix::diagonal(&[0.5]).unwrap();
        assert!(response_metrics(&a, &[1.0], 1, 0.0, 0.02, 10).is_err());
        assert!(response_metrics(&a, &[1.0], 1, 0.1, 0.0, 10).is_err());
    }

    #[test]
    fn response_time_matches_metrics() {
        let a = Matrix::diagonal(&[0.5]).unwrap();
        let t = response_time(&a, &[1.0], 1, 0.1, 0.02, 100).unwrap();
        assert!((t - 0.08).abs() < 1e-12);
    }
}
