//! Library of continuous-time automotive plant models.
//!
//! The DATE 2019 case study evaluates six distributed control applications
//! but does not publish their plant matrices. This module provides a set of
//! standard automotive benchmark plants (widely used in the networked-control
//! literature the paper builds on) from which equivalent Table-I-style timing
//! parameters are derived by simulation. The servo-position model doubles as
//! the substitute for the paper's physical servo-motor rig (Figure 2).

use crate::continuous::ContinuousStateSpace;
use cps_linalg::Matrix;

/// Servo-motor position control plant — the substitute for the experimental
/// rig of Figure 2.
///
/// A torque-driven motor shaft carrying a rigid stick with an end mass. The
/// states are angular position error (rad) and angular velocity (rad/s); the
/// input is the commanded torque (N·m). The slight negative position feedback
/// term models the gravity-induced torque of the off-vertical load that makes
/// the open loop oscillatory, which is what produces the characteristic
/// rise-then-fall dwell-time curve of Figure 3.
pub fn servo_position() -> ContinuousStateSpace {
    // J·θ̈ = −k·θ − b·θ̇ + τ with J = 0.05 kg·m², b = 0.06 N·m·s, k = 1.2 N·m/rad.
    let j = 0.05;
    let b = 0.06;
    let k = 1.2;
    ContinuousStateSpace::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[-k / j, -b / j]]).expect("static model"),
        Matrix::column(&[0.0, 1.0 / j]).expect("static model"),
        Matrix::from_rows(&[&[1.0, 0.0]]).expect("static model"),
    )
    .expect("static model")
}

/// Upright servo rig — the closest synthetic equivalent of the paper's
/// experimental setup (Figure 2): a servo motor holding a rigid stick with a
/// 300 g end mass *upright*, so gravity acts as a destabilising (negative)
/// stiffness.
///
/// States: angular position error from upright (rad) and angular velocity
/// (rad/s); input: motor torque (N·m). The open loop is unstable, which —
/// together with the motor's torque limit (see
/// [`crate::SaturatedSwitchedModel`]) — is what produces the pronounced
/// rise-then-fall dwell-time curve of the paper's Figure 3: while the signal
/// still travels over slow ET communication the load keeps falling and gains
/// kinetic energy, so switching to the TT slot later genuinely costs more
/// dwell time.
pub fn servo_rig_upright() -> ContinuousStateSpace {
    // J·θ̈ = m·g·l·θ − b·θ̇ + τ with m = 0.3 kg, l = 0.3 m, b = 0.01 N·m·s.
    let m = 0.3;
    let l = 0.3;
    let g = 9.81;
    let j = m * l * l;
    let b = 0.01;
    ContinuousStateSpace::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[m * g * l / j, -b / j]]).expect("static model"),
        Matrix::column(&[0.0, 1.0 / j]).expect("static model"),
        Matrix::from_rows(&[&[1.0, 0.0]]).expect("static model"),
    )
    .expect("static model")
}

/// Torque limit (N·m) of the servo rig's motor/amplifier combination.
///
/// Chosen so that holding the load at the 45° disturbance position consumes
/// roughly 70 % of the available torque, as is typical for a small
/// positioning drive; the saturation is what couples the rejection time to
/// the kinetic energy accumulated while waiting in ET communication.
pub const SERVO_RIG_TORQUE_LIMIT: f64 = 1.0;

/// DC-motor speed control plant (electrical + mechanical time constants).
///
/// States: armature current (A) and angular velocity (rad/s); input: armature
/// voltage (V).
pub fn dc_motor_speed() -> ContinuousStateSpace {
    // Standard benchmark values: R = 1 Ω, L = 0.5 H, Kt = Ke = 0.01, J = 0.01, b = 0.1.
    let r = 1.0;
    let l = 0.5;
    let kt = 0.01;
    let ke = 0.01;
    let j = 0.01;
    let b = 0.1;
    ContinuousStateSpace::new(
        Matrix::from_rows(&[&[-r / l, -ke / l], &[kt / j, -b / j]]).expect("static model"),
        Matrix::column(&[1.0 / l, 0.0]).expect("static model"),
        Matrix::from_rows(&[&[0.0, 1.0]]).expect("static model"),
    )
    .expect("static model")
}

/// Inverted-pendulum-on-cart attitude model, linearised about the upright
/// equilibrium (unstable open loop).
///
/// States: pendulum angle (rad) and angular velocity (rad/s); input: the
/// normalised cart force.
pub fn inverted_pendulum() -> ContinuousStateSpace {
    // θ̈ = (g/l)·θ − (1/(m·l²))·u with g = 9.81, l = 0.6, m = 0.3.
    let g = 9.81;
    let l = 0.6;
    let m = 0.3;
    ContinuousStateSpace::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[g / l, 0.0]]).expect("static model"),
        Matrix::column(&[0.0, -1.0 / (m * l * l)]).expect("static model"),
        Matrix::from_rows(&[&[1.0, 0.0]]).expect("static model"),
    )
    .expect("static model")
}

/// Quarter-car active-suspension model (sprung/unsprung mass).
///
/// States: sprung-mass displacement and velocity, unsprung-mass displacement
/// and velocity; input: actuator force between the two masses.
pub fn quarter_car_suspension() -> ContinuousStateSpace {
    // ms = 300 kg, mu = 40 kg, ks = 16 kN/m, kt = 160 kN/m, cs = 1 kN·s/m.
    let ms = 300.0;
    let mu = 40.0;
    let ks = 16_000.0;
    let kt = 160_000.0;
    let cs = 1_000.0;
    ContinuousStateSpace::new(
        Matrix::from_rows(&[
            &[0.0, 1.0, 0.0, 0.0],
            &[-ks / ms, -cs / ms, ks / ms, cs / ms],
            &[0.0, 0.0, 0.0, 1.0],
            &[ks / mu, cs / mu, -(ks + kt) / mu, -cs / mu],
        ])
        .expect("static model"),
        Matrix::column(&[0.0, 1.0 / ms, 0.0, -1.0 / mu]).expect("static model"),
        Matrix::from_rows(&[&[1.0, 0.0, 0.0, 0.0]]).expect("static model"),
    )
    .expect("static model")
}

/// Cruise-control (vehicle longitudinal speed) plant.
///
/// Single state: speed deviation from the set point (m/s); input: normalised
/// traction force.
pub fn cruise_control() -> ContinuousStateSpace {
    // m·v̇ = −b·v + u with m = 1000 kg, b = 50 N·s/m.
    let m = 1000.0;
    let b = 50.0;
    ContinuousStateSpace::new(
        Matrix::from_rows(&[&[-b / m]]).expect("static model"),
        Matrix::column(&[1.0 / m]).expect("static model"),
        Matrix::identity(1),
    )
    .expect("static model")
}

/// Lane-keeping / lateral-dynamics (bicycle-model) plant.
///
/// States: lateral offset (m) and yaw-rate-induced lateral velocity (m/s);
/// input: steering command. A lightly damped oscillatory pair models the
/// vehicle's lateral dynamics at highway speed.
pub fn lane_keeping() -> ContinuousStateSpace {
    ContinuousStateSpace::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[-4.0, -1.6]]).expect("static model"),
        Matrix::column(&[0.0, 2.5]).expect("static model"),
        Matrix::from_rows(&[&[1.0, 0.0]]).expect("static model"),
    )
    .expect("static model")
}

/// Electronic throttle-control plant (motor + return spring + friction).
///
/// States: throttle-plate angle (rad) and angular velocity (rad/s); input:
/// motor torque command.
pub fn throttle_control() -> ContinuousStateSpace {
    // J·θ̈ = −ks·θ − kd·θ̇ + τ with J = 0.002, ks = 0.4, kd = 0.03.
    let j = 0.002;
    let ks = 0.4;
    let kd = 0.03;
    ContinuousStateSpace::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[-ks / j, -kd / j]]).expect("static model"),
        Matrix::column(&[0.0, 1.0 / j]).expect("static model"),
        Matrix::from_rows(&[&[1.0, 0.0]]).expect("static model"),
    )
    .expect("static model")
}

/// Returns the six plants used for the *derived* (simulation-based) variant of
/// the case study, in the order C1…C6.
///
/// The paper's own Table I is available separately as exact published numbers
/// in `cps-core::case_study::paper_table1`; this set exists so the complete
/// pipeline — plant → controller design → characterisation → schedulability →
/// allocation — can be exercised end to end.
pub fn case_study_fleet() -> Vec<(&'static str, ContinuousStateSpace)> {
    vec![
        ("quarter-car suspension", quarter_car_suspension()),
        ("dc-motor speed", dc_motor_speed()),
        ("servo position", servo_position()),
        ("lane keeping", lane_keeping()),
        ("throttle control", throttle_control()),
        ("inverted pendulum", inverted_pendulum()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_plants_are_controllable() {
        for (name, plant) in case_study_fleet() {
            assert!(plant.is_controllable().unwrap(), "{name} must be controllable");
        }
        assert!(cruise_control().is_controllable().unwrap());
    }

    #[test]
    fn plant_orders() {
        assert_eq!(servo_position().order(), 2);
        assert_eq!(dc_motor_speed().order(), 2);
        assert_eq!(inverted_pendulum().order(), 2);
        assert_eq!(quarter_car_suspension().order(), 4);
        assert_eq!(cruise_control().order(), 1);
        assert_eq!(lane_keeping().order(), 2);
        assert_eq!(throttle_control().order(), 2);
    }

    #[test]
    fn inverted_pendulum_is_open_loop_unstable() {
        assert!(!inverted_pendulum().is_stable().unwrap());
    }

    #[test]
    fn servo_rig_is_open_loop_unstable_and_controllable() {
        let rig = servo_rig_upright();
        assert!(!rig.is_stable().unwrap());
        assert!(rig.is_controllable().unwrap());
        assert_eq!(rig.order(), 2);
        // Holding the load at 45 degrees must be feasible within the torque limit.
        let gravity_at_45 = 0.3 * 9.81 * 0.3 * 45.0_f64.to_radians();
        assert!(gravity_at_45 < SERVO_RIG_TORQUE_LIMIT);
    }

    #[test]
    fn servo_is_oscillatory() {
        // Complex eigenvalue pair: the ingredient behind the non-monotonic
        // dwell-time curve of Figure 3.
        let poles = servo_position().poles().unwrap();
        assert!(poles.iter().any(|p| p.im.abs() > 1e-6));
    }

    #[test]
    fn stable_plants_are_stable() {
        assert!(dc_motor_speed().is_stable().unwrap());
        assert!(cruise_control().is_stable().unwrap());
        assert!(lane_keeping().is_stable().unwrap());
        assert!(quarter_car_suspension().is_stable().unwrap());
    }

    #[test]
    fn fleet_has_six_distinct_plants() {
        let fleet = case_study_fleet();
        assert_eq!(fleet.len(), 6);
        for (i, (_, a)) in fleet.iter().enumerate() {
            for (_, b) in fleet.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
