//! State-feedback controller synthesis for the delay-augmented plant model.
//!
//! The paper designs one controller for the event-triggered loop (large,
//! worst-case delay) and one for the time-triggered loop (small deterministic
//! delay) "using optimal control principles"; here that is an
//! infinite-horizon discrete LQR on the delay-augmented system.

use crate::delayed::DelayedLtiSystem;
use crate::design::DesignWorkspace;
use crate::error::{ControlError, Result};
use cps_linalg::{dlqr_with, is_schur_stable, DareOptions, Matrix};

/// Weights for the LQR synthesis on the delay-augmented system.
#[derive(Debug, Clone, PartialEq)]
pub struct LqrWeights {
    /// State weight on the physical plant states (square, `n × n`).
    pub state: Matrix,
    /// Input weight (square, `m × m`).
    pub input: Matrix,
    /// Weight on the memorised previous input in the augmented state.
    /// A small positive value keeps the augmented weight matrix positive
    /// semi-definite without distorting the design.
    pub previous_input: f64,
}

impl LqrWeights {
    /// Identity state weight and scalar input weight `rho` — the workhorse
    /// parametrisation used throughout the case study.
    pub fn identity_with_input_weight(plant_order: usize, rho: f64) -> Self {
        LqrWeights {
            state: Matrix::identity(plant_order),
            input: Matrix::identity(1).scale(rho),
            previous_input: 1e-6,
        }
    }
}

/// A synthesised state-feedback controller for one communication mode.
#[derive(Debug, Clone, PartialEq)]
pub struct StateFeedbackController {
    gain: Matrix,
    closed_loop: Matrix,
    plant_order: usize,
}

impl StateFeedbackController {
    /// Feedback gain `K` on the augmented state (`u = −K·z`).
    pub fn gain(&self) -> &Matrix {
        &self.gain
    }

    /// Closed-loop augmented state matrix `A_aug − B_aug·K`.
    pub fn closed_loop(&self) -> &Matrix {
        &self.closed_loop
    }

    /// Number of physical plant states (the part of the augmented state on
    /// which the switching threshold is evaluated).
    pub fn plant_order(&self) -> usize {
        self.plant_order
    }

    /// Computes the control input for the given augmented state.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `augmented_state` has the wrong length.
    pub fn control(&self, augmented_state: &[f64]) -> Result<Vec<f64>> {
        Ok(self.gain.matvec(augmented_state)?.iter().map(|v| -v).collect())
    }
}

/// Designs an LQR state-feedback controller for the delayed plant.
///
/// The returned controller acts on the augmented state `z = [x; u_prev]` and
/// is guaranteed Schur-stabilising (the function fails otherwise).
///
/// # Errors
///
/// * [`ControlError::InvalidModel`] if the weights have inconsistent shapes.
/// * [`ControlError::DesignFailed`] if the Riccati recursion does not
///   converge or the resulting closed loop is not Schur stable.
///
/// # Example
///
/// ```
/// use cps_control::{design_lqr, plants, DelayedLtiSystem, LqrWeights};
///
/// let plant = plants::servo_position();
/// let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007)?;
/// let ctrl = design_lqr(&sys, &LqrWeights::identity_with_input_weight(2, 0.1))?;
/// assert_eq!(ctrl.gain().shape(), (1, 3));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn design_lqr(
    system: &DelayedLtiSystem,
    weights: &LqrWeights,
) -> Result<StateFeedbackController> {
    design_lqr_with(system, weights, &mut DesignWorkspace::new())
}

/// [`design_lqr`] with a caller-provided [`DesignWorkspace`]: repeated
/// syntheses (fleet design, threshold sweeps) share one set of Riccati
/// temporaries across every DARE iteration and gain computation. Produces
/// exactly the controller of [`design_lqr`].
///
/// # Errors
///
/// As [`design_lqr`].
pub fn design_lqr_with(
    system: &DelayedLtiSystem,
    weights: &LqrWeights,
    workspace: &mut DesignWorkspace,
) -> Result<StateFeedbackController> {
    let n = system.plant_order();
    let m = system.inputs();
    if weights.state.shape() != (n, n) {
        return Err(ControlError::InvalidModel {
            reason: format!("state weight must be {n}x{n}, got {:?}", weights.state.shape()),
        });
    }
    if weights.input.shape() != (m, m) {
        return Err(ControlError::InvalidModel {
            reason: format!("input weight must be {m}x{m}, got {:?}", weights.input.shape()),
        });
    }
    if weights.previous_input < 0.0 {
        return Err(ControlError::InvalidModel {
            reason: "previous-input weight must be non-negative".to_string(),
        });
    }

    let a = system.augmented_a()?;
    let b = system.augmented_b()?;
    // Augmented state weight: blkdiag(Q, previous_input·I).
    let mut q = Matrix::zeros(n + m, n + m);
    q.set_block(0, 0, &weights.state)?;
    q.set_block(n, n, &Matrix::identity(m).scale(weights.previous_input.max(1e-9)))?;

    let riccati = workspace.riccati(system.augmented_order(), m);
    let solution =
        dlqr_with(&a, &b, &q, &weights.input, DareOptions::default(), riccati).map_err(|e| {
            ControlError::DesignFailed { reason: format!("riccati recursion failed: {e}") }
        })?;
    let closed_loop = a.sub_matrix(&b.matmul(&solution.gain)?)?;
    if !is_schur_stable(&closed_loop)? {
        return Err(ControlError::DesignFailed {
            reason: "closed loop is not Schur stable".to_string(),
        });
    }
    Ok(StateFeedbackController { gain: solution.gain, closed_loop, plant_order: n })
}

/// The pair of controllers the paper associates with one application: one for
/// the event-triggered (ET) loop and one for the time-triggered (TT) loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchedControllerPair {
    /// Controller and closed loop used while the signal travels in the
    /// dynamic (event-triggered) segment; designed against the worst-case
    /// ET delay.
    pub et: StateFeedbackController,
    /// Controller and closed loop used while the signal owns a static
    /// (time-triggered) slot; designed against the small deterministic TT
    /// delay.
    pub tt: StateFeedbackController,
    /// The ET-mode plant model (kept for simulation).
    pub et_system: DelayedLtiSystem,
    /// The TT-mode plant model (kept for simulation).
    pub tt_system: DelayedLtiSystem,
}

impl SwitchedControllerPair {
    /// Closed-loop matrix `A₁` of the paper (ET communication).
    pub fn a1(&self) -> &Matrix {
        self.et.closed_loop()
    }

    /// Closed-loop matrix `A₂` of the paper (TT communication).
    pub fn a2(&self) -> &Matrix {
        self.tt.closed_loop()
    }

    /// Number of physical plant states.
    pub fn plant_order(&self) -> usize {
        self.et.plant_order()
    }
}

/// Designs the ET/TT controller pair for a continuous-time plant with LQR.
///
/// `period` is the sampling period `h`; `et_delay` and `tt_delay` are the
/// sensor-to-actuator delays in the two communication modes (the paper uses
/// the worst-case delay for ET and a near-zero deterministic delay for TT).
/// The two modes may use different weights: the ET controller is typically
/// detuned (larger input weight) to remain robust against the
/// non-deterministic ET delay, while the TT controller exploits the
/// deterministic slot timing aggressively.
///
/// # Errors
///
/// Propagates modelling and design failures from [`design_lqr`].
pub fn design_switched_pair(
    plant: &crate::continuous::ContinuousStateSpace,
    period: f64,
    et_delay: f64,
    tt_delay: f64,
    et_weights: &LqrWeights,
    tt_weights: &LqrWeights,
) -> Result<SwitchedControllerPair> {
    design_switched_pair_with(
        plant,
        period,
        et_delay,
        tt_delay,
        et_weights,
        tt_weights,
        &mut DesignWorkspace::new(),
    )
}

/// [`design_switched_pair`] with a caller-provided [`DesignWorkspace`]: both
/// discretisations and both LQR syntheses run on one set of solver
/// temporaries, the shape a fleet-level design loop fans out per worker.
/// Produces exactly the pair of [`design_switched_pair`].
///
/// # Errors
///
/// As [`design_switched_pair`].
pub fn design_switched_pair_with(
    plant: &crate::continuous::ContinuousStateSpace,
    period: f64,
    et_delay: f64,
    tt_delay: f64,
    et_weights: &LqrWeights,
    tt_weights: &LqrWeights,
    workspace: &mut DesignWorkspace,
) -> Result<SwitchedControllerPair> {
    let et_system = DelayedLtiSystem::from_continuous_with(plant, period, et_delay, workspace)?;
    let tt_system = DelayedLtiSystem::from_continuous_with(plant, period, tt_delay, workspace)?;
    let et = design_lqr_with(&et_system, et_weights, workspace)?;
    let tt = design_lqr_with(&tt_system, tt_weights, workspace)?;
    Ok(SwitchedControllerPair { et, tt, et_system, tt_system })
}

/// Designs a state-feedback controller by pole placement on the
/// delay-augmented system.
///
/// `continuous_poles` are desired closed-loop poles in the continuous-time
/// s-plane (real values; one per augmented state, i.e. plant order + 1 for a
/// single-input plant). They are mapped to the discrete plane via
/// `z = e^{s·h}` and placed with Ackermann's formula. This is the synthesis
/// path used for the servo-rig reproduction of Figure 3, where the ET
/// controller is deliberately bandwidth-limited and the TT controller is
/// deliberately fast.
///
/// # Errors
///
/// * [`ControlError::InvalidModel`] if the number of poles does not match the
///   augmented order or the system is not single-input.
/// * [`ControlError::DesignFailed`] if the augmented pair is uncontrollable
///   or the placed closed loop is not Schur stable.
pub fn design_by_pole_placement(
    system: &DelayedLtiSystem,
    continuous_poles: &[f64],
) -> Result<StateFeedbackController> {
    if continuous_poles.len() != system.augmented_order() {
        return Err(ControlError::InvalidModel {
            reason: format!(
                "expected {} poles (augmented order), got {}",
                system.augmented_order(),
                continuous_poles.len()
            ),
        });
    }
    if continuous_poles.iter().any(|p| *p >= 0.0 || !p.is_finite()) {
        return Err(ControlError::InvalidModel {
            reason: "continuous-time poles must be finite and strictly negative".to_string(),
        });
    }
    let h = system.period();
    let discrete_poles: Vec<f64> = continuous_poles.iter().map(|p| (p * h).exp()).collect();
    let a = system.augmented_a()?;
    let b = system.augmented_b()?;
    let gain = crate::pole_placement::place_poles(&a, &b, &discrete_poles)?;
    let closed_loop = a.sub_matrix(&b.matmul(&gain)?)?;
    if !is_schur_stable(&closed_loop)? {
        return Err(ControlError::DesignFailed {
            reason: "pole placement produced an unstable closed loop".to_string(),
        });
    }
    Ok(StateFeedbackController { gain, closed_loop, plant_order: system.plant_order() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;
    use cps_linalg::spectral_radius;

    #[test]
    fn lqr_stabilises_servo_with_delay() {
        let plant = plants::servo_position();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let ctrl = design_lqr(&sys, &LqrWeights::identity_with_input_weight(2, 0.5)).unwrap();
        assert!(spectral_radius(ctrl.closed_loop()).unwrap() < 1.0);
        assert_eq!(ctrl.plant_order(), 2);
    }

    #[test]
    fn lqr_stabilises_unstable_pendulum() {
        let plant = plants::inverted_pendulum();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.005).unwrap();
        let ctrl = design_lqr(&sys, &LqrWeights::identity_with_input_weight(2, 1.0)).unwrap();
        assert!(spectral_radius(ctrl.closed_loop()).unwrap() < 1.0);
    }

    #[test]
    fn control_law_is_negative_feedback() {
        let plant = plants::servo_position();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0).unwrap();
        let ctrl = design_lqr(&sys, &LqrWeights::identity_with_input_weight(2, 0.1)).unwrap();
        let u = ctrl.control(&[1.0, 0.0, 0.0]).unwrap();
        // Positive position error must produce a restoring (negative) torque
        // because the gain's position entry is positive for this plant.
        assert!(u[0] < 0.0);
        assert!(ctrl.control(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn weight_validation() {
        let plant = plants::servo_position();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0).unwrap();
        let bad_state = LqrWeights {
            state: Matrix::identity(3),
            input: Matrix::identity(1),
            previous_input: 0.0,
        };
        assert!(design_lqr(&sys, &bad_state).is_err());
        let bad_input = LqrWeights {
            state: Matrix::identity(2),
            input: Matrix::identity(2),
            previous_input: 0.0,
        };
        assert!(design_lqr(&sys, &bad_input).is_err());
        let bad_prev = LqrWeights {
            state: Matrix::identity(2),
            input: Matrix::identity(1),
            previous_input: -1.0,
        };
        assert!(design_lqr(&sys, &bad_prev).is_err());
    }

    #[test]
    fn switched_pair_gives_two_stable_loops() {
        let plant = plants::servo_position();
        let et_weights = LqrWeights::identity_with_input_weight(2, 10.0);
        let tt_weights = LqrWeights::identity_with_input_weight(2, 0.01);
        let pair =
            design_switched_pair(&plant, 0.02, 0.02, 0.0007, &et_weights, &tt_weights).unwrap();
        assert!(spectral_radius(pair.a1()).unwrap() < 1.0);
        assert!(spectral_radius(pair.a2()).unwrap() < 1.0);
        assert_eq!(pair.a1().shape(), pair.a2().shape());
        assert_eq!(pair.plant_order(), 2);
    }

    #[test]
    fn tt_loop_decays_faster_than_et_loop() {
        // On the servo rig, the TT controller is designed an order of
        // magnitude faster than the deliberately detuned ET controller, so
        // its closed loop must reject a disturbance in fewer samples.
        let plant = plants::servo_rig_upright();
        let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).unwrap();
        let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).unwrap();
        let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).unwrap();
        let x0 = [0.5, 0.0, 0.0];
        let tt_settle =
            crate::response::response_time(tt.closed_loop(), &x0, 2, 0.1, 0.02, 10_000).unwrap();
        let et_settle =
            crate::response::response_time(et.closed_loop(), &x0, 2, 0.1, 0.02, 10_000).unwrap();
        assert!(tt_settle < et_settle, "tt = {tt_settle}, et = {et_settle}");
    }

    #[test]
    fn pole_placement_design_on_servo_rig() {
        let plant = plants::servo_rig_upright();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).unwrap();
        let ctrl = design_by_pole_placement(&sys, &[-6.0, -8.0, -40.0]).unwrap();
        assert!(spectral_radius(ctrl.closed_loop()).unwrap() < 1.0);
        assert_eq!(ctrl.gain().shape(), (1, 3));

        // Validation paths.
        assert!(design_by_pole_placement(&sys, &[-6.0, -8.0]).is_err());
        assert!(design_by_pole_placement(&sys, &[-6.0, 0.5, -40.0]).is_err());
        assert!(design_by_pole_placement(&sys, &[-6.0, f64::NAN, -40.0]).is_err());
    }

    #[test]
    fn identity_weights_constructor() {
        let w = LqrWeights::identity_with_input_weight(3, 2.0);
        assert_eq!(w.state, Matrix::identity(3));
        assert_eq!(w.input[(0, 0)], 2.0);
        assert!(w.previous_input > 0.0);
    }
}
