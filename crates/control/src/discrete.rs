//! Discrete-time LTI systems obtained by zero-order-hold sampling.

use crate::continuous::ContinuousStateSpace;
use crate::error::{ControlError, Result};
use cps_linalg::{discretize_zoh, eigenvalues, is_schur_stable, Complex, Matrix};

/// A discrete-time LTI system `x[k+1] = Φ·x[k] + Γ·u[k]`, `y[k] = C·x[k]`,
/// with an associated sampling period `h`.
///
/// This is the *delay-free* sampled model; the paper's delayed-input model of
/// Eq. (1) lives in [`crate::DelayedLtiSystem`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteStateSpace {
    phi: Matrix,
    gamma: Matrix,
    c: Matrix,
    period: f64,
}

impl DiscreteStateSpace {
    /// Creates a discrete-time model from its matrices.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] on dimension mismatches or a
    /// non-positive sampling period.
    pub fn new(phi: Matrix, gamma: Matrix, c: Matrix, period: f64) -> Result<Self> {
        if !phi.is_square() {
            return Err(ControlError::InvalidModel {
                reason: format!("state matrix must be square, got {:?}", phi.shape()),
            });
        }
        if gamma.rows() != phi.rows() {
            return Err(ControlError::InvalidModel {
                reason: "input matrix row count must match the state dimension".to_string(),
            });
        }
        if c.cols() != phi.cols() {
            return Err(ControlError::InvalidModel {
                reason: "output matrix column count must match the state dimension".to_string(),
            });
        }
        if !(period > 0.0) || !period.is_finite() {
            return Err(ControlError::InvalidModel {
                reason: format!("sampling period must be positive and finite, got {period}"),
            });
        }
        Ok(DiscreteStateSpace { phi, gamma, c, period })
    }

    /// Discretises a continuous-time plant with a zero-order hold and no
    /// input delay.
    ///
    /// # Errors
    ///
    /// Propagates discretisation failures and parameter validation errors.
    pub fn from_continuous(plant: &ContinuousStateSpace, period: f64) -> Result<Self> {
        let (phi, gamma) = discretize_zoh(plant.a(), plant.b(), period)?;
        Self::new(phi, gamma, plant.c().clone(), period)
    }

    /// State-transition matrix `Φ`.
    pub fn phi(&self) -> &Matrix {
        &self.phi
    }

    /// Input matrix `Γ`.
    pub fn gamma(&self) -> &Matrix {
        &self.gamma
    }

    /// Output matrix `C`.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// Sampling period in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Number of states.
    pub fn order(&self) -> usize {
        self.phi.rows()
    }

    /// Number of inputs.
    pub fn inputs(&self) -> usize {
        self.gamma.cols()
    }

    /// Discrete-time poles (eigenvalues of `Φ`).
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-solver failures.
    pub fn poles(&self) -> Result<Vec<Complex>> {
        Ok(eigenvalues(&self.phi)?)
    }

    /// Returns `true` if the open-loop sampled system is Schur stable.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-solver failures.
    pub fn is_stable(&self) -> Result<bool> {
        Ok(is_schur_stable(&self.phi)?)
    }

    /// Advances the state one step: `x⁺ = Φ·x + Γ·u`.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `state` or `input` have the wrong lengths.
    pub fn step(&self, state: &[f64], input: &[f64]) -> Result<Vec<f64>> {
        let free = self.phi.matvec(state)?;
        let forced = self.gamma.matvec(input)?;
        Ok(free.iter().zip(&forced).map(|(a, b)| a + b).collect())
    }

    /// Output equation `y = C·x`.
    ///
    /// # Errors
    ///
    /// Returns shape errors if `state` has the wrong length.
    pub fn output(&self, state: &[f64]) -> Result<Vec<f64>> {
        Ok(self.c.matvec(state)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;

    #[test]
    fn from_continuous_preserves_stability_character() {
        // The damped spring servo is stable; the upright rig is unstable.
        let stable = DiscreteStateSpace::from_continuous(&plants::servo_position(), 0.02).unwrap();
        assert_eq!(stable.order(), 2);
        assert_eq!(stable.inputs(), 1);
        assert!((stable.period() - 0.02).abs() < 1e-15);
        assert!(stable.is_stable().unwrap());
        assert_eq!(stable.poles().unwrap().len(), 2);

        let unstable =
            DiscreteStateSpace::from_continuous(&plants::servo_rig_upright(), 0.02).unwrap();
        assert!(!unstable.is_stable().unwrap());
    }

    #[test]
    fn validation() {
        let phi = Matrix::identity(2);
        let gamma = Matrix::column(&[1.0, 0.0]).unwrap();
        let c = Matrix::identity(2);
        assert!(DiscreteStateSpace::new(Matrix::zeros(2, 3), gamma.clone(), c.clone(), 0.01).is_err());
        assert!(DiscreteStateSpace::new(phi.clone(), Matrix::column(&[1.0]).unwrap(), c.clone(), 0.01)
            .is_err());
        assert!(DiscreteStateSpace::new(phi.clone(), gamma.clone(), Matrix::identity(3), 0.01).is_err());
        assert!(DiscreteStateSpace::new(phi.clone(), gamma.clone(), c.clone(), 0.0).is_err());
        assert!(DiscreteStateSpace::new(phi, gamma, c, f64::NAN).is_err());
    }

    #[test]
    fn step_and_output() {
        let sys = DiscreteStateSpace::new(
            Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]).unwrap(),
            Matrix::column(&[0.005, 0.1]).unwrap(),
            Matrix::from_rows(&[&[1.0, 0.0]]).unwrap(),
            0.1,
        )
        .unwrap();
        let next = sys.step(&[1.0, 0.0], &[2.0]).unwrap();
        assert!((next[0] - 1.01).abs() < 1e-12);
        assert!((next[1] - 0.2).abs() < 1e-12);
        assert_eq!(sys.output(&[3.0, 4.0]).unwrap(), vec![3.0]);
        assert!(sys.step(&[1.0], &[2.0]).is_err());
        assert!(sys.step(&[1.0, 0.0], &[2.0, 1.0]).is_err());
    }

    #[test]
    fn stable_first_order_system() {
        let sys = DiscreteStateSpace::new(
            Matrix::from_rows(&[&[0.9]]).unwrap(),
            Matrix::from_rows(&[&[0.1]]).unwrap(),
            Matrix::identity(1),
            0.01,
        )
        .unwrap();
        assert!(sys.is_stable().unwrap());
    }
}
