//! The shared design-workspace bundle threaded through every controller
//! synthesis of a fleet.
//!
//! The workspace tier of `cps-linalg` ([`RiccatiWorkspace`],
//! [`ExpmWorkspace`], the reusable LU factorisations inside them) removes
//! the per-iteration temporaries of the DARE recursion and the matrix
//! exponential — but the seed design path constructed a fresh workspace per
//! call, so a fleet design still paid the construction cost once per
//! discretisation and once per controller. [`DesignWorkspace`] closes that
//! gap: it is a small dimension-keyed pool of Riccati and exponential
//! workspaces that one design worker owns and threads through *all* of its
//! syntheses ([`crate::DelayedLtiSystem::from_continuous_with`],
//! [`crate::design_lqr_with`], [`crate::design_switched_pair_with`]),
//! re-allocating only when an application with a previously unseen
//! state/input dimension appears.
//!
//! Every operation behind the workspace path is the `_into`/`_with` twin of
//! its allocating reference, so a design threaded through a (warm or cold,
//! shared or private) `DesignWorkspace` is **bit-identical** to the
//! allocating one-shot path — the property the fleet-designer parity suite
//! asserts.

use cps_linalg::{ExpmWorkspace, RiccatiWorkspace};

/// Dimension-keyed pool of solver workspaces for one design worker.
///
/// Fleets are dimensionally heterogeneous (the case study mixes first- and
/// second-order plants), so the pool holds one workspace per distinct
/// dimension, found by linear scan — the pool has a handful of entries at
/// most, and a design performs thousands of solver iterations per lookup.
#[derive(Debug, Default)]
pub struct DesignWorkspace {
    riccati: Vec<RiccatiWorkspace>,
    expm: Vec<ExpmWorkspace>,
}

impl DesignWorkspace {
    /// Creates an empty pool; workspaces are allocated on first use per
    /// dimension.
    pub fn new() -> Self {
        DesignWorkspace::default()
    }

    /// The Riccati workspace for an `n`-state, `m`-input problem, allocated
    /// on first request for these dimensions and reused afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `m == 0` (propagated from
    /// [`RiccatiWorkspace::new`]).
    pub fn riccati(&mut self, n: usize, m: usize) -> &mut RiccatiWorkspace {
        let index = match self.riccati.iter().position(|ws| ws.dims() == (n, m)) {
            Some(index) => index,
            None => {
                self.riccati.push(RiccatiWorkspace::new(n, m));
                self.riccati.len() - 1
            }
        };
        &mut self.riccati[index]
    }

    /// The exponential workspace for `n × n` matrices, allocated on first
    /// request for this order and reused afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (propagated from [`ExpmWorkspace::new`]).
    pub fn expm(&mut self, n: usize) -> &mut ExpmWorkspace {
        let index = match self.expm.iter().position(|ws| ws.dim() == n) {
            Some(index) => index,
            None => {
                self.expm.push(ExpmWorkspace::new(n));
                self.expm.len() - 1
            }
        };
        &mut self.expm[index]
    }

    /// Number of distinct `(state, input)` dimensions the pool currently
    /// holds Riccati workspaces for.
    pub fn riccati_pool_size(&self) -> usize {
        self.riccati.len()
    }

    /// Number of distinct matrix orders the pool currently holds exponential
    /// workspaces for.
    pub fn expm_pool_size(&self) -> usize {
        self.expm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_workspaces_per_dimension() {
        let mut ws = DesignWorkspace::new();
        assert_eq!(ws.riccati_pool_size(), 0);
        assert_eq!(ws.expm_pool_size(), 0);
        assert_eq!(ws.riccati(3, 1).dims(), (3, 1));
        assert_eq!(ws.riccati(3, 1).dims(), (3, 1));
        assert_eq!(ws.riccati(2, 1).dims(), (2, 1));
        assert_eq!(ws.riccati_pool_size(), 2);
        assert_eq!(ws.expm(2).dim(), 2);
        assert_eq!(ws.expm(3).dim(), 3);
        assert_eq!(ws.expm(2).dim(), 2);
        assert_eq!(ws.expm_pool_size(), 2);
    }
}
