//! The paper's delayed-input sampled plant model (Eq. (1)) and its
//! delay-augmented state-space form.
//!
//! For a continuous-time plant `ẋ = A·x + B·u` sampled with period `h` and a
//! constant sensor-to-actuator delay `d ≤ h`, the exact sampled model is
//!
//! ```text
//! x[k+1] = Φ·x[k] + Γ₀·u[k] + Γ₁·u[k−1]
//!   Φ  = e^{A·h}
//!   Γ₀ = ∫₀^{h−d} e^{A·s} ds · B      (portion driven by the fresh input)
//!   Γ₁ = ∫_{h−d}^{h} e^{A·s} ds · B   (portion still driven by the old input)
//! ```
//!
//! Augmenting the state with the previous input, `z[k] = [x[k]; u[k−1]]`,
//! yields an ordinary LTI system on which standard state-feedback design
//! applies:
//!
//! ```text
//! z[k+1] = [[Φ, Γ₁], [0, 0]]·z[k] + [[Γ₀], [I]]·u[k]
//! ```
//!
//! Both the event-triggered loop (worst-case delay, here `d = h`) and the
//! time-triggered loop (small deterministic delay) are represented this way so
//! that the two closed-loop matrices `A₁`/`A₂` of Section III act on the same
//! augmented state and can be switched freely.

use crate::continuous::ContinuousStateSpace;
use crate::design::DesignWorkspace;
use crate::error::{ControlError, Result};
use cps_linalg::{expm_with, input_integral_with, vec_norm, Matrix};

/// Sampled plant with a constant sensor-to-actuator delay (paper Eq. (1)).
#[derive(Debug, Clone, PartialEq)]
pub struct DelayedLtiSystem {
    phi: Matrix,
    gamma0: Matrix,
    gamma1: Matrix,
    c: Matrix,
    period: f64,
    delay: f64,
    n_states: usize,
    n_inputs: usize,
}

impl DelayedLtiSystem {
    /// Discretises `plant` with sampling period `period` and sensor-to-actuator
    /// delay `delay`.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if `period <= 0`, `delay < 0`,
    /// `delay > period`, or any of the quantities is non-finite; linear
    /// algebra failures are propagated.
    pub fn from_continuous(
        plant: &ContinuousStateSpace,
        period: f64,
        delay: f64,
    ) -> Result<Self> {
        Self::from_continuous_with(plant, period, delay, &mut DesignWorkspace::new())
    }

    /// [`DelayedLtiSystem::from_continuous`] with a caller-provided
    /// [`DesignWorkspace`], so a fleet-design loop shares the matrix
    /// exponential temporaries across all of its discretisations. Produces
    /// exactly the model of [`DelayedLtiSystem::from_continuous`] (every
    /// inner operation is the workspace twin of the allocating one).
    ///
    /// # Errors
    ///
    /// As [`DelayedLtiSystem::from_continuous`].
    pub fn from_continuous_with(
        plant: &ContinuousStateSpace,
        period: f64,
        delay: f64,
        workspace: &mut DesignWorkspace,
    ) -> Result<Self> {
        if !(period > 0.0) || !period.is_finite() {
            return Err(ControlError::InvalidModel {
                reason: format!("sampling period must be positive and finite, got {period}"),
            });
        }
        if !(0.0..=period).contains(&delay) || !delay.is_finite() {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "delay must satisfy 0 <= d <= h (h = {period}), got {delay}"
                ),
            });
        }
        let a = plant.a();
        let b = plant.b();
        let phi = expm_with(&a.scale(period), workspace.expm(plant.order()))?;
        let aug = workspace.expm(plant.order() + plant.inputs());
        let gamma0 = input_integral_with(a, b, 0.0, period - delay, aug)?;
        let gamma1 = input_integral_with(a, b, period - delay, period, aug)?;
        Ok(DelayedLtiSystem {
            phi,
            gamma0,
            gamma1,
            c: plant.c().clone(),
            period,
            delay,
            n_states: plant.order(),
            n_inputs: plant.inputs(),
        })
    }

    /// State-transition matrix `Φ`.
    pub fn phi(&self) -> &Matrix {
        &self.phi
    }

    /// Fresh-input matrix `Γ₀`.
    pub fn gamma0(&self) -> &Matrix {
        &self.gamma0
    }

    /// Delayed-input matrix `Γ₁`.
    pub fn gamma1(&self) -> &Matrix {
        &self.gamma1
    }

    /// Output matrix `C`.
    pub fn c(&self) -> &Matrix {
        &self.c
    }

    /// Sampling period `h` in seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Sensor-to-actuator delay `d` in seconds.
    pub fn delay(&self) -> f64 {
        self.delay
    }

    /// Number of plant states (without the input augmentation).
    pub fn plant_order(&self) -> usize {
        self.n_states
    }

    /// Number of control inputs.
    pub fn inputs(&self) -> usize {
        self.n_inputs
    }

    /// Dimension of the delay-augmented state `z = [x; u_prev]`.
    pub fn augmented_order(&self) -> usize {
        self.n_states + self.n_inputs
    }

    /// Delay-augmented state-transition matrix `[[Φ, Γ₁], [0, 0]]`.
    ///
    /// # Errors
    ///
    /// Propagates matrix-assembly failures.
    pub fn augmented_a(&self) -> Result<Matrix> {
        let n = self.n_states;
        let m = self.n_inputs;
        let mut a = Matrix::zeros(n + m, n + m);
        a.set_block(0, 0, &self.phi)?;
        a.set_block(0, n, &self.gamma1)?;
        Ok(a)
    }

    /// Delay-augmented input matrix `[[Γ₀], [I]]`.
    ///
    /// # Errors
    ///
    /// Propagates matrix-assembly failures.
    pub fn augmented_b(&self) -> Result<Matrix> {
        let n = self.n_states;
        let m = self.n_inputs;
        let mut b = Matrix::zeros(n + m, m);
        b.set_block(0, 0, &self.gamma0)?;
        b.set_block(n, 0, &Matrix::identity(m))?;
        Ok(b)
    }

    /// Builds the closed-loop matrix `A_cl = A_aug − B_aug·K` for a
    /// state-feedback gain `K` acting on the augmented state.
    ///
    /// # Errors
    ///
    /// Returns [`ControlError::InvalidModel`] if `K` has the wrong shape.
    pub fn closed_loop(&self, gain: &Matrix) -> Result<Matrix> {
        if gain.shape() != (self.n_inputs, self.augmented_order()) {
            return Err(ControlError::InvalidModel {
                reason: format!(
                    "gain must be {}x{}, got {:?}",
                    self.n_inputs,
                    self.augmented_order(),
                    gain.shape()
                ),
            });
        }
        let a = self.augmented_a()?;
        let b = self.augmented_b()?;
        Ok(a.sub_matrix(&b.matmul(gain)?)?)
    }

    /// Advances the plant one sampling period:
    /// `x⁺ = Φ·x + Γ₀·u + Γ₁·u_prev`.
    ///
    /// # Errors
    ///
    /// Returns shape errors if the slices have the wrong lengths.
    pub fn step(&self, state: &[f64], input: &[f64], previous_input: &[f64]) -> Result<Vec<f64>> {
        let free = self.phi.matvec(state)?;
        let fresh = self.gamma0.matvec(input)?;
        let old = self.gamma1.matvec(previous_input)?;
        Ok(free
            .iter()
            .zip(&fresh)
            .zip(&old)
            .map(|((a, b), c)| a + b + c)
            .collect())
    }
}

/// Euclidean norm of the *plant* portion of an augmented state vector.
///
/// The paper's switching condition `‖x‖ > E_th` is evaluated on the physical
/// plant states only, not on the memorised previous input, so simulations on
/// the augmented state must project before taking the norm.
pub fn plant_state_norm(augmented_state: &[f64], plant_order: usize) -> f64 {
    vec_norm(&augmented_state[..plant_order.min(augmented_state.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plants;
    use cps_linalg::discretize_zoh;

    #[test]
    fn zero_delay_matches_plain_zoh() {
        let plant = plants::dc_motor_speed();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0).unwrap();
        let (phi, gamma) = discretize_zoh(plant.a(), plant.b(), 0.02).unwrap();
        assert!(sys.phi().approx_eq(&phi, 1e-12));
        assert!(sys.gamma0().approx_eq(&gamma, 1e-12));
        assert!(sys.gamma1().max_abs() < 1e-15);
    }

    #[test]
    fn full_delay_moves_all_input_to_gamma1() {
        let plant = plants::dc_motor_speed();
        let h = 0.02;
        let sys = DelayedLtiSystem::from_continuous(&plant, h, h).unwrap();
        let (_, gamma) = discretize_zoh(plant.a(), plant.b(), h).unwrap();
        assert!(sys.gamma0().max_abs() < 1e-15);
        assert!(sys.gamma1().approx_eq(&gamma, 1e-12));
    }

    #[test]
    fn gamma_split_sums_to_full_input_matrix() {
        let plant = plants::servo_position();
        let h = 0.02;
        let d = 0.0007;
        let sys = DelayedLtiSystem::from_continuous(&plant, h, d).unwrap();
        let (_, gamma) = discretize_zoh(plant.a(), plant.b(), h).unwrap();
        let sum = sys.gamma0().add_matrix(sys.gamma1()).unwrap();
        assert!(sum.approx_eq(&gamma, 1e-10));
        assert!((sys.period() - h).abs() < 1e-15);
        assert!((sys.delay() - d).abs() < 1e-15);
    }

    #[test]
    fn augmented_matrices_have_expected_structure() {
        let plant = plants::servo_position();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.01).unwrap();
        let a = sys.augmented_a().unwrap();
        let b = sys.augmented_b().unwrap();
        assert_eq!(a.shape(), (3, 3));
        assert_eq!(b.shape(), (3, 1));
        // Bottom block row of A is zero, bottom of B is identity.
        assert_eq!(a[(2, 0)], 0.0);
        assert_eq!(a[(2, 2)], 0.0);
        assert_eq!(b[(2, 0)], 1.0);
        assert_eq!(sys.augmented_order(), 3);
        assert_eq!(sys.plant_order(), 2);
        assert_eq!(sys.inputs(), 1);
    }

    #[test]
    fn parameter_validation() {
        let plant = plants::servo_position();
        assert!(DelayedLtiSystem::from_continuous(&plant, 0.0, 0.0).is_err());
        assert!(DelayedLtiSystem::from_continuous(&plant, 0.02, -0.001).is_err());
        assert!(DelayedLtiSystem::from_continuous(&plant, 0.02, 0.03).is_err());
        assert!(DelayedLtiSystem::from_continuous(&plant, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn closed_loop_shape_check() {
        let plant = plants::servo_position();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.01).unwrap();
        let bad_gain = Matrix::zeros(1, 2);
        assert!(sys.closed_loop(&bad_gain).is_err());
        let gain = Matrix::zeros(1, 3);
        let a_cl = sys.closed_loop(&gain).unwrap();
        assert!(a_cl.approx_eq(&sys.augmented_a().unwrap(), 1e-15));
    }

    #[test]
    fn step_matches_augmented_dynamics() {
        let plant = plants::servo_position();
        let sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.01).unwrap();
        let x = [0.3, -0.1];
        let u = [0.5];
        let u_prev = [-0.2];
        let direct = sys.step(&x, &u, &u_prev).unwrap();

        let a = sys.augmented_a().unwrap();
        let b = sys.augmented_b().unwrap();
        let z = [x[0], x[1], u_prev[0]];
        let az = a.matvec(&z).unwrap();
        let bu = b.matvec(&u).unwrap();
        for i in 0..2 {
            assert!((direct[i] - (az[i] + bu[i])).abs() < 1e-12);
        }
        assert!(sys.step(&x, &[0.5, 0.1], &u_prev).is_err());
    }

    #[test]
    fn plant_state_norm_projects_augmentation_away() {
        let z = [3.0, 4.0, 100.0];
        assert!((plant_state_norm(&z, 2) - 5.0).abs() < 1e-12);
        assert!((plant_state_norm(&z, 3) - (9.0f64 + 16.0 + 10_000.0).sqrt()).abs() < 1e-12);
        // Degenerate: plant order larger than the vector falls back gracefully.
        assert!((plant_state_norm(&[3.0, 4.0], 5) - 5.0).abs() < 1e-12);
    }
}
