//! Error type for the control-theory substrate.

use cps_linalg::LinalgError;
use std::fmt;

/// Errors reported by modelling, design and analysis routines.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// A model parameter violates its precondition (non-positive sampling
    /// period, delay larger than the period, mismatched dimensions, ...).
    InvalidModel {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// A synthesis procedure could not produce a stabilising controller.
    DesignFailed {
        /// Human-readable description of the failure.
        reason: String,
    },
    /// A simulation or analysis horizon was exhausted before the observed
    /// quantity (settling, convergence) was reached.
    HorizonExceeded {
        /// The quantity that was being awaited.
        what: &'static str,
        /// Number of simulation steps performed.
        steps: usize,
    },
}

impl fmt::Display for ControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ControlError::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            ControlError::DesignFailed { reason } => write!(f, "controller design failed: {reason}"),
            ControlError::HorizonExceeded { what, steps } => {
                write!(f, "{what} not reached within {steps} simulation steps")
            }
        }
    }
}

impl std::error::Error for ControlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ControlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ControlError {
    fn from(e: LinalgError) -> Self {
        ControlError::Linalg(e)
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, ControlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = ControlError::InvalidModel { reason: "h must be positive".into() };
        assert!(e.to_string().contains("invalid model"));
        let e = ControlError::DesignFailed { reason: "uncontrollable".into() };
        assert!(e.to_string().contains("design failed"));
        let e = ControlError::HorizonExceeded { what: "settling", steps: 10 };
        assert!(e.to_string().contains("10"));
        let e: ControlError = LinalgError::Singular { pivot: 0 }.into();
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn source_is_chained_for_linalg() {
        use std::error::Error;
        let e: ControlError = LinalgError::Singular { pivot: 0 }.into();
        assert!(e.source().is_some());
        let e = ControlError::InvalidModel { reason: "x".into() };
        assert!(e.source().is_none());
    }
}
