//! # cps-bench
//!
//! Criterion benchmark harness for the DATE 2019 reproduction. Each bench
//! target regenerates the data behind one table or figure of the paper (see
//! `DESIGN.md` §5 and `EXPERIMENTS.md`) and additionally measures how long
//! the corresponding analysis or simulation takes:
//!
//! * `fig3_dwell_wait` — experiment E1 (Figure 3).
//! * `fig4_models` — experiment E2 (Figure 4).
//! * `table1_analysis` — experiment E3 (Table I, published and derived).
//! * `slot_allocation` — experiment E4 (3 vs. 5 slots, +67 %).
//! * `fig5_cosim` — experiment E5 (Figure 5 co-simulation).
//! * `ablation_fixed_point`, `ablation_allocation`, `ablation_segments` —
//!   ablations A1–A3.
//! * `kernel_step`, `scenario_throughput`, `fleet_design`, `characterize` —
//!   the perf benches: fused step kernel vs. the seed path, batched scenario
//!   throughput, design-tier costs (controller synthesis, shared vs. cloned
//!   engine spin-up, workspace vs. allocating DARE) and kernel-based vs.
//!   full-horizon characterisation.
//! * `allocation_opt` — the exact branch-and-bound against the greedy sweep,
//!   plus the parallel portfolio rungs on a contended 24-app fleet.
//!
//! `./ci.sh perf` runs the perf set with `CPS_BENCH_JSON` pointed at
//! `BENCH_results.json`, maintaining the repository's machine-readable
//! performance trajectory (bench name → mean ns/iter).
//!
//! The library part only hosts shared helpers for the bench targets.

#![forbid(unsafe_code)]

use cps_sched::AppTimingParams;

/// Generates a pseudo-random fleet of `n` applications with plausible timing
/// parameters, used by the ablation benches. The generator is deterministic
/// for a given seed so benchmark runs are reproducible.
pub fn synthetic_fleet(n: usize, seed: u64) -> Vec<AppTimingParams> {
    // Small deterministic LCG so the bench crate does not need rand here.
    let mut state = seed.max(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..n)
        .map(|i| {
            let xi_tt = 0.3 + next() * 2.0;
            let xi_et = xi_tt * (2.0 + next() * 3.0);
            let xi_m = xi_tt * (1.0 + next() * 0.8);
            let k_p = xi_et * (0.1 + next() * 0.3);
            let deadline = xi_m + k_p + 1.0 + next() * 4.0;
            let inter_arrival = deadline + 5.0 + next() * 200.0;
            AppTimingParams::new(
                format!("A{i}"),
                inter_arrival,
                deadline,
                xi_tt,
                xi_et,
                xi_m,
                k_p,
            )
            .expect("generated parameters satisfy the invariants")
        })
        .collect()
}

/// A tighter variant of [`synthetic_fleet`]: deadlines leave far less slack
/// over the dwell peak, so slot packing is contended and the exact search
/// has a non-trivial optimality proof — the regime the portfolio bench
/// rungs measure. Deterministic for a given seed.
pub fn synthetic_fleet_tight(n: usize, seed: u64) -> Vec<AppTimingParams> {
    let mut state = seed.max(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    (0..n)
        .map(|i| {
            let xi_tt = 0.2 + next() * 1.5;
            let xi_et = xi_tt * (2.0 + next() * 4.0);
            let xi_m = xi_tt * (1.0 + next() * 1.2);
            let k_p = xi_et * (0.05 + next() * 0.4);
            let deadline = xi_m + k_p + 0.2 + next() * 3.0;
            let inter_arrival = deadline + 2.0 + next() * 100.0;
            AppTimingParams::new(
                format!("T{i}"),
                inter_arrival,
                deadline,
                xi_tt,
                xi_et,
                xi_m,
                k_p,
            )
            .expect("generated parameters satisfy the invariants")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_fleet_is_valid_and_deterministic() {
        let a = synthetic_fleet(16, 7);
        let b = synthetic_fleet(16, 7);
        assert_eq!(a.len(), 16);
        assert_eq!(a, b);
        let c = synthetic_fleet(16, 8);
        assert_ne!(a, c);
        for app in &a {
            assert!(app.xi_tt <= app.xi_et);
            assert!(app.xi_tt <= app.xi_m);
            assert!(app.deadline <= app.inter_arrival);
        }
    }

    #[test]
    fn tight_fleet_is_valid_deterministic_and_tighter() {
        let a = synthetic_fleet_tight(24, 9015);
        assert_eq!(a, synthetic_fleet_tight(24, 9015));
        assert_eq!(a.len(), 24);
        for app in &a {
            assert!(app.xi_tt <= app.xi_et);
            assert!(app.xi_tt <= app.xi_m);
            assert!(app.deadline <= app.inter_arrival);
        }
        // "Tight" means less deadline slack over the dwell floor on average,
        // which is what makes slot packing contended.
        let slack = |fleet: &[AppTimingParams]| {
            fleet.iter().map(|app| app.deadline - app.xi_m - app.k_p).sum::<f64>()
                / fleet.len() as f64
        };
        assert!(slack(&a) < slack(&synthetic_fleet(24, 9015)));
    }
}
