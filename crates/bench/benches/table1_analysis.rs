//! Experiment E3 — regenerates Table I (published values) together with the
//! per-application worst-case response-time analysis on the paper's slot
//! allocation, and benchmarks the response-time analysis.

use cps_core::{case_study, experiments};
use cps_sched::{analyze_slot, ModelKind, WaitTimeMethod};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let apps = case_study::paper_table1();
    println!("\n=== Table I (published timing parameters, seconds) ===");
    println!("{}", experiments::render_table(&apps));

    // Worst-case response times on the paper's non-monotonic slot allocation.
    let outcome = case_study::run_slot_allocation(&apps).expect("allocation must succeed");
    println!("=== Worst-case response times per slot (non-monotonic model) ===");
    for (slot_index, slot) in outcome.non_monotonic.slots.iter().enumerate() {
        let analysis =
            analyze_slot(&apps, slot, ModelKind::NonMonotonic, WaitTimeMethod::ClosedFormBound)
                .expect("analysis must succeed");
        for entry in &analysis.analyses {
            println!(
                "S{} {:<4} wait = {:>6.3} s, response = {:>6.3} s, deadline = {:>5.2} s, slack = {:>6.3} s",
                slot_index + 1,
                entry.application,
                entry.max_wait_time,
                entry.worst_case_response_time,
                entry.deadline,
                entry.slack()
            );
        }
    }
    println!();

    let slot_all: Vec<usize> = (0..apps.len()).collect();
    let mut group = c.benchmark_group("table1");
    group.bench_function("analyze_full_slot_non_monotonic", |b| {
        b.iter(|| {
            analyze_slot(&apps, &slot_all, ModelKind::NonMonotonic, WaitTimeMethod::ClosedFormBound)
                .expect("analysis must succeed")
        })
    });
    group.bench_function("analyze_full_slot_exact_fixed_point", |b| {
        b.iter(|| {
            analyze_slot(&apps, &slot_all, ModelKind::NonMonotonic, WaitTimeMethod::ExactFixedPoint)
                .expect("analysis must succeed")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
