//! Microbenchmark: the fused allocation-free [`StepKernel`] versus the
//! seed's allocating per-step path.
//!
//! The seed `PlantSimulator::step` allocated 4–6 fresh `Vec<f64>`s and
//! re-validated shapes on every step (augmented-state clone, controller
//! output, three matrix–vector products and their sum). The kernel performs
//! one in-place matrix–vector product on a precompiled closed-loop matrix.
//! This bench times both on the servo-rig application and prints the
//! measured speedup (the acceptance target is ≥5×).
//!
//! The lane-batched rungs time a [`cps_control::BatchStepKernel`] advancing
//! K lanes per period (one lane-batched matmul) against K sequential scalar
//! kernels, both uniform and fully divergent; the printed batched-vs-scalar
//! speedup has a ≥3× acceptance target.

use cps_control::{
    design_by_pole_placement, plants, CommunicationMode, DelayedLtiSystem, LaneStep,
    StateFeedbackController, StepKernel,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

fn servo_parts(
) -> (DelayedLtiSystem, DelayedLtiSystem, StateFeedbackController, StateFeedbackController) {
    let plant = plants::servo_rig_upright();
    let et_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.02).expect("ET model");
    let tt_sys = DelayedLtiSystem::from_continuous(&plant, 0.02, 0.0007).expect("TT model");
    let et = design_by_pole_placement(&et_sys, &[-0.7, -0.8, -40.0]).expect("ET design");
    let tt = design_by_pole_placement(&tt_sys, &[-6.0, -8.0, -40.0]).expect("TT design");
    (et_sys, tt_sys, et, tt)
}

/// The seed's per-step arithmetic, reproduced verbatim: every step clones
/// the state into an augmented vector, runs the (allocating) control law and
/// the (allocating, shape-revalidated) three-term plant update.
struct NaiveSimulator {
    et_system: DelayedLtiSystem,
    tt_system: DelayedLtiSystem,
    et_controller: StateFeedbackController,
    tt_controller: StateFeedbackController,
    state: Vec<f64>,
    previous_input: Vec<f64>,
}

impl NaiveSimulator {
    fn step(&mut self, mode: CommunicationMode) {
        let (system, controller) = match mode {
            CommunicationMode::EventTriggered => (&self.et_system, &self.et_controller),
            CommunicationMode::TimeTriggered => (&self.tt_system, &self.tt_controller),
        };
        let mut augmented = self.state.clone();
        augmented.extend_from_slice(&self.previous_input);
        let input = controller.control(&augmented).expect("validated model");
        self.state =
            system.step(&self.state, &input, &self.previous_input).expect("validated model");
        self.previous_input = input;
    }
}

/// Interval at which the benchmark re-injects the disturbance. A settled
/// loop decays into subnormal floats whose microcoded arithmetic is ~50×
/// slower and would dominate both paths equally; recurring disturbances are
/// also what the paper's workload actually looks like.
const REINJECT_EVERY: u32 = 256;

fn measure<F: FnMut(u32)>(steps: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for i in 0..steps {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / f64::from(steps)
}

fn bench(c: &mut Criterion) {
    let (et_sys, tt_sys, et, tt) = servo_parts();
    let mut kernel = StepKernel::new(&et_sys, &tt_sys, &et, &tt).expect("kernel compiles");
    kernel.inject_disturbance(&[45.0_f64.to_radians(), 0.0]).expect("disturbance");
    let mut naive = NaiveSimulator {
        et_system: et_sys,
        tt_system: tt_sys,
        et_controller: et,
        tt_controller: tt,
        state: vec![45.0_f64.to_radians(), 0.0],
        previous_input: vec![0.0],
    };

    let disturbance = [45.0_f64.to_radians(), 0.0];

    // Direct head-to-head measurement, printed so every bench run records
    // the speedup alongside the criterion numbers.
    const STEPS: u32 = 200_000;
    let naive_ns = measure(STEPS, |i| {
        if i % REINJECT_EVERY == 0 {
            naive.state[0] += disturbance[0];
        }
        naive.step(black_box(CommunicationMode::TimeTriggered));
    });
    let kernel_ns = measure(STEPS, |i| {
        if i % REINJECT_EVERY == 0 {
            kernel.inject_disturbance(&disturbance).expect("disturbance");
        }
        kernel.step(black_box(CommunicationMode::TimeTriggered));
    });
    println!("\n=== StepKernel vs. seed per-step path (servo rig, TT mode) ===");
    println!("naive step:  {naive_ns:>8.1} ns/step (allocating, shape-revalidated)");
    println!("kernel step: {kernel_ns:>8.1} ns/step (fused in-place matvec)");
    println!("speedup:     {:>8.1}x\n", naive_ns / kernel_ns);

    let mut group = c.benchmark_group("kernel_step");
    group.bench_function("naive_alloc_step", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if i % REINJECT_EVERY == 0 {
                naive.state[0] += disturbance[0];
            }
            naive.step(black_box(CommunicationMode::TimeTriggered))
        })
    });
    group.bench_function("fused_kernel_step", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if i % REINJECT_EVERY == 0 {
                kernel.inject_disturbance(&disturbance).expect("disturbance");
            }
            kernel.step(black_box(CommunicationMode::TimeTriggered))
        })
    });
    group.bench_function("fused_kernel_step_mode_switching", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            if i % REINJECT_EVERY == 0 {
                kernel.inject_disturbance(&disturbance).expect("disturbance");
            }
            let mode = if i & 1 == 0 {
                CommunicationMode::TimeTriggered
            } else {
                CommunicationMode::EventTriggered
            };
            kernel.step(mode)
        })
    });

    // Lane-batched stepping vs. K sequential scalar kernels: one iteration
    // advances all K lanes by one period. The batched path is one
    // lane-batched matmul (`step_uniform`); the scalar reference steps K
    // independent kernels in a loop. Both re-inject the disturbance into
    // every lane on the same cadence so neither decays into subnormals.
    // Acceptance target: the per-lane cost of the batched path is ≥3× lower.
    let matrices = std::sync::Arc::clone(kernel.matrices());
    for lanes in [4usize, 8, 16] {
        let mut scalars: Vec<StepKernel> = (0..lanes).map(|_| matrices.kernel()).collect();
        let mut batched = matrices.batch_kernel(lanes);
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            scalar.inject_disturbance(&disturbance).expect("disturbance");
            batched.inject_lane_disturbance_scaled(lane, &disturbance, 1.0).expect("lanes");
        }

        let scalar_ns = {
            let mut i = 0u32;
            measure(STEPS, |_| {
                i = i.wrapping_add(1);
                for scalar in &mut scalars {
                    if i % REINJECT_EVERY == 0 {
                        scalar.inject_disturbance(&disturbance).expect("disturbance");
                    }
                    scalar.step(black_box(CommunicationMode::TimeTriggered));
                }
            })
        };
        let batched_ns = {
            let mut i = 0u32;
            measure(STEPS, |_| {
                i = i.wrapping_add(1);
                if i % REINJECT_EVERY == 0 {
                    for lane in 0..lanes {
                        batched
                            .inject_lane_disturbance_scaled(lane, &disturbance, 1.0)
                            .expect("disturbance");
                    }
                }
                batched.step_uniform(black_box(LaneStep::TimeTriggered));
            })
        };
        println!("=== BatchStepKernel vs. {lanes} sequential StepKernels (servo rig) ===");
        println!("scalar x{lanes}:  {scalar_ns:>8.1} ns/period ({:.1} ns/lane)", scalar_ns / lanes as f64);
        println!("batched x{lanes}: {batched_ns:>8.1} ns/period ({:.1} ns/lane)", batched_ns / lanes as f64);
        println!("speedup:    {:>8.1}x (target >= 3x)\n", scalar_ns / batched_ns);

        group.bench_with_input(
            BenchmarkId::new("scalar_lane_loop", lanes),
            &lanes,
            |b, _| {
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    for scalar in &mut scalars {
                        if i % REINJECT_EVERY == 0 {
                            scalar.inject_disturbance(&disturbance).expect("disturbance");
                        }
                        scalar.step(black_box(CommunicationMode::TimeTriggered));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_lanes", lanes),
            &lanes,
            |b, _| {
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    if i % REINJECT_EVERY == 0 {
                        for lane in 0..lanes {
                            batched
                                .inject_lane_disturbance_scaled(lane, &disturbance, 1.0)
                                .expect("disturbance");
                        }
                    }
                    batched.step_uniform(black_box(LaneStep::TimeTriggered));
                })
            },
        );
        // The divergent period: every lane peels off to the strided scalar
        // kernel (worst case for the batch — it must stay close to the
        // scalar loop, never catastrophically slower).
        group.bench_with_input(
            BenchmarkId::new("batched_lanes_divergent", lanes),
            &lanes,
            |b, _| {
                let ops: Vec<LaneStep> = (0..lanes)
                    .map(|lane| match lane % 3 {
                        0 => LaneStep::EventTriggered,
                        1 => LaneStep::TimeTriggered,
                        _ => LaneStep::Hold,
                    })
                    .collect();
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    if i % REINJECT_EVERY == 0 {
                        for lane in 0..lanes {
                            batched
                                .inject_lane_disturbance_scaled(lane, &disturbance, 1.0)
                                .expect("disturbance");
                        }
                    }
                    batched.step_lanes(black_box(&ops));
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
