//! Service round-trip latency: what one design request costs through the
//! full serving stack (frame encode → socket → worker → cache hit → frame
//! decode), and what the client's connection pool buys over the old
//! one-connection-per-attempt behaviour, on both transports.
//!
//! The measured request is always an artifact-cache *hit* — the first
//! request primes the cache — so the benchmark isolates transport and
//! protocol cost from design compute. `reuse` keeps one pooled persistent
//! connection across iterations; `fresh` forces a connect/handshake per
//! request (the pre-pool client), making the pair a direct reuse-vs-fresh
//! comparison.

use cps_serve::{
    design_job, DesignClient, DesignServer, Endpoint, Job, Outcome, RequestOptions, ServerConfig,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;

fn nominal_job() -> Job {
    Job::Design(design_job(
        &cps_core::case_study::derived_fleet_specs(),
        &cps_sched::AllocatorConfig::default(),
        &cps_flexray::FlexRayConfig::paper_case_study(),
    ))
}

fn roundtrip(client: &mut DesignClient) {
    match client.request(nominal_job(), RequestOptions::default()).expect("request") {
        Outcome::Design(result) => assert!(result.certified_optimal),
        other => panic!("expected a design outcome: {other:?}"),
    }
}

fn bench(c: &mut Criterion) {
    let socket =
        std::env::temp_dir().join(format!("cps-serve-bench-{}.sock", std::process::id()));
    let mut config = ServerConfig::new(&socket);
    config.tcp_addr = Some("127.0.0.1:0".parse().expect("loopback"));
    let mut server = DesignServer::start(config).expect("server starts");
    let tcp = server.tcp_addr().expect("tcp bound");

    // Prime the artifact cache: every measured request is a cache hit.
    roundtrip(&mut DesignClient::new(&socket));

    let endpoints =
        [("unix", Endpoint::Unix(socket.clone())), ("tcp", Endpoint::Tcp(tcp))];

    println!("\n=== Service round-trip (cached design request) ===");
    for (label, endpoint) in &endpoints {
        for (mode, reuse) in [("reuse", true), ("fresh", false)] {
            let mut client = DesignClient::connect_to(endpoint.clone()).with_reuse(reuse);
            roundtrip(&mut client); // warm the pool / page in the path
            let rounds = 200u32;
            let start = Instant::now();
            for _ in 0..rounds {
                roundtrip(&mut client);
            }
            let elapsed = start.elapsed();
            println!(
                "{label:>5} {mode:<6} {:>8.1} req/s ({:>7.1} µs/request)",
                f64::from(rounds) / elapsed.as_secs_f64(),
                elapsed.as_secs_f64() * 1e6 / f64::from(rounds),
            );
        }
    }
    println!();

    let mut group = c.benchmark_group("service_roundtrip");
    group.sample_size(20);
    for (label, endpoint) in &endpoints {
        for (mode, reuse) in [("reuse", true), ("fresh", false)] {
            let mut client = DesignClient::connect_to(endpoint.clone()).with_reuse(reuse);
            roundtrip(&mut client);
            group.bench_function(format!("{label}_{mode}"), |b| {
                b.iter(|| roundtrip(&mut client))
            });
        }
    }
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
