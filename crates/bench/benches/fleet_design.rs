//! Fleet-design performance benchmark: the design tier introduced by the
//! shared-immutable [`DesignedFleet`] split and the fleet-level
//! [`FleetDesigner`] pipeline.
//!
//! Measures the rungs of the design-cost ladder:
//!
//! * `design_controllers` — full controller synthesis of the six-application
//!   derived fleet (pole placement / DARE, discretisation, kernel fusion),
//!   now routed through the workspace-threaded designer.
//! * `designer_sequential_24` / `designer_parallel_24` — fleet-design
//!   throughput on a 24-application scaled fleet, one worker vs the
//!   machine's available parallelism (on the single-core CI container both
//!   run the same sequential path; re-measure on a multi-core host for the
//!   speed-up).
//! * `bus_sweep_shared_characterization` vs
//!   `bus_sweep_recharacterize_baseline` — the bus-configuration sweep with
//!   one shared characterisation pass ([`BusConfigSweep::scenarios_for`])
//!   against the naive flow that re-characterises the fleet for every
//!   candidate bus (what sweeping without the designer costs).
//! * `bus_sweep_fleet_cached` — the same sweep through the fleet's
//!   computed-once characterisation table
//!   ([`BusConfigSweep::scenarios_for_fleet`]): repeated sweep *calls* skip
//!   even the single pass, so the rung measures pure expansion cost.
//! * `bus_sweep_geometry_3axis` — the full bus design space (cycle length ×
//!   static-segment size × slot length Ψ) expanded over the cached table,
//!   with the Ψ-derived per-slot transmission overhead live in both the
//!   allocator matrix and the branch-and-bound optimum.
//! * `engine_spinup_clone_baseline` — what a scenario worker used to pay:
//!   deep-clone every [`cps_core::ControlApplication`], re-validate, rebuild.
//! * `engine_spinup_shared` — what a worker pays now: a [`CoSimulation`]
//!   over the `Arc`-shared design (mutable scratch only).
//!
//! Plus the linalg design tier: the workspace DARE solver against the
//! allocating reference path.

use cps_core::{case_study, BusConfigSweep, CoSimulation, DesignedFleet, FleetDesigner};
use cps_flexray::FlexRayConfig;
use cps_linalg::{
    solve_dare, solve_dare_reference, solve_dare_with, DareOptions, Matrix, RiccatiWorkspace,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let apps = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&apps).expect("table derivation");
    let allocation = cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default())
        .expect("allocation");
    let bus = FlexRayConfig::paper_case_study();
    let fleet = Arc::new(
        DesignedFleet::new(apps.clone(), allocation.clone(), bus).expect("fleet freeze"),
    );

    let mut group = c.benchmark_group("fleet_design");
    group.sample_size(10);
    group.bench_function("design_controllers", |b| {
        b.iter(|| case_study::derived_fleet().expect("fleet design"))
    });

    // 24-application fleet-design throughput: one worker against the
    // machine's available parallelism, bit-identical outputs.
    let specs24 = case_study::scaled_fleet_specs(24);
    let sequential = FleetDesigner::sequential();
    let parallel = FleetDesigner::new();
    group.bench_function("designer_sequential_24", |b| {
        b.iter(|| sequential.design(specs24.clone()).expect("24-app design"))
    });
    group.bench_function("designer_parallel_24", |b| {
        b.iter(|| parallel.design(specs24.clone()).expect("24-app design"))
    });

    // Bus-configuration sweep: the designer characterises the fleet once
    // and reuses the timing table for every candidate bus; the baseline
    // re-runs the dwell/wait characterisation per candidate — the cost the
    // sweep paid before characterisation sharing.
    let allocator = cps_sched::AllocatorConfig::default();
    let sweep = BusConfigSweep::new(bus)
        .with_cycle_lengths(vec![0.005, 0.010])
        .with_static_slot_counts(vec![6, 10]);
    let bus_count = sweep.configs().len();
    assert!(bus_count >= 4, "the sweep must span several candidate buses");
    let shared = sweep
        .scenarios_for(&parallel, &apps, &allocator, 1.0)
        .expect("sweep expansion");
    assert!(!shared.is_empty());
    group.bench_function("bus_sweep_shared_characterization", |b| {
        b.iter(|| {
            sweep
                .scenarios_for(&parallel, &apps, &allocator, 1.0)
                .expect("sweep expansion")
        })
    });
    group.bench_function("bus_sweep_recharacterize_baseline", |b| {
        b.iter(|| {
            // One fresh characterisation plus that bus's own expansion per
            // candidate, as a sweep without the shared pass would pay.
            sweep
                .configs()
                .into_iter()
                .map(|bus_config| {
                    let table = case_study::derive_table(&apps).expect("characterisation");
                    BusConfigSweep::new(bus_config).scenarios(&table, &allocator, 1.0).len()
                })
                .sum::<usize>()
        })
    });

    // Fleet-cached characterisation: the first call fills (or the design
    // flow seeds) the fleet's timing-table cache; every sweep afterwards —
    // including across calls, which `scenarios_for` cannot avoid re-paying —
    // runs zero characterisation passes.
    let cached = sweep
        .scenarios_for_fleet(&parallel, &fleet, &allocator, 1.0)
        .expect("cached sweep expansion");
    assert_eq!(cached, shared, "cached and shared sweeps must expand identically");
    group.bench_function("bus_sweep_fleet_cached", |b| {
        b.iter(|| {
            sweep
                .scenarios_for_fleet(&parallel, &fleet, &allocator, 1.0)
                .expect("cached sweep expansion")
        })
    });

    // The complete bus design space: slot length Ψ (frame payload geometry)
    // as the third axis, expanded over the cached table. The Ψ-stretched
    // candidates re-run the full allocator matrix and the exact search under
    // their per-slot transmission overhead.
    let geometry = BusConfigSweep::new(bus)
        .with_cycle_lengths(vec![0.005, 0.010])
        .with_static_slot_counts(vec![4, 10])
        .with_slot_lengths(vec![0.0002, 0.0005]);
    assert!(geometry.configs().len() > bus_count, "the third axis must widen the sweep");
    group.bench_function("bus_sweep_geometry_3axis", |b| {
        b.iter(|| {
            geometry
                .scenarios_for_fleet(&parallel, &fleet, &allocator, 1.0)
                .expect("geometry sweep expansion")
        })
    });

    group.bench_function("engine_spinup_clone_baseline", |b| {
        b.iter(|| {
            CoSimulation::new(apps.clone(), &allocation, bus).expect("engine over cloned fleet")
        })
    });
    group.bench_function("engine_spinup_shared", |b| {
        b.iter(|| fleet.engine().expect("engine over shared fleet"))
    });
    group.finish();

    // Workspace vs allocating DARE on a representative delay-augmented
    // double integrator (3 augmented states, 1 input).
    let a = Matrix::from_rows(&[&[1.0, 0.02, 0.0002], &[0.0, 1.0, 0.02], &[0.0, 0.0, 0.0]])
        .expect("static");
    let b_mat = Matrix::column(&[0.0, 0.0, 1.0]).expect("static");
    let q = Matrix::identity(3);
    let r = Matrix::from_rows(&[&[0.1]]).expect("static");
    let options = DareOptions::default();
    let reference = solve_dare_reference(&a, &b_mat, &q, &r, options).expect("dare");
    assert_eq!(solve_dare(&a, &b_mat, &q, &r, options).expect("dare"), reference);

    let mut group = c.benchmark_group("dare");
    group.sample_size(10);
    group.bench_function("solve_workspace", |b| {
        let mut workspace = RiccatiWorkspace::new(3, 1);
        b.iter(|| {
            black_box(
                solve_dare_with(&a, &b_mat, &q, &r, options, &mut workspace).expect("dare"),
            )
        })
    });
    group.bench_function("solve_reference_alloc", |b| {
        b.iter(|| black_box(solve_dare_reference(&a, &b_mat, &q, &r, options).expect("dare")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
