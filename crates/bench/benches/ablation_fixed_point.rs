//! Ablation A1 — closed-form wait-time bound (paper Eq. (20)) versus the
//! exact fixed point of Eq. (5): tightness on random fleets and runtime cost.

use cps_bench::synthetic_fleet;
use cps_sched::{max_wait_time_bound, max_wait_time_fixed_point, ModelKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    println!("\n=== Ablation A1: closed-form bound vs. exact fixed point ===");
    let fleet = synthetic_fleet(8, 42);
    let slot: Vec<usize> = (0..fleet.len()).collect();
    for index in 0..fleet.len() {
        let bound = max_wait_time_bound(&fleet, &slot, index, ModelKind::NonMonotonic);
        let exact = max_wait_time_fixed_point(&fleet, &slot, index, ModelKind::NonMonotonic);
        match (bound, exact) {
            (Ok(bound), Ok(exact)) => println!(
                "{:<4} bound = {:>7.3} s, exact = {:>7.3} s, pessimism = {:>5.1} %",
                fleet[index].name,
                bound,
                exact,
                if exact > 0.0 { (bound - exact) / exact * 100.0 } else { 0.0 }
            ),
            _ => println!("{:<4} slot overloaded under this interference", fleet[index].name),
        }
    }
    println!();

    let mut group = c.benchmark_group("ablation_fixed_point");
    for size in [4usize, 8, 16, 32] {
        let fleet = synthetic_fleet(size, 42);
        let slot: Vec<usize> = (0..fleet.len()).collect();
        group.bench_with_input(BenchmarkId::new("closed_form_bound", size), &size, |b, _| {
            b.iter(|| {
                for index in 0..fleet.len() {
                    let _ = max_wait_time_bound(&fleet, &slot, index, ModelKind::NonMonotonic);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_fixed_point", size), &size, |b, _| {
            b.iter(|| {
                for index in 0..fleet.len() {
                    let _ =
                        max_wait_time_fixed_point(&fleet, &slot, index, ModelKind::NonMonotonic);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
