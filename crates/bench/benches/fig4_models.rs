//! Experiment E2 — regenerates the paper's Figure 4: the two-segment
//! non-monotonic dwell-time model versus the conservative and simple
//! monotonic models, and benchmarks the model fit.

use cps_core::experiments;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let data = experiments::figure4_models().expect("model fitting must succeed");
    println!("\n=== Figure 4: dwell-time models (every 10th wait sample) ===");
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>10}",
        "k_wait [s]", "measured", "non-monotonic", "conservative", "simple"
    );
    for i in (0..data.wait_times.len()).step_by(10) {
        println!(
            "{:>10.2} {:>10.2} {:>14.2} {:>14.2} {:>10.2}",
            data.wait_times[i],
            data.measured[i],
            data.non_monotonic[i],
            data.conservative[i],
            data.simple[i]
        );
    }
    println!(
        "orderings hold (conservative >= non-monotonic >= measured, simple underestimates): {}\n",
        experiments::figure4_orderings_hold(&data)
    );

    let curve = experiments::figure3_dwell_wait_curve().expect("characterisation must succeed");
    let mut group = c.benchmark_group("fig4");
    group.bench_function("fit_non_monotonic_model", |b| {
        b.iter(|| cps_core::fit_non_monotonic(&curve).expect("fit must succeed"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
