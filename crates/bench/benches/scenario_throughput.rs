//! Scenario-throughput benchmark: how many co-simulation scenarios per
//! second the batched [`ScenarioBatch`] engine sustains, and how it scales
//! with worker threads.
//!
//! Each scenario is a full plant/runtime/FlexRay co-simulation of the
//! six-application derived fleet with a scaled disturbance. The engine pays
//! the fleet-design and bus-construction cost once per worker and then
//! `reset()`s-and-reruns, so throughput is dominated by the allocation-free
//! kernel steps. Scaling is near-linear in cores; on a single-core host the
//! thread counts merely demonstrate determinism.

use cps_core::{case_study, ScenarioBatch, ScenarioSpec};
use cps_flexray::FlexRayConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

fn build_batch() -> ScenarioBatch {
    let apps = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&apps).expect("table derivation");
    let allocation = cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default())
        .expect("allocation");
    ScenarioBatch::new(apps, allocation, FlexRayConfig::paper_case_study())
        .expect("batch template")
}

fn bench(c: &mut Criterion) {
    let batch = build_batch();
    let scenarios = ScenarioSpec::disturbance_sweep(0.1, 2.0, 64, 4.0);

    println!("\n=== Scenario throughput (64 disturbance scenarios, 4 s each) ===");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for threads in [1usize, 2, cores.max(4)] {
        let runner = batch.clone().with_threads(threads);
        let start = Instant::now();
        let outcomes = runner.run(&scenarios).expect("batch run");
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{threads:>2} thread(s): {:>7.1} scenarios/s ({} scenarios in {elapsed:.3} s, {} settled)",
            outcomes.len() as f64 / elapsed,
            outcomes.len(),
            outcomes.iter().filter(|o| o.response_times.iter().all(Option::is_some)).count(),
        );
    }
    println!("available parallelism: {cores}\n");

    let mut group = c.benchmark_group("scenario_throughput");
    group.sample_size(10);
    let short_sweep = ScenarioSpec::disturbance_sweep(0.1, 2.0, 16, 1.0);
    for threads in [1usize, 2, 4] {
        let runner = batch.clone().with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("sweep16_threads", threads),
            &threads,
            |b, _| b.iter(|| runner.run(&short_sweep).expect("batch run")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
