//! Characterisation performance benchmark: the kernel-based, early-exit
//! dwell/wait pipeline against the full-horizon reference path it replaced
//! (the PR acceptance floor is a 5× speed-up on the kernel path).
//!
//! Both paths produce bit-identical curves — asserted here before timing —
//! so the comparison is purely about the cost of fixed-horizon allocating
//! simulation versus scratch-buffer simulation with provable early exit.

use cps_control::{
    characterize_dwell_vs_wait, characterize_dwell_vs_wait_reference, CharacterizationConfig,
};
use cps_core::{case_study, characterize_application, experiments};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Linear switched loops of the case-study servo (the Figure 3 pipeline
    // without saturation), characterised over the default 3000-sample cap.
    let app = case_study::derived_fleet().expect("fleet design").remove(2);
    let a1 = app.et_controller().closed_loop().clone();
    let a2 = app.tt_controller().closed_loop().clone();
    let mut initial = app.spec().disturbance.clone();
    initial.extend(std::iter::repeat(0.0).take(app.spec().plant.inputs()));
    let config = CharacterizationConfig {
        period: app.spec().period,
        threshold: app.spec().threshold,
        initial_state: initial,
        plant_order: app.spec().plant.order(),
        horizon: 3_000,
    };
    let fast = characterize_dwell_vs_wait(&a1, &a2, &config).expect("kernel characterisation");
    let reference =
        characterize_dwell_vs_wait_reference(&a1, &a2, &config).expect("reference");
    assert_eq!(fast, reference, "paths must agree before being compared for speed");

    // The saturated servo rig of Figure 3, same comparison.
    let rig = experiments::servo_rig_application().expect("rig design");
    let model = rig.saturated_model().expect("model").expect("rig has a torque limit");
    let rig_config = CharacterizationConfig {
        period: rig.spec().period,
        threshold: rig.spec().threshold,
        initial_state: rig.spec().disturbance.clone(),
        plant_order: rig.spec().plant.order(),
        horizon: 3_000,
    };
    let fast = model.characterize(&rig_config).expect("kernel characterisation");
    let reference = model.characterize_reference(&rig_config).expect("reference");
    assert_eq!(fast, reference, "saturated paths must agree");

    let mut group = c.benchmark_group("characterize");
    group.sample_size(10);
    group.bench_function("linear_kernel", |b| {
        b.iter(|| black_box(characterize_dwell_vs_wait(&a1, &a2, &config).expect("curve")))
    });
    group.bench_function("linear_full_horizon_reference", |b| {
        b.iter(|| {
            black_box(characterize_dwell_vs_wait_reference(&a1, &a2, &config).expect("curve"))
        })
    });
    group.bench_function("saturated_kernel", |b| {
        b.iter(|| black_box(model.characterize(&rig_config).expect("curve")))
    });
    group.bench_function("saturated_full_horizon_reference", |b| {
        b.iter(|| black_box(model.characterize_reference(&rig_config).expect("curve")))
    });
    // The end-to-end Figure 3/4 pipeline of one application (characterise +
    // implicit settling sweeps), now riding entirely on the kernel path.
    group.bench_function("application_pipeline", |b| {
        b.iter(|| black_box(characterize_application(&app).expect("curve")))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
