//! Ablation A3 — number of piecewise-linear segments in the dwell-time
//! model: the paper's two-segment model versus a many-segment upper envelope
//! of the measured curve (the refinement the paper suggests in Section III).

use cps_core::{experiments, fit_non_monotonic};
use cps_sched::{DwellTimeModel, NonMonotonicModel, PiecewiseLinearModel};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let curve = experiments::figure3_dwell_wait_curve().expect("characterisation must succeed");
    let (xi_tt, xi_et, xi_m, k_p) = fit_non_monotonic(&curve).expect("fit must succeed");
    let two_segment = NonMonotonicModel::new(xi_tt, xi_m, k_p, xi_et).expect("valid model");
    // Many-segment model: the measured points themselves (plus a tiny safety
    // margin) as breakpoints — the tightest piecewise-linear upper bound.
    let breakpoints: Vec<(f64, f64)> =
        curve.points.iter().map(|p| (p.wait_time, p.dwell_time + 1e-9)).collect();
    let fine = PiecewiseLinearModel::new(breakpoints).expect("valid model");

    println!("\n=== Ablation A3: dwell-model granularity ===");
    println!("{:>10} {:>12} {:>12}", "k_wait [s]", "2 segments", "n segments");
    let mut conservatism = 0.0;
    for point in curve.points.iter().step_by(10) {
        let coarse = two_segment.dwell(point.wait_time);
        let tight = fine.dwell(point.wait_time);
        conservatism += coarse - tight;
        println!("{:>10.2} {:>12.2} {:>12.2}", point.wait_time, coarse, tight);
    }
    println!(
        "average extra conservatism of the 2-segment model: {:.3} s per sampled wait time\n",
        conservatism / curve.points.iter().step_by(10).count().max(1) as f64
    );

    let mut group = c.benchmark_group("ablation_segments");
    group.bench_function("evaluate_two_segment_model", |b| {
        b.iter(|| {
            curve.points.iter().map(|p| two_segment.dwell(p.wait_time)).sum::<f64>()
        })
    });
    group.bench_function("evaluate_n_segment_model", |b| {
        b.iter(|| curve.points.iter().map(|p| fine.dwell(p.wait_time)).sum::<f64>())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
