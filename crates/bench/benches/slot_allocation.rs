//! Experiment E4 — regenerates the paper's headline result: 3 TT slots with
//! the non-monotonic dwell model versus 5 with the conservative monotonic
//! one (+67 % communication resource), and benchmarks the allocator.

use cps_core::{case_study, experiments};
use cps_sched::{allocate_slots, AllocatorConfig, ModelKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let apps = case_study::paper_table1();
    let outcome = case_study::run_slot_allocation(&apps).expect("allocation must succeed");
    println!("\n=== Section V headline: TT-slot dimensioning ===");
    println!("{}", experiments::render_allocation(&outcome, &apps));
    assert_eq!(outcome.non_monotonic_slots, 3);
    assert_eq!(outcome.monotonic_slots, 5);

    let mut group = c.benchmark_group("slot_allocation");
    group.bench_function("paper_table1_non_monotonic", |b| {
        b.iter(|| allocate_slots(&apps, &AllocatorConfig::default()).expect("allocation"))
    });
    group.bench_function("paper_table1_conservative_monotonic", |b| {
        b.iter(|| {
            allocate_slots(
                &apps,
                &AllocatorConfig {
                    model: ModelKind::ConservativeMonotonic,
                    ..AllocatorConfig::default()
                },
            )
            .expect("allocation")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
