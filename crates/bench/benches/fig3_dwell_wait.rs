//! Experiment E1 — regenerates the paper's Figure 3: the measured dwell-time
//! versus wait-time relation of the servo rig, and benchmarks the switched
//! characterisation sweep.

use cps_core::experiments;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    // Regenerate and print the figure data once, so the bench run doubles as
    // the reproduction artefact.
    let curve = experiments::figure3_dwell_wait_curve().expect("characterisation must succeed");
    println!("\n=== Figure 3: dwell time vs. wait time (servo rig) ===");
    println!("{}", experiments::render_curve(&curve, 5));
    println!(
        "shape checks: non-monotonic = {}, xi_m/xi_tt = {:.2}, xi_et/xi_tt = {:.2}\n",
        curve.is_non_monotonic(),
        curve.max_dwell() / curve.xi_tt,
        curve.xi_et / curve.xi_tt
    );

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("characterize_servo_rig", |b| {
        b.iter(|| experiments::figure3_dwell_wait_curve().expect("characterisation must succeed"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
