//! Ablation A2 — the paper's next-fit allocation versus first-fit and
//! best-fit on random fleets: slot counts and allocator runtime.

use cps_bench::synthetic_fleet;
use cps_sched::{allocate_slots, AllocationStrategy, AllocatorConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    println!("\n=== Ablation A2: packing strategy vs. number of TT slots ===");
    println!("{:>6} {:>9} {:>10} {:>9}", "apps", "next-fit", "first-fit", "best-fit");
    for size in [4usize, 8, 16, 24] {
        let fleet = synthetic_fleet(size, 123);
        let mut counts = Vec::new();
        for strategy in
            [AllocationStrategy::NextFit, AllocationStrategy::FirstFit, AllocationStrategy::BestFit]
        {
            let config =
                AllocatorConfig { strategy, max_slots: size.max(10), ..AllocatorConfig::default() };
            let count = allocate_slots(&fleet, &config)
                .map(|allocation| allocation.slot_count().to_string())
                .unwrap_or_else(|_| "-".to_string());
            counts.push(count);
        }
        println!("{:>6} {:>9} {:>10} {:>9}", size, counts[0], counts[1], counts[2]);
    }
    println!();

    let mut group = c.benchmark_group("ablation_allocation");
    for size in [8usize, 16, 32] {
        let fleet = synthetic_fleet(size, 123);
        for strategy in
            [AllocationStrategy::NextFit, AllocationStrategy::FirstFit, AllocationStrategy::BestFit]
        {
            let config =
                AllocatorConfig { strategy, max_slots: size.max(10), ..AllocatorConfig::default() };
            group.bench_with_input(
                BenchmarkId::new(strategy.to_string(), size),
                &size,
                |b, _| b.iter(|| allocate_slots(&fleet, &config)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
