//! Perf bench — cost of the *exact* branch-and-bound slot allocation
//! versus the greedy heuristic sweep it upgrades.
//!
//! The solver is seeded with the best greedy allocation, so its cost is the
//! greedy sweep plus the proof of optimality; the interesting quantity is
//! how that proof scales with fleet size. `solve` benches run on a
//! pre-constructed solver (`solve_in_place` is allocation-free and
//! idempotent), mirroring how the design-space sweeps reuse one solver per
//! fleet.
//!
//! The `portfolio_{1,2,4}_threads` rungs run the parallel portfolio on a
//! contended 24-app fleet where the randomized restart schedule beats every
//! greedy strategy to the optimum, so the exact proof closes in strictly
//! fewer nodes than the plain sequential solver needs — the scaling story
//! the portfolio exists for, asserted on every run and printed next to the
//! timings.

use cps_bench::{synthetic_fleet, synthetic_fleet_tight};
use cps_sched::case_study_fixtures::paper_table1;
use cps_sched::{
    allocation_sweep, AllocatorConfig, AppTimingParams, OptimalAllocator, PortfolioAllocator,
    PortfolioConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let apps = paper_table1();
    let config = AllocatorConfig::default();

    // Correctness gates: the solver must reproduce the paper's 3-slot
    // optimum and never lose to the greedy sweep.
    let mut solver = OptimalAllocator::new(&apps, &config).expect("solver");
    let optimal = solver.solve().expect("feasible");
    assert_eq!(optimal.slot_count(), 3);
    assert!(optimal.verify(&apps).expect("verification runs"));
    let greedy_best = allocation_sweep(&apps, &config.sweep_matrix())
        .iter()
        .map(cps_sched::SlotAllocation::slot_count)
        .min()
        .expect("sweep is non-empty");
    assert!(optimal.slot_count() <= greedy_best);
    println!(
        "\n=== Exact slot allocation ===\npaper Table I: optimal {} slots ({} search nodes), greedy best {}",
        optimal.slot_count(),
        solver.nodes_explored(),
        greedy_best
    );

    let mut group = c.benchmark_group("allocation_opt");
    group.bench_function("paper_table1_branch_and_bound", |b| {
        b.iter(|| solver.solve_in_place().expect("feasible"))
    });
    group.bench_function("paper_table1_greedy_sweep_baseline", |b| {
        b.iter(|| allocation_sweep(&apps, &config.sweep_matrix()))
    });
    group.bench_function("paper_table1_solver_construction", |b| {
        b.iter(|| OptimalAllocator::new(&apps, &config).expect("solver"))
    });

    // Scaling: synthetic fleets (deterministic seed) with the slot budget
    // opened up to the fleet size so the search space, not the cap, binds.
    for size in [6usize, 8, 10] {
        let fleet: Vec<AppTimingParams> = synthetic_fleet(size, 42);
        let sized = AllocatorConfig { max_slots: size, ..config };
        let mut solver = OptimalAllocator::new(&fleet, &sized).expect("solver");
        let slots = solver.solve_in_place().expect("synthetic fleets are schedulable");
        println!(
            "synthetic fleet n={size}: optimal {slots} slots, {} search nodes",
            solver.nodes_explored()
        );
        group.bench_with_input(
            BenchmarkId::new("synthetic_branch_and_bound", size),
            &size,
            |b, _| b.iter(|| solver.solve_in_place().expect("feasible")),
        );
    }

    // Portfolio rungs: a contended 24-app fleet (tight deadlines, slot
    // budget open) whose optimality proof costs hundreds of thousands of
    // nodes, and where the randomized restart schedule finds the optimum
    // before any greedy strategy does — so the portfolio prunes with a
    // tighter incumbent and closes the proof in strictly fewer nodes than
    // the sequential solver, at every worker count. The node counts are
    // printed alongside the timings; the assertions keep the "strictly
    // fewer nodes" claim honest on every perf run.
    let fleet = synthetic_fleet_tight(24, 9015);
    let sized = AllocatorConfig { max_slots: 24, ..config };
    let mut sequential = OptimalAllocator::new(&fleet, &sized).expect("solver");
    let seq_started = Instant::now();
    let seq_slots = sequential.solve_in_place().expect("tight fleet is schedulable");
    let seq_elapsed = seq_started.elapsed();
    let seq_nodes = sequential.nodes_explored();
    println!(
        "tight fleet n=24 seed=9015: sequential optimum {seq_slots} slots, \
         {seq_nodes} nodes in {seq_elapsed:?}"
    );
    for threads in [1usize, 2, 4] {
        let schedule = PortfolioConfig::with_threads(threads);
        let mut solver = PortfolioAllocator::new(&fleet, &sized, &schedule).expect("solver");
        let started = Instant::now();
        let slots = solver.solve_in_place().expect("tight fleet is schedulable");
        let elapsed = started.elapsed();
        let nodes = solver.nodes_explored();
        assert_eq!(slots, seq_slots, "the portfolio must return the sequential optimum");
        assert!(
            nodes < seq_nodes,
            "the restart schedule's incumbent must close the proof in strictly \
             fewer nodes ({nodes} vs sequential {seq_nodes})"
        );
        println!(
            "portfolio threads={threads}: optimum {slots} slots, {nodes} nodes in {elapsed:?} \
             (sequential: {seq_nodes} nodes in {seq_elapsed:?})"
        );
        group.bench_function(format!("portfolio_{threads}_threads"), |b| {
            b.iter(|| solver.solve_in_place().expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
