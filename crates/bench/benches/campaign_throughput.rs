//! Campaign-throughput benchmark: how many faulty Monte-Carlo scenarios per
//! second the streaming [`RobustnessCampaign`] engine sustains, and what the
//! fault-injection layer costs over the nominal path.
//!
//! Each scenario is a full plant/runtime/FlexRay co-simulation under an
//! active fault model (frame drops, Gilbert–Elliott bursts, payload
//! corruption, dynamic-segment contention) plus sensor-noise degradation,
//! measured through the allocation-free `run_metrics_into` hot path. The
//! campaign streams scenarios through its bounded channel, so memory stays
//! O(workers) at any scenario count; on a single-core host the worker
//! counts merely demonstrate determinism. The `faulty24_lanes` rungs sweep
//! the lane width of the batched kernel stepping at a fixed single worker —
//! bit-identical results at every width, so the knob is pure throughput.

use cps_core::{case_study, DesignedFleet, RobustnessCampaign, RobustnessSweep};
use cps_flexray::{FlexRayConfig, GilbertElliott};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Instant;

fn build_fleet() -> Arc<DesignedFleet> {
    let apps = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&apps).expect("table derivation");
    let allocation = cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default())
        .expect("allocation");
    Arc::new(
        DesignedFleet::new(apps, allocation, FlexRayConfig::paper_case_study())
            .expect("fleet artifact"),
    )
}

fn faulty_sweep(scenarios_per_intensity: u64, duration: f64) -> RobustnessSweep {
    RobustnessSweep::new(vec![0.0, 0.1, 0.3], scenarios_per_intensity, duration)
        .with_disturbance_range(0.8, 1.2)
        .with_burst(GilbertElliott {
            degrade_probability: 0.1,
            recover_probability: 0.4,
            bad_drop_probability: 0.8,
        })
        .with_corruption(0.01)
        .with_dynamic_contention(6)
        .with_sensor_noise(0.01)
}

fn bench(c: &mut Criterion) {
    let fleet = build_fleet();

    println!("\n=== Campaign throughput (faulty scenarios, 2 s each) ===");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let sweep = faulty_sweep(32, 2.0);
    for workers in [1usize, 2, cores.max(4)] {
        let campaign = RobustnessCampaign::new(Arc::clone(&fleet), 2019).with_workers(workers);
        let start = Instant::now();
        let stats = campaign.run(&sweep).expect("campaign run");
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{workers:>2} worker(s): {:>7.1} scenarios/s ({} scenarios in {elapsed:.3} s, \
             {} settled)",
            stats.total as f64 / elapsed,
            stats.total,
            stats.families.iter().map(|f| f.settled).sum::<u64>(),
        );
    }
    println!("available parallelism: {cores}\n");

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    let short_sweep = faulty_sweep(8, 1.0);
    for workers in [1usize, 2, 4] {
        let campaign = RobustnessCampaign::new(Arc::clone(&fleet), 2019).with_workers(workers);
        group.bench_with_input(
            BenchmarkId::new("faulty24_workers", workers),
            &workers,
            |b, _| b.iter(|| campaign.run(&short_sweep).expect("campaign run")),
        );
    }
    // Lane-width sweep at a fixed single worker: what the lane-batched
    // kernel stepping buys over the scalar engine (lane width 1), and
    // whether wider batches keep paying. The campaign result is
    // bit-identical at every width, so this knob is pure throughput.
    for lane_width in [1usize, 4, 8] {
        let campaign = RobustnessCampaign::new(Arc::clone(&fleet), 2019)
            .with_workers(1)
            .with_lane_width(lane_width);
        group.bench_with_input(
            BenchmarkId::new("faulty24_lanes", lane_width),
            &lane_width,
            |b, _| b.iter(|| campaign.run(&short_sweep).expect("campaign run")),
        );
    }
    // The fault layer's overhead over the nominal streaming path.
    let nominal_sweep = RobustnessSweep::new(vec![0.0], 24, 1.0);
    let campaign = RobustnessCampaign::new(Arc::clone(&fleet), 2019).with_workers(1);
    group.bench_function("nominal24_workers/1", |b| {
        b.iter(|| campaign.run(&nominal_sweep).expect("nominal campaign run"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
