//! Experiment E5 — regenerates the paper's Figure 5: the disturbance
//! responses of all six case-study applications co-simulated over the
//! FlexRay bus with the dynamic resource-allocation scheme, and benchmarks
//! the co-simulation engine.

use cps_core::{case_study, experiments, CoSimulation};
use cps_flexray::FlexRayConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let trace = experiments::figure5_cosimulation(12.0).expect("co-simulation must succeed");
    println!("\n=== Figure 5: co-simulated disturbance responses (derived fleet) ===");
    println!("{}", experiments::render_cosim(&trace));
    println!("all deadlines met: {}\n", trace.all_deadlines_met());

    // Benchmark only the co-simulation run itself (fleet design and Table-I
    // derivation are one-off offline steps).
    let fleet = case_study::derived_fleet().expect("fleet design");
    let table = case_study::derive_table(&fleet).expect("table derivation");
    let allocation = cps_sched::allocate_slots(&table, &cps_sched::AllocatorConfig::default())
        .expect("allocation");

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    // Steady-state workload: one engine, reset-and-rerun per iteration (the
    // kernel/scratch reuse path the engine is designed for).
    let mut cosim =
        CoSimulation::new(fleet.clone(), &allocation, FlexRayConfig::paper_case_study())
            .expect("co-simulation setup");
    group.bench_function("cosimulate_6_apps_4s", |b| {
        b.iter(|| {
            cosim.reset().expect("reset");
            cosim.inject_disturbances().expect("disturbances");
            cosim.run(4.0).expect("run")
        })
    });
    // The seed behaviour (rebuild the whole fleet per iteration), kept as a
    // baseline so the reuse win stays visible in the BENCH trajectory.
    group.bench_function("cosimulate_6_apps_4s_rebuild", |b| {
        b.iter(|| {
            let mut cosim = CoSimulation::new(
                fleet.clone(),
                &allocation,
                FlexRayConfig::paper_case_study(),
            )
            .expect("co-simulation setup");
            cosim.inject_disturbances().expect("disturbances");
            cosim.run(4.0).expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
