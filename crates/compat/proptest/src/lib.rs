//! Offline, API-compatible shim for the [proptest](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment of this repository cannot reach a crates registry,
//! so this crate implements the subset of proptest's surface that the
//! workspace's property tests use: the [`Strategy`] trait (range strategies,
//! tuples, `prop_map`), [`collection::vec`], [`ProptestConfig`], the
//! [`proptest!`] macro and `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Cases are generated from a deterministic RNG seeded by the test name, so
//! runs are reproducible. Failing cases are reported by the standard panic
//! message; there is no shrinking.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic split-mix style RNG used to generate test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose seed is derived from `name` (typically the test
    /// function name), so every test gets its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for byte in name.bytes() {
            seed = (seed ^ u64::from(byte)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: seed.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn next_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// A generator of test-case values, mirroring proptest's trait of the same
/// name (minus shrinking).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.next_usize(self.start, self.end)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as i64
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $index:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification accepted by [`vec()`]: a fixed length or a range.
    pub trait IntoSizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors whose length lies in `size` from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "size range must be non-empty");
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                if self.min + 1 == self.max { self.min } else { rng.next_usize(self.min, self.max) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The subset of proptest's prelude this workspace uses.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a boolean property, with optional formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Skips the current case if the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: every `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` generated inputs through the
/// body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // The body runs inside a closure so `prop_assume!` can skip
                // the case with an early return.
                #[allow(clippy::redundant_closure_call)]
                (|| { $body })();
            }
        }
        $crate::__proptest_items! { @config ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&x));
            let n = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn vec_and_map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strategy = collection::vec((0.0f64..1.0, 1.0f64..2.0).prop_map(|(a, b)| a + b), 2..5);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (1.0..3.0).contains(x)));
        }
        let fixed = collection::vec(0.0f64..1.0, 4usize);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0.0f64..1.0, n in 1usize..4) {
            prop_assume!(x > 0.01);
            prop_assert!(x < 1.0);
            prop_assert_eq!(n.min(3), n, "n = {n}");
        }
    }
}
